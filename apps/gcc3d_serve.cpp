/**
 * @file
 * Multi-session render-serving CLI: build a session fleet (N clients
 * cycling through scenes and a renderer mix), serve it through the
 * SLO-aware FrameScheduler on a thread pool, and print the per-session
 * and fleet SLO report.
 *
 * Examples:
 *   gcc3d_serve --sessions 8 --frames 16 --policy edf --fps-target 90
 *   gcc3d_serve --sessions 4 --frames 8 --renderers tile,gw --threads 4
 *   gcc3d_serve --sessions 12 --scenes lego,train --cache-dir .gsc-cache
 *
 * Scheduling never changes pixels: per-session checksums equal serial
 * rendering (locked in by tests/test_serve.cc and bench/serve_throughput).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lod/lod_builder.h"
#include "obs/trace_export.h"
#include "serve/fleet.h"
#include "serve/frame_scheduler.h"

namespace {

using namespace gcc3d;
using gcc3d::bench::splitList;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --sessions N      concurrent client sessions (default: 8)\n"
        "  --frames N        frames streamed per session (default: 8)\n"
        "  --policy P        fifo | rr | edf (default: fifo)\n"
        "  --renderers LIST  renderer mix, cycled across sessions;\n"
        "                    subset of tile,gw (default: tile)\n"
        "  --fps-target F    per-session FPS target; frames get EDF\n"
        "                    deadlines and miss accounting (default: 0\n"
        "                    = best effort)\n"
        "  --drop-late       shed frames already past their deadline\n"
        "                    at dispatch instead of rendering them\n"
        "  --threads N       render workers; 0 = all hardware threads\n"
        "                    (default: 0)\n"
        "  --scenes LIST     comma-separated scene names or 'all',\n"
        "                    cycled across sessions (default: lego)\n"
        "  --subview N       Gaussian-wise Cmode sub-view side; 0 =\n"
        "                    full view (default: 128)\n"
        "  --scale F         population scale in (0,1] (default:\n"
        "                    GCC3D_SCALE env or 1.0)\n"
        "  --cache-dir DIR   .gsc scene cache; repeated runs skip\n"
        "                    scene generation (results unchanged)\n"
        "  --lod FILE        serve the .gsc v2 LOD scene at FILE under\n"
        "                    the memory budget instead of generating\n"
        "                    resident clouds (scene list still sets\n"
        "                    the camera paths)\n"
        "  --memory-budget M leaf-chunk residency budget in MiB\n"
        "                    (default: 256)\n"
        "  --lod-tau F       LOD cut angular threshold in radians\n"
        "                    (default: 0.08; smaller = more detail)\n"
        "  --city N          view the N-splat City corridor preset\n"
        "                    (with --lod, a missing FILE is built by\n"
        "                    the streamed LOD builder first)\n"
        "  --temporal K      temporal coherence for tile resident-\n"
        "                    cloud sessions: 0 = off, 1 = exact\n"
        "                    incremental mode (bit-identical), K > 1\n"
        "                    = render every K-th frame exactly and\n"
        "                    reproject the rest (>= 40 dB contract)\n"
        "                    (default: 0)\n"
        "  --traj-arc F      fraction of each scene's camera path the\n"
        "                    trajectories cover in the same frame\n"
        "                    count (default: 1.0; temporal streams\n"
        "                    use smaller arcs for headset-like steps)\n"
        "  --open-loop R     open-loop serving: sessions arrive as a\n"
        "                    Poisson process at R sessions/s instead\n"
        "                    of all joining at t=0 (--sessions is\n"
        "                    ignored; --frames caps session length)\n"
        "  --duration MS     open-loop arrival window (default: 2000)\n"
        "  --diurnal A       sinusoidal rate modulation amplitude in\n"
        "                    [0, 1) over --diurnal-period ms\n"
        "  --diurnal-period MS  (default: 1000)\n"
        "  --load-seed N     arrival-process seed (default: 1)\n"
        "  --admission       enable admission control (token bucket +\n"
        "                    fairness + predictive shed)\n"
        "  --admission-rate F   bucket refill in renders/s; 0 = no\n"
        "                    bucket (default: 0)\n"
        "  --admission-burst F  bucket capacity (default: 4)\n"
        "  --admission-depth N  queue depth that counts as scarce\n"
        "                    (default: 0 = off)\n"
        "  --fair-share F    under scarcity, shed sessions holding\n"
        "                    more than F x the fleet-average renders\n"
        "                    (default: 0 = off)\n"
        "  --degrade         enable the graceful-degradation ladder\n"
        "                    (full -> warp -> half-res -> coarse LOD\n"
        "                    -> drop, driven by measured slack)\n"
        "  --degrade-scale F reduced-resolution tier multiplier in\n"
        "                    (0, 1) (default: 0.5)\n"
        "  --degrade-tau F   coarse-LOD tier tau multiplier >= 1\n"
        "                    (default: 4)\n"
        "  --chaos SEED      deterministic fault injection; 0 = off.\n"
        "                    Same seed + same workload = same faults\n"
        "  --chaos-io-fail R      scene .gsc read failure rate\n"
        "  --chaos-io-truncate R  scene .gsc truncation rate\n"
        "  --chaos-decode-fail R  LOD chunk decode failure rate\n"
        "  --chaos-stall R        worker stall rate\n"
        "  --chaos-stall-ms MS    stall duration (default: 5)\n"
        "  --chaos-disconnect R   mid-stream disconnect rate\n"
        "  --chaos-budget R       residency budget-pressure rate\n"
        "  --chaos-log FILE  write the canonical chaos event log\n"
        "                    (byte-identical for a fixed seed)\n"
        "  --json FILE       write the serve report as JSON\n"
        "  --trace FILE      write a Chrome/Perfetto trace-event JSON\n"
        "                    of the run (open in chrome://tracing or\n"
        "                    ui.perfetto.dev; empty with GCC3D_OBS=OFF)\n"
        "  --metrics-out FILE  write the observability block (stage\n"
        "                    summaries + metrics registry) as JSON\n"
        "  --quiet           suppress the per-session table\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenes_arg = "lego";
    std::string renderers_arg = "tile";
    std::string policy_arg = "fifo";
    std::string cache_dir;
    std::string json_path;
    std::string trace_path;
    std::string metrics_path;
    std::string lod_path;
    int sessions = 8;
    int frames = 8;
    int threads = 0;
    int subview = 128;
    double fps_target = 0.0;
    double budget_mib = 256.0;
    double lod_tau = 0.08;
    long long city = 0;
    int temporal = 0;
    double traj_arc = 1.0;
    bool drop_late = false;
    bool quiet = false;
    float scale = benchScale();
    double open_loop_rate = 0.0;
    double duration_ms = 2000.0;
    double diurnal = 0.0;
    double diurnal_period = 1000.0;
    unsigned long long load_seed = 1;
    bool admission = false;
    double admission_rate = 0.0;
    double admission_burst = 4.0;
    int admission_depth = 0;
    double fair_share = 0.0;
    bool degrade = false;
    double degrade_scale = 0.5;
    double degrade_tau = 4.0;
    unsigned long long chaos_seed = 0;
    serve::ChaosConfig chaos_cfg;
    std::string chaos_log_path;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--sessions") {
            sessions = std::atoi(value().c_str());
        } else if (flag == "--frames") {
            frames = std::atoi(value().c_str());
        } else if (flag == "--policy") {
            policy_arg = value();
        } else if (flag == "--renderers") {
            renderers_arg = value();
        } else if (flag == "--fps-target") {
            fps_target = std::atof(value().c_str());
        } else if (flag == "--drop-late") {
            drop_late = true;
        } else if (flag == "--threads") {
            threads = std::atoi(value().c_str());
        } else if (flag == "--scenes") {
            scenes_arg = value();
        } else if (flag == "--subview") {
            subview = std::atoi(value().c_str());
        } else if (flag == "--scale") {
            scale = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--cache-dir") {
            cache_dir = value();
        } else if (flag == "--lod") {
            lod_path = value();
        } else if (flag == "--memory-budget") {
            budget_mib = std::atof(value().c_str());
        } else if (flag == "--lod-tau") {
            lod_tau = std::atof(value().c_str());
        } else if (flag == "--city") {
            city = std::atoll(value().c_str());
        } else if (flag == "--temporal") {
            temporal = std::atoi(value().c_str());
        } else if (flag == "--traj-arc") {
            traj_arc = std::atof(value().c_str());
        } else if (flag == "--open-loop") {
            open_loop_rate = std::atof(value().c_str());
        } else if (flag == "--duration") {
            duration_ms = std::atof(value().c_str());
        } else if (flag == "--diurnal") {
            diurnal = std::atof(value().c_str());
        } else if (flag == "--diurnal-period") {
            diurnal_period = std::atof(value().c_str());
        } else if (flag == "--load-seed") {
            load_seed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (flag == "--admission") {
            admission = true;
        } else if (flag == "--admission-rate") {
            admission_rate = std::atof(value().c_str());
        } else if (flag == "--admission-burst") {
            admission_burst = std::atof(value().c_str());
        } else if (flag == "--admission-depth") {
            admission_depth = std::atoi(value().c_str());
        } else if (flag == "--fair-share") {
            fair_share = std::atof(value().c_str());
        } else if (flag == "--degrade") {
            degrade = true;
        } else if (flag == "--degrade-scale") {
            degrade_scale = std::atof(value().c_str());
        } else if (flag == "--degrade-tau") {
            degrade_tau = std::atof(value().c_str());
        } else if (flag == "--chaos") {
            chaos_seed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (flag == "--chaos-io-fail") {
            chaos_cfg.io_fail_rate = std::atof(value().c_str());
        } else if (flag == "--chaos-io-truncate") {
            chaos_cfg.io_truncate_rate = std::atof(value().c_str());
        } else if (flag == "--chaos-decode-fail") {
            chaos_cfg.decode_fail_rate = std::atof(value().c_str());
        } else if (flag == "--chaos-stall") {
            chaos_cfg.stall_rate = std::atof(value().c_str());
        } else if (flag == "--chaos-stall-ms") {
            chaos_cfg.stall_ms = std::atof(value().c_str());
        } else if (flag == "--chaos-disconnect") {
            chaos_cfg.disconnect_rate = std::atof(value().c_str());
        } else if (flag == "--chaos-budget") {
            chaos_cfg.budget_pressure_rate = std::atof(value().c_str());
        } else if (flag == "--chaos-log") {
            chaos_log_path = value();
        } else if (flag == "--json") {
            json_path = value();
        } else if (flag == "--trace") {
            trace_path = value();
        } else if (flag == "--metrics-out") {
            metrics_path = value();
        } else if (flag == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (sessions < 1 || frames < 1 || fps_target < 0.0 ||
        scale <= 0.0f || scale > 1.0f) {
        std::fprintf(stderr,
                     "--sessions/--frames must be >= 1, --fps-target "
                     ">= 0 and --scale in (0, 1]\n");
        return 2;
    }
    if (temporal < 0 || traj_arc <= 0.0 || traj_arc > 1.0) {
        std::fprintf(stderr, "--temporal must be >= 0 and --traj-arc "
                             "in (0, 1]\n");
        return 2;
    }
    if (open_loop_rate < 0.0 || duration_ms <= 0.0 || diurnal < 0.0 ||
        diurnal >= 1.0 || diurnal_period <= 0.0) {
        std::fprintf(stderr, "--open-loop/--duration/--diurnal args "
                             "out of range\n");
        return 2;
    }
    if (degrade && (degrade_scale <= 0.0 || degrade_scale >= 1.0 ||
                    degrade_tau < 1.0)) {
        std::fprintf(stderr, "--degrade-scale must be in (0,1) and "
                             "--degrade-tau >= 1\n");
        return 2;
    }

    FleetSpec fleet_spec;
    fleet_spec.sessions = sessions;
    fleet_spec.frames = frames;
    fleet_spec.scale = scale;
    fleet_spec.fps_target = fps_target;
    fleet_spec.gw.subview_size = subview < 0 ? 0 : subview;
    fleet_spec.temporal = temporal;
    fleet_spec.traj_arc = static_cast<float>(traj_arc);
    fleet_spec.degrade = degrade;
    fleet_spec.degrade_render_scale = static_cast<float>(degrade_scale);
    fleet_spec.degrade_tau_factor = static_cast<float>(degrade_tau);

    chaos_cfg.seed = chaos_seed;

    SchedulerOptions sched;
    sched.drop_late = drop_late;
    sched.admission.enabled = admission;
    sched.admission.rate_hz = admission_rate;
    sched.admission.burst = admission_burst;
    sched.admission.max_queue_depth = admission_depth;
    sched.admission.fair_share = fair_share;
    sched.degrade.enabled = degrade;
    try {
        sched.policy = schedulerPolicyFromName(policy_arg);
        fleet_spec.renderers.clear();
        for (const std::string &name : splitList(renderers_arg))
            fleet_spec.renderers.push_back(sessionRendererFromName(name));
        if (city > 0)
            fleet_spec.scenes.push_back(
                citySpec(static_cast<std::size_t>(city)));
        else
            for (SceneId id : bench::parseSceneList(scenes_arg))
                fleet_spec.scenes.push_back(scenePreset(id));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (!lod_path.empty()) {
        if (budget_mib <= 0.0 || lod_tau <= 0.0) {
            std::fprintf(stderr,
                         "--memory-budget and --lod-tau must be > 0\n");
            return 2;
        }
        fleet_spec.lod_path = lod_path;
        fleet_spec.lod_budget_bytes =
            static_cast<std::size_t>(budget_mib * (1 << 20));
        fleet_spec.lod_cut.tau = static_cast<float>(lod_tau);
        // The City corridor is too large to generate in RAM: a missing
        // LOD file is built once by the streamed builder and reused.
        if (city > 0 && !isGscV2File(lod_path)) {
            std::printf("building %s: %lld-splat City LOD file "
                        "(streamed)...\n",
                        lod_path.c_str(), city);
            if (!buildLodFileStreamed(fleet_spec.scenes.front(),
                                      static_cast<std::uint64_t>(city),
                                      lod_path, LodBuildConfig{})) {
                std::fprintf(stderr, "failed to build %s\n",
                             lod_path.c_str());
                return 1;
            }
        }
    }
    if (fleet_spec.scenes.empty() || fleet_spec.renderers.empty()) {
        std::fprintf(stderr, "empty scene or renderer list\n");
        return 2;
    }

    int workers = threads > 0 ? threads : ThreadPool::hardwareWorkers();
    std::printf("gcc3d_serve: %d sessions x %d frames, policy %s, %d "
                "workers, fps target %.1f%s, scale %.2f\n",
                sessions, frames, policy_arg.c_str(), workers, fps_target,
                drop_late ? ", drop-late" : "",
                static_cast<double>(scale));

    try {
        // Chaos is installed before any scene work so .gsc cache
        // loads are already under fault injection.
        serve::ChaosEngine chaos_engine(chaos_cfg);
        serve::ChaosScope chaos_scope(&chaos_engine);
        if (chaos_cfg.enabled()) {
            sched.chaos = &chaos_engine;
            std::printf("chaos: seed %llu (io %.3f/%.3f decode %.3f "
                        "stall %.3f disconnect %.3f budget %.3f)\n",
                        static_cast<unsigned long long>(chaos_cfg.seed),
                        chaos_cfg.io_fail_rate, chaos_cfg.io_truncate_rate,
                        chaos_cfg.decode_fail_rate, chaos_cfg.stall_rate,
                        chaos_cfg.disconnect_rate,
                        chaos_cfg.budget_pressure_rate);
        }

        SceneRegistry registry(cache_dir);
        std::vector<Session> fleet;
        if (open_loop_rate > 0.0) {
            serve::LoadGenConfig load;
            load.seed = load_seed;
            load.base_rate_hz = open_loop_rate;
            load.duration_ms = duration_ms;
            load.diurnal_amplitude = diurnal;
            load.diurnal_period_ms = diurnal_period;
            load.frames_min = std::max(1, frames / 2);
            load.frames_max = frames;
            load.fps_target = static_cast<float>(fps_target);
            const std::vector<serve::SessionArrival> arrivals =
                serve::generateArrivals(load);
            std::printf("open-loop: %zu arrivals over %.0f ms (%.1f "
                        "sessions/s, %llu offered frames)\n",
                        arrivals.size(), duration_ms, open_loop_rate,
                        static_cast<unsigned long long>(
                            serve::totalOfferedFrames(arrivals)));
            fleet = buildOpenLoopFleet(fleet_spec, arrivals, registry);
        } else {
            fleet = buildFleet(fleet_spec, registry);
        }
        std::printf("fleet shares %zu distinct scene clouds across %zu "
                    "sessions\n",
                    registry.cloudCount(), fleet.size());

        ThreadPool pool(workers);
        FrameScheduler scheduler(sched);
        ServeReport report = scheduler.run(fleet, pool);

        if (chaos_cfg.enabled()) {
            std::printf("chaos: %llu faults fired\n",
                        static_cast<unsigned long long>(
                            chaos_engine.totalFired()));
            if (!chaos_log_path.empty() &&
                !ResultTable::writeFile(chaos_log_path,
                                        chaos_engine.eventLogText())) {
                std::fprintf(stderr, "failed to write %s\n",
                             chaos_log_path.c_str());
                return 1;
            }
        }

        if (!fleet.empty() && fleet.front().scene().lod) {
            const LodScene &lod = *fleet.front().scene().lod;
            ResidencyManager::Stats rs = lod.residencyStats();
            std::printf(
                "lod scene: %llu splats in %zu chunks, budget %.1f MiB, "
                "peak resident %.1f MiB (+%.1f MiB proxies), %llu "
                "faults / %llu hits / %llu evictions\n",
                static_cast<unsigned long long>(lod.totalCount()),
                lod.chunkCount(),
                static_cast<double>(lod.budgetBytes()) / (1 << 20),
                static_cast<double>(rs.peak_resident_bytes) / (1 << 20),
                static_cast<double>(lod.alwaysResidentBytes()) / (1 << 20),
                static_cast<unsigned long long>(rs.faults),
                static_cast<unsigned long long>(rs.hits),
                static_cast<unsigned long long>(rs.evictions));
        }

        if (!quiet)
            report.print();
        else
            std::printf("fleet FPS %.2f, miss rate %.1f%%, %d dropped\n",
                        report.fleetFps(), 100.0 * report.missRate(),
                        report.framesDropped());

        if (!json_path.empty() &&
            !ResultTable::writeFile(json_path, report.toJson())) {
            std::fprintf(stderr, "failed to write %s\n",
                         json_path.c_str());
            return 1;
        }
        // Export after the scheduler's futures resolved: every worker
        // is quiescent, so the recorder's rings are safe to read.
        if (!trace_path.empty() &&
            !ResultTable::writeFile(trace_path, obs::traceJson())) {
            std::fprintf(stderr, "failed to write %s\n",
                         trace_path.c_str());
            return 1;
        }
        if (!metrics_path.empty() &&
            !ResultTable::writeFile(metrics_path,
                                    obs::observabilityJson())) {
            std::fprintf(stderr, "failed to write %s\n",
                         metrics_path.c_str());
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
