/**
 * @file
 * Batch-simulation CLI: expand a (scene x frame x variant x backend)
 * sweep from flags, run it on the parallel runtime, print the result
 * table, optionally export CSV/JSON.
 *
 * Examples:
 *   gcc3d_batch --scenes lego,train --backends gcc,gscore --frames 8
 *   gcc3d_batch --scenes all --workers 8 --csv sweep.csv
 *   gcc3d_batch --scenes train --buffer-kb 32,128,512 --frames 4
 *
 * Determinism: the result table is a pure function of the sweep
 * flags; --workers only changes wall-clock time.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/trace_export.h"
#include "runtime/result_table.h"
#include "runtime/sweep_runner.h"
#include "scene/scene_presets.h"

namespace {

using namespace gcc3d;
using gcc3d::bench::splitList;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --scenes LIST     comma-separated scene names, or 'all'\n"
        "                    (palace, lego, train, truck, playroom,\n"
        "                    drjohnson; default: lego)\n"
        "  --backends LIST   subset of gcc,gscore,gpu (default:\n"
        "                    gcc,gscore)\n"
        "  --frames N        trajectory frames per scene (default: 1)\n"
        "  --scale F         population scale in (0,1] (default:\n"
        "                    GCC3D_SCALE env or 1.0)\n"
        "  --workers N       worker threads; 0 = all hardware threads\n"
        "                    (default: 0)\n"
        "  --buffer-kb LIST  GCC image-buffer capacity sweep (KB);\n"
        "                    each value becomes a config variant\n"
        "  --cache-dir DIR   .gsc scene cache; repeated runs skip\n"
        "                    scene generation (results unchanged)\n"
        "  --csv FILE        write per-job results as CSV\n"
        "  --json FILE       write per-job results as JSON\n"
        "  --trace FILE      write a Chrome/Perfetto trace-event JSON\n"
        "                    of the sweep (empty with GCC3D_OBS=OFF)\n"
        "  --metrics-out FILE  write the observability block (stage\n"
        "                    summaries + metrics registry) as JSON\n"
        "  --quiet           suppress the per-job table\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenes_arg = "lego";
    std::string backends_arg = "gcc,gscore";
    std::string buffer_arg;
    std::string cache_dir;
    std::string csv_path;
    std::string json_path;
    std::string trace_path;
    std::string metrics_path;
    int frames = 1;
    int workers = 0;
    float scale = benchScale();
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--scenes") {
            scenes_arg = value();
        } else if (flag == "--backends") {
            backends_arg = value();
        } else if (flag == "--frames") {
            frames = std::atoi(value().c_str());
        } else if (flag == "--scale") {
            scale = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--workers") {
            workers = std::atoi(value().c_str());
        } else if (flag == "--buffer-kb") {
            buffer_arg = value();
        } else if (flag == "--cache-dir") {
            cache_dir = value();
        } else if (flag == "--csv") {
            csv_path = value();
        } else if (flag == "--json") {
            json_path = value();
        } else if (flag == "--trace") {
            trace_path = value();
        } else if (flag == "--metrics-out") {
            metrics_path = value();
        } else if (flag == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (frames < 1 || scale <= 0.0f || scale > 1.0f) {
        std::fprintf(stderr,
                     "--frames must be >= 1 and --scale in (0, 1]\n");
        return 2;
    }

    SweepSpec spec;
    spec.frames = frames;
    spec.scale = scale;
    try {
        for (SceneId id : bench::parseSceneList(scenes_arg))
            spec.addScene(id);
        spec.backends.clear();
        for (const std::string &name : splitList(backends_arg))
            spec.backends.push_back(backendFromName(name));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (spec.scenes.empty() || spec.backends.empty()) {
        std::fprintf(stderr, "empty scene or backend list\n");
        return 2;
    }
    if (!buffer_arg.empty()) {
        // The buffer capacity only exists in GccConfig; crossing the
        // variants with other backends would re-run bit-identical
        // simulations once per value.
        if (spec.backends.size() > 1 ||
            spec.backends[0] != Backend::Gcc) {
            std::fprintf(stderr, "--buffer-kb varies a GCC-only "
                                 "parameter; restricting backends to "
                                 "gcc\n");
            spec.backends = {Backend::Gcc};
        }
        spec.variants.clear();
        for (const std::string &kb : splitList(buffer_arg)) {
            ConfigVariant v;
            v.name = "buf=" + kb + "KB";
            v.gcc.image_buffer_kb = std::atof(kb.c_str());
            spec.variants.push_back(v);
        }
    }

    SweepOptions options;
    options.workers = workers > 0 ? workers : ThreadPool::hardwareWorkers();
    options.scene_cache_dir = cache_dir;
    std::printf("gcc3d_batch: %zu jobs (%zu scenes x %d frames x %zu "
                "variants x %zu backends), %d workers, scale %.2f\n",
                spec.jobCount(), spec.scenes.size(), spec.frames,
                spec.variants.size(), spec.backends.size(),
                options.workers, static_cast<double>(spec.scale));

    auto start = std::chrono::steady_clock::now();
    SweepRunner runner(options);
    ResultTable table(runner.run(spec));
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();

    if (!quiet)
        table.print();

    // Matched backend comparisons against the first backend listed.
    for (std::size_t i = 1; i < spec.backends.size(); ++i) {
        auto cmp = table.compare(spec.backends[0], spec.backends[i]);
        if (cmp.empty())
            continue;
        std::vector<double> speedups;
        for (const auto &c : cmp)
            speedups.push_back(c.speedup);
        Aggregate agg = aggregate(std::move(speedups));
        std::printf("%s vs %s: mean speedup %.2fx over %zu matched jobs\n",
                    backendName(spec.backends[i]).c_str(),
                    backendName(spec.backends[0]).c_str(), agg.mean,
                    agg.count);
    }

    // Summed per-job time over sweep wall time = average number of
    // jobs in flight.  Real speedup needs real cores: on an
    // oversubscribed host jobs time-slice and their individual times
    // inflate, so this measures concurrency, not throughput gain.
    double busy_ms = 0.0;
    for (const JobResult &r : table.rows())
        busy_ms += r.wall_ms;
    std::printf("wall %.0f ms, summed job time %.0f ms (avg jobs in "
                "flight %.2f)\n",
                wall_ms, busy_ms, wall_ms > 0.0 ? busy_ms / wall_ms : 0.0);

    if (!csv_path.empty() &&
        !ResultTable::writeFile(csv_path, table.toCsv())) {
        std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
        return 1;
    }
    if (!json_path.empty() &&
        !ResultTable::writeFile(json_path, table.toJson())) {
        std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        return 1;
    }
    // Export after run() returned (workers joined, rings quiescent).
    if (!trace_path.empty() &&
        !ResultTable::writeFile(trace_path, obs::traceJson())) {
        std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
        return 1;
    }
    if (!metrics_path.empty() &&
        !ResultTable::writeFile(metrics_path, obs::observabilityJson())) {
        std::fprintf(stderr, "failed to write %s\n", metrics_path.c_str());
        return 1;
    }
    return table.failedCount() == 0 ? 0 : 1;
}
