#include "core/gcc_sim.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/alpha_unit.h"
#include "core/blending_unit.h"
#include "core/depth_grouping.h"
#include "core/projection_unit.h"
#include "core/sh_unit.h"
#include "core/sort_unit.h"
#include "sim/pipeline.h"
#include "sim/sram.h"

namespace gcc3d {

GccSim::GccSim(GccConfig config)
    : config_(config.validated()),
      chip_(gccChipModel(config_.designPoint()))
{
}

GccFrameResult
GccSim::renderFrame(const GaussianCloud &cloud, const Camera &cam) const
{
    stats_.reset();
    GccFrameResult r;

    // ---- Compatibility Mode decision (Sec. 4.6). ----
    std::int64_t frame_pixels =
        static_cast<std::int64_t>(cam.width()) * cam.height();
    int subview = config_.subview_size;
    if (subview <= 0 && frame_pixels > config_.imageBufferPixels()) {
        // Largest power-of-two square that fits the buffer (128 at
        // the paper's 128 KB design point).
        subview = 8;
        while (std::int64_t{4} * subview * subview <=
               config_.imageBufferPixels())
            subview *= 2;
    }
    r.cmode = subview > 0 && (subview < cam.width() ||
                              subview < cam.height());
    r.subview_size = r.cmode ? subview : 0;

    // ---- Functional execution with per-group activity trace. ----
    GaussianWiseConfig gwc;
    gwc.group_capacity = config_.group_capacity;
    gwc.block_size = config_.block_size;
    gwc.termination_t = config_.termination_t;
    gwc.depth_pivot = config_.depth_pivot;
    gwc.conditional = config_.mode == GccMode::GaussianWiseCC;
    gwc.subview_size = r.cmode ? subview : 0;
    GaussianWiseRenderer renderer(gwc);
    r.image = renderer.render(cloud, cam, r.flow);

    Dram dram(config_.dram, config_.clock_ghz);
    EnergyIntegrator energy(chip_, config_.clock_ghz);

    const bool cc = config_.mode == GccMode::GaussianWiseCC;
    // depth_culled has unique-Gaussian semantics (each Gaussian's
    // depth is computed once per frame, sub-views notwithstanding),
    // so the Stage I survivor population is an exact subtraction.
    // Checked unconditionally: Release builds compile assert() out,
    // and a broken invariant wrapping the subtraction would corrupt
    // every downstream cycle/energy/traffic figure silently.
    if (r.flow.depth_culled < 0 || r.flow.depth_culled > r.flow.total) {
        std::fprintf(stderr,
                     "gcc_sim: depth_culled %lld out of [0, %lld] — "
                     "renderer stats lost unique-Gaussian semantics\n",
                     static_cast<long long>(r.flow.depth_culled),
                     static_cast<long long>(r.flow.total));
        std::abort();
    }
    const std::uint64_t n_total = static_cast<std::uint64_t>(r.flow.total);
    const std::uint64_t survivors =
        n_total - static_cast<std::uint64_t>(r.flow.depth_culled);

    // =====================================================================
    // Stage I: frame-global depth grouping barrier.
    // =====================================================================
    DepthGroupingUnit grouping(config_);
    StageICost s1 = grouping.cost(n_total, survivors, dram.bytesPerCycle());
    dram.access(TrafficClass::Gaussian3D,
                n_total * static_cast<std::uint64_t>(config_.mean_bytes));
    dram.access(TrafficClass::Meta,
                2 * survivors *
                    static_cast<std::uint64_t>(config_.id_depth_bytes));
    if (r.cmode) {
        // 2D spatial binning: per-(Gaussian, sub-view) id records.
        dram.access(TrafficClass::Meta,
                    static_cast<std::uint64_t>(r.flow.bin_records) *
                        static_cast<std::uint64_t>(config_.id_depth_bytes));
    }
    r.stage1_cycles = s1.total_cycles;
    energy.busy("RCA", s1.rca_cycles);
    energy.busy("ProjectionUnit", s1.mvm_cycles);

    // =====================================================================
    // Stages II-IV: pipelined group stream.
    // =====================================================================
    ProjectionUnit proj(config_);
    ShUnit sh(config_);
    SortUnit sort(config_);
    AlphaUnit alpha(config_);
    BlendingUnit blend(config_);

    std::uint64_t main_cycles = 0;
    std::uint64_t proj_busy = 0, sh_busy = 0, sort_busy = 0;
    std::uint64_t alpha_busy = 0, blend_busy = 0;
    std::uint64_t bytes_3d_main = 0;

    for (const GroupActivity &g : r.flow.group_trace) {
        if (g.skipped)
            continue;  // never loaded: zero cycles, zero traffic

        std::uint64_t members = static_cast<std::uint64_t>(g.members);
        std::uint64_t n_sh = static_cast<std::uint64_t>(g.sh_evals);
        std::uint64_t n_sur = static_cast<std::uint64_t>(g.survivors);
        std::uint64_t blocks =
            static_cast<std::uint64_t>(g.visited_blocks);
        std::uint64_t active =
            static_cast<std::uint64_t>(g.active_blocks);
        std::uint64_t blends = static_cast<std::uint64_t>(g.blend_ops);

        // Conditional loading (CC): geometry for the group, SH only
        // for Gaussians that survive to color mapping.  Without CC
        // the full 59-float record streams for every group member,
        // exactly like the standard dataflow's preprocessing loads.
        std::uint64_t bytes =
            cc ? members * static_cast<std::uint64_t>(config_.geom_bytes) +
                     n_sh * static_cast<std::uint64_t>(config_.sh_bytes)
               : members * Gaussian::kTotalBytes;
        bytes_3d_main += bytes;

        ProjectionCost pc =
            proj.batch(static_cast<std::uint64_t>(g.projected));
        ShCost sc = sh.batch(n_sh);
        SortCost oc = sort.group(n_sur);
        AlphaCost ac = alpha.batch(n_sh, blocks);
        BlendCost bc = blend.batch(active, blends);
        std::uint64_t mem = dram.cyclesFor(bytes);

        // Units pipeline across groups; per group the slowest unit
        // bounds progress.
        main_cycles += std::max({mem, pc.cycles, sc.cycles, oc.cycles,
                                 ac.cycles, bc.cycles});

        proj_busy += pc.cycles;
        sh_busy += sc.cycles;
        sort_busy += oc.cycles;
        alpha_busy += ac.cycles;
        blend_busy += bc.cycles;
    }
    dram.access(TrafficClass::Gaussian3D, bytes_3d_main);

    // One-time pipeline fill across the stage chain.
    main_cycles += proj.batch(1).latency + sh.batch(1).latency +
                   alpha.batch(1, 1).latency + blend.batch(1, 1).latency;
    r.main_cycles = main_cycles;

    energy.busy("ProjectionUnit", proj_busy);
    energy.busy("SHUnit", sh_busy);
    energy.busy("SortUnit", sort_busy);
    energy.busy("AlphaUnit", alpha_busy);
    energy.busy("BlendingUnit", blend_busy);

    // =====================================================================
    // Image writeback (12 bytes RGB per pixel).  Finished sub-views
    // (or, in full-view mode, retired T-masked regions) stream out of
    // the image buffer while later groups are still rendering, so
    // only the final sub-view's drain is serial.
    // =====================================================================
    std::uint64_t image_bytes =
        static_cast<std::uint64_t>(frame_pixels) * 12;
    dram.access(TrafficClass::Meta, image_bytes);
    std::uint64_t drain_pixels =
        r.cmode ? static_cast<std::uint64_t>(subview) * subview
                : static_cast<std::uint64_t>(frame_pixels);
    r.output_cycles = dram.cyclesFor(drain_pixels * 12);
    // The overlapped portion still occupies the bus alongside the
    // main loop; charge it to the main loop's memory time.
    r.main_cycles += dram.cyclesFor(image_bytes - drain_pixels * 12) / 4;

    r.total_cycles = r.stage1_cycles + r.main_cycles + r.output_cycles;
    r.fps = config_.clock_ghz * 1e9 / static_cast<double>(r.total_cycles);

    // ---- On-chip buffer traffic.  Staging repeats per sub-view in
    // Cmode, so these scale with the invocation counters, not the
    // unique populations. ----
    Sram shared_buf(chip_.buffer("SharedBuffer"));
    std::uint64_t geom_bytes_staged =
        static_cast<std::uint64_t>(r.flow.stage2_invocations) *
        static_cast<std::uint64_t>(config_.geom_bytes);
    shared_buf.write(geom_bytes_staged);
    shared_buf.read(geom_bytes_staged);

    Sram sh_buf(chip_.buffer("SHBuffer"));
    std::uint64_t sh_bytes_staged =
        static_cast<std::uint64_t>(r.flow.sh_eval_invocations) *
        static_cast<std::uint64_t>(config_.sh_bytes);
    sh_buf.write(sh_bytes_staged);
    sh_buf.read(sh_bytes_staged);

    Sram sorted_buf(chip_.buffer("SortedBuffer"));
    sorted_buf.write(
        static_cast<std::uint64_t>(r.flow.survivor_invocations) * 8);
    sorted_buf.read(
        static_cast<std::uint64_t>(r.flow.survivor_invocations) * 8);

    // Intensive Blending Unit <-> Image Buffer exchange (Sec. 5.3):
    // T reads during alpha, RGBT read-modify-write during blending.
    Sram image_buf(chip_.buffer("ImageBuffer"));
    image_buf.read(static_cast<std::uint64_t>(r.flow.alpha_evals) * 4);
    image_buf.read(static_cast<std::uint64_t>(r.flow.blend_ops) * 16);
    image_buf.write(static_cast<std::uint64_t>(r.flow.blend_ops) * 16);

    energy.addSramMj(shared_buf.energyMj() + sh_buf.energyMj() +
                     sorted_buf.energyMj() + image_buf.energyMj());

    r.energy = energy.breakdown(r.total_cycles, dram);

    r.dram_bytes_3d = dram.bytes(TrafficClass::Gaussian3D);
    r.dram_bytes_meta = dram.bytes(TrafficClass::Meta);
    r.dram_bytes_total = dram.totalBytes();

    // ---- Named stats. ----
    stats_.counter("frame.cycles").set(static_cast<double>(r.total_cycles));
    stats_.counter("frame.fps").set(r.fps);
    stats_.counter("stage1.cycles")
        .set(static_cast<double>(r.stage1_cycles));
    stats_.counter("main.cycles").set(static_cast<double>(r.main_cycles));
    stats_.counter("busy.projection").set(static_cast<double>(proj_busy));
    stats_.counter("busy.sh").set(static_cast<double>(sh_busy));
    stats_.counter("busy.sort").set(static_cast<double>(sort_busy));
    stats_.counter("busy.alpha").set(static_cast<double>(alpha_busy));
    stats_.counter("busy.blend").set(static_cast<double>(blend_busy));
    stats_.counter("dram.total_bytes")
        .set(static_cast<double>(r.dram_bytes_total));
    stats_.counter("energy.total_mj").set(r.energy.total());
    stats_.counter("cmode.enabled").set(r.cmode ? 1.0 : 0.0);
    return r;
}

} // namespace gcc3d
