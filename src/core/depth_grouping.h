/**
 * @file
 * Stage I: Gaussian grouping by depth (Sec. 3 Stage I, Sec. 4.2).
 *
 * At the start of every frame the depth of ALL Gaussians must be
 * known (rendering order is global).  The hardware reuses the
 * Projection Unit's shared MVMs to batch-compute depths and the
 * Reconfigurable Comparator Array (RCA) to bin them: a coarse pass
 * compares depths against pivot values through a cascaded
 * comparator/adder tree, then bins holding more than N Gaussians are
 * recursively subdivided until every group holds at most N (N = 256).
 * Gaussians with depth below the z-pivot (0.2) are culled here.
 *
 * This module provides both the functional hierarchical grouping
 * (bins + recursive subdivision, used to validate the equivalence of
 * the renderer's sort-and-chunk shortcut) and the Stage I cycle/
 * traffic model.
 */

#ifndef GCC3D_CORE_DEPTH_GROUPING_H
#define GCC3D_CORE_DEPTH_GROUPING_H

#include <cstdint>
#include <vector>

#include "core/gcc_config.h"
#include "render/gaussian_wise_renderer.h"
#include "scene/camera.h"
#include "scene/gaussian_cloud.h"

namespace gcc3d {

/** Cycle/traffic cost of Stage I for one frame. */
struct StageICost
{
    std::uint64_t mvm_cycles = 0;   ///< depth computation
    std::uint64_t rca_cycles = 0;   ///< comparator binning passes
    std::uint64_t mem_bytes = 0;    ///< DRAM traffic (means + id/depth)
    std::uint64_t mem_cycles = 0;   ///< bus occupancy of that traffic
    std::uint64_t total_cycles = 0; ///< composed Stage I latency
};

/**
 * Functional hierarchical grouping: coarse uniform depth bins over
 * [pivot, max_depth] followed by recursive median subdivision of
 * over-full bins.  Produces depth-ordered groups with at most
 * @p group_capacity members — the same partition family the
 * renderer's sort-and-chunk produces.
 *
 * @param depths        view-space depth per candidate
 * @param ids           Gaussian ids, parallel to depths
 * @param group_capacity N
 * @param coarse_bins   number of first-pass bins
 */
std::vector<DepthGroup> hierarchicalGroups(
    const std::vector<float> &depths,
    const std::vector<std::uint32_t> &ids, int group_capacity,
    int coarse_bins = 1024);

/** Stage I hardware model. */
class DepthGroupingUnit
{
  public:
    explicit DepthGroupingUnit(const GccConfig &config)
        : config_(&config) {}

    /**
     * Cost of grouping a frame.
     *
     * @param total_gaussians  model size (all means are read)
     * @param survivors        Gaussians past the z-pivot (id/depth
     *                         records spilled and re-read)
     * @param bytes_per_cycle  effective DRAM bytes per cycle
     */
    StageICost cost(std::uint64_t total_gaussians,
                    std::uint64_t survivors,
                    double bytes_per_cycle) const;

  private:
    const GccConfig *config_;
};

} // namespace gcc3d

#endif // GCC3D_CORE_DEPTH_GROUPING_H
