#include "core/sh_unit.h"

#include "sim/pipeline.h"

namespace gcc3d {

ShCost
ShUnit::batch(std::uint64_t gaussians) const
{
    ShCost c;
    c.cycles =
        ceilDiv(gaussians, static_cast<std::uint64_t>(config_->sh_ways));
    // Normalization div/sqrt + adder-tree depth.
    c.latency = static_cast<std::uint64_t>(config_->divsqrt_latency + 6);
    c.mac_ops = gaussians * kMacPerGaussian;
    return c;
}

} // namespace gcc3d
