#include "core/sort_unit.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "sim/pipeline.h"

namespace gcc3d {

SortCost
SortUnit::group(std::uint64_t n) const
{
    SortCost c;
    if (n <= 1)
        return c;

    const std::uint64_t w =
        static_cast<std::uint64_t>(config_->sorter_width);

    // Phase 1: sort ceil(n/w) chunks of w keys.  A w-wide bitonic
    // network has log2(w)*(log2(w)+1)/2 compare stages; fully
    // pipelined, a chunk enters per cycle after fill.
    std::uint64_t chunks = ceilDiv(n, w);
    std::uint64_t lg_w = static_cast<std::uint64_t>(std::bit_width(w) - 1);
    std::uint64_t net_stages = lg_w * (lg_w + 1) / 2;
    std::uint64_t phase1 = chunks + net_stages;

    // Phase 2: merge passes; each pass streams all n keys through the
    // network at w keys per cycle.
    std::uint64_t merge_passes =
        chunks > 1
            ? static_cast<std::uint64_t>(std::bit_width(chunks - 1))
            : 0;
    std::uint64_t phase2 = merge_passes * ceilDiv(n, w);

    c.cycles = phase1 + phase2;
    c.compare_ops = n * net_stages / 2 + merge_passes * n;
    return c;
}

void
SortUnit::bitonicSort(std::vector<std::pair<float, std::uint32_t>> &keys)
{
    std::size_t n = keys.size();
    if (n <= 1)
        return;

    // Pad to a power of two with +inf sentinels.
    std::size_t m = std::bit_ceil(n);
    keys.resize(m, {std::numeric_limits<float>::infinity(),
                    std::numeric_limits<std::uint32_t>::max()});

    auto less = [](const std::pair<float, std::uint32_t> &a,
                   const std::pair<float, std::uint32_t> &b) {
        if (a.first != b.first)
            return a.first < b.first;
        return a.second < b.second;
    };

    // Canonical iterative bitonic schedule: for each sub-sequence
    // size k, compare-exchange at strides j = k/2 .. 1.
    for (std::size_t k = 2; k <= m; k <<= 1) {
        for (std::size_t j = k >> 1; j > 0; j >>= 1) {
            for (std::size_t i = 0; i < m; ++i) {
                std::size_t partner = i ^ j;
                if (partner <= i)
                    continue;
                bool ascending = (i & k) == 0;
                if (less(keys[partner], keys[i]) == ascending)
                    std::swap(keys[i], keys[partner]);
            }
        }
    }
    keys.resize(n);
}

} // namespace gcc3d
