/**
 * @file
 * Stage IV hardware model: the Blending Unit (Sec. 4.5).
 *
 * An n x n FMA array updates transmittance and accumulates RGB for a
 * whole pixel block in parallel (T' = T(1-alpha); C += T alpha c).
 * Back-to-front ordering is enforced at block granularity: a later
 * Gaussian touching a block whose predecessor has not retired stalls
 * the pipeline.  The transmittance mask (T-mask) removes exhausted
 * blocks from all future alpha computation.
 */

#ifndef GCC3D_CORE_BLENDING_UNIT_H
#define GCC3D_CORE_BLENDING_UNIT_H

#include <cstdint>

#include "core/gcc_config.h"

namespace gcc3d {

/** Cycle/op cost of the blending stage. */
struct BlendCost
{
    std::uint64_t cycles = 0;
    std::uint64_t latency = 0;
    std::uint64_t fma_ops = 0;
    std::uint64_t stall_cycles = 0;  ///< ordering-hazard stalls
};

/** Stage IV blending cycle model. */
class BlendingUnit
{
  public:
    explicit BlendingUnit(const GccConfig &config) : config_(&config) {}

    /** FMAs per blended pixel: T update + 3 channel accumulates. */
    static constexpr std::uint64_t kFmaPerPixel = 4;

    /**
     * Cost of blending @p blocks dispatched blocks of which
     * @p blend_pixels pixels actually blended.
     */
    BlendCost batch(std::uint64_t blocks,
                    std::uint64_t blend_pixels) const;

  private:
    const GccConfig *config_;
};

} // namespace gcc3d

#endif // GCC3D_CORE_BLENDING_UNIT_H
