/**
 * @file
 * Stage III hardware model: the Sort Unit.
 *
 * A 16-element bitonic sorting network (the same building block
 * GSCore uses) sorts each depth group front-to-back.  Chunks of 16
 * pass through the network once; larger groups are merged with
 * log2(n/16) additional merge passes.  Because GCC sorts only within
 * groups of at most N = 256 (global order comes from Stage I), the
 * sorter is tiny (Table 4: 0.010 mm^2).
 *
 * The functional network itself is implemented bit-exactly (compare-
 * exchange schedule of the bitonic sort) so tests can validate the
 * hardware algorithm, not just std::sort.
 */

#ifndef GCC3D_CORE_SORT_UNIT_H
#define GCC3D_CORE_SORT_UNIT_H

#include <cstdint>
#include <utility>
#include <vector>

#include "core/gcc_config.h"

namespace gcc3d {

/** Cycle cost of sorting one depth group. */
struct SortCost
{
    std::uint64_t cycles = 0;
    std::uint64_t compare_ops = 0;
};

/** Stage III sorting model + functional bitonic network. */
class SortUnit
{
  public:
    explicit SortUnit(const GccConfig &config) : config_(&config) {}

    /** Cost of sorting a group of @p n keys. */
    SortCost group(std::uint64_t n) const;

    /**
     * Functional bitonic sort of (depth, id) keys, ascending by depth
     * with id tie-break — the exact order the hardware produces.
     * Works for any n (padded internally to a power of two).
     */
    static void bitonicSort(std::vector<std::pair<float, std::uint32_t>> &keys);

  private:
    const GccConfig *config_;
};

} // namespace gcc3d

#endif // GCC3D_CORE_SORT_UNIT_H
