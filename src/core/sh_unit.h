/**
 * @file
 * Stage III hardware model: the Spherical Harmonics Unit.
 *
 * One SHE (SH Element) per color channel; each way evaluates the
 * 16-term SH dot product for all three channels of one Gaussian per
 * cycle (48 MACs in a tree).  View-direction normalization reuses the
 * Projection Unit's iterative div/sqrt design.  GCC provisions a
 * single way (vs GSCore's four) because cross-stage conditional
 * processing shrinks the population needing color (Sec. 5.3).
 */

#ifndef GCC3D_CORE_SH_UNIT_H
#define GCC3D_CORE_SH_UNIT_H

#include <cstdint>

#include "core/gcc_config.h"

namespace gcc3d {

/** Cycle/op cost of shading a batch of Gaussians. */
struct ShCost
{
    std::uint64_t cycles = 0;
    std::uint64_t latency = 0;
    std::uint64_t mac_ops = 0;
};

/** Stage III SH cycle model. */
class ShUnit
{
  public:
    explicit ShUnit(const GccConfig &config) : config_(&config) {}

    /** MACs per Gaussian: 16 coefficients x 3 channels + basis. */
    static constexpr std::uint64_t kMacPerGaussian = 48 + 15;

    ShCost batch(std::uint64_t gaussians) const;

  private:
    const GccConfig *config_;
};

} // namespace gcc3d

#endif // GCC3D_CORE_SH_UNIT_H
