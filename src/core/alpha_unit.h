/**
 * @file
 * Stage IV hardware model: the Alpha Unit (Sec. 4.4).
 *
 * An n x n PE array (n = 8) evaluates one pixel block of alphas per
 * cycle: each PE computes the quadratic form through FMAs and feeds
 * the fixed-point LUT-based EXP (16 linear segments over [-5.54, 0)).
 * The Runtime Identifier walks blocks breadth-first from the block
 * containing the projected center, pruning directions whose boundary
 * alphas all fall below 1/255 and skipping blocks masked by the
 * transmittance mask.  Per-Gaussian latency is 14 cycles; 16 status
 * maps/queues are preloaded so back-to-back Gaussians keep the array
 * busy.
 */

#ifndef GCC3D_CORE_ALPHA_UNIT_H
#define GCC3D_CORE_ALPHA_UNIT_H

#include <cstdint>

#include "core/gcc_config.h"
#include "gsmath/exp_lut.h"

namespace gcc3d {

/** Cycle/op cost of the alpha stage for a batch of Gaussians. */
struct AlphaCost
{
    std::uint64_t cycles = 0;
    std::uint64_t latency = 0;
    std::uint64_t exp_ops = 0;   ///< LUT EXP evaluations
    std::uint64_t fma_ops = 0;   ///< quadratic-form FMAs
};

/** Stage IV alpha cycle model. */
class AlphaUnit
{
  public:
    explicit AlphaUnit(const GccConfig &config) : config_(&config) {}

    /** FMAs per pixel for the quadratic form d^T conic d. */
    static constexpr std::uint64_t kFmaPerPixel = 5;

    /**
     * Cost of processing @p gaussians Gaussians whose traversal
     * dispatched @p blocks pixel blocks in total.  One block per
     * cycle through the array; per-Gaussian pipeline restart cost is
     * hidden by the 16-deep preload except for very small footprints.
     */
    AlphaCost batch(std::uint64_t gaussians, std::uint64_t blocks) const;

    /** The EXP approximator shared by the functional model. */
    const ExpLut &expLut() const { return lut_; }

  private:
    const GccConfig *config_;
    ExpLut lut_;
};

} // namespace gcc3d

#endif // GCC3D_CORE_ALPHA_UNIT_H
