/**
 * @file
 * Cycle-level simulator of the GCC accelerator (Sec. 4).
 *
 * Execution per frame:
 *   - Stage I runs as a frame-global barrier: depths for ALL
 *     Gaussians (shared MVMs), hierarchical binning (RCA), id/depth
 *     spill.  In Compatibility Mode, Gaussians are additionally
 *     binned by screen position into sub-views.
 *   - Stages II-IV then stream depth groups through the pipelined
 *     Projection / Sort / SH / Alpha / Blending units.  Per group,
 *     the slowest of {DRAM, projection, sorting, SH, alpha, blending}
 *     bounds progress; groups skipped by cross-stage conditional
 *     termination cost nothing.
 *
 * The functional behaviour (the image and the exact per-group
 * activity) comes from GaussianWiseRenderer; this class turns the
 * activity trace into cycles, DRAM traffic and energy using the
 * architecture parameters of GccConfig and the Table 4 chip model.
 */

#ifndef GCC3D_CORE_GCC_SIM_H
#define GCC3D_CORE_GCC_SIM_H

#include <cstdint>

#include "core/gcc_config.h"
#include "render/gaussian_wise_renderer.h"
#include "render/image.h"
#include "sim/dram.h"
#include "sim/energy_model.h"
#include "sim/stats.h"
#include "scene/camera.h"
#include "scene/gaussian_cloud.h"

namespace gcc3d {

/** Result of simulating one frame on GCC. */
struct GccFrameResult
{
    Image image;                ///< rendered frame (functional)
    GaussianWiseStats flow;     ///< dataflow counters + group trace

    std::uint64_t stage1_cycles = 0;  ///< grouping barrier
    std::uint64_t main_cycles = 0;    ///< Stages II-IV
    std::uint64_t output_cycles = 0;  ///< final image writeback
    std::uint64_t total_cycles = 0;

    double fps = 0.0;
    EnergyBreakdown energy;

    std::uint64_t dram_bytes_3d = 0;  ///< Gaussian parameter traffic
    std::uint64_t dram_bytes_meta = 0; ///< id/depth lists, image out
    std::uint64_t dram_bytes_total = 0;

    bool cmode = false;         ///< Compatibility Mode engaged
    int subview_size = 0;       ///< sub-view side used (0 = full view)
};

/**
 * The GCC accelerator simulator.
 *
 * Thread safety: renderFrame() is logically const but records the
 * frame's stats into the instance (for lastStats()), so concurrent
 * renderFrame() calls on ONE instance race.  Instances are cheap
 * (config + chip model); use one per thread — the batch runtime
 * (SweepRunner) constructs one per job.  The GaussianCloud and Camera
 * arguments are only read and may be shared across threads.
 */
class GccSim
{
  public:
    explicit GccSim(GccConfig config = {});

    const GccConfig &config() const { return config_; }
    const ChipModel &chip() const { return chip_; }

    /** Simulate rendering one frame of @p cloud from @p cam. */
    GccFrameResult renderFrame(const GaussianCloud &cloud,
                               const Camera &cam) const;

    /**
     * Detailed named stats of the last simulated frame.  Only
     * meaningful single-threaded (see the class comment).
     */
    const StatSet &lastStats() const { return stats_; }

  private:
    GccConfig config_;
    ChipModel chip_;
    /** Written by renderFrame; the reason instances are per-thread. */
    mutable StatSet stats_;
};

} // namespace gcc3d

#endif // GCC3D_CORE_GCC_SIM_H
