#include "core/blending_unit.h"

#include <algorithm>
#include <cmath>

namespace gcc3d {

BlendCost
BlendingUnit::batch(std::uint64_t blocks, std::uint64_t blend_pixels) const
{
    BlendCost c;
    std::uint64_t pes = static_cast<std::uint64_t>(config_->blend_pes);
    std::uint64_t per_block =
        static_cast<std::uint64_t>(config_->block_size) *
        static_cast<std::uint64_t>(config_->block_size);

    std::uint64_t cycles_per_block = std::max<std::uint64_t>(
        1, per_block / std::max<std::uint64_t>(1, pes));
    c.cycles = blocks * cycles_per_block;

    // Ordering hazards: consecutive Gaussians frequently overlap near
    // the depth-sorted front, so a fraction of block dispatches wait
    // for the predecessor's writeback.
    c.stall_cycles = static_cast<std::uint64_t>(
        static_cast<double>(c.cycles) * config_->blend_stall_fraction +
        0.5);
    c.cycles += c.stall_cycles;

    c.latency = 4;  // read-modify-write of the image buffer
    c.fma_ops = blend_pixels * kFmaPerPixel;
    return c;
}

} // namespace gcc3d
