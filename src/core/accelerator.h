/**
 * @file
 * Public facade of the GCC accelerator library.
 *
 * Typical use:
 * @code
 *   gcc3d::SceneSpec spec = gcc3d::scenePreset(gcc3d::SceneId::Lego);
 *   gcc3d::GaussianCloud scene = gcc3d::generateScene(spec);
 *   gcc3d::Camera cam = gcc3d::makeCamera(spec);
 *
 *   gcc3d::GccAccelerator acc;                 // paper's design point
 *   gcc3d::GccFrameResult f = acc.render(scene, cam);
 *   // f.image, f.fps, f.energy, f.dram_bytes_total, ...
 * @endcode
 */

#ifndef GCC3D_CORE_ACCELERATOR_H
#define GCC3D_CORE_ACCELERATOR_H

#include "core/gcc_config.h"
#include "core/gcc_sim.h"
#include "sim/area_model.h"

namespace gcc3d {

/**
 * User-facing wrapper tying the simulator to its chip model.
 *
 * Thread safety: same contract as GccSim — render() records the
 * frame's stats into the wrapped simulator, so use one GccAccelerator
 * per thread (they are cheap to construct).
 */
class GccAccelerator
{
  public:
    explicit GccAccelerator(GccConfig config = {}) : sim_(config) {}

    /** Simulate one frame: image + performance + energy. */
    GccFrameResult
    render(const GaussianCloud &scene, const Camera &cam) const
    {
        return sim_.renderFrame(scene, cam);
    }

    const GccConfig &config() const { return sim_.config(); }
    const ChipModel &chip() const { return sim_.chip(); }
    const GccSim &sim() const { return sim_; }

    /** Total silicon area at this design point (mm^2, 28 nm). */
    double areaMm2() const { return sim_.chip().totalArea(); }

  private:
    GccSim sim_;
};

} // namespace gcc3d

#endif // GCC3D_CORE_ACCELERATOR_H
