#include "core/alpha_unit.h"

#include <algorithm>

namespace gcc3d {

AlphaCost
AlphaUnit::batch(std::uint64_t gaussians, std::uint64_t blocks) const
{
    AlphaCost c;
    std::uint64_t pes =
        static_cast<std::uint64_t>(config_->alpha_pes);
    std::uint64_t per_block =
        static_cast<std::uint64_t>(config_->block_size) *
        static_cast<std::uint64_t>(config_->block_size);

    // One dispatched block occupies the array for ceil(block/PEs)
    // cycles (one cycle at the nominal 64-PE / 8x8 configuration; a
    // down-scaled array in the Fig. 13b DSE takes proportionally
    // longer).
    std::uint64_t cycles_per_block =
        std::max<std::uint64_t>(1, per_block / std::max<std::uint64_t>(
                                                   1, pes));
    c.cycles = blocks * cycles_per_block;

    // Per-Gaussian restart: the 16-deep status-map preload hides the
    // 14-cycle latency while at least one block per Gaussian is in
    // flight; charge one dispatch cycle per Gaussian for the queue
    // handoff.
    c.cycles += gaussians;
    c.latency = static_cast<std::uint64_t>(config_->gaussian_latency);

    c.exp_ops = blocks * per_block;
    c.fma_ops = blocks * per_block * kFmaPerPixel;
    return c;
}

} // namespace gcc3d
