#include "core/depth_grouping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/pipeline.h"

namespace gcc3d {

namespace {

/** Recursively subdivide one bin until it fits the group capacity. */
void
subdivide(std::vector<std::uint32_t> &&members,
          std::vector<float> &&depths, std::size_t cap,
          std::vector<DepthGroup> &out)
{
    if (members.size() <= cap) {
        if (members.empty())
            return;
        DepthGroup g;
        g.depth_lo = *std::min_element(depths.begin(), depths.end());
        g.depth_hi = *std::max_element(depths.begin(), depths.end());
        g.members = std::move(members);
        out.push_back(std::move(g));
        return;
    }

    // Median split on depth (the RCA's recursive pivot refinement).
    std::vector<std::size_t> order(members.size());
    std::iota(order.begin(), order.end(), 0u);
    std::size_t mid = order.size() / 2;
    std::nth_element(order.begin(), order.begin() + mid, order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (depths[a] != depths[b])
                             return depths[a] < depths[b];
                         return members[a] < members[b];
                     });

    std::vector<std::uint32_t> lo_m, hi_m;
    std::vector<float> lo_d, hi_d;
    lo_m.reserve(mid);
    hi_m.reserve(order.size() - mid);
    lo_d.reserve(mid);
    hi_d.reserve(order.size() - mid);
    for (std::size_t k = 0; k < order.size(); ++k) {
        std::size_t i = order[k];
        if (k < mid) {
            lo_m.push_back(members[i]);
            lo_d.push_back(depths[i]);
        } else {
            hi_m.push_back(members[i]);
            hi_d.push_back(depths[i]);
        }
    }
    subdivide(std::move(lo_m), std::move(lo_d), cap, out);
    subdivide(std::move(hi_m), std::move(hi_d), cap, out);
}

} // namespace

std::vector<DepthGroup>
hierarchicalGroups(const std::vector<float> &depths,
                   const std::vector<std::uint32_t> &ids,
                   int group_capacity, int coarse_bins)
{
    std::vector<DepthGroup> groups;
    if (ids.empty())
        return groups;

    float d_min = *std::min_element(depths.begin(), depths.end());
    float d_max = *std::max_element(depths.begin(), depths.end());
    float span = std::max(d_max - d_min, 1e-6f);

    // Coarse pass: uniform bins across the depth range.
    std::vector<std::vector<std::uint32_t>> bin_members(
        static_cast<std::size_t>(coarse_bins));
    std::vector<std::vector<float>> bin_depths(
        static_cast<std::size_t>(coarse_bins));
    for (std::size_t i = 0; i < ids.size(); ++i) {
        int b = static_cast<int>((depths[i] - d_min) / span *
                                 static_cast<float>(coarse_bins));
        b = std::clamp(b, 0, coarse_bins - 1);
        bin_members[static_cast<std::size_t>(b)].push_back(ids[i]);
        bin_depths[static_cast<std::size_t>(b)].push_back(depths[i]);
    }

    // Accurate pass: subdivide over-full bins.
    std::size_t cap = static_cast<std::size_t>(group_capacity);
    for (int b = 0; b < coarse_bins; ++b) {
        subdivide(std::move(bin_members[static_cast<std::size_t>(b)]),
                  std::move(bin_depths[static_cast<std::size_t>(b)]),
                  cap, groups);
    }
    return groups;
}

StageICost
DepthGroupingUnit::cost(std::uint64_t total_gaussians,
                        std::uint64_t survivors,
                        double bytes_per_cycle) const
{
    StageICost c;

    // Four parallel MVMs compute one depth per cycle each.
    c.mvm_cycles = ceilDiv(
        total_gaussians, static_cast<std::uint64_t>(config_->mvm_units));

    // The RCA compares rca_units depths per cycle per pass (coarse
    // binning, then accurate subdivision).
    c.rca_cycles = ceilDiv(total_gaussians *
                               static_cast<std::uint64_t>(
                                   config_->rca_passes),
                           static_cast<std::uint64_t>(config_->rca_units));

    // Traffic: read every mean; spill and re-read (id, depth) records
    // of the survivors via the shared buffer.
    c.mem_bytes =
        total_gaussians * static_cast<std::uint64_t>(config_->mean_bytes) +
        2 * survivors * static_cast<std::uint64_t>(config_->id_depth_bytes);
    c.mem_cycles = static_cast<std::uint64_t>(
        static_cast<double>(c.mem_bytes) / bytes_per_cycle + 0.5);

    // Depth compute and binning overlap with the streaming reads; the
    // frame cannot proceed until all three complete (global barrier).
    c.total_cycles =
        std::max({c.mvm_cycles, c.rca_cycles, c.mem_cycles});
    return c;
}

} // namespace gcc3d
