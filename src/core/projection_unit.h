/**
 * @file
 * Stage II hardware model: the Projection Unit (Sec. 4.3).
 *
 * Three cooperating blocks per way:
 *  - PPU (Position Projection Unit): view transform of the mean via
 *    three parallel MVM lanes, then NDC/pixel conversion through a
 *    4-cycle iterative fused divide/sqrt unit; four such units are
 *    interleaved so one Gaussian completes per cycle per way.
 *  - RU (Reconstruction Unit): decodes (s, q) into the 3D covariance
 *    and builds the Jacobian; feeds the shared MVM for
 *    Sigma' = J W Sigma W^T J^T.
 *  - SCU (Screen Culling Unit): applies the omega-sigma law (Eq. 8)
 *    and prunes off-screen Gaussians.
 *
 * Throughput: projection_ways Gaussians per cycle, sustained; the
 * per-way latency is the div/sqrt chain plus the MVM cascade.
 */

#ifndef GCC3D_CORE_PROJECTION_UNIT_H
#define GCC3D_CORE_PROJECTION_UNIT_H

#include <cstdint>

#include "core/gcc_config.h"

namespace gcc3d {

/** Cycle/op cost of projecting a batch of Gaussians. */
struct ProjectionCost
{
    std::uint64_t cycles = 0;    ///< occupancy for the batch
    std::uint64_t latency = 0;   ///< fill latency of the unit
    std::uint64_t fma_ops = 0;   ///< FMA operations issued
    std::uint64_t divsqrt_ops = 0;
};

/** Stage II cycle model. */
class ProjectionUnit
{
  public:
    explicit ProjectionUnit(const GccConfig &config) : config_(&config) {}

    /** Per-Gaussian FMA work of Eq. 1 (reconstruction + projection). */
    static constexpr std::uint64_t kFmaPerGaussian =
        9 +   // quaternion decode -> R
        27 +  // R * S and (RS)(RS)^T upper triangle
        6 +   // Jacobian terms
        45 +  // J W Sigma W^T J^T cascade
        12 +  // view transform + pixel conversion
        8;    // omega-sigma radius / screen test

    /**
     * Cost of projecting @p gaussians Gaussians.
     */
    ProjectionCost batch(std::uint64_t gaussians) const;

  private:
    const GccConfig *config_;
};

} // namespace gcc3d

#endif // GCC3D_CORE_PROJECTION_UNIT_H
