#include "core/projection_unit.h"

#include "sim/pipeline.h"

namespace gcc3d {

ProjectionCost
ProjectionUnit::batch(std::uint64_t gaussians) const
{
    ProjectionCost c;
    // One Gaussian per cycle per way in steady state: the four
    // interleaved div/sqrt units hide their 4-cycle latency.
    c.cycles = ceilDiv(gaussians,
                       static_cast<std::uint64_t>(
                           config_->projection_ways));
    // Fill: MVM cascade (3 chained multiplies) + div/sqrt chain.
    c.latency = static_cast<std::uint64_t>(3 * 4 +
                                           config_->divsqrt_latency * 2);
    c.fma_ops = gaussians * kFmaPerGaussian;
    c.divsqrt_ops = gaussians * 3;  // 1/z, 1/z^2 path, radius sqrt
    return c;
}

} // namespace gcc3d
