/**
 * @file
 * Architectural parameters of the GCC accelerator (Sec. 4, Table 4).
 */

#ifndef GCC3D_CORE_GCC_CONFIG_H
#define GCC3D_CORE_GCC_CONFIG_H

#include "sim/area_model.h"
#include "sim/dram.h"

namespace gcc3d {

/** Dataflow ablation points (Fig. 11). */
enum class GccMode
{
    GaussianWise,    ///< GW only: no cross-stage conditional skipping
    GaussianWiseCC,  ///< GW + CC: the full GCC dataflow
};

/** Configuration of the GCC cycle model. */
struct GccConfig
{
    double clock_ghz = 1.0;
    GccMode mode = GccMode::GaussianWiseCC;

    // ---- Stage I: grouping. ----
    int group_capacity = 256;      ///< N, max Gaussians per depth group
    float depth_pivot = 0.2f;      ///< Z-axis cull pivot
    int mvm_units = 4;             ///< parallel MVMs for depth compute
    int rca_units = 4;             ///< comparator array width
    int rca_passes = 2;            ///< coarse + accurate grouping passes

    // ---- Stage II: projection. ----
    int projection_ways = 2;       ///< PPU+RU+SCU instances
    int divsqrt_latency = 4;       ///< iterative fused div/sqrt unit

    // ---- Stage III: color + sort. ----
    int sh_ways = 1;               ///< SHE triples (RGB per way)
    int sorter_width = 16;         ///< bitonic network width

    // ---- Stage IV: alpha + blending. ----
    int block_size = 8;            ///< n: PE array is n x n
    int alpha_pes = 64;            ///< 8 x 8
    int blend_pes = 64;
    int gaussian_latency = 14;     ///< per-Gaussian Alpha Unit latency
    int preload_depth = 16;        ///< status maps/queues kept on chip
    float termination_t = 1e-4f;   ///< per-pixel termination threshold
    /** Fraction of Alpha Unit cycles lost to blend-ordering stalls. */
    double blend_stall_fraction = 0.05;

    // ---- Memory system. ----
    double image_buffer_kb = 128.0; ///< on-chip image buffer capacity
    int subview_size = 0;          ///< Cmode sub-view side; 0 = auto
    DramConfig dram = DramConfig::lpddr4_3200();

    /** Bytes loaded per Gaussian for Stage I depth (mean only). */
    int mean_bytes = 12;
    /** Bytes loaded per Gaussian for Stage II (geometry, 11 floats). */
    int geom_bytes = 44;
    /** Bytes loaded per Gaussian for Stage III (48 SH floats). */
    int sh_bytes = 192;
    /** Bytes per (id, depth) record spilled after grouping. */
    int id_depth_bytes = 8;

    /** Design-point view used by the area/power model. */
    GccDesignPoint
    designPoint() const
    {
        GccDesignPoint dp;
        dp.alpha_pes = alpha_pes;
        dp.blend_pes = blend_pes;
        dp.projection_ways = projection_ways;
        dp.sh_ways = sh_ways;
        dp.rca_units = rca_units;
        dp.image_buffer_kb = image_buffer_kb;
        return dp;
    }

    /**
     * Pixels the on-chip image buffer can hold (8 bytes per pixel:
     * fp16 RGB accumulators + fp16 transmittance), matching the
     * paper's 128 KB buffer <-> 128x128 sub-view pairing.
     */
    std::int64_t
    imageBufferPixels() const
    {
        return static_cast<std::int64_t>(image_buffer_kb * 1024.0 / 8.0);
    }

    /**
     * Copy with degenerate structural parameters clamped to their
     * smallest legal values (group capacity and PE-array side of at
     * least 1, non-negative sub-view size).  GccSim applies this on
     * construction, so a zero-capacity sweep point degrades to
     * single-Gaussian groups instead of wedging Stage I.
     */
    GccConfig
    validated() const
    {
        GccConfig c = *this;
        if (c.group_capacity < 1)
            c.group_capacity = 1;
        if (c.block_size < 1)
            c.block_size = 1;
        if (c.subview_size < 0)
            c.subview_size = 0;
        return c;
    }
};

} // namespace gcc3d

#endif // GCC3D_CORE_GCC_CONFIG_H
