#include "lod/lod_builder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

namespace gcc3d {

namespace {

/**
 * Cyclic Jacobi eigensolver for a symmetric 3x3 matrix, in double so
 * that near-degenerate covariances (thin splats merged along a line)
 * still come out with an orthogonal eigenbasis.  On return @p a is
 * (numerically) diagonal — the eigenvalues — and the columns of @p v
 * are the corresponding eigenvectors.
 */
void
jacobiEigen3(double a[3][3], double v[3][3])
{
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            v[i][j] = (i == j) ? 1.0 : 0.0;

    for (int sweep = 0; sweep < 32; ++sweep) {
        double off = std::fabs(a[0][1]) + std::fabs(a[0][2]) +
                     std::fabs(a[1][2]);
        if (off < 1e-30)
            break;
        for (int p = 0; p < 2; ++p) {
            for (int q = p + 1; q < 3; ++q) {
                if (std::fabs(a[p][q]) < 1e-300)
                    continue;
                double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;
                for (int k = 0; k < 3; ++k) {
                    double akp = a[k][p], akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for (int k = 0; k < 3; ++k) {
                    double apk = a[p][k], aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for (int k = 0; k < 3; ++k) {
                    double vkp = v[k][p], vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
}

/**
 * Rotation matrix (columns = orthonormal basis) to quaternion,
 * Shepperd's method: branch on the largest diagonal term so the
 * divisor is always well away from zero.
 */
Quat
quatFromMatrix(const Mat3 &r)
{
    float t = r(0, 0) + r(1, 1) + r(2, 2);
    Quat q;
    if (t > 0.0f) {
        float s = std::sqrt(t + 1.0f) * 2.0f;
        q.w = 0.25f * s;
        q.x = (r(2, 1) - r(1, 2)) / s;
        q.y = (r(0, 2) - r(2, 0)) / s;
        q.z = (r(1, 0) - r(0, 1)) / s;
    } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
        float s = std::sqrt(1.0f + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0f;
        q.w = (r(2, 1) - r(1, 2)) / s;
        q.x = 0.25f * s;
        q.y = (r(0, 1) + r(1, 0)) / s;
        q.z = (r(0, 2) + r(2, 0)) / s;
    } else if (r(1, 1) > r(2, 2)) {
        float s = std::sqrt(1.0f + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0f;
        q.w = (r(0, 2) - r(2, 0)) / s;
        q.x = (r(0, 1) + r(1, 0)) / s;
        q.y = 0.25f * s;
        q.z = (r(1, 2) + r(2, 1)) / s;
    } else {
        float s = std::sqrt(1.0f + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0f;
        q.w = (r(1, 0) - r(0, 1)) / s;
        q.x = (r(0, 2) + r(2, 0)) / s;
        q.y = (r(1, 2) + r(2, 1)) / s;
        q.z = 0.25f * s;
    }
    return q.normalized();
}

/** Mean cross-sectional area (up to the constant pi/3 factor). */
float
meanArea(const Vec3 &s)
{
    return s.x * s.y + s.y * s.z + s.z * s.x;
}

/** Grid dimensions whose cell count approximates @p cells over the box. */
void
gridDims(const Vec3 &lo, const Vec3 &hi, std::size_t cells, int dims[3])
{
    Vec3 ext(std::max(hi.x - lo.x, 1e-6f), std::max(hi.y - lo.y, 1e-6f),
             std::max(hi.z - lo.z, 1e-6f));
    double vol = static_cast<double>(ext.x) * ext.y * ext.z;
    double h = std::cbrt(vol / static_cast<double>(std::max<std::size_t>(
                                   cells, 1)));
    const float e[3] = {ext.x, ext.y, ext.z};
    for (int i = 0; i < 3; ++i) {
        dims[i] = static_cast<int>(std::ceil(e[i] / h));
        dims[i] = std::clamp(dims[i], 1, 1024);
    }
}

/** Flat cell index of @p p in the [@p lo, @p hi] grid, clamped inside. */
std::uint64_t
cellKey(const Vec3 &p, const Vec3 &lo, const Vec3 &hi, const int dims[3])
{
    const float pv[3] = {p.x, p.y, p.z};
    const float lov[3] = {lo.x, lo.y, lo.z};
    const float hiv[3] = {hi.x, hi.y, hi.z};
    std::uint64_t key = 0;
    for (int i = 0; i < 3; ++i) {
        float span = std::max(hiv[i] - lov[i], 1e-6f);
        int c = static_cast<int>((pv[i] - lov[i]) / span *
                                 static_cast<float>(dims[i]));
        c = std::clamp(c, 0, dims[i] - 1);
        key = key * static_cast<std::uint64_t>(dims[i]) +
              static_cast<std::uint64_t>(c);
    }
    return key;
}

/** AABB of the means of @p gs (assumed non-empty). */
void
meanBounds(const std::vector<Gaussian> &gs, Vec3 &lo, Vec3 &hi)
{
    lo = hi = gs.front().mean;
    for (const Gaussian &g : gs) {
        lo = lo.cwiseMin(g.mean);
        hi = hi.cwiseMax(g.mean);
    }
}

/**
 * Build the per-chunk proxy pyramid: level 1 merges the leaves
 * ~proxy_base:1, each further level re-merges the previous one 8:1.
 * Every level of a non-empty chunk has at least one proxy.
 */
std::vector<std::vector<Gaussian>>
buildPyramid(const std::vector<Gaussian> &leaves, const Vec3 &lo,
             const Vec3 &hi, const LodBuildConfig &config)
{
    std::vector<std::vector<Gaussian>> pyramid;
    pyramid.reserve(static_cast<std::size_t>(config.proxy_levels));
    const std::vector<Gaussian> *prev = &leaves;
    std::size_t target =
        std::max<std::size_t>(leaves.size() /
                                  std::max<std::size_t>(config.proxy_base, 2),
                              1);
    for (int level = 0; level < config.proxy_levels; ++level) {
        pyramid.push_back(buildProxyLevel(*prev, lo, hi, target));
        prev = &pyramid.back();
        target = std::max<std::size_t>(target / 8, 1);
    }
    return pyramid;
}

/** Finish a buffered cell into a chunk draft and write it. */
bool
flushCell(GscV2Writer &writer, std::vector<std::uint32_t> &&indices,
          std::vector<Gaussian> &&gaussians, const LodBuildConfig &config)
{
    if (gaussians.empty())
        return true;
    GscChunkDraft draft;
    draft.indices = std::move(indices);
    draft.gaussians = std::move(gaussians);
    meanBounds(draft.gaussians, draft.lo, draft.hi);
    draft.proxies =
        buildPyramid(draft.gaussians, draft.lo, draft.hi, config);
    return writer.writeChunk(draft);
}

} // namespace

Gaussian
mergeGaussians(const std::vector<Gaussian> &src,
               const std::uint32_t *members, std::size_t count)
{
    if (count == 1)
        return src[members[0]];

    // First moment pass: weights and the weighted mean.
    double wsum = 0.0;
    double mu[3] = {0, 0, 0};
    for (std::size_t i = 0; i < count; ++i) {
        const Gaussian &g = src[members[i]];
        double w = static_cast<double>(g.opacity) *
                   std::max(meanArea(g.scale), 1e-20f);
        wsum += w;
        mu[0] += w * g.mean.x;
        mu[1] += w * g.mean.y;
        mu[2] += w * g.mean.z;
    }
    bool degenerate = !(wsum > 0.0) || !std::isfinite(wsum);
    if (degenerate)
        wsum = static_cast<double>(count);

    Gaussian out;
    double m2[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
    double sh[kShCoeffsTotal] = {};
    double opacity_area = 0.0;

    auto accumulate = [&](const Gaussian &g, double w) {
        double m[3] = {g.mean.x, g.mean.y, g.mean.z};
        Mat3 cov = g.covariance3d();
        for (int r = 0; r < 3; ++r)
            for (int c = 0; c < 3; ++c)
                m2[r][c] +=
                    w * (static_cast<double>(cov(static_cast<size_t>(r),
                                                 static_cast<size_t>(c))) +
                         m[r] * m[c]);
        for (std::size_t k = 0; k < kShCoeffsTotal; ++k)
            sh[k] += w * static_cast<double>(g.sh[k]);
        opacity_area += static_cast<double>(g.opacity) *
                        std::max(meanArea(g.scale), 1e-20f);
    };

    if (degenerate) {
        mu[0] = mu[1] = mu[2] = 0.0;
        for (std::size_t i = 0; i < count; ++i) {
            const Gaussian &g = src[members[i]];
            mu[0] += g.mean.x;
            mu[1] += g.mean.y;
            mu[2] += g.mean.z;
        }
    }
    for (int k = 0; k < 3; ++k)
        mu[k] /= wsum;

    for (std::size_t i = 0; i < count; ++i) {
        const Gaussian &g = src[members[i]];
        double w = degenerate ? 1.0
                              : static_cast<double>(g.opacity) *
                                    std::max(meanArea(g.scale), 1e-20f);
        accumulate(g, w);
    }

    // Second moment of the mixture: law of total covariance.
    for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c)
            m2[r][c] = m2[r][c] / wsum - mu[r] * mu[c];
    // Symmetrize against fp drift before the eigensolve.
    for (int r = 0; r < 3; ++r)
        for (int c = r + 1; c < 3; ++c) {
            double s = 0.5 * (m2[r][c] + m2[c][r]);
            m2[r][c] = m2[c][r] = s;
        }

    double evec[3][3];
    jacobiEigen3(m2, evec);
    // Right-handed eigenbasis so the quaternion conversion is valid.
    double det =
        evec[0][0] * (evec[1][1] * evec[2][2] - evec[1][2] * evec[2][1]) -
        evec[0][1] * (evec[1][0] * evec[2][2] - evec[1][2] * evec[2][0]) +
        evec[0][2] * (evec[1][0] * evec[2][1] - evec[1][1] * evec[2][0]);
    if (det < 0.0)
        for (int r = 0; r < 3; ++r)
            evec[r][2] = -evec[r][2];

    out.mean = Vec3(static_cast<float>(mu[0]), static_cast<float>(mu[1]),
                    static_cast<float>(mu[2]));
    out.scale =
        Vec3(static_cast<float>(std::sqrt(std::max(m2[0][0], 1e-12))),
             static_cast<float>(std::sqrt(std::max(m2[1][1], 1e-12))),
             static_cast<float>(std::sqrt(std::max(m2[2][2], 1e-12))));
    Mat3 rot(static_cast<float>(evec[0][0]), static_cast<float>(evec[0][1]),
             static_cast<float>(evec[0][2]), static_cast<float>(evec[1][0]),
             static_cast<float>(evec[1][1]), static_cast<float>(evec[1][2]),
             static_cast<float>(evec[2][0]), static_cast<float>(evec[2][1]),
             static_cast<float>(evec[2][2]));
    out.rotation = quatFromMatrix(rot);

    for (std::size_t k = 0; k < kShCoeffsTotal; ++k)
        out.sh[k] = static_cast<float>(sh[k] / wsum);

    // Conserve total opacity x area: the proxy covers the members'
    // aggregate footprint, so its opacity is their opacity-area sum
    // over its own area.
    float proxy_area = std::max(meanArea(out.scale), 1e-20f);
    out.opacity = std::clamp(
        static_cast<float>(opacity_area / static_cast<double>(proxy_area)),
        0.02f, 0.99f);
    return out;
}

std::vector<Gaussian>
buildProxyLevel(const std::vector<Gaussian> &src, const Vec3 &lo,
                const Vec3 &hi, std::size_t target)
{
    std::vector<Gaussian> out;
    if (src.empty())
        return out;

    // std::map keeps cell iteration (and so proxy order) deterministic.
    // Real scenes are clustered, so a grid sized for uniform density
    // leaves most cells empty and merges whole clusters into single
    // proxies; refine the requested cell count by the observed
    // occupancy until the populated count approaches the target.
    const std::size_t want = std::max<std::size_t>(target, 1);
    std::map<std::uint64_t, std::vector<std::uint32_t>> cells;
    double request = static_cast<double>(want);
    for (int iter = 0;; ++iter) {
        int dims[3];
        gridDims(lo, hi, static_cast<std::size_t>(request), dims);
        cells.clear();
        for (std::size_t i = 0; i < src.size(); ++i)
            cells[cellKey(src[i].mean, lo, hi, dims)].push_back(
                static_cast<std::uint32_t>(i));
        if (iter >= 3 || cells.size() * 3 >= want * 2 ||
            cells.size() >= src.size() || request >= 1e9)
            break;
        request *= static_cast<double>(want) /
                   static_cast<double>(cells.size());
    }

    out.reserve(cells.size());
    for (const auto &cell : cells)
        out.push_back(
            mergeGaussians(src, cell.second.data(), cell.second.size()));
    return out;
}

bool
buildLodFile(const GaussianCloud &cloud, const std::string &path,
             const LodBuildConfig &config)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return false;
    GscV2Writer writer(os, cloud.name(), config.proxy_levels,
                       config.quantize);

    if (!cloud.empty()) {
        Vec3 lo, hi;
        cloud.bounds(lo, hi);
        int dims[3];
        std::size_t cells =
            std::max<std::size_t>(cloud.size() /
                                      std::max<std::size_t>(
                                          config.chunk_target, 1),
                                  1);
        gridDims(lo, hi, cells, dims);

        std::map<std::uint64_t, std::vector<std::uint32_t>> buckets;
        for (std::size_t i = 0; i < cloud.size(); ++i)
            buckets[cellKey(cloud[i].mean, lo, hi, dims)].push_back(
                static_cast<std::uint32_t>(i));

        for (auto &bucket : buckets) {
            std::vector<Gaussian> gs;
            gs.reserve(bucket.second.size());
            for (std::uint32_t idx : bucket.second)
                gs.push_back(cloud[idx]);
            if (!flushCell(writer, std::move(bucket.second), std::move(gs),
                           config))
                return false;
        }
    }
    return writer.finish() && static_cast<bool>(os);
}

bool
buildLodFileStreamed(const SceneSpec &spec, std::uint64_t count,
                     const std::string &path, const LodBuildConfig &config)
{
    std::size_t batch = std::max<std::size_t>(config.stream_batch, 1024);

    // Pass 1: bounds of the means, one batch in memory at a time.
    Vec3 lo(0, 0, 0), hi(0, 0, 0);
    bool first = true;
    for (std::uint64_t begin = 0; begin < count; begin += batch) {
        std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(batch, count - begin));
        GaussianCloud part = generateSceneBatch(spec, begin, n);
        Vec3 plo, phi;
        part.bounds(plo, phi);
        if (first) {
            lo = plo;
            hi = phi;
            first = false;
        } else {
            lo = lo.cwiseMin(plo);
            hi = hi.cwiseMax(phi);
        }
    }

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return false;
    GscV2Writer writer(os, spec.name, config.proxy_levels, config.quantize);
    if (count == 0)
        return writer.finish() && static_cast<bool>(os);

    int dims[3];
    gridDims(lo, hi,
             std::max<std::uint64_t>(
                 count / std::max<std::size_t>(config.chunk_target, 1), 1),
             dims);

    // Pass 2: regenerate, bucket into grid cells, and flush the fullest
    // cell whenever the total buffered population exceeds flush_cap.
    // A cell flushed early simply yields several chunks for its region.
    struct Cell
    {
        std::vector<std::uint32_t> indices;
        std::vector<Gaussian> gaussians;
    };
    std::map<std::uint64_t, Cell> cells;
    std::size_t buffered = 0;

    for (std::uint64_t begin = 0; begin < count; begin += batch) {
        std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(batch, count - begin));
        GaussianCloud part = generateSceneBatch(spec, begin, n);
        for (std::size_t i = 0; i < part.size(); ++i) {
            Cell &cell = cells[cellKey(part[i].mean, lo, hi, dims)];
            cell.indices.push_back(static_cast<std::uint32_t>(begin + i));
            cell.gaussians.push_back(part[i]);
            ++buffered;
        }
        while (buffered > std::max<std::size_t>(config.flush_cap, batch)) {
            auto largest = cells.begin();
            for (auto it = cells.begin(); it != cells.end(); ++it)
                if (it->second.gaussians.size() >
                    largest->second.gaussians.size())
                    largest = it;
            buffered -= largest->second.gaussians.size();
            if (!flushCell(writer, std::move(largest->second.indices),
                           std::move(largest->second.gaussians), config))
                return false;
            cells.erase(largest);
        }
    }
    for (auto &cell : cells)
        if (!flushCell(writer, std::move(cell.second.indices),
                       std::move(cell.second.gaussians), config))
            return false;
    return writer.finish() && static_cast<bool>(os);
}

} // namespace gcc3d
