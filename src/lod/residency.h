/**
 * @file
 * Budgeted leaf-chunk residency for .gsc v2 LOD scenes.
 *
 * The proxy pyramid of a v2 file is small and always resident; the
 * leaf chunks — the bulk of a large scene — stay on disk until a
 * frame's LOD cut needs them.  ResidencyManager faults leaf chunks in
 * on demand, keeps them in a strict-LRU cache, and evicts oldest-first
 * so that cached decoded bytes never exceed an explicit budget.
 *
 * Two properties matter beyond plain caching:
 *
 *  - Handouts are shared_ptr: eviction only drops the cache's
 *    reference, so a chunk a frame is still rendering from is never
 *    pulled out from under it (its memory is freed when the last
 *    frame releases it — the budget bounds *cached* bytes).
 *  - A chunk larger than the whole budget is decoded as a *transient*
 *    load: returned to the caller but never cached.  Which chunks a
 *    cut renders therefore depends only on the camera, never on cache
 *    state — the serving layer's "scheduling never changes pixels"
 *    checksum guarantee survives budget pressure.
 */

#ifndef GCC3D_LOD_RESIDENCY_H
#define GCC3D_LOD_RESIDENCY_H

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/fault_hooks.h"
#include "obs/metrics_registry.h"
#include "obs/perf_recorder.h"
#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"
#include "scene/gaussian.h"

namespace gcc3d {

/** A decoded leaf chunk held by the residency cache. */
struct ResidentChunk
{
    std::vector<Gaussian> gaussians;
    std::vector<std::uint32_t> indices;  ///< original scene indices

    /** Decoded size accounted against the budget (fp32 records). */
    std::size_t
    bytes() const
    {
        return gaussians.size() * Gaussian::kTotalBytes;
    }
};

/**
 * LRU cache of decoded leaf chunks under a hard byte budget.
 *
 * Thread-safe: concurrent acquire() calls from serving sessions are
 * serialized internally.  Eviction order is deterministic for a fixed
 * access sequence (strict LRU, ties impossible by construction).
 */
class ResidencyManager
{
  public:
    /** Counters for benches and tests (monotonic except resident_*). */
    struct Stats
    {
        std::uint64_t faults = 0;           ///< chunk decodes (cache misses)
        std::uint64_t hits = 0;             ///< cache hits
        std::uint64_t evictions = 0;        ///< chunks dropped by LRU
        std::uint64_t transient_loads = 0;  ///< over-budget, never cached
        std::uint64_t pressure_events = 0;  ///< injected budget squeezes
        std::size_t resident_bytes = 0;     ///< currently cached bytes
        std::size_t peak_resident_bytes = 0;
    };

    /**
     * @param budget_bytes hard ceiling on cached decoded bytes; 0
     *        disables caching entirely (every load is transient).
     */
    explicit ResidencyManager(std::size_t budget_bytes)
        : budget_(budget_bytes),
          obs_hits_(obs::MetricsRegistry::global().counter(
              "lod.residency.hits")),
          obs_faults_(obs::MetricsRegistry::global().counter(
              "lod.residency.faults")),
          obs_evictions_(obs::MetricsRegistry::global().counter(
              "lod.residency.evictions")),
          obs_transient_(obs::MetricsRegistry::global().counter(
              "lod.residency.transient_loads")),
          obs_pressure_(obs::MetricsRegistry::global().counter(
              "lod.residency.pressure_events"))
    {
    }

    /**
     * Return chunk @p index, decoding it via @p loader on a miss.
     * The loader must fill the ResidentChunk it is given and is called
     * outside no other lock than the manager's own.
     */
    template <typename Loader>
    std::shared_ptr<const ResidentChunk>
    acquire(std::size_t index, Loader &&loader)
    {
        {
            MutexLock lock(mutex_);
            auto it = map_.find(index);
            if (it != map_.end()) {
                ++stats_.hits;
                obs_hits_.add();
                // Move to the back of the recency list (most recent).
                lru_.splice(lru_.end(), lru_, it->second.lru_it);
                return it->second.chunk;
            }
        }

        auto chunk = std::make_shared<ResidentChunk>();
        {
            obs::PerfScope decode_scope(obs::Stage::ChunkDecode);
            loader(*chunk);
        }

        // Chaos hook: an injected budget squeeze shrinks the budget
        // this load caches under — extra evictions, possibly a
        // transient load, but the hard budget_ ceiling (and which
        // chunks a cut renders) is never exceeded or changed.
        // Probed outside the lock; pure in (seed, index).
        std::size_t effective_budget = budget_;
        const obs::FaultAction pressure = obs::faultAt(
            obs::FaultSite::BudgetPressure,
            static_cast<std::uint64_t>(index));
        if (pressure.inject)
            effective_budget = static_cast<std::size_t>(
                static_cast<double>(budget_) *
                std::clamp(pressure.magnitude, 0.0, 1.0));

        MutexLock lock(mutex_);
        ++stats_.faults;
        obs_faults_.add();
        if (pressure.inject) {
            ++stats_.pressure_events;
            obs_pressure_.add();
        }
        auto it = map_.find(index);
        if (it != map_.end()) {
            // Another thread decoded it while we did; keep theirs.
            lru_.splice(lru_.end(), lru_, it->second.lru_it);
            return it->second.chunk;
        }
        if (chunk->bytes() > effective_budget) {
            ++stats_.transient_loads;
            obs_transient_.add();
            return chunk;
        }
        while (!lru_.empty() &&
               stats_.resident_bytes + chunk->bytes() > effective_budget)
            evictOldestLocked();
        lru_.push_back(index);
        map_[index] = Entry{chunk, std::prev(lru_.end())};
        stats_.resident_bytes += chunk->bytes();
        stats_.peak_resident_bytes =
            std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
        return chunk;
    }

    /** Drop every cached chunk (outstanding handouts stay valid). */
    void
    clear()
    {
        MutexLock lock(mutex_);
        while (!lru_.empty())
            evictOldestLocked();
    }

    std::size_t budgetBytes() const { return budget_; }

    Stats
    stats() const
    {
        MutexLock lock(mutex_);
        return stats_;
    }

  private:
    struct Entry
    {
        std::shared_ptr<const ResidentChunk> chunk;
        std::list<std::size_t>::iterator lru_it;
    };

    void
    evictOldestLocked() REQUIRES(mutex_)
    {
        auto it = map_.find(lru_.front());
        stats_.resident_bytes -= it->second.chunk->bytes();
        ++stats_.evictions;
        obs_evictions_.add();
        map_.erase(it);
        lru_.pop_front();
    }

    std::size_t budget_;  ///< immutable after construction

    /** Registry mirrors of stats_, cached at construction (lock-free
     *  updates; no-ops when observability is compiled out). */
    obs::Counter &obs_hits_;
    obs::Counter &obs_faults_;
    obs::Counter &obs_evictions_;
    obs::Counter &obs_transient_;
    obs::Counter &obs_pressure_;

    mutable Mutex mutex_;
    /** front = oldest, back = most recent. */
    std::list<std::size_t> lru_ GUARDED_BY(mutex_);
    std::unordered_map<std::size_t, Entry> map_ GUARDED_BY(mutex_);
    Stats stats_ GUARDED_BY(mutex_);
};

} // namespace gcc3d

#endif // GCC3D_LOD_RESIDENCY_H
