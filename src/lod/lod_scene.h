/**
 * @file
 * A .gsc v2 LOD scene opened for rendering under a memory budget.
 *
 * LodScene glues the three pieces of the LOD subsystem together: the
 * GscV2Reader (chunk directory + always-resident proxy pyramid), the
 * camera-distance cut selector, and the budgeted ResidencyManager for
 * leaf chunks.  A *cut* is a per-frame GaussianCloud that renders
 * each chunk at exactly one level: leaves (level 0) when the chunk
 * subtends a large enough angle from the camera, a proxy level
 * otherwise.  Coarser chunks contribute proxies already in RAM;
 * level-0 chunks fault their leaves in through the residency cache.
 *
 * The cut depends only on the camera and the cut parameters — never
 * on cache state (over-budget chunks load transiently rather than
 * being skipped) — so two sessions with equal cameras render
 * identical pixels regardless of budget or access history.
 */

#ifndef GCC3D_LOD_LOD_SCENE_H
#define GCC3D_LOD_LOD_SCENE_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "lod/residency.h"
#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"
#include "scene/camera.h"
#include "scene/gaussian_cloud.h"
#include "scene/scene_io.h"

namespace gcc3d {

/** Per-frame LOD cut selection parameters. */
struct LodCutParams
{
    /**
     * Angular threshold (radians): a chunk whose AABB diagonal
     * subtends at least tau from the camera renders its leaves;
     * smaller chunks drop one proxy level per halving below tau.
     */
    float tau = 0.08f;

    /** Multiplier on the subtended angle (>1 biases toward leaves). */
    float bias = 1.0f;

    /**
     * Force every chunk to one level (0 = leaves, k = proxy level k,
     * clamped to the file's depth); -1 = distance-based selection.
     * The per-level PSNR benchmark uses this to isolate levels.
     */
    int force_level = -1;
};

/** What a single buildCut() selected (for benches and tests). */
struct LodCutStats
{
    std::size_t leaf_chunks = 0;      ///< chunks rendered at level 0
    std::size_t proxy_chunks = 0;     ///< chunks rendered from proxies
    std::size_t cut_gaussians = 0;    ///< Gaussians in the returned cloud
    std::size_t leaf_gaussians = 0;   ///< of which full-detail leaves
    /** Leaf chunks served from their finest proxy because decode
     *  retries were exhausted (fault injection / persistent IO
     *  corruption only; see LodScene::loadLeaf). */
    std::size_t proxy_fallbacks = 0;
};

/**
 * Declared PSNR floor (dB) of rendering a preset scene with every
 * chunk forced to proxy level @p level, against the full-resolution
 * render.  bench/lod_scale measures the actual PSNR per level on the
 * preset scenes and fails if any level lands under its floor, so
 * regressions in the merge math or the quantizer show up as bench
 * failures rather than silent quality drift.
 */
float lodPsnrFloorDb(int level);

/**
 * An opened v2 LOD scene file.  Construction reads the directory and
 * proxy pyramid (throws std::runtime_error on malformed files, like
 * loadCloud); leaves are decoded on demand under @p budget_bytes.
 */
class LodScene
{
  public:
    LodScene(const std::string &path, std::size_t budget_bytes);

    const std::string &name() const { return reader_->name(); }
    std::uint64_t totalCount() const { return reader_->totalCount(); }
    std::size_t chunkCount() const { return reader_->chunkCount(); }
    int proxyLevels() const { return reader_->proxyLevels(); }

    /** Decoded bytes of the always-resident proxy pyramid. */
    std::size_t alwaysResidentBytes() const { return proxy_bytes_; }

    /**
     * Build the cut cloud for @p camera.  Deterministic in (file,
     * camera, params); cache state never changes the result.
     */
    GaussianCloud buildCut(const Camera &camera, const LodCutParams &params,
                           LodCutStats *stats = nullptr);

    /**
     * The full-detail scene in original index order (LOD off).  For a
     * lossless file this reproduces the source cloud bit-exactly;
     * decodes every chunk transiently, so RAM spikes to scene size.
     */
    GaussianCloud fullCloud();

    /** Residency cache counters (budget accounting lives there). */
    ResidencyManager::Stats residencyStats() const
    {
        return residency_.stats();
    }

    std::size_t budgetBytes() const { return residency_.budgetBytes(); }

  private:
    std::shared_ptr<const ResidentChunk> loadLeaf(std::size_t index);

    /** Chunk decodes seek the one stream; the mutex serializes them. */
    std::ifstream stream_ GUARDED_BY(stream_mutex_);
    Mutex stream_mutex_;
    /** Directory + proxy pyramid: immutable after construction.  Its
     *  loadChunk() only mutates the stream passed in, which callers
     *  hand over under stream_mutex_. */
    std::unique_ptr<GscV2Reader> reader_;
    ResidencyManager residency_;  ///< internally synchronized
    std::size_t proxy_bytes_ = 0; ///< immutable after construction
};

} // namespace gcc3d

#endif // GCC3D_LOD_LOD_SCENE_H
