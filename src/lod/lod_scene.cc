#include "lod/lod_scene.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "obs/fault_hooks.h"
#include "obs/metrics_registry.h"

namespace gcc3d {

namespace {

/** Euclidean distance from @p p to the AABB [@p lo, @p hi]. */
float
aabbDistance(const Vec3 &p, const Vec3 &lo, const Vec3 &hi)
{
    float dx = std::max({lo.x - p.x, 0.0f, p.x - hi.x});
    float dy = std::max({lo.y - p.y, 0.0f, p.y - hi.y});
    float dz = std::max({lo.z - p.z, 0.0f, p.z - hi.z});
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

/**
 * Level the cut renders a chunk at: 0 (leaves) when the chunk's
 * diagonal subtends >= tau from the camera, one proxy level deeper
 * per halving of the subtended angle below tau.
 */
int
selectLevel(const Vec3 &cam, const Vec3 &lo, const Vec3 &hi,
            const LodCutParams &params, int max_level)
{
    if (params.force_level >= 0)
        return std::min(params.force_level, max_level);
    if (max_level == 0)
        return 0;
    Vec3 diag = hi - lo;
    float diameter = diag.norm();
    float d = aabbDistance(cam, lo, hi);
    // Inside or touching the chunk: always full detail.
    if (d <= 1e-6f)
        return 0;
    float angular = params.bias * diameter / d;
    if (angular >= params.tau || !(angular > 0.0f))
        return 0;
    int level =
        1 + static_cast<int>(std::floor(std::log2(params.tau / angular)));
    return std::min(level, max_level);
}

} // namespace

float
lodPsnrFloorDb(int level)
{
    // Floors = the per-level minimum measured across the
    // Palace/Lego/Train presets at paper scale (bench/lod_scale,
    // BENCH_lod.json) minus ~2 dB margin; the contract is declared at
    // GCC3D_SCALE=1, which is what CI enforces.  The forced-level
    // render is a stress view — every chunk at the coarse level from
    // the evaluation camera — not the far-field configuration the
    // distance cut actually produces, so these are regression
    // tripwires, not perceptual-quality promises.  Level 0 carries
    // quantization noise only.
    if (level <= 0)
        return 45.0f;
    switch (level) {
      case 1: return 16.0f;
      case 2: return 13.5f;
      default: return 12.0f;
    }
}

LodScene::LodScene(const std::string &path, std::size_t budget_bytes)
    : stream_(path, std::ios::binary), residency_(budget_bytes)
{
    if (!stream_)
        throw std::runtime_error("cannot open scene file: " + path);
    reader_ = std::make_unique<GscV2Reader>(stream_);
    for (std::size_t i = 0; i < reader_->chunkCount(); ++i)
        for (const auto &level : reader_->chunk(i).proxies)
            proxy_bytes_ += level.size() * Gaussian::kTotalBytes;
}

std::shared_ptr<const ResidentChunk>
LodScene::loadLeaf(std::size_t index)
{
    // Bounded retry with exponential backoff: decode failures (real
    // IO errors or injected ChunkDecode faults) are retried a fixed
    // number of times, then the exception propagates to buildCut's
    // proxy fallback.  The attempt number is folded into the fault
    // key so a transient injected fault clears deterministically.
    const obs::RetryPolicy retry;
    for (int attempt = 0;; ++attempt) {
        try {
            return residency_.acquire(
                index, [this, index, attempt](ResidentChunk &chunk) {
                    const obs::FaultAction fault = obs::faultAt(
                        obs::FaultSite::ChunkDecode,
                        (static_cast<std::uint64_t>(index) << 8) +
                            static_cast<std::uint64_t>(attempt));
                    if (fault.inject)
                        throw std::runtime_error(
                            "lod: chunk decode failed (injected)");
                    MutexLock lock(stream_mutex_);
                    reader_->loadChunk(stream_, index, chunk.gaussians,
                                       chunk.indices);
                });
        } catch (const std::exception &) {
            if (attempt + 1 >= retry.max_attempts)
                throw;
            obs::MetricsRegistry::global()
                .counter("lod.chunk.retries")
                .add();
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    retry.delayMs(attempt + 1)));
        }
    }
}

GaussianCloud
LodScene::buildCut(const Camera &camera, const LodCutParams &params,
                   LodCutStats *stats)
{
    GaussianCloud cut(reader_->name());
    LodCutStats local;
    const Vec3 &cam = camera.position();

    for (std::size_t i = 0; i < reader_->chunkCount(); ++i) {
        const GscV2ChunkInfo &info = reader_->chunk(i);
        int level = selectLevel(cam, info.lo, info.hi, params,
                                reader_->proxyLevels());
        if (level == 0) {
            std::shared_ptr<const ResidentChunk> leaf;
            try {
                leaf = loadLeaf(i);
            } catch (const std::exception &) {
                // Retries exhausted.  Degrade to the finest resident
                // proxy instead of failing the frame — a deliberate,
                // counted pixel deviation that only fault injection
                // (or real persistent IO corruption) can trigger.
                if (reader_->proxyLevels() > 0) {
                    obs::MetricsRegistry::global()
                        .counter("lod.chunk.proxy_fallbacks")
                        .add();
                    ++local.proxy_fallbacks;
                    for (const Gaussian &g : info.proxies[0])
                        cut.add(g);
                    ++local.proxy_chunks;
                    continue;
                }
                throw;  // flat file: nothing to degrade to
            }
            for (const Gaussian &g : leaf->gaussians)
                cut.add(g);
            ++local.leaf_chunks;
            local.leaf_gaussians += leaf->gaussians.size();
        } else {
            const std::vector<Gaussian> &proxies =
                info.proxies[static_cast<std::size_t>(level - 1)];
            for (const Gaussian &g : proxies)
                cut.add(g);
            ++local.proxy_chunks;
        }
    }
    local.cut_gaussians = cut.size();
    if (stats != nullptr)
        *stats = local;
    return cut;
}

GaussianCloud
LodScene::fullCloud()
{
    GaussianCloud cloud(reader_->name());
    cloud.gaussians().resize(
        static_cast<std::size_t>(reader_->totalCount()));

    std::vector<Gaussian> gaussians;
    std::vector<std::uint32_t> indices;
    for (std::size_t i = 0; i < reader_->chunkCount(); ++i) {
        {
            MutexLock lock(stream_mutex_);
            reader_->loadChunk(stream_, i, gaussians, indices);
        }
        for (std::size_t k = 0; k < gaussians.size(); ++k)
            cloud.gaussians()[indices[k]] = gaussians[k];
    }
    return cloud;
}

} // namespace gcc3d
