/**
 * @file
 * Clustered LOD hierarchy builder for .gsc v2 scene files.
 *
 * The builder partitions a scene's Gaussians into spatially coherent
 * leaf chunks (a uniform grid over the bounds of the means) and, per
 * chunk, merges spatially close Gaussians into coarse *proxy*
 * Gaussians level by level: level 1 merges ~proxy_base leaves per
 * proxy through a sub-grid of the chunk, and each further level
 * re-merges the previous level ~8:1.  A merge is moment-matched —
 * the proxy's mean is the weighted mean of its members, and its
 * covariance matches the second moment of the member mixture (law of
 * total covariance), decomposed back into scale + rotation via a
 * symmetric 3x3 eigensolver — so a far-away region rendered from
 * proxies keeps its aggregate position, footprint and color.
 *
 * Proxies ride in the v2 footer (always resident at load time);
 * leaves stay on disk until the residency manager faults them in.
 * Two build paths share all of this:
 *
 *  - buildLodFile(cloud, ...): partitions an in-memory cloud
 *    (presets, tests);
 *  - buildLodFileStreamed(spec, count, ...): generates the scene in
 *    deterministic batches (generateSceneBatch) and flushes chunks as
 *    cells fill, bounding peak memory — the only way a 10M+-splat
 *    scene gets built here.
 */

#ifndef GCC3D_LOD_LOD_BUILDER_H
#define GCC3D_LOD_LOD_BUILDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "scene/scene_generator.h"
#include "scene/scene_io.h"

namespace gcc3d {

/** Knobs of the LOD build (defaults fit the preset scenes). */
struct LodBuildConfig
{
    /** Target leaf Gaussians per chunk (grid resolution derives
     *  from it; dense cells may exceed it). */
    std::size_t chunk_target = 4096;

    /** Proxy pyramid depth above the leaves (0 = leaves only). */
    int proxy_levels = 3;

    /** Leaf-to-proxy merge ratio at level 1; each further level
     *  merges the previous one ~8:1. */
    std::size_t proxy_base = 64;

    /** Quantized v2 records (118 B) vs raw fp32 (236 B). */
    bool quantize = true;

    /** Streamed build: Gaussians generated per batch. */
    std::size_t stream_batch = 65536;

    /** Streamed build: max Gaussians buffered across open cells
     *  before the fullest cell is force-flushed. */
    std::size_t flush_cap = 1u << 20;
};

/**
 * Moment-matched merge of @p count Gaussians (indices @p members into
 * @p src) into one proxy.  Members are weighted by opacity x mean
 * cross-sectional area, the dominant term of each Gaussian's screen
 * contribution.  Preserved quantities (up to fp and the eigensolver
 * tolerance): weighted mean, weighted second moment (covariance of
 * the mixture), weighted SH color, and total opacity x area (the
 * proxy's opacity is the member sum re-normalized by the proxy's own
 * area, clamped to (0, 0.99]).
 */
Gaussian mergeGaussians(const std::vector<Gaussian> &src,
                        const std::uint32_t *members, std::size_t count);

/**
 * Merge @p src down to roughly @p target proxies by sub-gridding the
 * AABB [@p lo, @p hi] of their means and merging per cell.  Returns
 * at least one proxy for a non-empty input.
 */
std::vector<Gaussian> buildProxyLevel(const std::vector<Gaussian> &src,
                                      const Vec3 &lo, const Vec3 &hi,
                                      std::size_t target);

/**
 * Partition @p cloud into spatial chunks, build each chunk's proxy
 * pyramid, and write the complete v2 LOD file to @p path.
 * @return false on I/O error.
 */
bool buildLodFile(const GaussianCloud &cloud, const std::string &path,
                  const LodBuildConfig &config = {});

/**
 * Streamed build of a @p count-Gaussian scene from @p spec (sampled
 * via generateSceneBatch) directly into the v2 LOD file at @p path,
 * never holding more than ~flush_cap Gaussians plus the proxy pyramid
 * in memory.  Deterministic for a given (spec, count, config).
 * @return false on I/O error.
 */
bool buildLodFileStreamed(const SceneSpec &spec, std::uint64_t count,
                          const std::string &path,
                          const LodBuildConfig &config = {});

} // namespace gcc3d

#endif // GCC3D_LOD_LOD_BUILDER_H
