/**
 * @file
 * Analytic GPU cost model for the dataflow study of Sec. 6 / Fig. 15.
 *
 * The paper asks whether the GCC dataflow helps on *existing GPUs*
 * (RTX 3090, Jetson AGX Xavier) and finds: (1) rendering dominates
 * GPU execution, so reducing preprocessing redundancy helps little;
 * (2) Gaussian-parallel rendering needs atomics for deterministic
 * blending, inflating render time.  Running PyTorch offline is not
 * possible here, so this module reproduces the study with a roofline
 * cost model: each pipeline stage is the max of its compute time
 * (FLOPs / effective TFLOPS) and memory time (bytes / bandwidth),
 * with an atomic-serialization penalty on Gaussian-parallel blends.
 * DESIGN.md §1 documents the substitution.
 */

#ifndef GCC3D_GPU_GPU_MODEL_H
#define GCC3D_GPU_GPU_MODEL_H

#include <string>

#include "render/render_stats.h"

namespace gcc3d {

/** A GPU platform's roofline parameters. */
struct GpuPlatform
{
    std::string name;
    double tflops = 10.0;        ///< peak fp32 TFLOP/s
    double mem_gbps = 500.0;     ///< peak DRAM bandwidth, GB/s
    double efficiency = 0.35;    ///< achieved fraction of peaks
    double atomic_penalty = 4.0; ///< slowdown of atomic blending
    double launch_overhead_ms = 0.15; ///< per-frame kernel overheads

    /** Cloud-class GPU (NVIDIA RTX 3090-like). */
    static GpuPlatform rtx3090();
    /** Mobile GPU (NVIDIA Jetson AGX Xavier-like). */
    static GpuPlatform jetsonXavier();
};

/** Per-frame time decomposition in milliseconds (Fig. 15 categories). */
struct DataflowBreakdown
{
    double preprocess_ms = 0.0;  ///< projection + SH
    double duplicate_ms = 0.0;   ///< KV expansion / duplicated access
    double sort_ms = 0.0;        ///< depth sorting
    double render_ms = 0.0;      ///< alpha + blending

    double
    total() const
    {
        return preprocess_ms + duplicate_ms + sort_ms + render_ms;
    }
};

/** Roofline model of both dataflows on a GPU platform. */
class GpuModel
{
  public:
    explicit GpuModel(GpuPlatform platform)
        : platform_(std::move(platform)) {}

    const GpuPlatform &platform() const { return platform_; }

    /**
     * Standard dataflow (preprocess -> duplicate -> sort -> render),
     * pixel-parallel rendering (no atomics).
     */
    DataflowBreakdown standardDataflow(const StandardFlowStats &f) const;

    /**
     * GCC dataflow on the GPU: conditional preprocessing (only the
     * Gaussians the GW pipeline touched), no KV duplication, global
     * group sort — but Gaussian-parallel rendering pays the atomic
     * penalty on every blend.
     */
    DataflowBreakdown gccDataflow(const GaussianWiseStats &f) const;

  private:
    double computeMs(double flops) const;
    double memoryMs(double bytes) const;

    GpuPlatform platform_;
};

} // namespace gcc3d

#endif // GCC3D_GPU_GPU_MODEL_H
