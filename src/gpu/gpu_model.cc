#include "gpu/gpu_model.h"

#include <algorithm>

#include "scene/gaussian.h"

namespace gcc3d {

namespace {

// Per-item work estimates (fp32 ops / bytes), common to both flows.
constexpr double kProjectFlops = 250.0;  // Eq. 1 matrix cascade
constexpr double kShFlops = 110.0;       // 48 MACs + basis
constexpr double kAlphaFlops = 12.0;     // quadratic form + exp
constexpr double kBlendFlops = 8.0;      // T update + RGB accumulate
constexpr double kKvBytes = 16.0;        // key expansion + scatter
constexpr double kRadixPasses = 4.0;

} // namespace

GpuPlatform
GpuPlatform::rtx3090()
{
    return {"RTX 3090", 35.6, 936.0, 0.35, 3.5, 0.10};
}

GpuPlatform
GpuPlatform::jetsonXavier()
{
    return {"Jetson AGX Xavier", 1.41, 137.0, 0.30, 5.0, 0.60};
}

double
GpuModel::computeMs(double flops) const
{
    return flops / (platform_.tflops * 1e12 * platform_.efficiency) * 1e3;
}

double
GpuModel::memoryMs(double bytes) const
{
    return bytes / (platform_.mem_gbps * 1e9 * platform_.efficiency) * 1e3;
}

DataflowBreakdown
GpuModel::standardDataflow(const StandardFlowStats &f) const
{
    DataflowBreakdown b;

    // Preprocess: every Gaussian loads 59 floats and projects; SH for
    // the in-frustum population.
    double n = static_cast<double>(f.pre.total);
    double n_sh = static_cast<double>(f.pre.in_frustum);
    b.preprocess_ms =
        std::max(computeMs(n * kProjectFlops + n_sh * kShFlops),
                 memoryMs(n * static_cast<double>(Gaussian::kTotalBytes)));

    // Duplication: expanding splats into per-tile KV instances.
    double kv = static_cast<double>(f.kv_pairs);
    b.duplicate_ms = memoryMs(kv * kKvBytes);

    // Sort: radix sort makes kRadixPasses full passes over the keys.
    b.sort_ms = memoryMs(kv * 8.0 * kRadixPasses * 2.0);

    // Render: pixel-parallel alpha blending; each eval re-reads the
    // splat record from cache/DRAM (tile-locality assumed on chip).
    double evals = static_cast<double>(f.alpha_evals);
    double blends = static_cast<double>(f.blend_ops);
    b.render_ms =
        std::max(computeMs(evals * kAlphaFlops + blends * kBlendFlops),
                 memoryMs(static_cast<double>(f.tile_fetches) * 48.0));

    b.render_ms += platform_.launch_overhead_ms;
    return b;
}

DataflowBreakdown
GpuModel::gccDataflow(const GaussianWiseStats &f) const
{
    DataflowBreakdown b;

    // Conditional preprocessing: only Gaussians reaching Stage II
    // project; SH only for survivors.  Depth pass touches all means.
    // Invocation counters so Cmode sub-view duplication shows up as
    // repeated work (they equal the unique populations in full view).
    double n_all = static_cast<double>(f.total);
    double n_proj = static_cast<double>(f.stage2_invocations);
    double n_sh = static_cast<double>(f.sh_eval_invocations);
    b.preprocess_ms = std::max(
        computeMs(n_proj * kProjectFlops + n_sh * kShFlops),
        memoryMs(n_all * 12.0 + n_proj * 44.0 + n_sh * 192.0));

    // No tile duplication in the Gaussian-wise flow.
    b.duplicate_ms = 0.0;

    // Global depth sort of the survivors (single radix sort).
    b.sort_ms =
        memoryMs(static_cast<double>(f.survivor_invocations) * 8.0 *
                 kRadixPasses * 2.0);

    // Render: fewer alpha evaluations (alpha-based boundaries), but
    // "many-to-one" Gaussian-parallel writes force atomic blending —
    // the serialization the paper observes makes GPU rendering
    // *slower* despite less arithmetic.
    double evals = static_cast<double>(f.alpha_evals);
    double blends = static_cast<double>(f.blend_ops);
    b.render_ms =
        computeMs(evals * kAlphaFlops) +
        computeMs(blends * kBlendFlops) * platform_.atomic_penalty;

    b.render_ms += platform_.launch_overhead_ms;
    return b;
}

} // namespace gcc3d
