#include "runtime/result_table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>

namespace gcc3d {

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 100.0);
    double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Aggregate
aggregate(std::vector<double> values)
{
    Aggregate a;
    if (values.empty())
        return a;
    std::sort(values.begin(), values.end());
    a.count = values.size();
    for (double v : values)
        a.total += v;
    a.mean = a.total / static_cast<double>(a.count);
    a.min = values.front();
    a.max = values.back();
    a.p50 = percentile(values, 50.0);
    a.p90 = percentile(values, 90.0);
    a.p99 = percentile(values, 99.0);
    a.p999 = percentile(values, 99.9);
    return a;
}

std::string
aggregateJson(const Aggregate &a)
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"count\": " << a.count << ", \"mean\": " << a.mean
       << ", \"min\": " << a.min << ", \"p50\": " << a.p50
       << ", \"p90\": " << a.p90 << ", \"p99\": " << a.p99
       << ", \"p999\": " << a.p999 << ", \"max\": " << a.max << "}";
    return os.str();
}

ResultTable::ResultTable(std::vector<JobResult> rows)
    : rows_(std::move(rows))
{
    std::sort(rows_.begin(), rows_.end(),
              [](const JobResult &a, const JobResult &b) {
                  return a.id < b.id;
              });
}

std::size_t
ResultTable::failedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(rows_.begin(), rows_.end(),
                      [](const JobResult &r) { return !r.ok; }));
}

Aggregate
ResultTable::over(const Metric &metric, const Filter &filter) const
{
    std::vector<double> values;
    values.reserve(rows_.size());
    for (const JobResult &r : rows_) {
        if (!r.ok)
            continue;
        if (filter && !filter(r))
            continue;
        values.push_back(metric(r));
    }
    return aggregate(std::move(values));
}

Aggregate
ResultTable::fpsByBackend(Backend backend) const
{
    return over([](const JobResult &r) { return r.fps; },
                [backend](const JobResult &r) {
                    return r.backend == backend;
                });
}

Aggregate
ResultTable::energyByBackend(Backend backend) const
{
    return over([](const JobResult &r) { return r.energy_mj; },
                [backend](const JobResult &r) {
                    return r.backend == backend;
                });
}

std::vector<ResultTable::Comparison>
ResultTable::compare(Backend base, Backend other) const
{
    using Key = std::tuple<std::string, std::string, int>;
    std::map<Key, const JobResult *> base_rows;
    for (const JobResult &r : rows_)
        if (r.ok && r.backend == base)
            base_rows[{r.scene, r.variant, r.frame}] = &r;

    std::vector<Comparison> out;
    for (const JobResult &r : rows_) {
        if (!r.ok || r.backend != other)
            continue;
        auto it = base_rows.find({r.scene, r.variant, r.frame});
        if (it == base_rows.end())
            continue;
        const JobResult &b = *it->second;
        Comparison c;
        c.scene = r.scene;
        c.variant = r.variant;
        c.frame = r.frame;
        c.base_fps = b.fps;
        c.other_fps = r.fps;
        c.speedup = b.fps > 0.0 ? r.fps / b.fps : 0.0;
        c.energy_ratio =
            r.energy_mj > 0.0 ? b.energy_mj / r.energy_mj : 0.0;
        out.push_back(std::move(c));
    }
    return out;
}

namespace {

/** Quote a string as an RFC 4180 CSV field (doubled inner quotes). */
std::string
csvField(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

/** Quote a string as a JSON string literal (escapes control chars). */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace

std::string
ResultTable::toCsv() const
{
    std::ostringstream os;
    // Round-trip precision: exported checksums/metrics must support
    // the same bit-exact comparisons the in-memory results do.
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "id,scene,variant,backend,frame,ok,error,fps,frame_ms,cycles,"
          "energy_mj,dram_mj,dram_bytes,area_mm2,cmode,subview_size,"
          "image_checksum,wall_ms\n";
    for (const JobResult &r : rows_) {
        os << r.id << "," << csvField(r.scene) << ","
           << csvField(r.variant) << "," << backendName(r.backend) << ","
           << r.frame << "," << (r.ok ? 1 : 0) << "," << csvField(r.error)
           << "," << r.fps << "," << r.frame_ms << "," << r.cycles << ","
           << r.energy_mj << "," << r.dram_mj << "," << r.dram_bytes << ","
           << r.area_mm2 << "," << (r.cmode ? 1 : 0) << ","
           << r.subview_size << "," << r.image_checksum << "," << r.wall_ms
           << "\n";
    }
    return os.str();
}

std::string
ResultTable::toJson() const
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const JobResult &r = rows_[i];
        os << "  {\"id\": " << r.id << ", \"scene\": " << jsonString(r.scene)
           << ", \"variant\": " << jsonString(r.variant)
           << ", \"backend\": \"" << backendName(r.backend)
           << "\", \"frame\": " << r.frame
           << ", \"ok\": " << (r.ok ? "true" : "false")
           << ", \"error\": " << jsonString(r.error)
           << ", \"fps\": " << r.fps << ", \"frame_ms\": " << r.frame_ms
           << ", \"cycles\": " << r.cycles
           << ", \"energy_mj\": " << r.energy_mj
           << ", \"dram_mj\": " << r.dram_mj
           << ", \"dram_bytes\": " << r.dram_bytes
           << ", \"area_mm2\": " << r.area_mm2
           << ", \"cmode\": " << (r.cmode ? "true" : "false")
           << ", \"subview_size\": " << r.subview_size
           << ", \"image_checksum\": " << r.image_checksum
           << ", \"wall_ms\": " << r.wall_ms << "}"
           << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "]\n";
    return os.str();
}

bool
ResultTable::writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << contents;
    return static_cast<bool>(out);
}

void
ResultTable::print(std::FILE *out) const
{
    std::fprintf(out, "%-12s %-14s %-7s %5s %10s %10s %10s %8s\n", "scene",
                 "variant", "backend", "frame", "FPS", "energy_mJ",
                 "DRAM_MB", "mm^2");
    for (const JobResult &r : rows_) {
        if (!r.ok) {
            std::fprintf(out, "%-12s %-14s %-7s %5d FAILED: %s\n",
                         r.scene.c_str(), r.variant.c_str(),
                         backendName(r.backend).c_str(), r.frame,
                         r.error.c_str());
            continue;
        }
        std::fprintf(out, "%-12s %-14s %-7s %5d %10.1f %10.2f %10.2f %8.2f\n",
                     r.scene.c_str(), r.variant.c_str(),
                     backendName(r.backend).c_str(), r.frame, r.fps,
                     r.energy_mj,
                     static_cast<double>(r.dram_bytes) / (1024.0 * 1024.0),
                     r.area_mm2);
    }

    for (Backend backend :
         {Backend::Gcc, Backend::Gscore, Backend::Gpu}) {
        Aggregate fps = fpsByBackend(backend);
        if (fps.count == 0)
            continue;
        Aggregate energy = energyByBackend(backend);
        std::fprintf(out,
                     "%-7s jobs %3zu | FPS mean %8.1f p50 %8.1f p90 %8.1f "
                     "p99 %8.1f | energy mean %8.2f mJ\n",
                     backendName(backend).c_str(), fps.count, fps.mean,
                     fps.p50, fps.p90, fps.p99, energy.mean);
    }
}

} // namespace gcc3d
