/**
 * @file
 * The one sanctioned wall-clock read in the library.
 *
 * The paper's determinism story is that pixels and stats are pure
 * functions of (scene, camera, config) — wall-clock time may be
 * *measured* (stage timings, scheduler pacing, SLO latencies) but
 * must never *feed* rendering math.  To make that auditable, every
 * clock read in src/ goes through monotonicNow() below; tools/gsc_lint
 * bans raw now()/time()/clock() tokens everywhere else in the
 * library, so a new timing-dependent code path has to either use this
 * header (fine: timing only ever lands in reports) or carry an
 * explicit, justified suppression.
 */

#ifndef GCC3D_RUNTIME_WALLCLOCK_H
#define GCC3D_RUNTIME_WALLCLOCK_H

#include <chrono>

namespace gcc3d {

/** Monotonic timestamp type used by all stage/SLO timing. */
using MonoTime = std::chrono::steady_clock::time_point;

/** The sanctioned monotonic clock read. */
inline MonoTime
monotonicNow()
{
    // gsc-lint: allow(determinism) — this is the single audited clock
    // read the whole library funnels through; results feed timing
    // reports and pacing only, never pixel or stats math.
    return std::chrono::steady_clock::now();
}

/** Milliseconds from @p a to @p b. */
inline double
msBetween(MonoTime a, MonoTime b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/** Milliseconds elapsed since @p start. */
inline double
msSince(MonoTime start)
{
    return msBetween(start, monotonicNow());
}

} // namespace gcc3d

#endif // GCC3D_RUNTIME_WALLCLOCK_H
