/**
 * @file
 * Sweep expansion and parallel execution.
 *
 * A SweepSpec is the cross product the paper's evaluation sections
 * iterate by hand: scenes x trajectory frames x config variants x
 * backends.  SweepRunner expands the spec into a dense SimJob list
 * (expandSweep defines the canonical order), executes the jobs on a
 * ThreadPool, and returns JobResults sorted by job id — so the output
 * is a pure function of the spec, independent of worker count and
 * scheduling.
 *
 * Scene sharing: generating a paper-scale GaussianCloud dwarfs the
 * per-job simulator setup, so the runner generates each distinct
 * scene exactly once (the first job to need it builds it; concurrent
 * jobs for the same scene block on a shared future) and all workers
 * read the immutable cloud/trajectory concurrently.  Per-job mutable
 * state (simulator instances, their stats, renderer scratch) is
 * constructed locally in the worker, never shared.
 */

#ifndef GCC3D_RUNTIME_SWEEP_RUNNER_H
#define GCC3D_RUNTIME_SWEEP_RUNNER_H

#include <functional>
#include <memory>
#include <vector>

#include "runtime/sim_job.h"
#include "runtime/thread_pool.h"
#include "scene/scene_presets.h"
#include "scene/trajectory.h"

namespace gcc3d {

class Image;

/** Declarative description of a batch-simulation sweep. */
struct SweepSpec
{
    std::vector<SceneSpec> scenes;
    std::vector<Backend> backends = {Backend::Gcc};
    std::vector<ConfigVariant> variants = {ConfigVariant{}};

    /** Trajectory frames simulated per scene (Trajectory::forScene). */
    int frames = 1;

    /** Population scale applied to every scene. */
    float scale = 1.0f;

    /** Convenience: append a preset scene by id. */
    SweepSpec &addScene(SceneId id);

    /** Total job count after expansion. */
    std::size_t
    jobCount() const
    {
        return scenes.size() * static_cast<std::size_t>(frames) *
               variants.size() * backends.size();
    }
};

/**
 * Expand @p spec into its job list.  Order (and therefore job ids) is
 * scene-major, then frame, then variant, then backend — grouping jobs
 * that share a generated scene so the cache stays warm.
 */
std::vector<SimJob> expandSweep(const SweepSpec &spec);

/** The immutable per-scene data every job of that scene shares. */
struct SceneData
{
    GaussianCloud cloud;
    Trajectory trajectory;
};

/** Execution knobs of a sweep run. */
struct SweepOptions
{
    /** Worker threads; 1 reproduces a serial loop exactly. */
    int workers = 1;

    /**
     * .gsc scene-cache directory (scene_io::loadOrGenerateScene);
     * empty disables caching.  Generation is deterministic, so cached
     * and freshly generated runs are bit-identical.
     */
    std::string scene_cache_dir;

    /**
     * Called on the submitting thread as results are collected (after
     * all jobs have been submitted), in job-id order — suitable for
     * progress display.
     */
    std::function<void(const JobResult &)> on_result;
};

/** Expands sweeps into jobs and runs them on a thread pool. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

    const SweepOptions &options() const { return options_; }

    /**
     * Run the whole sweep; returns one JobResult per job, sorted by
     * job id.  A job that throws yields ok = false with the exception
     * message; it never aborts the sweep.
     */
    std::vector<JobResult> run(const SweepSpec &spec) const;

    /**
     * Execute one job against pre-built scene data (exposed for tests
     * and for callers managing their own scenes).  Throws on invalid
     * frame indices; exceptions are the caller's to handle.
     */
    static JobResult runJob(const SimJob &job, const SceneData &scene);

    /**
     * Build the shared per-scene data for @p spec at @p scale.  A
     * non-empty @p cache_dir reads/writes the .gsc scene cache
     * instead of always generating.
     */
    static SceneData buildScene(const SceneSpec &spec, float scale,
                                int frames,
                                const std::string &cache_dir = "");

  private:
    SweepOptions options_;
};

/**
 * Order-deterministic pixel fingerprint: summation follows pixel
 * order, so identical images give bit-identical sums.  The checksum
 * JobResult::image_checksum carries; also used by the frame bench to
 * cross-check the optimized and reference render paths.
 */
double imageChecksum(const Image &image);

} // namespace gcc3d

#endif // GCC3D_RUNTIME_SWEEP_RUNNER_H
