/**
 * @file
 * Fixed-size worker pool with futures-based task submission.
 *
 * The batch-simulation runtime fans sweep jobs out across a small
 * number of long-lived worker threads.  Tasks are arbitrary callables
 * submitted to a FIFO queue; submit() returns a std::future carrying
 * the callable's result (or its exception).  Destruction drains
 * nothing: outstanding tasks are completed before the workers join,
 * so futures obtained from a live pool are always eventually ready.
 */

#ifndef GCC3D_RUNTIME_THREAD_POOL_H
#define GCC3D_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gcc3d {

/** A fixed pool of worker threads executing queued tasks in FIFO order. */
class ThreadPool
{
  public:
    /**
     * Start @p workers threads.  Values below 1 are clamped to 1, so a
     * "serial" pool is simply ThreadPool(1).
     */
    explicit ThreadPool(int workers);

    /** Completes all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workerCount() const { return static_cast<int>(workers_.size()); }

    /** Number of hardware threads (at least 1). */
    static int hardwareWorkers();

    /**
     * Enqueue @p fn for execution on a worker thread.
     *
     * @return a future holding fn's return value; an exception thrown
     *         by fn is captured and rethrown on future::get().
     */
    template <typename F>
    std::future<std::invoke_result_t<std::decay_t<F>>>
    submit(F &&fn)
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace gcc3d

#endif // GCC3D_RUNTIME_THREAD_POOL_H
