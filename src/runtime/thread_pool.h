/**
 * @file
 * Fixed-size worker pool with futures-based task submission.
 *
 * The batch-simulation runtime fans sweep jobs out across a small
 * number of long-lived worker threads.  Tasks are arbitrary callables
 * submitted to a FIFO queue; submit() returns a std::future carrying
 * the callable's result (or its exception).
 *
 * Shutdown contract: shutdown() (which the destructor calls) stops
 * accepting new work, lets the workers finish every task already
 * queued, then joins them — no queued task is ever discarded, so a
 * future obtained from a successful submit() always becomes ready.
 * Once shutdown has begun, submit() throws std::runtime_error instead
 * of silently queueing a task that may never run.  shutdown() is
 * idempotent but must not race itself or the destructor: call it from
 * one owning thread, the same one that will destroy the pool.
 */

#ifndef GCC3D_RUNTIME_THREAD_POOL_H
#define GCC3D_RUNTIME_THREAD_POOL_H

#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/perf_recorder.h"
#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"

namespace gcc3d {

/** A fixed pool of worker threads executing queued tasks in FIFO order. */
class ThreadPool
{
  public:
    /**
     * Start @p workers threads.  Values below 1 are clamped to 1, so a
     * "serial" pool is simply ThreadPool(1).
     */
    explicit ThreadPool(int workers);

    /** Equivalent to shutdown(): drains the queue, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workerCount() const { return static_cast<int>(workers_.size()); }

    /** Number of hardware threads (at least 1). */
    static int hardwareWorkers();

    /**
     * Stop accepting work, complete every queued task, join the
     * workers.  Idempotent; owning-thread only (see file comment).
     * After it returns, submit() throws and no worker is running.
     */
    void shutdown();

    /** True once shutdown has begun; late submits are rejected. */
    bool
    stopping() const
    {
        MutexLock lock(mutex_);
        return stopping_;
    }

    /**
     * Enqueue @p fn for execution on a worker thread.
     *
     * @return a future holding fn's return value; an exception thrown
     *         by fn is captured and rethrown on future::get().
     * @throws std::runtime_error if shutdown has begun — a task
     *         accepted then would have no worker guaranteed to run it.
     */
    template <typename F>
    std::future<std::invoke_result_t<std::decay_t<F>>>
    submit(F &&fn)
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            MutexLock lock(mutex_);
            if (stopping_)
                throw std::runtime_error(
                    "ThreadPool::submit after shutdown began");
#if GCC3D_OBS_ENABLED
            // Stamp the enqueue so the dequeuing worker can record
            // how long the task sat in the queue.
            const MonoTime enqueued = obs::tickNow();
            obs::Histogram &wait_ms = obs_wait_ms_;
            queue_.push([task, enqueued, &wait_ms] {
                wait_ms.record(msBetween(enqueued, obs::tickNow()));
                (*task)();
            });
            obs_tasks_.add();
            obs_depth_.set(static_cast<double>(queue_.size()));
#else
            queue_.push([task] { (*task)(); });
#endif
        }
        cv_.notifyOne();
        return result;
    }

  private:
    void workerLoop();

    /** Begin stop and join every started worker (ctor failure path
     *  and shutdown share it).  Owning-thread only. */
    void stopAndJoin();

    /** Started threads; owning thread only (ctor/shutdown/dtor). */
    std::vector<std::thread> workers_;
    bool joined_ = false;  ///< owning thread only

    mutable Mutex mutex_;
    CondVar cv_;
    std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
    bool stopping_ GUARDED_BY(mutex_) = false;

    /** Pool instrumentation; registry refs cached at construction so
     *  submit() never does a by-name lookup (no-ops when compiled
     *  out).  Updates are lock-free atomics. */
    obs::Counter &obs_tasks_;
    obs::Gauge &obs_depth_;
    obs::Histogram &obs_wait_ms_;
};

} // namespace gcc3d

#endif // GCC3D_RUNTIME_THREAD_POOL_H
