#include "runtime/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <stdexcept>

#include "obs/perf_recorder.h"
#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"

#include "core/accelerator.h"
#include "gscore/gscore_sim.h"
#include "scene/scene_io.h"
#include "scene/scene_presets.h"

namespace gcc3d {

std::string
backendName(Backend backend)
{
    switch (backend) {
    case Backend::Gcc:
        return "gcc";
    case Backend::Gscore:
        return "gscore";
    case Backend::Gpu:
        return "gpu";
    }
    return "unknown";
}

Backend
backendFromName(const std::string &name)
{
    std::string lower;
    for (char c : name)
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    if (lower == "gcc")
        return Backend::Gcc;
    if (lower == "gscore")
        return Backend::Gscore;
    if (lower == "gpu")
        return Backend::Gpu;
    throw std::invalid_argument("unknown backend: " + name);
}

bool
sameSimOutput(const JobResult &a, const JobResult &b)
{
    return a.id == b.id && a.scene == b.scene && a.variant == b.variant &&
           a.backend == b.backend && a.frame == b.frame && a.ok == b.ok &&
           a.error == b.error && a.fps == b.fps &&
           a.frame_ms == b.frame_ms && a.cycles == b.cycles &&
           a.energy_mj == b.energy_mj && a.dram_mj == b.dram_mj &&
           a.dram_bytes == b.dram_bytes && a.area_mm2 == b.area_mm2 &&
           a.cmode == b.cmode && a.subview_size == b.subview_size &&
           a.image_checksum == b.image_checksum;
}

SweepSpec &
SweepSpec::addScene(SceneId id)
{
    scenes.push_back(scenePreset(id));
    return *this;
}

std::vector<SimJob>
expandSweep(const SweepSpec &spec)
{
    std::vector<SimJob> jobs;
    jobs.reserve(spec.jobCount());
    int id = 0;
    for (const SceneSpec &scene : spec.scenes) {
        for (int frame = 0; frame < spec.frames; ++frame) {
            for (const ConfigVariant &variant : spec.variants) {
                for (Backend backend : spec.backends) {
                    SimJob job;
                    job.id = id++;
                    job.spec = scene;
                    job.scale = spec.scale;
                    job.frame = frame;
                    job.frame_count = spec.frames;
                    job.backend = backend;
                    job.variant = variant;
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    return jobs;
}

double
imageChecksum(const Image &image)
{
    double sum = 0.0;
    for (const Vec3 &p : image.pixels())
        sum += static_cast<double>(p.x) + static_cast<double>(p.y) +
               static_cast<double>(p.z);
    return sum;
}

SceneData
SweepRunner::buildScene(const SceneSpec &spec, float scale, int frames,
                        const std::string &cache_dir)
{
    if (scale <= 0.0f || scale > 1.0f)
        throw std::invalid_argument("scene scale must be in (0, 1]");
    if (frames < 1)
        throw std::invalid_argument("sweep needs at least one frame");
    SceneData data;
    data.cloud = loadOrGenerateScene(spec, scale, cache_dir);
    data.trajectory = Trajectory::forScene(spec, frames);
    return data;
}

JobResult
SweepRunner::runJob(const SimJob &job, const SceneData &scene)
{
    JobResult r;
    r.id = job.id;
    r.scene = job.spec.name;
    r.variant = job.variant.name;
    r.backend = job.backend;
    r.frame = job.frame;

    if (job.frame < 0 ||
        static_cast<std::size_t>(job.frame) >= scene.trajectory.frameCount())
        throw std::out_of_range("trajectory frame index out of range");
    const Camera &cam = scene.trajectory.frame(
        static_cast<std::size_t>(job.frame));

    // wall_ms is bench output (BENCH_*.json), so it reads the
    // behavioral clock — real in GCC3D_OBS=OFF builds; the recorder
    // sample below is the observability copy.
    const MonoTime start = obs::tickNow();
    switch (job.backend) {
    case Backend::Gcc: {
        GccAccelerator acc(job.variant.gcc);
        GccFrameResult f = acc.render(scene.cloud, cam);
        r.fps = f.fps;
        r.frame_ms = f.fps > 0.0 ? 1000.0 / f.fps : 0.0;
        r.cycles = f.total_cycles;
        r.energy_mj = f.energy.total();
        r.dram_mj = f.energy.dram_mj;
        r.dram_bytes = f.dram_bytes_total;
        r.area_mm2 = acc.areaMm2();
        r.cmode = f.cmode;
        r.subview_size = f.subview_size;
        r.image_checksum = imageChecksum(f.image);
        break;
    }
    case Backend::Gscore: {
        GscoreSim sim(job.variant.gscore);
        GscoreFrameResult f = sim.renderFrame(scene.cloud, cam);
        r.fps = f.fps;
        r.frame_ms = f.fps > 0.0 ? 1000.0 / f.fps : 0.0;
        r.cycles = f.total_cycles;
        r.energy_mj = f.energy.total();
        r.dram_mj = f.energy.dram_mj;
        r.dram_bytes = f.dram_bytes_total;
        r.area_mm2 = sim.chip().totalArea();
        r.image_checksum = imageChecksum(f.image);
        break;
    }
    case Backend::Gpu: {
        // Roofline model of the GCC dataflow on the platform (Sec. 6):
        // functional GW render supplies the activity counts.
        GaussianWiseRenderer renderer;
        GaussianWiseStats stats;
        Image image = renderer.render(scene.cloud, cam, stats);
        GpuModel model(job.variant.gpu);
        DataflowBreakdown b = model.gccDataflow(stats);
        r.frame_ms = b.total();
        r.fps = b.total() > 0.0 ? 1000.0 / b.total() : 0.0;
        r.image_checksum = imageChecksum(image);
        break;
    }
    }
    r.wall_ms = msBetween(start, obs::tickNow());
    obs::PerfRecorder::global().addSample(
        obs::Stage::Job, r.wall_ms,
        obs::SampleTag{-1, job.frame, static_cast<std::uint32_t>(job.id)});
    r.ok = true;
    return r;
}

std::vector<JobResult>
SweepRunner::run(const SweepSpec &spec) const
{
    std::vector<SimJob> jobs = expandSweep(spec);

    // One slot per distinct scene: the first job to need a scene
    // generates it under the slot mutex (jobs racing for the same
    // scene serialize there; different scenes build concurrently),
    // and the slot drops its reference after the scene's last job so
    // peak memory tracks the scenes in flight, not the whole sweep.
    struct SceneSlot
    {
        Mutex mutex;
        bool built GUARDED_BY(mutex) = false;
        std::string build_error GUARDED_BY(mutex);
        std::shared_ptr<const SceneData> data GUARDED_BY(mutex);
        std::atomic<std::size_t> remaining{0};
    };
    auto slots = std::make_shared<std::vector<SceneSlot>>(spec.scenes.size());

    // Map each job to its scene slot by position in the expansion.
    std::size_t per_scene =
        static_cast<std::size_t>(spec.frames) * spec.variants.size() *
        spec.backends.size();
    for (SceneSlot &slot : *slots)
        slot.remaining.store(per_scene, std::memory_order_relaxed);

    ThreadPool pool(options_.workers);
    std::vector<std::future<JobResult>> futures;
    futures.reserve(jobs.size());
    for (SimJob &job : jobs) {
        std::size_t scene_idx =
            per_scene == 0 ? 0 : static_cast<std::size_t>(job.id) / per_scene;
        float scale = spec.scale;
        int frames = spec.frames;
        std::string cache_dir = options_.scene_cache_dir;
        futures.push_back(pool.submit(
            [job = std::move(job), slots, scene_idx, scale, frames,
             cache_dir = std::move(cache_dir)] {
                SceneSlot &slot = (*slots)[scene_idx];
                std::shared_ptr<const SceneData> scene;
                std::string build_error;
                {
                    MutexLock lock(slot.mutex);
                    if (!slot.built) {
                        slot.built = true;
                        try {
                            slot.data = std::make_shared<const SceneData>(
                                buildScene(job.spec, scale, frames,
                                           cache_dir));
                        } catch (const std::exception &e) {
                            slot.build_error = e.what();
                        }
                    }
                    scene = slot.data;
                    build_error = slot.build_error;
                }

                JobResult r;
                r.id = job.id;
                r.scene = job.spec.name;
                r.variant = job.variant.name;
                r.backend = job.backend;
                r.frame = job.frame;
                if (!scene) {
                    r.ok = false;
                    r.error = "scene generation failed: " + build_error;
                } else {
                    try {
                        r = runJob(job, *scene);
                    } catch (const std::exception &e) {
                        r.ok = false;
                        r.error = e.what();
                    }
                }

                scene.reset();
                if (slot.remaining.fetch_sub(
                        1, std::memory_order_acq_rel) == 1) {
                    MutexLock lock(slot.mutex);
                    slot.data.reset();
                }
                return r;
            }));
    }

    std::vector<JobResult> results;
    results.reserve(futures.size());
    for (std::future<JobResult> &f : futures) {
        results.push_back(f.get());
        if (options_.on_result)
            options_.on_result(results.back());
    }
    // Futures are collected in submission order, which is job-id
    // order; keep the sort as a guarantee rather than an assumption.
    std::sort(results.begin(), results.end(),
              [](const JobResult &a, const JobResult &b) {
                  return a.id < b.id;
              });
    return results;
}

} // namespace gcc3d
