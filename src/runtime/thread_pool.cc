#include "runtime/thread_pool.h"

#include <algorithm>

namespace gcc3d {

ThreadPool::ThreadPool(int workers)
    : obs_tasks_(obs::MetricsRegistry::global().counter(
          "runtime.pool.tasks")),
      obs_depth_(obs::MetricsRegistry::global().gauge(
          "runtime.pool.queue_depth")),
      obs_wait_ms_(obs::MetricsRegistry::global().histogram(
          "runtime.pool.queue_wait_ms"))
{
    int count = std::max(1, workers);
    workers_.reserve(static_cast<std::size_t>(count));
    try {
        for (int i = 0; i < count; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // Thread creation failed (e.g. process thread limit): join
        // the workers already started, then let the caller see the
        // exception instead of std::terminate from ~thread.
        stopAndJoin();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    if (joined_)
        return;
    stopAndJoin();
}

void
ThreadPool::stopAndJoin()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notifyAll();
    for (std::thread &w : workers_)
        w.join();
    joined_ = true;
}

int
ThreadPool::hardwareWorkers()
{
    return static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            UniqueLock lock(mutex_);
            while (!stopping_ && queue_.empty())
                cv_.wait(lock);
            if (queue_.empty())
                return;  // stopping_ && drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();  // packaged_task captures exceptions into the future
    }
}

} // namespace gcc3d
