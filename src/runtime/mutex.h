/**
 * @file
 * Annotated mutex / lock / condition-variable wrappers.
 *
 * Clang's thread-safety analysis (see thread_annotations.h) can only
 * track capability types that carry its attributes, and libstdc++'s
 * std::mutex does not.  These zero-cost wrappers do: Mutex is a
 * CAPABILITY around std::mutex, MutexLock / UniqueLock are
 * SCOPED_CAPABILITY RAII guards, and CondVar adapts
 * std::condition_variable to UniqueLock.  All concurrency in the tree
 * goes through them so that every GUARDED_BY / REQUIRES contract is
 * machine-checked by the clang -Wthread-safety -Werror CI leg.
 *
 * Condition waits are written as explicit while-loops over the
 * guarded predicate (not the predicate-lambda overloads): the
 * analysis cannot see that a lambda body runs with the lock held, but
 * it checks a plain loop body like any other locked region.
 */

#ifndef GCC3D_RUNTIME_MUTEX_H
#define GCC3D_RUNTIME_MUTEX_H

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "runtime/thread_annotations.h"

namespace gcc3d {

/**
 * An annotated exclusive mutex.  Prefer the scoped guards below;
 * lock()/unlock() exist for the rare hand-over-hand pattern.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { m_.lock(); }
    void unlock() RELEASE() { m_.unlock(); }
    bool tryLock() TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** The wrapped mutex, for condition-variable plumbing only. */
    std::mutex &native() { return m_; }

  private:
    // gsc-lint: allow(mutex-guard) — this member IS the capability
    // every GUARDED_BY in the tree refers to, not state guarded by one.
    std::mutex m_;
};

/** Scoped lock held for its whole lifetime (std::lock_guard shape). */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Scoped lock that can be dropped and re-taken mid-scope and can sit
 * under a CondVar wait (std::unique_lock shape).  Destruction
 * releases iff currently held.
 */
class SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mutex) ACQUIRE(mutex)
        : lock_(mutex.native())
    {
    }

    ~UniqueLock() RELEASE() {}

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void lock() ACQUIRE() { lock_.lock(); }
    void unlock() RELEASE() { lock_.unlock(); }

    /** The wrapped lock, for condition-variable plumbing only. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable over UniqueLock.  wait()/waitForMs() must be
 * called with the lock held; both return with it held again, so from
 * the analysis's point of view the capability is held throughout —
 * which is exactly the guarantee the caller's predicate re-check
 * relies on.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(UniqueLock &lock) { cv_.wait(lock.native()); }

    /** Wait at most @p ms milliseconds (spurious wakeups allowed). */
    void
    waitForMs(UniqueLock &lock, double ms)
    {
        cv_.wait_for(lock.native(),
                     std::chrono::duration<double, std::milli>(ms));
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace gcc3d

#endif // GCC3D_RUNTIME_MUTEX_H
