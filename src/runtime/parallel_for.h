/**
 * @file
 * Deterministic chunked fan-out over a ThreadPool.
 *
 * The batch runtime parallelizes *across* frames; within a frame,
 * stages like preprocessing parallelize across Gaussians.  The
 * helpers here split an index range into contiguous chunks whose
 * boundaries depend only on (n, workers) — never on timing — so a
 * chunked parallel run can merge per-chunk outputs in chunk order and
 * reproduce the serial result bit-exactly.
 */

#ifndef GCC3D_RUNTIME_PARALLEL_FOR_H
#define GCC3D_RUNTIME_PARALLEL_FOR_H

#include <cstddef>
#include <exception>
#include <future>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace gcc3d {

/**
 * Split [0, n) into at most @p max_chunks contiguous half-open ranges
 * of at least @p min_per_chunk elements each.  @p min_per_chunk is
 * the *dispatch grain*: a chunk smaller than it cannot amortize the
 * pool's submit/future overhead, so the split never produces one —
 * in particular, n < 2 * min_per_chunk yields a single chunk, which
 * runChunks runs inline on the caller thread (no pool round-trip at
 * all).  Deterministic in its arguments; empty list for n == 0.
 */
inline std::vector<std::pair<std::size_t, std::size_t>>
chunkRanges(std::size_t n, int max_chunks, std::size_t min_per_chunk)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    if (n == 0)
        return ranges;
    if (max_chunks < 1)
        max_chunks = 1;
    if (min_per_chunk < 1)
        min_per_chunk = 1;
    // Floor division: ceil would manufacture chunks *smaller* than
    // the grain (e.g. 10 items at grain 4 -> three chunks of 3/3/4),
    // exactly the dispatch overhead the grain exists to prevent.
    std::size_t chunks = n / min_per_chunk;
    if (chunks < 1)
        chunks = 1;
    if (chunks > static_cast<std::size_t>(max_chunks))
        chunks = static_cast<std::size_t>(max_chunks);
    std::size_t per = n / chunks;
    std::size_t extra = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t len = per + (c < extra ? 1 : 0);
        ranges.emplace_back(begin, begin + len);
        begin += len;
    }
    return ranges;
}

/**
 * Run @p fn(chunk_index, begin, end) for every range of @p ranges on
 * @p pool, blocking until all complete.  This is the one submit/drain
 * primitive the frame-level fan-outs share: every future is drained
 * before returning — the task lambdas reference ranges/fn on this
 * stack, so unwinding on the first exception while later chunks still
 * run would dangle them.  The first chunk exception (in submission
 * order) is rethrown after all chunks settle.  A null pool (or fewer
 * than two ranges) runs inline on the caller.
 */
template <typename Fn>
void
runChunks(ThreadPool *pool,
          const std::vector<std::pair<std::size_t, std::size_t>> &ranges,
          Fn &&fn)
{
    if (pool == nullptr || pool->workerCount() < 2 ||
        ranges.size() < 2) {
        for (std::size_t c = 0; c < ranges.size(); ++c)
            fn(c, ranges[c].first, ranges[c].second);
        return;
    }
    std::vector<std::future<void>> pending;
    pending.reserve(ranges.size());
    for (std::size_t c = 0; c < ranges.size(); ++c)
        pending.push_back(pool->submit([&fn, &ranges, c] {
            fn(c, ranges[c].first, ranges[c].second);
        }));
    std::exception_ptr first_error;
    for (auto &f : pending) {
        try {
            f.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

/**
 * Run @p fn(chunk_index, begin, end) for every chunk of [0, n) on
 * @p pool, blocking until all chunks complete.  Chunk boundaries come
 * from chunkRanges, so outputs indexed by chunk_index can be merged
 * deterministically.  @p setup(chunk_count) runs once on the caller
 * before any chunk is dispatched — the hook for sizing per-chunk
 * output slots.  Exceptions from fn propagate to the caller.  A null
 * pool (or a single chunk) runs inline on the caller.
 */
template <typename Fn, typename Setup>
void
forEachChunk(ThreadPool *pool, std::size_t n, std::size_t min_per_chunk,
             Fn &&fn, Setup &&setup)
{
    const int workers = pool != nullptr ? pool->workerCount() : 1;
    auto ranges = chunkRanges(n, workers, min_per_chunk);
    setup(ranges.size());
    runChunks(pool, ranges, std::forward<Fn>(fn));
}

/** forEachChunk without a setup hook. */
template <typename Fn>
void
forEachChunk(ThreadPool *pool, std::size_t n, std::size_t min_per_chunk,
             Fn &&fn)
{
    forEachChunk(pool, n, min_per_chunk, std::forward<Fn>(fn),
                 [](std::size_t) {});
}

} // namespace gcc3d

#endif // GCC3D_RUNTIME_PARALLEL_FOR_H
