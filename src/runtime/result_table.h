/**
 * @file
 * Aggregation and export of batch-simulation results.
 *
 * ResultTable wraps the JobResult list a SweepRunner produced and
 * answers the questions the paper's tables ask: totals and means,
 * latency/throughput percentiles, and matched per-backend comparisons
 * (speedup, energy ratio) — plus CSV and JSON export for plotting.
 */

#ifndef GCC3D_RUNTIME_RESULT_TABLE_H
#define GCC3D_RUNTIME_RESULT_TABLE_H

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "runtime/sim_job.h"

namespace gcc3d {

/** Summary statistics of one metric over a set of jobs. */
struct Aggregate
{
    std::size_t count = 0;
    double total = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;  ///< p99.9, the tail SLO reporting watches
};

/**
 * Aggregate @p values (empty input yields a zero Aggregate).
 * Percentiles use linear interpolation between closest ranks, the
 * convention of numpy's default percentile.
 */
Aggregate aggregate(std::vector<double> values);

/**
 * Percentile q in [0, 100] of @p sorted (ascending, non-empty) by
 * linear interpolation.
 */
double percentile(const std::vector<double> &sorted, double q);

/**
 * @p a as a JSON object (count/mean/min/p50/p90/p99/p999/max) at
 * round-trip precision.  New exporters should emit aggregates through
 * this instead of hand-rolling the fields (frame_throughput's flat
 * ms_/fps_ keys predate it and keep their schema).
 */
std::string aggregateJson(const Aggregate &a);

/** Result aggregation, comparison and export. */
class ResultTable
{
  public:
    /** A metric extractor over one successful job. */
    using Metric = std::function<double(const JobResult &)>;
    /** A row predicate; rows failing it are excluded. */
    using Filter = std::function<bool(const JobResult &)>;

    explicit ResultTable(std::vector<JobResult> rows);

    const std::vector<JobResult> &rows() const { return rows_; }
    std::size_t failedCount() const;

    /**
     * Aggregate @p metric over successful rows passing @p filter
     * (all successful rows when absent).
     */
    Aggregate over(const Metric &metric, const Filter &filter = {}) const;

    /** Aggregate of modeled FPS over one backend's successful rows. */
    Aggregate fpsByBackend(Backend backend) const;
    /** Aggregate of per-frame energy over one backend's rows. */
    Aggregate energyByBackend(Backend backend) const;

    /** One row of a matched backend-vs-backend comparison. */
    struct Comparison
    {
        std::string scene;
        std::string variant;
        int frame = 0;
        double base_fps = 0.0;
        double other_fps = 0.0;
        double speedup = 0.0;       ///< other_fps / base_fps
        double energy_ratio = 0.0;  ///< base energy / other energy
    };

    /**
     * Match rows of @p other to rows of @p base by (scene, variant,
     * frame) and report per-pair speedup and energy ratio.  Pairs
     * with a failed or missing member are skipped.
     */
    std::vector<Comparison> compare(Backend base, Backend other) const;

    /** CSV with a header row; one line per job. */
    std::string toCsv() const;
    /** JSON array of job objects. */
    std::string toJson() const;

    /** Write a string to @p path; returns false on I/O failure. */
    static bool writeFile(const std::string &path,
                          const std::string &contents);

    /** Human-readable table plus per-backend summary. */
    void print(std::FILE *out = stdout) const;

  private:
    std::vector<JobResult> rows_;
};

} // namespace gcc3d

#endif // GCC3D_RUNTIME_RESULT_TABLE_H
