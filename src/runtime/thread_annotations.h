/**
 * @file
 * Portable Clang thread-safety-analysis annotation macros.
 *
 * Under Clang, these expand to the attributes consumed by
 * -Wthread-safety, which statically proves lock contracts: a member
 * declared GUARDED_BY(mutex_) may only be touched while mutex_ is
 * held, a function declared REQUIRES(mutex_) may only be called with
 * it held, and so on.  CI builds the tree with clang
 * -Wthread-safety -Werror, so a contract violation is a build break,
 * not a latent race.  Under every other compiler the macros expand to
 * nothing and the annotations serve as checked documentation.
 *
 * The analysis only understands annotated capability types, and
 * libstdc++'s std::mutex is not one — use gcc3d::Mutex and the lock
 * wrappers from "runtime/mutex.h", which carry the CAPABILITY /
 * SCOPED_CAPABILITY attributes the analysis needs.
 *
 * Macro names follow the Clang documentation (and Abseil's
 * thread_annotations.h) so the vocabulary is the standard one:
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */

#ifndef GCC3D_RUNTIME_THREAD_ANNOTATIONS_H
#define GCC3D_RUNTIME_THREAD_ANNOTATIONS_H

#if defined(__clang__)
#define GCC3D_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GCC3D_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define CAPABILITY(x) GCC3D_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define SCOPED_CAPABILITY GCC3D_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define GUARDED_BY(x) GCC3D_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by the capability. */
#define PT_GUARDED_BY(x) GCC3D_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only while holding the capabilities. */
#define REQUIRES(...) \
    GCC3D_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function callable only while holding the capabilities shared. */
#define REQUIRES_SHARED(...) \
    GCC3D_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function that acquires the capabilities and does not release them. */
#define ACQUIRE(...) \
    GCC3D_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Shared (reader) flavour of ACQUIRE. */
#define ACQUIRE_SHARED(...) \
    GCC3D_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function that releases capabilities acquired earlier. */
#define RELEASE(...) \
    GCC3D_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Shared (reader) flavour of RELEASE. */
#define RELEASE_SHARED(...) \
    GCC3D_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns @p ret. */
#define TRY_ACQUIRE(...) \
    GCC3D_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function callable only while NOT holding the capabilities. */
#define EXCLUDES(...) GCC3D_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Documents (and checks) a global acquisition order. */
#define ACQUIRED_BEFORE(...) \
    GCC3D_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    GCC3D_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returning a reference to the capability guarding it. */
#define RETURN_CAPABILITY(x) GCC3D_THREAD_ANNOTATION(lock_returned(x))

/** Runtime assertion that the calling thread holds the capability. */
#define ASSERT_CAPABILITY(x) GCC3D_THREAD_ANNOTATION(assert_capability(x))

/** Escape hatch: disables analysis of one function.  Every use needs
 *  a written justification next to it. */
#define NO_THREAD_SAFETY_ANALYSIS \
    GCC3D_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // GCC3D_RUNTIME_THREAD_ANNOTATIONS_H
