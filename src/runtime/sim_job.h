/**
 * @file
 * Job and result records of the batch-simulation runtime.
 *
 * A SimJob pins down one frame simulation completely: the scene (as a
 * fully resolved SceneSpec plus population scale), the trajectory
 * frame index, the backend (GCC / GSCore / GPU roofline), and the
 * effective per-backend configuration.  Scene generation and camera
 * paths are deterministic functions of the spec, so two equal SimJobs
 * produce bit-identical JobResults regardless of which worker thread
 * runs them or in what order — the property the parallel-vs-serial
 * determinism test locks in.
 */

#ifndef GCC3D_RUNTIME_SIM_JOB_H
#define GCC3D_RUNTIME_SIM_JOB_H

#include <cstdint>
#include <string>

#include "core/gcc_config.h"
#include "gpu/gpu_model.h"
#include "gscore/gscore_config.h"
#include "scene/scene_generator.h"

namespace gcc3d {

/** Simulation backends a job can target. */
enum class Backend
{
    Gcc,    ///< the paper's accelerator (cycle model)
    Gscore, ///< GSCore baseline accelerator (cycle model)
    Gpu,    ///< GPU roofline model (GCC dataflow, Sec. 6)
};

/** Lower-case backend name ("gcc", "gscore", "gpu"). */
std::string backendName(Backend backend);

/** Parse a backend name (case-insensitive); throws on unknown names. */
Backend backendFromName(const std::string &name);

/**
 * One named configuration point of a sweep.  All three backend
 * configurations are carried so a variant can be crossed with any
 * backend list; backends ignore the configurations of their rivals.
 */
struct ConfigVariant
{
    std::string name = "base";
    GccConfig gcc;
    GscoreConfig gscore;
    GpuPlatform gpu = GpuPlatform::rtx3090();
};

/** A fully resolved unit of simulation work: one frame on one backend. */
struct SimJob
{
    /** Dense index in the expanded sweep; canonical result order. */
    int id = 0;

    SceneSpec spec;          ///< resolved scene description
    float scale = 1.0f;      ///< population scale in (0, 1]
    int frame = 0;           ///< trajectory frame index
    int frame_count = 1;     ///< trajectory length the frame is drawn from

    Backend backend = Backend::Gcc;
    ConfigVariant variant;   ///< effective configuration
};

/** Measurements produced by executing one SimJob. */
struct JobResult
{
    int id = 0;
    std::string scene;
    std::string variant;
    Backend backend = Backend::Gcc;
    int frame = 0;

    bool ok = false;         ///< false: job threw; see error
    std::string error;

    // ---- Simulated (deterministic) outputs. ----
    double fps = 0.0;            ///< modeled frames/s
    double frame_ms = 0.0;       ///< modeled per-frame latency
    std::uint64_t cycles = 0;    ///< total cycles (0 for GPU roofline)
    double energy_mj = 0.0;      ///< per-frame energy (0 for GPU roofline)
    double dram_mj = 0.0;        ///< off-chip share of energy_mj
    std::uint64_t dram_bytes = 0;
    double area_mm2 = 0.0;       ///< chip area (0 for GPU roofline)
    bool cmode = false;          ///< GCC Compatibility Mode engaged
    int subview_size = 0;        ///< GCC sub-view side (0 = full view)
    double image_checksum = 0.0; ///< pixel-sum fingerprint of the frame

    // ---- Host-side measurement (excluded from determinism). ----
    double wall_ms = 0.0;        ///< host wall-clock time of the job
};

/**
 * True when two results carry identical simulated outputs.  Host
 * wall-clock time is ignored: it is the only field that legitimately
 * differs between a serial and a parallel run of the same sweep.
 */
bool sameSimOutput(const JobResult &a, const JobResult &b);

} // namespace gcc3d

#endif // GCC3D_RUNTIME_SIM_JOB_H
