/**
 * @file
 * 28 nm area/power model of the GCC and GSCore chips.
 *
 * Encodes the synthesized module characteristics the paper publishes
 * (Table 4 for GCC; aggregate numbers for GSCore from Table 3/4) and
 * provides the scaling rules used by the design-space exploration of
 * Fig. 13: compute-array area/power scale with PE count, buffer area
 * with capacity.
 */

#ifndef GCC3D_SIM_AREA_MODEL_H
#define GCC3D_SIM_AREA_MODEL_H

#include <string>
#include <vector>

#include "sim/sram.h"

namespace gcc3d {

/** One synthesized compute module: area, power, configuration. */
struct ModuleSpec
{
    std::string name;
    double area_mm2 = 0.0;
    double power_mw = 0.0;     ///< dynamic power at full activity, 1 GHz
    std::string configuration; ///< human-readable ("64 PEs", ...)
};

/** Area/power description of a full accelerator. */
struct ChipModel
{
    std::string name;
    std::vector<ModuleSpec> compute;
    std::vector<SramConfig> buffers;

    double computeArea() const;
    double computePowerMw() const;
    double bufferArea() const;
    double bufferLeakageMw() const;
    double bufferCapacityKb() const;
    double totalArea() const { return computeArea() + bufferArea(); }

    const ModuleSpec &module(const std::string &name) const;
    const SramConfig &buffer(const std::string &name) const;
};

/** Knobs of the GCC design point (defaults = the paper's chip). */
struct GccDesignPoint
{
    int alpha_pes = 64;          ///< Alpha Unit PE count (8x8)
    int blend_pes = 64;          ///< Blending Unit FMA count
    int projection_ways = 2;     ///< Projection Unit parallelism
    int sh_ways = 1;             ///< SH Unit parallelism
    int rca_units = 4;           ///< comparator array width
    double image_buffer_kb = 128.0;
    double shared_buffer_kb = 12.0;   ///< 2 x 1 x 6 KB
    double sh_buffer_kb = 48.0;       ///< 2 x 3 x 8 KB
    double sorted_buffer_kb = 2.0;    ///< 2 x 1 x 1 KB
};

/**
 * Build the GCC chip model for a design point.  At the default point
 * this reproduces Table 4 exactly (2.711 mm^2 total, 190 KB SRAM,
 * 790 mW); other points scale per-module.
 */
ChipModel gccChipModel(const GccDesignPoint &dp = {});

/**
 * GSCore chip model from its published aggregates: 3.95 mm^2 total
 * (2.70 compute + 1.25 buffer), 272 KB SRAM, 870 mW.  The compute
 * breakdown mirrors its 4-way preprocessing / tile-rendering design.
 */
ChipModel gscoreChipModel();

} // namespace gcc3d

#endif // GCC3D_SIM_AREA_MODEL_H
