#include "sim/dram.h"

#include <algorithm>

namespace gcc3d {

DramConfig
DramConfig::lpddr4_3200()
{
    return {"LPDDR4-3200", 51.2, 0.80, 30.0, 60.0};
}

DramConfig
DramConfig::lpddr4x_4266()
{
    return {"LPDDR4X-4266", 68.3, 0.80, 26.0, 55.0};
}

DramConfig
DramConfig::lpddr5_6400()
{
    return {"LPDDR5-6400", 102.4, 0.80, 23.0, 50.0};
}

DramConfig
DramConfig::lpddr5x_8533()
{
    return {"LPDDR5X-8533", 136.5, 0.80, 21.0, 48.0};
}

DramConfig
DramConfig::lpddr6_14400()
{
    return {"LPDDR6-14400", 230.4, 0.80, 18.0, 45.0};
}

std::vector<DramConfig>
DramConfig::sweep()
{
    return {lpddr4_3200(), lpddr4x_4266(), lpddr5_6400(), lpddr5x_8533(),
            lpddr6_14400()};
}

DramConfig
DramConfig::withBandwidth(double gbps) const
{
    DramConfig c = *this;
    c.peak_gbps = gbps;
    return c;
}

std::uint64_t
Dram::totalBytes() const
{
    std::uint64_t total = 0;
    for (std::uint64_t b : bytes_)
        total += b;
    return total;
}

std::uint64_t
Dram::busCycles() const
{
    return cyclesFor(totalBytes());
}

double
Dram::energyMj() const
{
    return static_cast<double>(totalBytes()) *
           config_.energy_pj_per_byte * 1e-9;
}

void
Dram::reset()
{
    std::fill(std::begin(bytes_), std::end(bytes_), 0);
}

} // namespace gcc3d
