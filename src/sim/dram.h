/**
 * @file
 * Off-chip DRAM model.
 *
 * The accelerators are evaluated against an LPDDR4-3200 part with a
 * peak bandwidth of 51.2 GB/s (Sec. 5.1); Fig. 14 sweeps the memory
 * technology up to LPDDR6.  Both simulators account traffic by
 * category (3D Gaussian attributes, 2D projected splats, key-value
 * tile mappings — Fig. 11b), and the model converts bytes into
 * occupancy cycles at the accelerator clock and into energy.
 */

#ifndef GCC3D_SIM_DRAM_H
#define GCC3D_SIM_DRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace gcc3d {

/** Traffic categories tracked for Fig. 11b. */
enum class TrafficClass
{
    Gaussian3D,  ///< 59-float trained parameters (and partial loads)
    Splat2D,     ///< projected 2D attributes spilled/refetched
    KeyValue,    ///< Gaussian-tile index pairs
    Meta,        ///< depth/ID lists, camera data, misc
    NumClasses,
};

/** Static description of a DRAM technology point. */
struct DramConfig
{
    std::string name = "LPDDR4-3200";
    double peak_gbps = 51.2;        ///< peak bandwidth, GB/s
    double efficiency = 0.80;       ///< achievable fraction of peak
    double energy_pj_per_byte = 30.0; ///< access energy incl. PHY
    double latency_ns = 60.0;       ///< first-word latency

    /** Named presets used by Fig. 14. */
    static DramConfig lpddr4_3200();
    static DramConfig lpddr4x_4266();
    static DramConfig lpddr5_6400();
    static DramConfig lpddr5x_8533();
    static DramConfig lpddr6_14400();

    /** All presets in ascending bandwidth order. */
    static std::vector<DramConfig> sweep();

    /** A copy of this config with peak bandwidth @p gbps. */
    DramConfig withBandwidth(double gbps) const;
};

/** Per-frame DRAM accounting: bytes by class, cycles, energy. */
class Dram
{
  public:
    explicit Dram(DramConfig config = {}, double clock_ghz = 1.0)
        : config_(std::move(config)), clock_ghz_(clock_ghz) {}

    const DramConfig &config() const { return config_; }

    /** Record @p bytes of traffic of class @p cls. */
    void
    access(TrafficClass cls, std::uint64_t bytes)
    {
        bytes_[static_cast<int>(cls)] += bytes;
    }

    std::uint64_t
    bytes(TrafficClass cls) const
    {
        return bytes_[static_cast<int>(cls)];
    }

    std::uint64_t totalBytes() const;

    /** Effective bandwidth in bytes per accelerator cycle. */
    double
    bytesPerCycle() const
    {
        return config_.peak_gbps * config_.efficiency / clock_ghz_;
    }

    /** Cycles the recorded traffic occupies the memory interface. */
    std::uint64_t busCycles() const;

    /** Cycles a burst of @p bytes occupies (without recording it). */
    std::uint64_t
    cyclesFor(std::uint64_t bytes) const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(bytes) / bytesPerCycle() + 0.5);
    }

    /** Energy of the recorded traffic in millijoule. */
    double energyMj() const;

    void reset();

  private:
    DramConfig config_;
    double clock_ghz_;
    std::uint64_t bytes_[static_cast<int>(TrafficClass::NumClasses)] = {};
};

} // namespace gcc3d

#endif // GCC3D_SIM_DRAM_H
