/**
 * @file
 * Energy integration for the accelerator simulators.
 *
 * Per-frame energy = sum over compute modules of (busy_cycles x
 * module dynamic power) + SRAM access energy + DRAM access energy
 * (+ leakage over the frame).  Module powers come from the ChipModel
 * (Table 4); the integrator produces the on-chip / off-chip /
 * computation decomposition of Fig. 12.
 */

#ifndef GCC3D_SIM_ENERGY_MODEL_H
#define GCC3D_SIM_ENERGY_MODEL_H

#include <cstdint>
#include <map>
#include <string>

#include "sim/area_model.h"
#include "sim/dram.h"

namespace gcc3d {

/** Per-frame energy decomposition in millijoule (Fig. 12 categories). */
struct EnergyBreakdown
{
    double compute_mj = 0.0;  ///< datapath dynamic energy
    double sram_mj = 0.0;     ///< on-chip memory access energy
    double dram_mj = 0.0;     ///< off-chip memory access energy
    double leakage_mj = 0.0;  ///< static energy over the frame

    double
    total() const
    {
        return compute_mj + sram_mj + dram_mj + leakage_mj;
    }
};

/** Accumulates module activity and converts it to energy. */
class EnergyIntegrator
{
  public:
    /**
     * @param chip       the chip whose module powers apply
     * @param clock_ghz  accelerator clock (1 GHz in the paper)
     */
    explicit EnergyIntegrator(const ChipModel &chip,
                              double clock_ghz = 1.0)
        : chip_(&chip), clock_ghz_(clock_ghz) {}

    /** Record @p cycles of full-activity operation of @p module. */
    void
    busy(const std::string &module, std::uint64_t cycles)
    {
        busy_cycles_[module] += cycles;
    }

    /** Record SRAM access energy (from Sram::energyMj). */
    void addSramMj(double mj) { sram_mj_ += mj; }

    std::uint64_t
    busyCycles(const std::string &module) const
    {
        auto it = busy_cycles_.find(module);
        return it == busy_cycles_.end() ? 0 : it->second;
    }

    /**
     * Produce the frame energy breakdown.
     *
     * @param frame_cycles  total frame latency (for leakage)
     * @param dram          DRAM accounting for the frame
     */
    EnergyBreakdown breakdown(std::uint64_t frame_cycles,
                              const Dram &dram) const;

  private:
    const ChipModel *chip_;
    double clock_ghz_;
    std::map<std::string, std::uint64_t> busy_cycles_;
    double sram_mj_ = 0.0;
};

} // namespace gcc3d

#endif // GCC3D_SIM_ENERGY_MODEL_H
