#include "sim/pipeline.h"

namespace gcc3d {

PipelineResult
composePipeline(const std::vector<StageCost> &stages)
{
    PipelineResult r;
    std::uint64_t fill = 0;
    for (const StageCost &s : stages) {
        if (s.busy_cycles > r.bottleneck_cycles) {
            r.bottleneck_cycles = s.busy_cycles;
            r.bottleneck = s.name;
        }
        fill += s.latency;
    }
    r.cycles = r.bottleneck_cycles + fill;
    return r;
}

} // namespace gcc3d
