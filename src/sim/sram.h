/**
 * @file
 * On-chip SRAM buffer model (CACTI-P-style analytic estimates).
 *
 * The paper models buffers with CACTI-P at 28 nm; Table 4 publishes
 * per-buffer area and power for the chosen configurations.  This
 * model reproduces those published points exactly and extrapolates
 * area/energy for other capacities (needed by the image-buffer design
 * space exploration of Fig. 13a) with standard sublinear scaling.
 */

#ifndef GCC3D_SIM_SRAM_H
#define GCC3D_SIM_SRAM_H

#include <cstdint>
#include <string>

namespace gcc3d {

/** Static description of one on-chip buffer. */
struct SramConfig
{
    std::string name;
    double capacity_kb = 32.0;     ///< total capacity
    int banks = 1;                 ///< independent banks
    double read_energy_pj = 5.0;   ///< per 32-byte access
    double write_energy_pj = 6.0;  ///< per 32-byte access
    double area_mm2 = 0.1;         ///< silicon area
    double leakage_mw = 0.1;       ///< static power

    /**
     * Scale this buffer description to a new capacity: area grows
     * ~linearly, access energy with sqrt(capacity) (longer bit/word
     * lines), matching CACTI trends at fixed bank count.
     */
    SramConfig scaledTo(double new_kb) const;
};

/** Per-frame access accounting for one buffer. */
class Sram
{
  public:
    explicit Sram(SramConfig config) : config_(std::move(config)) {}

    const SramConfig &config() const { return config_; }

    void read(std::uint64_t bytes) { read_bytes_ += bytes; }
    void write(std::uint64_t bytes) { write_bytes_ += bytes; }

    std::uint64_t readBytes() const { return read_bytes_; }
    std::uint64_t writeBytes() const { return write_bytes_; }

    /** Dynamic access energy in millijoule (32B access granularity). */
    double energyMj() const;

    void reset() { read_bytes_ = write_bytes_ = 0; }

  private:
    SramConfig config_;
    std::uint64_t read_bytes_ = 0;
    std::uint64_t write_bytes_ = 0;
};

} // namespace gcc3d

#endif // GCC3D_SIM_SRAM_H
