/**
 * @file
 * Pipeline composition helpers for the cycle models.
 *
 * Both accelerators are deep pipelines of heterogeneous units.  For a
 * batch of work flowing through a pipeline, the steady-state cost is
 * governed by the bottleneck stage; fill/drain adds the sum of stage
 * latencies once.  Frame phases that are serialized (e.g., GCC's
 * Stage I grouping barrier, GSCore's preprocess-then-render split)
 * are summed explicitly by the simulators.
 */

#ifndef GCC3D_SIM_PIPELINE_H
#define GCC3D_SIM_PIPELINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace gcc3d {

/** Occupancy of one pipeline stage for a batch of work. */
struct StageCost
{
    std::string name;
    std::uint64_t busy_cycles = 0;  ///< cycles the stage is occupied
    std::uint64_t latency = 0;      ///< per-item latency (fill cost)
};

/** Result of composing a batch through a pipeline. */
struct PipelineResult
{
    std::uint64_t cycles = 0;       ///< end-to-end cycles
    std::string bottleneck;         ///< stage with max occupancy
    std::uint64_t bottleneck_cycles = 0;
};

/**
 * Compose overlapping stages: total = max(busy) + sum(latencies).
 * An empty stage list yields zero cycles.
 */
PipelineResult composePipeline(const std::vector<StageCost> &stages);

/** Integer ceiling division helper used by the throughput models. */
constexpr std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0 : (num + den - 1) / den;
}

} // namespace gcc3d

#endif // GCC3D_SIM_PIPELINE_H
