#include "sim/energy_model.h"

namespace gcc3d {

EnergyBreakdown
EnergyIntegrator::breakdown(std::uint64_t frame_cycles,
                            const Dram &dram) const
{
    EnergyBreakdown e;

    // Dynamic compute energy: busy cycles at the module's synthesized
    // power.  power[mW] * time[ns] = pJ; 1e-9 converts pJ to mJ.
    double cycle_ns = 1.0 / clock_ghz_;
    for (const ModuleSpec &m : chip_->compute) {
        auto it = busy_cycles_.find(m.name);
        if (it == busy_cycles_.end())
            continue;
        e.compute_mj += static_cast<double>(it->second) * cycle_ns *
                        m.power_mw * 1e-9;
    }

    // Idle modules still clock: charge 8% of dynamic power for the
    // remaining frame cycles (clock tree + enables).
    constexpr double kIdleFraction = 0.08;
    for (const ModuleSpec &m : chip_->compute) {
        std::uint64_t busy = busyCycles(m.name);
        std::uint64_t idle =
            frame_cycles > busy ? frame_cycles - busy : 0;
        e.leakage_mj += static_cast<double>(idle) * cycle_ns *
                        m.power_mw * kIdleFraction * 1e-9;
    }

    // Buffer leakage over the frame.
    e.leakage_mj += chip_->bufferLeakageMw() *
                    static_cast<double>(frame_cycles) * cycle_ns * 1e-9;

    e.sram_mj = sram_mj_;
    e.dram_mj = dram.energyMj();
    return e;
}

} // namespace gcc3d
