#include "sim/area_model.h"

#include <stdexcept>

namespace gcc3d {

double
ChipModel::computeArea() const
{
    double a = 0.0;
    for (const ModuleSpec &m : compute)
        a += m.area_mm2;
    return a;
}

double
ChipModel::computePowerMw() const
{
    double p = 0.0;
    for (const ModuleSpec &m : compute)
        p += m.power_mw;
    return p;
}

double
ChipModel::bufferArea() const
{
    double a = 0.0;
    for (const SramConfig &b : buffers)
        a += b.area_mm2;
    return a;
}

double
ChipModel::bufferLeakageMw() const
{
    double p = 0.0;
    for (const SramConfig &b : buffers)
        p += b.leakage_mw;
    return p;
}

double
ChipModel::bufferCapacityKb() const
{
    double c = 0.0;
    for (const SramConfig &b : buffers)
        c += b.capacity_kb;
    return c;
}

const ModuleSpec &
ChipModel::module(const std::string &name) const
{
    for (const ModuleSpec &m : compute)
        if (m.name == name)
            return m;
    throw std::invalid_argument("ChipModel: no module " + name);
}

const SramConfig &
ChipModel::buffer(const std::string &name) const
{
    for (const SramConfig &b : buffers)
        if (b.name == name)
            return b;
    throw std::invalid_argument("ChipModel: no buffer " + name);
}

ChipModel
gccChipModel(const GccDesignPoint &dp)
{
    ChipModel chip;
    chip.name = "GCC";

    auto scale = [](double base, double num, double den) {
        return base * num / den;
    };

    // Compute modules: Table 4 base points, linear scaling in the
    // array/way dimension.
    chip.compute = {
        {"RCA", scale(0.010, dp.rca_units, 4),
         scale(2.0, dp.rca_units, 4),
         std::to_string(dp.rca_units) + " units"},
        {"ProjectionUnit", scale(0.358, dp.projection_ways, 2),
         scale(147.0, dp.projection_ways, 2),
         std::to_string(dp.projection_ways) + " units"},
        {"SHUnit", scale(0.339, dp.sh_ways, 1),
         scale(141.0, dp.sh_ways, 1),
         std::to_string(dp.sh_ways) + " units"},
        {"SortUnit", 0.010, 11.0, "1 unit (16-wide bitonic)"},
        {"AlphaUnit", scale(0.576, dp.alpha_pes, 64),
         scale(266.0, dp.alpha_pes, 64),
         std::to_string(dp.alpha_pes) + " PEs"},
        {"BlendingUnit", scale(0.382, dp.blend_pes, 64),
         scale(172.0, dp.blend_pes, 64),
         std::to_string(dp.blend_pes) + " PEs"},
    };

    // Buffers: Table 4 base points, scaled to the design point's
    // capacities (energies are per-32B-access CACTI-style values).
    SramConfig shared{"SharedBuffer", 12.0, 2, 3.5, 4.0, 0.019, 3.0};
    SramConfig sh{"SHBuffer", 48.0, 6, 4.5, 5.2, 0.116, 10.0};
    SramConfig sorted{"SortedBuffer", 2.0, 2, 2.0, 2.4, 0.029, 1.0};
    SramConfig image{"ImageBuffer", 128.0, 4, 6.0, 7.0, 0.872, 37.0};

    chip.buffers = {
        shared.scaledTo(dp.shared_buffer_kb),
        sh.scaledTo(dp.sh_buffer_kb),
        sorted.scaledTo(dp.sorted_buffer_kb),
        image.scaledTo(dp.image_buffer_kb),
    };
    return chip;
}

ChipModel
gscoreChipModel()
{
    ChipModel chip;
    chip.name = "GSCore";

    // GSCore publishes totals (2.70 mm^2 compute / 830 mW, 1.25 mm^2
    // buffers / 40 mW, 272 KB).  The compute split below follows its
    // architecture: 4-way culling/conversion (projection + SH),
    // hierarchical sorting, and two volume-rendering units.
    chip.compute = {
        {"CCU", 0.72, 300.0, "4 units (projection + SH)"},
        {"GSU", 0.18, 50.0, "bitonic merge sort"},
        {"VRU", 1.80, 480.0, "2 units (alpha + blending)"},
    };
    chip.buffers = {
        {"GaussianBuffer", 112.0, 4, 5.5, 6.4, 0.50, 16.0},
        {"TileBuffer", 96.0, 4, 5.0, 6.0, 0.45, 14.0},
        {"SortBuffer", 64.0, 2, 4.5, 5.4, 0.30, 10.0},
    };
    return chip;
}

} // namespace gcc3d
