/**
 * @file
 * Lightweight statistics registry for the hardware simulators.
 *
 * Modeled on gem5's stats package at a much smaller scale: named
 * scalar counters and histograms that modules update during
 * simulation and that the harness dumps after each frame.
 */

#ifndef GCC3D_SIM_STATS_H
#define GCC3D_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace gcc3d {

/** A named scalar accumulator. */
class Counter
{
  public:
    Counter() = default;

    void inc(double v = 1.0) { value_ += v; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** A fixed-bucket histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 10) {}
    Histogram(double lo, double hi, int buckets);

    void sample(double v, double weight = 1.0);
    std::uint64_t count() const { return count_; }
    double mean() const;
    double bucketLo(int i) const;
    const std::vector<double> &buckets() const { return buckets_; }
    void reset();

  private:
    double lo_;
    double hi_;
    std::vector<double> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A registry of named counters and histograms.  Lookup creates on
 * first use, so modules can record stats without registration
 * boilerplate.
 */
class StatSet
{
  public:
    /** Get (creating if needed) the counter called @p name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Read a counter's value; 0 if it was never touched. */
    double
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0.0 : it->second.value();
    }

    /** Get (creating if needed) the histogram called @p name. */
    Histogram &
    histogram(const std::string &name, double lo = 0.0, double hi = 1.0,
              int buckets = 10)
    {
        auto it = histograms_.find(name);
        if (it == histograms_.end())
            it = histograms_.emplace(name, Histogram(lo, hi, buckets))
                     .first;
        return it->second;
    }

    const std::map<std::string, Counter> &counters() const
    { return counters_; }

    /** Pretty-print all stats, one per line, prefixed by @p prefix. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace gcc3d

#endif // GCC3D_SIM_STATS_H
