#include "sim/stats.h"

#include <algorithm>
#include <iomanip>

namespace gcc3d {

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), buckets_(static_cast<std::size_t>(buckets), 0.0)
{
}

void
Histogram::sample(double v, double weight)
{
    double t = (v - lo_) / (hi_ - lo_);
    int n = static_cast<int>(buckets_.size());
    int idx = static_cast<int>(t * n);
    idx = std::clamp(idx, 0, n - 1);
    buckets_[static_cast<std::size_t>(idx)] += weight;
    ++count_;
    sum_ += v * weight;
}

double
Histogram::mean() const
{
    double total = 0.0;
    for (double b : buckets_)
        total += b;
    return total > 0.0 ? sum_ / total : 0.0;
}

double
Histogram::bucketLo(int i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(buckets_.size());
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0.0);
    count_ = 0;
    sum_ = 0.0;
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, c] : counters_) {
        os << prefix << std::left << std::setw(40) << name << " "
           << std::right << std::setw(16) << c.value() << "\n";
    }
}

void
StatSet::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, h] : histograms_)
        h.reset();
}

} // namespace gcc3d
