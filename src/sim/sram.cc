#include "sim/sram.h"

#include <cmath>

namespace gcc3d {

SramConfig
SramConfig::scaledTo(double new_kb) const
{
    SramConfig c = *this;
    double ratio = new_kb / capacity_kb;
    c.capacity_kb = new_kb;
    c.area_mm2 = area_mm2 * std::pow(ratio, 0.95);
    c.read_energy_pj = read_energy_pj * std::sqrt(ratio);
    c.write_energy_pj = write_energy_pj * std::sqrt(ratio);
    c.leakage_mw = leakage_mw * ratio;
    return c;
}

double
Sram::energyMj() const
{
    constexpr double kAccessBytes = 32.0;
    double reads = static_cast<double>(read_bytes_) / kAccessBytes;
    double writes = static_cast<double>(write_bytes_) / kAccessBytes;
    return (reads * config_.read_energy_pj +
            writes * config_.write_energy_pj) *
           1e-9;
}

} // namespace gcc3d
