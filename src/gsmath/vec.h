/**
 * @file
 * Small fixed-size vector types used throughout the 3DGS pipeline.
 *
 * The rendering pipeline operates on 2-, 3- and 4-component float
 * vectors (screen positions, world positions, quaternions, colors).
 * These are deliberately simple aggregate types: no SIMD, no
 * expression templates — the hardware simulators count operations
 * explicitly, so the math layer stays transparent.
 */

#ifndef GCC3D_GSMATH_VEC_H
#define GCC3D_GSMATH_VEC_H

#include <cmath>
#include <cstddef>
#include <ostream>

namespace gcc3d {

/** A 2-component vector (screen-space positions, offsets). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2() = default;
    constexpr Vec2(float x_, float y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(float s) const { return {x / s, y / s}; }
    constexpr Vec2 &operator+=(const Vec2 &o) { x += o.x; y += o.y; return *this; }
    constexpr Vec2 &operator-=(const Vec2 &o) { x -= o.x; y -= o.y; return *this; }
    constexpr bool operator==(const Vec2 &o) const = default;

    /** Dot product. */
    constexpr float dot(const Vec2 &o) const { return x * o.x + y * o.y; }
    /** Squared Euclidean norm. */
    constexpr float norm2() const { return dot(*this); }
    /** Euclidean norm. */
    float norm() const { return std::sqrt(norm2()); }
};

/** A 3-component vector (world positions, scales, RGB colors). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    constexpr Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    constexpr Vec3 &operator*=(float s) { x *= s; y *= s; z *= s; return *this; }
    constexpr bool operator==(const Vec3 &o) const = default;

    constexpr float dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }
    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y,
                z * o.x - x * o.z,
                x * o.y - y * o.x};
    }
    constexpr float norm2() const { return dot(*this); }
    float norm() const { return std::sqrt(norm2()); }

    /** Returns this vector scaled to unit length (zero vector unchanged). */
    Vec3
    normalized() const
    {
        float n = norm();
        return n > 0.0f ? *this / n : *this;
    }

    /** Component-wise product (Hadamard). */
    constexpr Vec3 cwiseMul(const Vec3 &o) const
    { return {x * o.x, y * o.y, z * o.z}; }

    /** Component-wise min against another vector. */
    constexpr Vec3 cwiseMin(const Vec3 &o) const
    {
        return {x < o.x ? x : o.x, y < o.y ? y : o.y, z < o.z ? z : o.z};
    }
    /** Component-wise max against another vector. */
    constexpr Vec3 cwiseMax(const Vec3 &o) const
    {
        return {x > o.x ? x : o.x, y > o.y ? y : o.y, z > o.z ? z : o.z};
    }

    constexpr float operator[](size_t i) const
    { return i == 0 ? x : (i == 1 ? y : z); }
};

/** A 4-component vector (homogeneous positions, quaternion storage). */
struct Vec4
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    constexpr Vec4() = default;
    constexpr Vec4(float x_, float y_, float z_, float w_)
        : x(x_), y(y_), z(z_), w(w_) {}
    constexpr Vec4(const Vec3 &v, float w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

    constexpr Vec4 operator+(const Vec4 &o) const
    { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
    constexpr Vec4 operator-(const Vec4 &o) const
    { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
    constexpr Vec4 operator*(float s) const
    { return {x * s, y * s, z * s, w * s}; }
    constexpr Vec4 operator/(float s) const
    { return {x / s, y / s, z / s, w / s}; }
    constexpr bool operator==(const Vec4 &o) const = default;

    constexpr float dot(const Vec4 &o) const
    { return x * o.x + y * o.y + z * o.z + w * o.w; }
    constexpr float norm2() const { return dot(*this); }
    float norm() const { return std::sqrt(norm2()); }

    /** Drop the homogeneous coordinate. */
    constexpr Vec3 xyz() const { return {x, y, z}; }

    /** Perspective divide: (x/w, y/w, z/w). */
    constexpr Vec3 homogenize() const { return {x / w, y / w, z / w}; }
};

inline constexpr Vec2 operator*(float s, const Vec2 &v) { return v * s; }
inline constexpr Vec3 operator*(float s, const Vec3 &v) { return v * s; }
inline constexpr Vec4 operator*(float s, const Vec4 &v) { return v * s; }

inline std::ostream &
operator<<(std::ostream &os, const Vec2 &v)
{
    return os << "(" << v.x << ", " << v.y << ")";
}

inline std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

inline std::ostream &
operator<<(std::ostream &os, const Vec4 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ", "
              << v.w << ")";
}

} // namespace gcc3d

#endif // GCC3D_GSMATH_VEC_H
