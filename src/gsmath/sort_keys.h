/**
 * @file
 * Order-preserving float sort keys and a stable LSD radix sort.
 *
 * Per-tile depth sorting is the hottest sort in the standard dataflow
 * (GPUs run it as a radix sort over packed key-value words; GSCore as
 * a bitonic network).  This module provides the host-side analogue:
 *
 *  - a monotone float -> uint32 mapping (equal floats map to equal
 *    keys, f < g implies key(f) < key(g)), so sorting the keys is
 *    exactly sorting the floats;
 *  - a stable least-significant-digit radix sort over packed 64-bit
 *    (key << 32 | payload) words that orders by the key half only,
 *    with a caller-owned scratch buffer so per-tile sorts reuse one
 *    allocation.
 *
 * Because the sort is stable on the key half, feeding it a list in
 * ascending payload order reproduces std::stable_sort's tie order.
 */

#ifndef GCC3D_GSMATH_SORT_KEYS_H
#define GCC3D_GSMATH_SORT_KEYS_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gsmath/simd.h"

namespace gcc3d {

/**
 * Monotone mapping from float to uint32: flips the sign bit of
 * non-negative floats and all bits of negative ones, so unsigned
 * integer order equals IEEE-754 float order.  -0.0f is normalized to
 * +0.0f first so floats that compare equal always map to equal keys
 * (preserving stable-sort tie order).  NaNs are not meaningful sort
 * inputs here and map to large keys.
 */
inline std::uint32_t
orderedKeyFromFloat(float f)
{
    std::uint32_t u = std::bit_cast<std::uint32_t>(f);
    if (u == 0x80000000u)
        u = 0;  // -0.0f sorts identically to +0.0f
    return (u & 0x80000000u) != 0 ? ~u : (u | 0x80000000u);
}

/**
 * Vectorized orderedKeyFromFloat over an array: @p dst[i] =
 * orderedKeyFromFloat(@p src[i]) for i in [0, n).  The mapping is
 * pure integer bit manipulation, so the SIMD main loop is exactly
 * equivalent to the scalar tail (and bit-identical to calling the
 * scalar function n times — tests/test_sort_keys.cc locks that in).
 */
inline void
orderedKeysFromFloats(const float *src, std::uint32_t *dst,
                      std::size_t n)
{
    using namespace simd;
    const IntV neg_zero(static_cast<std::int32_t>(0x80000000u));
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
        IntV u = bitcastToInt(FloatV::load(src + i));
        // -0.0f normalizes to +0.0f so equal floats share a key.
        u = selectInt(cmpEq(u, neg_zero), IntV(0), u);
        // Negative floats flip every bit, non-negative ones just set
        // the sign bit: u ^ (sign-smear | 0x80000000).
        IntV key = u ^ (u.shiftRightArith<31>() | neg_zero);
        key.store(reinterpret_cast<std::int32_t *>(dst + i));
    }
    for (; i < n; ++i)
        dst[i] = orderedKeyFromFloat(src[i]);
}

/** Pack a sort key and its payload into one radix-sortable word. */
inline std::uint64_t
packKeyValue(std::uint32_t key, std::uint32_t value)
{
    return (static_cast<std::uint64_t>(key) << 32) | value;
}

/** Payload half of a packed key-value word. */
inline std::uint32_t
packedValue(std::uint64_t kv)
{
    return static_cast<std::uint32_t>(kv);
}

/**
 * Stable ascending sort of @p items[0..n) by the high 32 bits of each
 * word.  Equal-key items keep their relative order.  @p scratch is
 * grown as needed and may be reused across calls; its contents are
 * unspecified afterwards.
 *
 * Small inputs use a stable insertion sort; larger ones four LSD
 * counting passes over the key bytes, each skipped when every item
 * shares that byte (the common case for a tile's narrow depth range).
 */
inline void
radixSortByKey(std::uint64_t *items, std::size_t n,
               std::vector<std::uint64_t> &scratch)
{
    if (n < 2)
        return;

    constexpr std::size_t kInsertionCutoff = 32;
    if (n <= kInsertionCutoff) {
        for (std::size_t i = 1; i < n; ++i) {
            std::uint64_t v = items[i];
            std::uint32_t key = static_cast<std::uint32_t>(v >> 32);
            std::size_t j = i;
            while (j > 0 &&
                   static_cast<std::uint32_t>(items[j - 1] >> 32) > key) {
                items[j] = items[j - 1];
                --j;
            }
            items[j] = v;
        }
        return;
    }

    if (scratch.size() < n)
        scratch.resize(n);

    std::uint64_t *src = items;
    std::uint64_t *dst = scratch.data();
    for (int pass = 0; pass < 4; ++pass) {
        const int shift = 32 + pass * 8;
        std::size_t count[256] = {};
        for (std::size_t i = 0; i < n; ++i)
            ++count[(src[i] >> shift) & 0xffu];
        // All items share this key byte: the pass is the identity.
        if (count[(src[0] >> shift) & 0xffu] == n)
            continue;
        std::size_t sum = 0;
        for (std::size_t b = 0; b < 256; ++b) {
            std::size_t c = count[b];
            count[b] = sum;
            sum += c;
        }
        for (std::size_t i = 0; i < n; ++i)
            dst[count[(src[i] >> shift) & 0xffu]++] = src[i];
        std::uint64_t *t = src;
        src = dst;
        dst = t;
    }
    if (src != items) {
        for (std::size_t i = 0; i < n; ++i)
            items[i] = src[i];
    }
}

} // namespace gcc3d

#endif // GCC3D_GSMATH_SORT_KEYS_H
