/**
 * @file
 * Projected-Gaussian ellipse utilities.
 *
 * A 2D Gaussian footprint is characterized by its covariance Sigma'
 * (a symmetric 2x2 matrix).  This module provides:
 *
 *  - eigen decomposition of symmetric 2x2 matrices (major/minor axes),
 *  - the conic form (inverse covariance) used by alpha evaluation,
 *  - the static 3-sigma bounding radius (Eq. 6),
 *  - the opacity-aware "omega-sigma law" radius (Eq. 8),
 *  - axis-aligned (AABB) and oriented (OBB) bounding boxes used by the
 *    standard dataflow and GSCore respectively (Table 1 / Fig. 4),
 *  - exact effective-region pixel counting against the alpha threshold.
 */

#ifndef GCC3D_GSMATH_ELLIPSE_H
#define GCC3D_GSMATH_ELLIPSE_H

#include <cstdint>

#include "gsmath/mat.h"
#include "gsmath/vec.h"

namespace gcc3d {

/** Minimum alpha a pixel must receive to be considered covered (1/255). */
inline constexpr float kAlphaMin = 1.0f / 255.0f;

/** Eigenvalues (l1 >= l2) and rotation angle of a symmetric 2x2 matrix. */
struct Eigen2
{
    float l1 = 0.0f;   ///< larger eigenvalue
    float l2 = 0.0f;   ///< smaller eigenvalue
    float angle = 0.0f; ///< orientation of the major axis, radians
};

/**
 * Eigen decomposition of a symmetric 2x2 matrix.
 *
 * Uses the closed form via trace/determinant; eigenvalues are clamped
 * to be non-negative (covariances are PSD up to rounding).
 */
Eigen2 symmetricEigen2(const Mat2 &sigma);

/** Integer axis-aligned pixel rectangle [x0,x1] x [y0,y1], inclusive. */
struct PixelRect
{
    int x0 = 0;
    int y0 = 0;
    int x1 = -1;
    int y1 = -1;

    bool empty() const { return x1 < x0 || y1 < y0; }
    std::int64_t
    area() const
    {
        if (empty())
            return 0;
        return static_cast<std::int64_t>(x1 - x0 + 1) * (y1 - y0 + 1);
    }

    /** Clip against an image of size w x h; may become empty. */
    PixelRect clipped(int w, int h) const;
};

/**
 * A projected 2D Gaussian footprint: center, covariance, conic and
 * derived extents.  Built once per Gaussian in Stage II and consumed
 * by bounding/culling and by alpha evaluation.
 */
struct Ellipse
{
    Vec2 center;       ///< projected mean mu' in pixel coordinates
    Mat2 cov;          ///< 2D covariance Sigma'
    Mat2 conic;        ///< inverse covariance Sigma'^-1
    Eigen2 eig;        ///< eigen structure of Sigma'

    /** Construct from center and covariance; computes conic and eigen. */
    static Ellipse fromCovariance(const Vec2 &center, const Mat2 &cov);

    /**
     * Mahalanobis quadratic form d^T Sigma'^-1 d for pixel offset
     * d = p - center.  Alpha is omega * exp(-q/2).
     */
    float
    quadraticForm(const Vec2 &p) const
    {
        Vec2 d = p - center;
        return d.x * (conic(0, 0) * d.x + conic(0, 1) * d.y) +
               d.y * (conic(1, 0) * d.x + conic(1, 1) * d.y);
    }

    /** Alpha contribution at pixel @p p given opacity @p omega (Eq. 9). */
    float
    alphaAt(const Vec2 &p, float omega) const
    {
        float q = quadraticForm(p);
        float a = omega * std::exp(-0.5f * q);
        return a > 0.99f ? 0.99f : a;
    }
};

/** Conservative 3-sigma bounding radius in pixels (Eq. 6). */
int radius3Sigma(const Eigen2 &eig);

/**
 * Opacity-aware bounding radius (the omega-sigma law, Eq. 8):
 * r = ceil(sqrt(2 ln(255 omega) * max(l1, l2))).
 * Returns 0 when the Gaussian can never reach alpha >= 1/255
 * (omega <= 1/255).
 */
int radiusOmegaSigma(const Eigen2 &eig, float omega);

/** Axis-aligned bounding box of a circle of radius r around center. */
PixelRect aabbFromRadius(const Vec2 &center, int radius);

/**
 * Axis-aligned bounding box of the *oriented* 3-sigma ellipse; tighter
 * than aabbFromRadius when the footprint is anisotropic.  Extent along
 * each image axis is sqrt(3^2 * Sigma'_ii).
 */
PixelRect aabbFromCovariance(const Vec2 &center, const Mat2 &cov,
                             float kappa2);

/**
 * Pixel count of the oriented bounding box (OBB) of the ellipse at a
 * given Mahalanobis level kappa (e.g., 3 for the 3-sigma rule).  The
 * OBB has side lengths 2*kappa*sqrt(l1) x 2*kappa*sqrt(l2); GSCore
 * rasterizes conservative subtiles inside it, so its pixel cost is the
 * OBB area intersected with the screen.
 */
std::int64_t obbPixelCount(const Ellipse &e, float kappa, int width,
                           int height);

/**
 * Exact number of pixels whose alpha meets kAlphaMin — the "effective"
 * region of Fig. 4 / the Rendered row of Table 1.  Scans the
 * omega-sigma AABB and tests Eq. 9 per pixel.
 */
std::int64_t effectivePixelCount(const Ellipse &e, float omega, int width,
                                 int height);

} // namespace gcc3d

#endif // GCC3D_GSMATH_ELLIPSE_H
