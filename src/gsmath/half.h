/**
 * @file
 * IEEE 754 binary16 (fp16) conversions.
 *
 * The .gsc v2 scene format stores spherical-harmonic color
 * coefficients as fp16: trained SH coefficients live in a few units
 * around zero, where half precision carries ~3 decimal digits — far
 * below the color quantization any 8-bit display applies, and half
 * the bytes of fp32.  These are pure bit-manipulation converters
 * (no F16C dependency) so every backend, including the forced-scalar
 * CI leg, decodes identically.
 */

#ifndef GCC3D_GSMATH_HALF_H
#define GCC3D_GSMATH_HALF_H

#include <cstdint>
#include <cstring>

namespace gcc3d {

/**
 * Convert @p f to fp16 bits with round-to-nearest-even.  Values above
 * the finite fp16 range saturate to +/-65504 (not infinity) so that a
 * decoded scene never injects infs into the render; NaN maps to a
 * quiet fp16 NaN.
 */
inline std::uint16_t
floatToHalf(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    std::uint32_t abs = bits & 0x7fffffffu;

    if (abs >= 0x7f800000u) {  // inf or NaN
        if (abs > 0x7f800000u)
            return static_cast<std::uint16_t>(sign | 0x7e00u);  // qNaN
        return static_cast<std::uint16_t>(sign | 0x7bffu);  // inf -> 65504
    }
    if (abs >= 0x477ff000u) {
        // Rounds to >= 2^16: saturate to the largest finite half.
        return static_cast<std::uint16_t>(sign | 0x7bffu);
    }
    if (abs < 0x38800000u) {  // subnormal half (|f| < 2^-14) or zero
        if (abs < 0x33000000u)  // < 2^-25: rounds to zero
            return static_cast<std::uint16_t>(sign);
        // Add the implicit leading 1, shift into the 10-bit subnormal
        // mantissa position, round to nearest even.  The 24-bit
        // significand sits at 2^23; the subnormal unit is 2^-24, so
        // the drop count is exactly 126 - exponent field (14..24).
        const int shift = 126 - static_cast<int>(abs >> 23);
        std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
        const std::uint32_t drop = static_cast<std::uint32_t>(shift);
        const std::uint32_t halfway = 1u << (drop - 1);
        const std::uint32_t rest = mant & ((1u << drop) - 1u);
        mant >>= drop;
        if (rest > halfway || (rest == halfway && (mant & 1u)))
            ++mant;
        return static_cast<std::uint16_t>(sign | mant);
    }
    // Normal range: rebias exponent (127 -> 15), round mantissa to 10
    // bits with round-to-nearest-even; mantissa carry bumps the
    // exponent naturally.
    std::uint32_t half = ((abs - 0x38000000u) >> 13);
    const std::uint32_t rest = abs & 0x1fffu;
    if (rest > 0x1000u || (rest == 0x1000u && (half & 1u)))
        ++half;
    return static_cast<std::uint16_t>(sign | half);
}

/** Convert fp16 bits to float (exact; every half is representable). */
inline float
halfToFloat(std::uint16_t h)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1fu;
    std::uint32_t mant = h & 0x3ffu;

    std::uint32_t bits;
    if (exp == 0) {
        if (mant == 0) {
            bits = sign;  // +/- zero
        } else {
            // Subnormal half: normalize into a float exponent.
            int e = -1;
            do {
                ++e;
                mant <<= 1;
            } while ((mant & 0x400u) == 0);
            bits = sign | static_cast<std::uint32_t>(127 - 15 - e) << 23 |
                   ((mant & 0x3ffu) << 13);
        }
    } else if (exp == 0x1f) {
        bits = sign | 0x7f800000u | (mant << 13);  // inf / NaN
    } else {
        bits = sign | ((exp + 127 - 15) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

} // namespace gcc3d

#endif // GCC3D_GSMATH_HALF_H
