/**
 * @file
 * Third-order real spherical harmonics (SH) for view-dependent color.
 *
 * 3DGS stores, per Gaussian, 16 SH coefficients per RGB channel
 * (48 floats total).  Color is evaluated as
 *     C(v) = sum_l sum_m c_{lm} Y_{lm}(v)        (Eq. 2)
 * over the normalized view direction v, followed by the +0.5 offset and
 * clamp used by the reference rasterizer.
 *
 * The SH Unit of the accelerator (one SHE per channel) computes exactly
 * this 16-term dot product; the cycle model in src/core/sh_unit.* charges
 * cost per coefficient.
 */

#ifndef GCC3D_GSMATH_SH_H
#define GCC3D_GSMATH_SH_H

#include <array>

#include "gsmath/vec.h"

namespace gcc3d {

/** Number of SH bands used by 3DGS (degrees 0..3). */
inline constexpr int kShDegree = 3;
/** Coefficients per channel: (degree+1)^2 = 16. */
inline constexpr int kShCoeffsPerChannel = (kShDegree + 1) * (kShDegree + 1);
/** Total SH parameters per Gaussian (3 channels x 16). */
inline constexpr int kShCoeffsTotal = 3 * kShCoeffsPerChannel;

/** SH basis values Y_00..Y_33 for a unit direction. */
using ShBasis = std::array<float, kShCoeffsPerChannel>;

/**
 * Evaluate the 16 real SH basis functions at unit direction @p dir.
 * Constants follow the standard real-SH convention used by the 3DGS
 * reference implementation (SH_C0..SH_C3).
 */
ShBasis shBasis(const Vec3 &dir);

/**
 * Evaluate RGB color from 48 SH coefficients.
 *
 * @param sh   coefficients laid out channel-major: sh[c*16 + i] for
 *             channel c in {R,G,B} and basis index i.
 * @param dir  view direction (Gaussian center minus camera position),
 *             normalized internally.
 * @return clamped RGB in [0, +inf) after the reference +0.5 offset.
 */
Vec3 evalShColor(const std::array<float, kShCoeffsTotal> &sh,
                 const Vec3 &dir);

/**
 * Degree-truncated evaluation (used by ablation studies): only bands
 * 0..@p degree contribute.
 */
Vec3 evalShColorDegree(const std::array<float, kShCoeffsTotal> &sh,
                       const Vec3 &dir, int degree);

} // namespace gcc3d

#endif // GCC3D_GSMATH_SH_H
