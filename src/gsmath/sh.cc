#include "gsmath/sh.h"

#include <algorithm>
#include <cmath>

namespace gcc3d {

namespace {

// Real spherical harmonics constants (matching the 3DGS reference
// rasterizer's SH_C0..SH_C3 tables).
constexpr float kC0 = 0.28209479177387814f;
constexpr float kC1 = 0.4886025119029199f;
constexpr float kC2[5] = {
    1.0925484305920792f,
    -1.0925484305920792f,
    0.31539156525252005f,
    -1.0925484305920792f,
    0.5462742152960396f,
};
constexpr float kC3[7] = {
    -0.5900435899266435f,
    2.890611442640554f,
    -0.4570457994644658f,
    0.3731763325901154f,
    -0.4570457994644658f,
    1.445305721320277f,
    -0.5900435899266435f,
};

} // namespace

ShBasis
shBasis(const Vec3 &dir)
{
    Vec3 d = dir.normalized();
    float x = d.x, y = d.y, z = d.z;
    float xx = x * x, yy = y * y, zz = z * z;
    float xy = x * y, yz = y * z, xz = x * z;

    ShBasis b{};
    b[0] = kC0;
    // degree 1
    b[1] = -kC1 * y;
    b[2] = kC1 * z;
    b[3] = -kC1 * x;
    // degree 2
    b[4] = kC2[0] * xy;
    b[5] = kC2[1] * yz;
    b[6] = kC2[2] * (2.0f * zz - xx - yy);
    b[7] = kC2[3] * xz;
    b[8] = kC2[4] * (xx - yy);
    // degree 3
    b[9] = kC3[0] * y * (3.0f * xx - yy);
    b[10] = kC3[1] * xy * z;
    b[11] = kC3[2] * y * (4.0f * zz - xx - yy);
    b[12] = kC3[3] * z * (2.0f * zz - 3.0f * xx - 3.0f * yy);
    b[13] = kC3[4] * x * (4.0f * zz - xx - yy);
    b[14] = kC3[5] * z * (xx - yy);
    b[15] = kC3[6] * x * (xx - 3.0f * yy);
    return b;
}

Vec3
evalShColorDegree(const std::array<float, kShCoeffsTotal> &sh,
                  const Vec3 &dir, int degree)
{
    ShBasis b = shBasis(dir);
    int n = (degree + 1) * (degree + 1);
    n = std::clamp(n, 1, kShCoeffsPerChannel);

    Vec3 c;
    for (int i = 0; i < n; ++i) {
        c.x += sh[0 * kShCoeffsPerChannel + i] * b[i];
        c.y += sh[1 * kShCoeffsPerChannel + i] * b[i];
        c.z += sh[2 * kShCoeffsPerChannel + i] * b[i];
    }
    // Reference rasterizer adds 0.5 and clamps negatives to zero.
    c += Vec3(0.5f, 0.5f, 0.5f);
    c.x = std::max(0.0f, c.x);
    c.y = std::max(0.0f, c.y);
    c.z = std::max(0.0f, c.z);
    return c;
}

Vec3
evalShColor(const std::array<float, kShCoeffsTotal> &sh, const Vec3 &dir)
{
    return evalShColorDegree(sh, dir, kShDegree);
}

} // namespace gcc3d
