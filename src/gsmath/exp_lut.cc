#include "gsmath/exp_lut.h"

#include <algorithm>
#include <cmath>

namespace gcc3d {

ExpLut::ExpLut()
{
    // Uniform segmentation of [kLowerBound, 0).  Each segment stores a
    // chord (secant) fit shifted down by half the chord's maximum
    // deviation — the equioscillating (minimax) linear fit of exp on
    // the segment — which keeps the maximum relative error under 1%
    // with 16 segments, as the paper requires.
    seg_width_ = -kLowerBound / static_cast<float>(kSegments);
    for (int i = 0; i < kSegments; ++i) {
        float x0 = kLowerBound + seg_width_ * static_cast<float>(i);
        float x1 = x0 + seg_width_;
        float y0 = std::exp(x0);
        float y1 = std::exp(x1);
        float a = (y1 - y0) / (x1 - x0);
        float b = y0 - a * x0;
        // The chord over-estimates most at x* = ln(a); split the error.
        float x_star = std::log(a);
        float dev = (a * x_star + b) - std::exp(x_star);
        b -= 0.5f * dev;
        // Balance the *relative* error (the paper's metric): scale the
        // segment so the largest over- and under-estimates match.
        float max_rel = 0.0f, min_rel = 0.0f;
        for (int k = 0; k <= 64; ++k) {
            float x = x0 + seg_width_ * static_cast<float>(k) / 64.0f;
            float rel = (a * x + b) / std::exp(x) - 1.0f;
            max_rel = std::max(max_rel, rel);
            min_rel = std::min(min_rel, rel);
        }
        float gain = 1.0f / (1.0f + 0.5f * (max_rel + min_rel));
        a *= gain;
        b *= gain;
        float c = a * x0 + b;  // segment-local intercept
        segs_[i] = {x0, AlphaFixed::fromFloat(a), AlphaFixed::fromFloat(c)};
    }
}

int
ExpLut::segmentIndex(float x) const
{
    int idx = static_cast<int>((x - kLowerBound) / seg_width_);
    return std::clamp(idx, 0, kSegments - 1);
}

float
ExpLut::eval(float x) const
{
    if (x < kLowerBound)
        return 0.0f;
    if (x >= 0.0f)
        return 1.0f;
    const Segment &s = segs_[segmentIndex(x)];
    AlphaFixed dx = AlphaFixed::fromFloat(x - s.x0);
    AlphaFixed y = s.a * dx + s.c;
    return std::clamp(y.toFloat(), 0.0f, 1.0f);
}

AlphaFixed
ExpLut::evalFixed(AlphaFixed x) const
{
    float xf = x.toFloat();
    if (xf < kLowerBound)
        return AlphaFixed::fromFloat(0.0f);
    if (xf >= 0.0f)
        return AlphaFixed::fromFloat(1.0f);
    const Segment &s = segs_[segmentIndex(xf)];
    AlphaFixed dx = x - AlphaFixed::fromFloat(s.x0);
    AlphaFixed y = s.a * dx + s.c;
    if (y < AlphaFixed::fromFloat(0.0f))
        return AlphaFixed::fromFloat(0.0f);
    if (y > AlphaFixed::fromFloat(1.0f))
        return AlphaFixed::fromFloat(1.0f);
    return y;
}

float
ExpLut::maxRelativeError(int samples) const
{
    float max_err = 0.0f;
    for (int i = 0; i < samples; ++i) {
        float x = kLowerBound +
                  (-kLowerBound) * (static_cast<float>(i) + 0.5f) /
                      static_cast<float>(samples);
        float exact = std::exp(x);
        float approx = eval(x);
        max_err = std::max(max_err, std::fabs(approx - exact) / exact);
    }
    return max_err;
}

} // namespace gcc3d
