/**
 * @file
 * Minimal signed fixed-point arithmetic type.
 *
 * The GCC Alpha Unit performs its EXP approximation in fully
 * fixed-point arithmetic to avoid the FP16 overflow issues the paper
 * reports for GSCore (Sec. 4.4).  FixedPoint<IntBits, FracBits> models
 * that datapath: conversions quantize to 2^-FracBits steps and
 * arithmetic saturates at the representable range, exactly as a
 * hardware accumulator would.
 */

#ifndef GCC3D_GSMATH_FIXED_POINT_H
#define GCC3D_GSMATH_FIXED_POINT_H

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace gcc3d {

/**
 * Signed fixed-point number with IntBits integer bits (including sign)
 * and FracBits fractional bits, stored in 32-bit raw form.
 */
template <int IntBits, int FracBits>
class FixedPoint
{
  public:
    static_assert(IntBits + FracBits <= 31,
                  "raw value must fit a signed 32-bit container");

    static constexpr std::int32_t kOne = std::int32_t{1} << FracBits;
    static constexpr std::int32_t kMaxRaw =
        (std::int32_t{1} << (IntBits + FracBits - 1)) - 1;
    static constexpr std::int32_t kMinRaw = -kMaxRaw - 1;

    constexpr FixedPoint() = default;

    /** Quantize a float, saturating to the representable range. */
    static constexpr FixedPoint
    fromFloat(float v)
    {
        float scaled = v * static_cast<float>(kOne);
        // round-to-nearest-even is overkill for the LUT datapath;
        // round-half-away matches the RTL's simple rounder.
        float r = scaled >= 0.0f ? scaled + 0.5f : scaled - 0.5f;
        std::int64_t raw = static_cast<std::int64_t>(r);
        raw = std::clamp<std::int64_t>(raw, kMinRaw, kMaxRaw);
        return fromRaw(static_cast<std::int32_t>(raw));
    }

    static constexpr FixedPoint
    fromRaw(std::int32_t raw)
    {
        FixedPoint f;
        f.raw_ = raw;
        return f;
    }

    constexpr std::int32_t raw() const { return raw_; }
    constexpr float
    toFloat() const
    {
        return static_cast<float>(raw_) / static_cast<float>(kOne);
    }

    constexpr FixedPoint
    operator+(FixedPoint o) const
    {
        return saturate(static_cast<std::int64_t>(raw_) + o.raw_);
    }

    constexpr FixedPoint
    operator-(FixedPoint o) const
    {
        return saturate(static_cast<std::int64_t>(raw_) - o.raw_);
    }

    /** Full-precision multiply then renormalize (hardware MUL+shift). */
    constexpr FixedPoint
    operator*(FixedPoint o) const
    {
        std::int64_t p = static_cast<std::int64_t>(raw_) * o.raw_;
        return saturate(p >> FracBits);
    }

    constexpr bool operator==(const FixedPoint &o) const = default;
    constexpr bool operator<(const FixedPoint &o) const
    { return raw_ < o.raw_; }
    constexpr bool operator<=(const FixedPoint &o) const
    { return raw_ <= o.raw_; }
    constexpr bool operator>(const FixedPoint &o) const
    { return raw_ > o.raw_; }
    constexpr bool operator>=(const FixedPoint &o) const
    { return raw_ >= o.raw_; }

  private:
    static constexpr FixedPoint
    saturate(std::int64_t raw)
    {
        raw = std::clamp<std::int64_t>(raw, kMinRaw, kMaxRaw);
        return fromRaw(static_cast<std::int32_t>(raw));
    }

    std::int32_t raw_ = 0;
};

/**
 * Datapath format used by the Alpha Unit's EXP stage: Q4.20 (24-bit
 * words).  Four integer bits cover the exponent range [-5.54, 0]
 * with saturation headroom; twenty fractional bits keep the LUT's
 * quantization error well below the 1% budget.
 */
using AlphaFixed = FixedPoint<4, 20>;

/**
 * Normalized-coordinate format of the .gsc v2 scene container: Q1.15
 * (sign + 15 fractional bits, raw fits an int16).  Chunk-local
 * positions and quaternion components are mapped into [-1, 1] and
 * quantized to 2^-15 steps, so the worst-case position error is
 * half_extent * 2^-15 per axis (the +1.0 edge saturates at
 * 1 - 2^-15, which stays inside that bound).
 */
using UnitFixed = FixedPoint<1, 15>;

} // namespace gcc3d

#endif // GCC3D_GSMATH_FIXED_POINT_H
