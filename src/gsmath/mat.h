/**
 * @file
 * Small fixed-size matrix types for the 3DGS projection pipeline.
 *
 * The preprocessing stage of 3DGS is dominated by small dense matrix
 * products (Eq. 1 in the paper): covariance reconstruction
 * Sigma = R S S^T R^T and the EWA projection Sigma' = J W Sigma W^T J^T.
 * Mat2 / Mat3 / Mat4 provide exactly the operations those equations
 * require, in row-major storage.
 */

#ifndef GCC3D_GSMATH_MAT_H
#define GCC3D_GSMATH_MAT_H

#include <array>
#include <cmath>
#include <cstddef>

#include "gsmath/vec.h"

namespace gcc3d {

/** A 2x2 row-major matrix (projected 2D covariances and conics). */
struct Mat2
{
    // m[r][c]
    std::array<std::array<float, 2>, 2> m{{{0, 0}, {0, 0}}};

    constexpr Mat2() = default;
    constexpr Mat2(float a, float b, float c, float d)
        : m{{{a, b}, {c, d}}} {}

    static constexpr Mat2
    identity()
    {
        return Mat2(1, 0, 0, 1);
    }

    constexpr float operator()(size_t r, size_t c) const { return m[r][c]; }
    constexpr float &operator()(size_t r, size_t c) { return m[r][c]; }

    constexpr Mat2
    operator+(const Mat2 &o) const
    {
        return Mat2(m[0][0] + o.m[0][0], m[0][1] + o.m[0][1],
                    m[1][0] + o.m[1][0], m[1][1] + o.m[1][1]);
    }

    constexpr Mat2
    operator*(const Mat2 &o) const
    {
        Mat2 r;
        for (size_t i = 0; i < 2; ++i)
            for (size_t j = 0; j < 2; ++j)
                r.m[i][j] = m[i][0] * o.m[0][j] + m[i][1] * o.m[1][j];
        return r;
    }

    constexpr Vec2
    operator*(const Vec2 &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y,
                m[1][0] * v.x + m[1][1] * v.y};
    }

    constexpr Mat2 operator*(float s) const
    { return Mat2(m[0][0] * s, m[0][1] * s, m[1][0] * s, m[1][1] * s); }

    constexpr Mat2
    transposed() const
    {
        return Mat2(m[0][0], m[1][0], m[0][1], m[1][1]);
    }

    constexpr float
    determinant() const
    {
        return m[0][0] * m[1][1] - m[0][1] * m[1][0];
    }

    /**
     * Inverse of a (well-conditioned) 2x2 matrix.  Callers must check
     * determinant() against zero first; covariances in the pipeline are
     * regularized so this never degenerates in practice.
     */
    constexpr Mat2
    inverse() const
    {
        float det = determinant();
        float inv = 1.0f / det;
        return Mat2(m[1][1] * inv, -m[0][1] * inv,
                    -m[1][0] * inv, m[0][0] * inv);
    }

    constexpr float trace() const { return m[0][0] + m[1][1]; }
};

/** A 3x3 row-major matrix (rotations, world covariances, Jacobians). */
struct Mat3
{
    std::array<std::array<float, 3>, 3> m{};

    constexpr Mat3() = default;
    constexpr Mat3(float a00, float a01, float a02,
                   float a10, float a11, float a12,
                   float a20, float a21, float a22)
        : m{{{a00, a01, a02}, {a10, a11, a12}, {a20, a21, a22}}} {}

    static constexpr Mat3
    identity()
    {
        return Mat3(1, 0, 0, 0, 1, 0, 0, 0, 1);
    }

    /** Diagonal matrix from a vector (scale matrices S). */
    static constexpr Mat3
    diagonal(const Vec3 &d)
    {
        return Mat3(d.x, 0, 0, 0, d.y, 0, 0, 0, d.z);
    }

    constexpr float operator()(size_t r, size_t c) const { return m[r][c]; }
    constexpr float &operator()(size_t r, size_t c) { return m[r][c]; }

    constexpr Mat3
    operator+(const Mat3 &o) const
    {
        Mat3 r;
        for (size_t i = 0; i < 3; ++i)
            for (size_t j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] + o.m[i][j];
        return r;
    }

    constexpr Mat3
    operator*(const Mat3 &o) const
    {
        Mat3 r;
        for (size_t i = 0; i < 3; ++i)
            for (size_t j = 0; j < 3; ++j)
                r.m[i][j] = m[i][0] * o.m[0][j] + m[i][1] * o.m[1][j] +
                            m[i][2] * o.m[2][j];
        return r;
    }

    constexpr Vec3
    operator*(const Vec3 &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
                m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
                m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
    }

    constexpr Mat3
    operator*(float s) const
    {
        Mat3 r;
        for (size_t i = 0; i < 3; ++i)
            for (size_t j = 0; j < 3; ++j)
                r.m[i][j] = m[i][j] * s;
        return r;
    }

    constexpr Mat3
    transposed() const
    {
        return Mat3(m[0][0], m[1][0], m[2][0],
                    m[0][1], m[1][1], m[2][1],
                    m[0][2], m[1][2], m[2][2]);
    }

    constexpr float
    determinant() const
    {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
               m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
               m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    }

    /** Extract the upper-left 2x2 block (EWA covariance projection). */
    constexpr Mat2
    topLeft2x2() const
    {
        return Mat2(m[0][0], m[0][1], m[1][0], m[1][1]);
    }
};

/** A 4x4 row-major matrix (view and projection transforms). */
struct Mat4
{
    std::array<std::array<float, 4>, 4> m{};

    constexpr Mat4() = default;

    static constexpr Mat4
    identity()
    {
        Mat4 r;
        for (size_t i = 0; i < 4; ++i)
            r.m[i][i] = 1.0f;
        return r;
    }

    /** Build from a rotation block and a translation column. */
    static constexpr Mat4
    fromRotationTranslation(const Mat3 &rot, const Vec3 &t)
    {
        Mat4 r = identity();
        for (size_t i = 0; i < 3; ++i)
            for (size_t j = 0; j < 3; ++j)
                r.m[i][j] = rot(i, j);
        r.m[0][3] = t.x;
        r.m[1][3] = t.y;
        r.m[2][3] = t.z;
        return r;
    }

    constexpr float operator()(size_t r, size_t c) const { return m[r][c]; }
    constexpr float &operator()(size_t r, size_t c) { return m[r][c]; }

    constexpr Mat4
    operator*(const Mat4 &o) const
    {
        Mat4 r;
        for (size_t i = 0; i < 4; ++i)
            for (size_t j = 0; j < 4; ++j) {
                float acc = 0.0f;
                for (size_t k = 0; k < 4; ++k)
                    acc += m[i][k] * o.m[k][j];
                r.m[i][j] = acc;
            }
        return r;
    }

    constexpr Vec4
    operator*(const Vec4 &v) const
    {
        return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z + m[0][3] * v.w,
                m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z + m[1][3] * v.w,
                m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z + m[2][3] * v.w,
                m[3][0] * v.x + m[3][1] * v.y + m[3][2] * v.z + m[3][3] * v.w};
    }

    /** Transform a point (w=1 implied). */
    constexpr Vec3
    transformPoint(const Vec3 &p) const
    {
        Vec4 r = (*this) * Vec4(p, 1.0f);
        return r.xyz();
    }

    /** Transform a direction (w=0 implied, translation ignored). */
    constexpr Vec3
    transformDirection(const Vec3 &d) const
    {
        Vec4 r = (*this) * Vec4(d, 0.0f);
        return r.xyz();
    }

    /** Upper-left 3x3 rotation/linear block. */
    constexpr Mat3
    topLeft3x3() const
    {
        return Mat3(m[0][0], m[0][1], m[0][2],
                    m[1][0], m[1][1], m[1][2],
                    m[2][0], m[2][1], m[2][2]);
    }
};

} // namespace gcc3d

#endif // GCC3D_GSMATH_MAT_H
