/**
 * @file
 * Quaternion support for 3DGS rotation factors.
 *
 * Each Gaussian stores its orientation as a unit quaternion q; the
 * Reconstruction Unit (RU) in the Projection Unit decodes q into the
 * rotation matrix R used in Sigma = R S S^T R^T (Eq. 1).
 */

#ifndef GCC3D_GSMATH_QUAT_H
#define GCC3D_GSMATH_QUAT_H

#include <cmath>

#include "gsmath/mat.h"
#include "gsmath/vec.h"

namespace gcc3d {

/** A quaternion (w, x, y, z) representing a 3D rotation. */
struct Quat
{
    float w = 1.0f;
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Quat() = default;
    constexpr Quat(float w_, float x_, float y_, float z_)
        : w(w_), x(x_), y(y_), z(z_) {}

    /** Rotation of @p angle radians about (unit) @p axis. */
    static Quat
    fromAxisAngle(const Vec3 &axis, float angle)
    {
        Vec3 a = axis.normalized();
        float h = 0.5f * angle;
        float s = std::sin(h);
        return {std::cos(h), a.x * s, a.y * s, a.z * s};
    }

    float norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

    /** Unit-length copy; identity when degenerate. */
    Quat
    normalized() const
    {
        float n = norm();
        if (n <= 0.0f)
            return Quat();
        return {w / n, x / n, y / n, z / n};
    }

    /** Hamilton product (composition of rotations). */
    constexpr Quat
    operator*(const Quat &o) const
    {
        return {w * o.w - x * o.x - y * o.y - z * o.z,
                w * o.x + x * o.w + y * o.z - z * o.y,
                w * o.y - x * o.z + y * o.w + z * o.x,
                w * o.z + x * o.y - y * o.x + z * o.w};
    }

    /**
     * Convert to a 3x3 rotation matrix.  This mirrors exactly the
     * decode performed by the RU hardware module: 9 outputs from
     * products of quaternion components (the quaternion is normalized
     * first, as in the reference 3DGS rasterizer).
     */
    Mat3
    toMatrix() const
    {
        Quat q = normalized();
        float ww = q.w * q.w, xx = q.x * q.x;
        float yy = q.y * q.y, zz = q.z * q.z;
        float xy = q.x * q.y, xz = q.x * q.z, yz = q.y * q.z;
        float wx = q.w * q.x, wy = q.w * q.y, wz = q.w * q.z;
        return Mat3(ww + xx - yy - zz, 2 * (xy - wz),      2 * (xz + wy),
                    2 * (xy + wz),     ww - xx + yy - zz,  2 * (yz - wx),
                    2 * (xz - wy),     2 * (yz + wx),      ww - xx - yy + zz);
    }

    /** Rotate a vector by this quaternion. */
    Vec3 rotate(const Vec3 &v) const { return toMatrix() * v; }
};

} // namespace gcc3d

#endif // GCC3D_GSMATH_QUAT_H
