#include "gsmath/ellipse.h"

#include <algorithm>
#include <cmath>

namespace gcc3d {

Eigen2
symmetricEigen2(const Mat2 &sigma)
{
    float a = sigma(0, 0);
    float b = 0.5f * (sigma(0, 1) + sigma(1, 0));
    float c = sigma(1, 1);

    float mid = 0.5f * (a + c);
    float disc = std::sqrt(std::max(0.0f, mid * mid - (a * c - b * b)));

    Eigen2 e;
    e.l1 = std::max(0.0f, mid + disc);
    e.l2 = std::max(0.0f, mid - disc);
    // Major-axis direction; for (near-)isotropic matrices any angle works.
    e.angle = 0.5f * std::atan2(2.0f * b, a - c);
    return e;
}

PixelRect
PixelRect::clipped(int w, int h) const
{
    PixelRect r;
    r.x0 = std::max(x0, 0);
    r.y0 = std::max(y0, 0);
    r.x1 = std::min(x1, w - 1);
    r.y1 = std::min(y1, h - 1);
    return r;
}

Ellipse
Ellipse::fromCovariance(const Vec2 &center, const Mat2 &cov)
{
    Ellipse e;
    e.center = center;
    e.cov = cov;
    // Guard against degenerate covariances: the reference rasterizer
    // adds a small diagonal dilation (0.3) during projection, so the
    // determinant is positive in practice; clamp defensively anyway.
    Mat2 c = cov;
    if (c.determinant() <= 1e-12f) {
        c(0, 0) += 1e-4f;
        c(1, 1) += 1e-4f;
    }
    e.conic = c.inverse();
    e.eig = symmetricEigen2(c);
    return e;
}

int
radius3Sigma(const Eigen2 &eig)
{
    return static_cast<int>(std::ceil(3.0f * std::sqrt(eig.l1)));
}

int
radiusOmegaSigma(const Eigen2 &eig, float omega)
{
    if (omega <= kAlphaMin)
        return 0;
    float k2 = 2.0f * std::log(255.0f * omega);
    if (k2 <= 0.0f)
        return 0;
    return static_cast<int>(std::ceil(std::sqrt(k2 * eig.l1)));
}

PixelRect
aabbFromRadius(const Vec2 &center, int radius)
{
    PixelRect r;
    r.x0 = static_cast<int>(std::floor(center.x)) - radius;
    r.y0 = static_cast<int>(std::floor(center.y)) - radius;
    r.x1 = static_cast<int>(std::ceil(center.x)) + radius;
    r.y1 = static_cast<int>(std::ceil(center.y)) + radius;
    return r;
}

PixelRect
aabbFromCovariance(const Vec2 &center, const Mat2 &cov, float kappa2)
{
    float ex = std::sqrt(std::max(0.0f, kappa2 * cov(0, 0)));
    float ey = std::sqrt(std::max(0.0f, kappa2 * cov(1, 1)));
    PixelRect r;
    r.x0 = static_cast<int>(std::floor(center.x - ex));
    r.y0 = static_cast<int>(std::floor(center.y - ey));
    r.x1 = static_cast<int>(std::ceil(center.x + ex));
    r.y1 = static_cast<int>(std::ceil(center.y + ey));
    return r;
}

std::int64_t
obbPixelCount(const Ellipse &e, float kappa, int width, int height)
{
    // Side half-lengths of the oriented box.
    float ha = kappa * std::sqrt(e.eig.l1);
    float hb = kappa * std::sqrt(e.eig.l2);
    if (ha <= 0.0f || hb <= 0.0f)
        return 0;

    // Estimate on-screen fraction via the OBB's axis-aligned extent.
    float ca = std::fabs(std::cos(e.eig.angle));
    float sa = std::fabs(std::sin(e.eig.angle));
    float ex = ha * ca + hb * sa;
    float ey = ha * sa + hb * ca;

    float x0 = std::max(0.0f, e.center.x - ex);
    float x1 = std::min(static_cast<float>(width), e.center.x + ex);
    float y0 = std::max(0.0f, e.center.y - ey);
    float y1 = std::min(static_cast<float>(height), e.center.y + ey);
    if (x1 <= x0 || y1 <= y0)
        return 0;

    float full = 4.0f * ex * ey;
    float vis = (x1 - x0) * (y1 - y0);
    float frac = full > 0.0f ? vis / full : 0.0f;

    double obb_area = 4.0 * static_cast<double>(ha) * hb;
    return static_cast<std::int64_t>(obb_area * frac + 0.5);
}

std::int64_t
effectivePixelCount(const Ellipse &e, float omega, int width, int height)
{
    int r = radiusOmegaSigma(e.eig, omega);
    if (r == 0)
        return 0;
    PixelRect box = aabbFromRadius(e.center, r).clipped(width, height);
    if (box.empty())
        return 0;

    std::int64_t count = 0;
    for (int y = box.y0; y <= box.y1; ++y) {
        for (int x = box.x0; x <= box.x1; ++x) {
            Vec2 p(static_cast<float>(x) + 0.5f,
                   static_cast<float>(y) + 0.5f);
            if (e.alphaAt(p, omega) >= kAlphaMin)
                ++count;
        }
    }
    return count;
}

} // namespace gcc3d
