/**
 * @file
 * Portable fixed-width SIMD layer for the rasterization hot loops.
 *
 * One backend is selected at compile time (CMake's `GCC3D_SIMD`
 * option chooses the flags; the preprocessor picks the widest ISA
 * those flags enable):
 *
 *  - AVX2:  8 x f32 lanes (`__AVX2__`),
 *  - SSE2:  4 x f32 lanes (`__SSE2__` — the x86-64 baseline),
 *  - NEON:  4 x f32 lanes (`__ARM_NEON`),
 *  - scalar fallback: 4 x f32 lanes of plain C++ (always correct;
 *    forced with `-DGCC3D_SIMD=off`, i.e. `GCC3D_SIMD_FORCE_SCALAR`).
 *
 * Semantics contract (what tests/test_simd.cc locks in, backend by
 * backend): every lane of every arithmetic/comparison op performs the
 * *exact* scalar IEEE-754 single-precision operation — `FloatV`
 * addition is lane-wise `float +`, `operator<=` is lane-wise `<=`
 * (false on NaN), and so on.  This is what lets the renderers run
 * their per-pixel op sequence W pixels at a time and stay
 * bit-identical to the scalar reference: a lane is just the scalar
 * program at a different x.
 *
 * The only deliberately non-trivial semantics:
 *
 *  - min/max follow the SSE rule `min(a,b) = a < b ? a : b` (the
 *    second operand wins on NaN and on equal-valued ±0); NEON and
 *    the scalar fallback implement the same rule via select, so all
 *    backends agree bit-for-bit.
 *  - roundToInt rounds half to even (the hardware default mode),
 *    matching `std::nearbyintf` under the default environment.
 *  - simdExp (below) is an approximation with its own contract.
 */

#ifndef GCC3D_GSMATH_SIMD_H
#define GCC3D_GSMATH_SIMD_H

#include <bit>
#include <cmath>
#include <cstdint>

#if !defined(GCC3D_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define GCC3D_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(GCC3D_SIMD_FORCE_SCALAR) && \
    (defined(__SSE2__) || defined(_M_X64) || \
     (defined(_M_IX86_FP) && _M_IX86_FP >= 2))
#define GCC3D_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(GCC3D_SIMD_FORCE_SCALAR) && defined(__ARM_NEON) && \
    defined(__aarch64__)
// AArch64 only: the layer uses vcvtnq/vaddvq, which 32-bit NEON lacks.
#define GCC3D_SIMD_NEON 1
#include <arm_neon.h>
#else
#define GCC3D_SIMD_SCALAR 1
#endif

namespace gcc3d {
namespace simd {

#if defined(GCC3D_SIMD_AVX2)
inline constexpr int kWidth = 8;
#else
inline constexpr int kWidth = 4;
#endif

/** Human-readable backend id ("avx2" / "sse2" / "neon" / "scalar"). */
inline const char *
backendName()
{
#if defined(GCC3D_SIMD_AVX2)
    return "avx2";
#elif defined(GCC3D_SIMD_SSE2)
    return "sse2";
#elif defined(GCC3D_SIMD_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

struct FloatV;
struct IntV;

// =====================================================================
// MaskV: the result of lane-wise comparisons.  Each lane is all-ones
// (true) or all-zeros (false); bits() packs lane i into bit i.
// =====================================================================
struct MaskV
{
#if defined(GCC3D_SIMD_AVX2)
    __m256 m;
#elif defined(GCC3D_SIMD_SSE2)
    __m128 m;
#elif defined(GCC3D_SIMD_NEON)
    uint32x4_t m;
#else
    std::uint32_t m[4];
#endif

    /** Mask with lanes [0, n) true and the rest false (n clamped). */
    static MaskV
    firstN(int n)
    {
#if defined(GCC3D_SIMD_AVX2)
        const __m256i iota =
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        return {_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(_mm256_set1_epi32(n), iota))};
#elif defined(GCC3D_SIMD_SSE2)
        const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
        return {_mm_castsi128_ps(
            _mm_cmpgt_epi32(_mm_set1_epi32(n), iota))};
#elif defined(GCC3D_SIMD_NEON)
        const std::int32_t iota[4] = {0, 1, 2, 3};
        int32x4_t iv = vld1q_s32(iota);
        return {vcltq_s32(iv, vdupq_n_s32(n))};
#else
        MaskV r;
        for (int i = 0; i < 4; ++i)
            r.m[i] = i < n ? 0xffffffffu : 0u;
        return r;
#endif
    }

    /** Lane i -> bit i of the result. */
    unsigned
    bits() const
    {
#if defined(GCC3D_SIMD_AVX2)
        return static_cast<unsigned>(_mm256_movemask_ps(m));
#elif defined(GCC3D_SIMD_SSE2)
        return static_cast<unsigned>(_mm_movemask_ps(m));
#elif defined(GCC3D_SIMD_NEON)
        // Collapse each lane to its bit: shift lane i's MSB down and
        // accumulate.
        const std::int32_t shifts[4] = {0, 1, 2, 3};
        uint32x4_t msb = vshrq_n_u32(m, 31);
        uint32x4_t sh = vshlq_u32(msb, vld1q_s32(shifts));
        return vaddvq_u32(sh);
#else
        unsigned r = 0;
        for (int i = 0; i < 4; ++i)
            if (m[i])
                r |= 1u << i;
        return r;
#endif
    }

    bool any() const { return bits() != 0; }
    bool none() const { return bits() == 0; }
    int count() const { return std::popcount(bits()); }

    MaskV
    operator&(const MaskV &o) const
    {
#if defined(GCC3D_SIMD_AVX2)
        return {_mm256_and_ps(m, o.m)};
#elif defined(GCC3D_SIMD_SSE2)
        return {_mm_and_ps(m, o.m)};
#elif defined(GCC3D_SIMD_NEON)
        return {vandq_u32(m, o.m)};
#else
        MaskV r;
        for (int i = 0; i < 4; ++i)
            r.m[i] = m[i] & o.m[i];
        return r;
#endif
    }

    MaskV
    operator|(const MaskV &o) const
    {
#if defined(GCC3D_SIMD_AVX2)
        return {_mm256_or_ps(m, o.m)};
#elif defined(GCC3D_SIMD_SSE2)
        return {_mm_or_ps(m, o.m)};
#elif defined(GCC3D_SIMD_NEON)
        return {vorrq_u32(m, o.m)};
#else
        MaskV r;
        for (int i = 0; i < 4; ++i)
            r.m[i] = m[i] | o.m[i];
        return r;
#endif
    }
};

// =====================================================================
// FloatV: kWidth packed f32 lanes.
// =====================================================================
struct FloatV
{
#if defined(GCC3D_SIMD_AVX2)
    __m256 v;
#elif defined(GCC3D_SIMD_SSE2)
    __m128 v;
#elif defined(GCC3D_SIMD_NEON)
    float32x4_t v;
#else
    float v[4];
#endif

    FloatV() : FloatV(0.0f) {}

    /** Broadcast @p x to every lane. */
    explicit FloatV(float x)
    {
#if defined(GCC3D_SIMD_AVX2)
        v = _mm256_set1_ps(x);
#elif defined(GCC3D_SIMD_SSE2)
        v = _mm_set1_ps(x);
#elif defined(GCC3D_SIMD_NEON)
        v = vdupq_n_f32(x);
#else
        for (int i = 0; i < 4; ++i)
            v[i] = x;
#endif
    }

    /** Unaligned load of kWidth floats. */
    static FloatV
    load(const float *p)
    {
        FloatV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_loadu_ps(p);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_loadu_ps(p);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vld1q_f32(p);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = p[i];
#endif
        return r;
    }

    /** Load lanes [0, n) from @p p; lanes >= n are 0.0f. */
    static FloatV
    loadPartial(const float *p, int n)
    {
        float buf[kWidth] = {};
        if (n > kWidth)
            n = kWidth;
        for (int i = 0; i < n; ++i)
            buf[i] = p[i];
        return load(buf);
    }

    /** Lane i = float(x0 + i); exact for |x0 + i| < 2^24. */
    static FloatV iotaFrom(int x0);

    /** Unaligned store of all kWidth lanes. */
    void
    store(float *p) const
    {
#if defined(GCC3D_SIMD_AVX2)
        _mm256_storeu_ps(p, v);
#elif defined(GCC3D_SIMD_SSE2)
        _mm_storeu_ps(p, v);
#elif defined(GCC3D_SIMD_NEON)
        vst1q_f32(p, v);
#else
        for (int i = 0; i < 4; ++i)
            p[i] = v[i];
#endif
    }

    /** Store lanes [0, n) only; memory beyond is untouched. */
    void
    storePartial(float *p, int n) const
    {
        float buf[kWidth];
        store(buf);
        if (n > kWidth)
            n = kWidth;
        for (int i = 0; i < n; ++i)
            p[i] = buf[i];
    }

    float
    lane(int i) const
    {
        float buf[kWidth];
        store(buf);
        return buf[i];
    }

    FloatV
    operator+(const FloatV &o) const
    {
        FloatV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_add_ps(v, o.v);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_add_ps(v, o.v);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vaddq_f32(v, o.v);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = v[i] + o.v[i];
#endif
        return r;
    }

    FloatV
    operator-(const FloatV &o) const
    {
        FloatV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_sub_ps(v, o.v);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_sub_ps(v, o.v);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vsubq_f32(v, o.v);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = v[i] - o.v[i];
#endif
        return r;
    }

    FloatV
    operator*(const FloatV &o) const
    {
        FloatV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_mul_ps(v, o.v);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_mul_ps(v, o.v);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vmulq_f32(v, o.v);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = v[i] * o.v[i];
#endif
        return r;
    }

    FloatV
    operator/(const FloatV &o) const
    {
        FloatV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_div_ps(v, o.v);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_div_ps(v, o.v);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vdivq_f32(v, o.v);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = v[i] / o.v[i];
#endif
        return r;
    }

    MaskV
    operator<=(const FloatV &o) const
    {
#if defined(GCC3D_SIMD_AVX2)
        return {_mm256_cmp_ps(v, o.v, _CMP_LE_OQ)};
#elif defined(GCC3D_SIMD_SSE2)
        return {_mm_cmple_ps(v, o.v)};
#elif defined(GCC3D_SIMD_NEON)
        return {vcleq_f32(v, o.v)};
#else
        MaskV r;
        for (int i = 0; i < 4; ++i)
            r.m[i] = v[i] <= o.v[i] ? 0xffffffffu : 0u;
        return r;
#endif
    }

    MaskV
    operator<(const FloatV &o) const
    {
#if defined(GCC3D_SIMD_AVX2)
        return {_mm256_cmp_ps(v, o.v, _CMP_LT_OQ)};
#elif defined(GCC3D_SIMD_SSE2)
        return {_mm_cmplt_ps(v, o.v)};
#elif defined(GCC3D_SIMD_NEON)
        return {vcltq_f32(v, o.v)};
#else
        MaskV r;
        for (int i = 0; i < 4; ++i)
            r.m[i] = v[i] < o.v[i] ? 0xffffffffu : 0u;
        return r;
#endif
    }

    MaskV operator>(const FloatV &o) const { return o < *this; }
    MaskV operator>=(const FloatV &o) const { return o <= *this; }

    MaskV
    operator==(const FloatV &o) const
    {
#if defined(GCC3D_SIMD_AVX2)
        return {_mm256_cmp_ps(v, o.v, _CMP_EQ_OQ)};
#elif defined(GCC3D_SIMD_SSE2)
        return {_mm_cmpeq_ps(v, o.v)};
#elif defined(GCC3D_SIMD_NEON)
        return {vceqq_f32(v, o.v)};
#else
        MaskV r;
        for (int i = 0; i < 4; ++i)
            r.m[i] = v[i] == o.v[i] ? 0xffffffffu : 0u;
        return r;
#endif
    }
};

// =====================================================================
// IntV: kWidth packed i32 lanes (bit manipulation + conversions).
// =====================================================================
struct IntV
{
#if defined(GCC3D_SIMD_AVX2)
    __m256i v;
#elif defined(GCC3D_SIMD_SSE2)
    __m128i v;
#elif defined(GCC3D_SIMD_NEON)
    int32x4_t v;
#else
    std::int32_t v[4];
#endif

    IntV() : IntV(0) {}

    explicit IntV(std::int32_t x)
    {
#if defined(GCC3D_SIMD_AVX2)
        v = _mm256_set1_epi32(x);
#elif defined(GCC3D_SIMD_SSE2)
        v = _mm_set1_epi32(x);
#elif defined(GCC3D_SIMD_NEON)
        v = vdupq_n_s32(x);
#else
        for (int i = 0; i < 4; ++i)
            v[i] = x;
#endif
    }

    /** Lane i = i. */
    static IntV
    iota()
    {
        IntV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_setr_epi32(0, 1, 2, 3);
#elif defined(GCC3D_SIMD_NEON)
        const std::int32_t lanes[4] = {0, 1, 2, 3};
        r.v = vld1q_s32(lanes);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = i;
#endif
        return r;
    }

    static IntV
    load(const std::int32_t *p)
    {
        IntV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
#elif defined(GCC3D_SIMD_NEON)
        r.v = vld1q_s32(p);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = p[i];
#endif
        return r;
    }

    void
    store(std::int32_t *p) const
    {
#if defined(GCC3D_SIMD_AVX2)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
#elif defined(GCC3D_SIMD_SSE2)
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
#elif defined(GCC3D_SIMD_NEON)
        vst1q_s32(p, v);
#else
        for (int i = 0; i < 4; ++i)
            p[i] = v[i];
#endif
    }

    std::int32_t
    lane(int i) const
    {
        std::int32_t buf[kWidth];
        store(buf);
        return buf[i];
    }

    IntV
    operator+(const IntV &o) const
    {
        IntV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_add_epi32(v, o.v);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_add_epi32(v, o.v);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vaddq_s32(v, o.v);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(v[i]) +
                static_cast<std::uint32_t>(o.v[i]));
#endif
        return r;
    }

    IntV
    operator|(const IntV &o) const
    {
        IntV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_or_si256(v, o.v);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_or_si128(v, o.v);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vorrq_s32(v, o.v);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = v[i] | o.v[i];
#endif
        return r;
    }

    IntV
    operator^(const IntV &o) const
    {
        IntV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_xor_si256(v, o.v);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_xor_si128(v, o.v);
#elif defined(GCC3D_SIMD_NEON)
        r.v = veorq_s32(v, o.v);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = v[i] ^ o.v[i];
#endif
        return r;
    }

    IntV
    operator&(const IntV &o) const
    {
        IntV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_and_si256(v, o.v);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_and_si128(v, o.v);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vandq_s32(v, o.v);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = v[i] & o.v[i];
#endif
        return r;
    }

    /** Logical (zero-filling) left shift by an immediate. */
    template <int N>
    IntV
    shiftLeft() const
    {
        IntV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_slli_epi32(v, N);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_slli_epi32(v, N);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vshlq_n_s32(v, N);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(v[i]) << N);
#endif
        return r;
    }

    /** Arithmetic (sign-filling) right shift by an immediate. */
    template <int N>
    IntV
    shiftRightArith() const
    {
        IntV r;
#if defined(GCC3D_SIMD_AVX2)
        r.v = _mm256_srai_epi32(v, N);
#elif defined(GCC3D_SIMD_SSE2)
        r.v = _mm_srai_epi32(v, N);
#elif defined(GCC3D_SIMD_NEON)
        r.v = vshrq_n_s32(v, N);
#else
        for (int i = 0; i < 4; ++i)
            r.v[i] = v[i] >> N;
#endif
        return r;
    }
};

// =====================================================================
// Conversions and selects.
// =====================================================================

/** Bitwise reinterpretation float lanes -> int lanes. */
inline IntV
bitcastToInt(const FloatV &f)
{
    IntV r;
#if defined(GCC3D_SIMD_AVX2)
    r.v = _mm256_castps_si256(f.v);
#elif defined(GCC3D_SIMD_SSE2)
    r.v = _mm_castps_si128(f.v);
#elif defined(GCC3D_SIMD_NEON)
    r.v = vreinterpretq_s32_f32(f.v);
#else
    for (int i = 0; i < 4; ++i)
        r.v[i] = std::bit_cast<std::int32_t>(f.v[i]);
#endif
    return r;
}

/** Bitwise reinterpretation int lanes -> float lanes. */
inline FloatV
bitcastToFloat(const IntV &x)
{
    FloatV r;
#if defined(GCC3D_SIMD_AVX2)
    r.v = _mm256_castsi256_ps(x.v);
#elif defined(GCC3D_SIMD_SSE2)
    r.v = _mm_castsi128_ps(x.v);
#elif defined(GCC3D_SIMD_NEON)
    r.v = vreinterpretq_f32_s32(x.v);
#else
    for (int i = 0; i < 4; ++i)
        r.v[i] = std::bit_cast<float>(x.v[i]);
#endif
    return r;
}

/** Exact int -> float conversion per lane. */
inline FloatV
toFloat(const IntV &x)
{
    FloatV r;
#if defined(GCC3D_SIMD_AVX2)
    r.v = _mm256_cvtepi32_ps(x.v);
#elif defined(GCC3D_SIMD_SSE2)
    r.v = _mm_cvtepi32_ps(x.v);
#elif defined(GCC3D_SIMD_NEON)
    r.v = vcvtq_f32_s32(x.v);
#else
    for (int i = 0; i < 4; ++i)
        r.v[i] = static_cast<float>(x.v[i]);
#endif
    return r;
}

/** Round to nearest (ties to even) per lane. */
inline IntV
roundToInt(const FloatV &f)
{
    IntV r;
#if defined(GCC3D_SIMD_AVX2)
    r.v = _mm256_cvtps_epi32(f.v);
#elif defined(GCC3D_SIMD_SSE2)
    r.v = _mm_cvtps_epi32(f.v);
#elif defined(GCC3D_SIMD_NEON)
    r.v = vcvtnq_s32_f32(f.v);
#else
    for (int i = 0; i < 4; ++i)
        r.v[i] = static_cast<std::int32_t>(
            std::nearbyintf(f.v[i]));
#endif
    return r;
}

inline FloatV
FloatV::iotaFrom(int x0)
{
    return toFloat(IntV(x0) + IntV::iota());
}

/** Lane-wise m ? a : b. */
inline FloatV
select(const MaskV &m, const FloatV &a, const FloatV &b)
{
    FloatV r;
#if defined(GCC3D_SIMD_AVX2)
    r.v = _mm256_blendv_ps(b.v, a.v, m.m);
#elif defined(GCC3D_SIMD_SSE2)
    r.v = _mm_or_ps(_mm_and_ps(m.m, a.v), _mm_andnot_ps(m.m, b.v));
#elif defined(GCC3D_SIMD_NEON)
    r.v = vbslq_f32(m.m, a.v, b.v);
#else
    for (int i = 0; i < 4; ++i)
        r.v[i] = m.m[i] ? a.v[i] : b.v[i];
#endif
    return r;
}

/** Lane-wise m ? a : b on integer lanes. */
inline IntV
selectInt(const MaskV &m, const IntV &a, const IntV &b)
{
    IntV r;
#if defined(GCC3D_SIMD_AVX2)
    r.v = _mm256_castps_si256(_mm256_blendv_ps(
        _mm256_castsi256_ps(b.v), _mm256_castsi256_ps(a.v), m.m));
#elif defined(GCC3D_SIMD_SSE2)
    __m128i mi = _mm_castps_si128(m.m);
    r.v = _mm_or_si128(_mm_and_si128(mi, a.v),
                       _mm_andnot_si128(mi, b.v));
#elif defined(GCC3D_SIMD_NEON)
    r.v = vreinterpretq_s32_u32(
        vbslq_u32(m.m, vreinterpretq_u32_s32(a.v),
                  vreinterpretq_u32_s32(b.v)));
#else
    for (int i = 0; i < 4; ++i)
        r.v[i] = m.m[i] ? a.v[i] : b.v[i];
#endif
    return r;
}

/** Lane-wise i32 equality. */
inline MaskV
cmpEq(const IntV &a, const IntV &b)
{
    MaskV r;
#if defined(GCC3D_SIMD_AVX2)
    r.m = _mm256_castsi256_ps(_mm256_cmpeq_epi32(a.v, b.v));
#elif defined(GCC3D_SIMD_SSE2)
    r.m = _mm_castsi128_ps(_mm_cmpeq_epi32(a.v, b.v));
#elif defined(GCC3D_SIMD_NEON)
    r.m = vceqq_s32(a.v, b.v);
#else
    for (int i = 0; i < 4; ++i)
        r.m[i] = a.v[i] == b.v[i] ? 0xffffffffu : 0u;
#endif
    return r;
}

/**
 * Lane-wise minimum with SSE semantics: min(a, b) = a < b ? a : b
 * (b wins when a is NaN or when the values compare equal).
 */
inline FloatV
min(const FloatV &a, const FloatV &b)
{
    FloatV r;
#if defined(GCC3D_SIMD_AVX2)
    r.v = _mm256_min_ps(a.v, b.v);
#elif defined(GCC3D_SIMD_SSE2)
    r.v = _mm_min_ps(a.v, b.v);
#elif defined(GCC3D_SIMD_NEON)
    r.v = vbslq_f32(vcltq_f32(a.v, b.v), a.v, b.v);
#else
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
#endif
    return r;
}

/**
 * Lane-wise maximum with SSE semantics: max(a, b) = a > b ? a : b
 * (b wins when a is NaN or when the values compare equal).
 */
inline FloatV
max(const FloatV &a, const FloatV &b)
{
    FloatV r;
#if defined(GCC3D_SIMD_AVX2)
    r.v = _mm256_max_ps(a.v, b.v);
#elif defined(GCC3D_SIMD_SSE2)
    r.v = _mm_max_ps(a.v, b.v);
#elif defined(GCC3D_SIMD_NEON)
    r.v = vbslq_f32(vcgtq_f32(a.v, b.v), a.v, b.v);
#else
    for (int i = 0; i < 4; ++i)
        r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
#endif
    return r;
}

// =====================================================================
// simdExp: vectorized polynomial exponential.
// =====================================================================

namespace exp_detail {
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kC1 = 0.693359375f;        ///< ln2 high part
inline constexpr float kC2 = -2.12194440e-4f;     ///< ln2 low part
inline constexpr float kP0 = 1.9875691500e-4f;
inline constexpr float kP1 = 1.3981999507e-3f;
inline constexpr float kP2 = 8.3334519073e-3f;
inline constexpr float kP3 = 4.1665795894e-2f;
inline constexpr float kP4 = 1.6666665459e-1f;
inline constexpr float kP5 = 5.0000001201e-1f;
/** Clamp bounds keeping 2^n in normal-float range. */
inline constexpr float kExpLo = -87.3365447504019f;
inline constexpr float kExpHi = 88.3762626647949f;
} // namespace exp_detail

/**
 * Scalar transcription of simdExp: the identical operation sequence
 * on one lane (the unit tests verify simdExp is lane-for-lane
 * bit-identical to this).
 *
 * Accuracy contract: relative error < 3e-7 against std::exp over
 * [-87.3, 88.3].  Inputs are clamped to that interval first, so the
 * result is always a positive normal float — in particular
 * simdExpScalar(-inf) is ~1.2e-38, NOT 0.  Callers gating on an
 * alpha/cutoff threshold (the renderers' fast-alpha mode) are
 * unaffected: their inputs live in [-6, 0] by construction.
 */
inline float
simdExpScalar(float x)
{
    using namespace exp_detail;
    // min/max with the SSE rule (second operand wins on NaN).
    x = x < kExpHi ? x : kExpHi;
    x = x > kExpLo ? x : kExpLo;
    float fx = x * kLog2e;
    float fn = std::nearbyintf(fx);  // ties to even, matches cvtps
    std::int32_t n = static_cast<std::int32_t>(fn);
    x = x - fn * kC1;
    x = x - fn * kC2;
    float z = x * x;
    float y = kP0;
    y = y * x + kP1;
    y = y * x + kP2;
    y = y * x + kP3;
    y = y * x + kP4;
    y = y * x + kP5;
    y = y * z + x + 1.0f;
    float pow2 = std::bit_cast<float>((n + 127) << 23);
    return y * pow2;
}

/**
 * Vectorized exp with the contract documented on simdExpScalar.
 * Bit-identical per lane to simdExpScalar.
 */
inline FloatV
simdExp(FloatV x)
{
    using namespace exp_detail;
    x = min(x, FloatV(kExpHi));
    x = max(x, FloatV(kExpLo));
    FloatV fx = x * FloatV(kLog2e);
    IntV n = roundToInt(fx);
    FloatV fn = toFloat(n);
    x = x - fn * FloatV(kC1);
    x = x - fn * FloatV(kC2);
    FloatV z = x * x;
    FloatV y(kP0);
    y = y * x + FloatV(kP1);
    y = y * x + FloatV(kP2);
    y = y * x + FloatV(kP3);
    y = y * x + FloatV(kP4);
    y = y * x + FloatV(kP5);
    y = y * z + x + FloatV(1.0f);
    FloatV pow2 = bitcastToFloat((n + IntV(127)).shiftLeft<23>());
    return y * pow2;
}

} // namespace simd
} // namespace gcc3d

#endif // GCC3D_GSMATH_SIMD_H
