/**
 * @file
 * Lookup-table EXP unit with piecewise-linear approximation (Sec. 4.4).
 *
 * The Alpha Unit computes alpha = exp(ln_omega - q/2).  Meaningful
 * alpha values lie in [1/255, 1), so the exponent input is constrained
 * to [-5.54, 0).  The hardware covers only this interval with 16
 * linear segments (a_i * x + b_i) evaluated in fixed point:
 *   - inputs below -5.54 clamp to alpha = 0,
 *   - inputs >= 0 saturate to alpha = 1 (then min(0.99, .) downstream),
 *   - approximation error is below 1% across the interval.
 */

#ifndef GCC3D_GSMATH_EXP_LUT_H
#define GCC3D_GSMATH_EXP_LUT_H

#include <array>

#include "gsmath/fixed_point.h"

namespace gcc3d {

/**
 * Piecewise-linear exponential approximator over [-5.54, 0) using a
 * fully fixed-point datapath, modeling the GCC Alpha Unit EXP stage.
 *
 * Thread safety: the segment table is fully built in the constructor
 * and never modified afterwards (no lazy initialization), so a
 * constructed ExpLut may be shared and evaluated concurrently from
 * any number of threads.
 */
class ExpLut
{
  public:
    /** Number of linear segments in the LUT. */
    static constexpr int kSegments = 16;
    /** Lower bound of the covered exponent interval: ln(1/255). */
    static constexpr float kLowerBound = -5.5412635f;

    ExpLut();

    /**
     * Approximate exp(x).
     *
     * @param x exponent; clamped to 0 below kLowerBound, saturated to
     *          1 at or above zero.
     * @return approximation of exp(x) in [0, 1].
     */
    float eval(float x) const;

    /**
     * Fixed-point evaluation used by the cycle-accurate Alpha Unit
     * model; quantizes input/coefficients/output to the Q5.16 datapath.
     */
    AlphaFixed evalFixed(AlphaFixed x) const;

    /** Maximum relative error across the covered interval (for tests). */
    float maxRelativeError(int samples = 4096) const;

  private:
    /**
     * One linear segment, evaluated in segment-local coordinates
     * (y = a * (x - x0) + c): keeping the multiplicand small avoids
     * amplifying the slope's quantization error by |x|.
     */
    struct Segment
    {
        float x0;       ///< segment start (inclusive)
        AlphaFixed a;   ///< slope
        AlphaFixed c;   ///< value at x0
    };

    int segmentIndex(float x) const;

    std::array<Segment, kSegments> segs_;
    float seg_width_;
};

} // namespace gcc3d

#endif // GCC3D_GSMATH_EXP_LUT_H
