/**
 * @file
 * Always-on per-stage perf recorder: the single timing path of the
 * whole stack.
 *
 * Every stage duration in the library — renderer preprocess/binning/
 * raster/warp laps, LOD cut builds, chunk decodes, scene IO, scheduler
 * queue waits, sweep jobs — is recorded here through one of three
 * hooks:
 *
 *  - PerfScope    RAII span around a block; an optional sink pointer
 *                 additionally accumulates the duration into a caller
 *                 field (how StageTimes is filled from this one code
 *                 path without a second clock read).
 *  - StageTimer   lap-based chaining for the renderers' sequential
 *                 stage pipelines: lap(stage) attributes the time
 *                 since the previous lap (or construction), exactly
 *                 the semantics of the old hand-rolled
 *                 monotonicNow()/msBetween() chains it replaces.
 *  - addSample()  direct injection of an already-measured duration
 *                 (scheduler queue waits, tests); the sample is
 *                 back-dated to end now.
 *
 * Storage is a fixed-capacity ring buffer per recording thread, so
 * recording is lock-free after a thread's first sample and the
 * memory bound is explicit.  Samples carry (stage, start, duration,
 * session/frame tags); the tags come from the thread's ambient
 * FrameTag so renderer internals need no plumbing.
 *
 * Determinism: summary() merges the per-thread rings by sorting the
 * retained samples on their value key (stage, session, frame, seq,
 * duration) and tree-summing in that order — the summary of a fixed
 * tagged sample set is bit-identical however the samples were
 * distributed across threads (tests/test_obs.cc locks 1/2/8-worker
 * distributions to equality).
 *
 * Thread safety: record() is safe from any thread.  summary(),
 * samples() and reset() require recording threads to be quiescent
 * (no scope currently open) — every caller in the tree reads after
 * joining its workers, and the future/join that establishes
 * quiescence also publishes the ring contents.
 *
 * With GCC3D_OBS=OFF every type below is an empty stub with the same
 * signatures; see obs_config.h.  tickNow() stays real in both builds:
 * it is the sanctioned pass-through clock read for *behavioral*
 * timing (scheduler pacing, pool queue-wait stamps) — the gsc_lint
 * `recorder` rule bans raw monotonicNow()/msSince() calls outside
 * src/obs/ so all timing funnels through here.
 */

#ifndef GCC3D_OBS_PERF_RECORDER_H
#define GCC3D_OBS_PERF_RECORDER_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs_config.h"
#include "obs/stage.h"
#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"
#include "runtime/wallclock.h"

namespace gcc3d::obs {

/** Behavioral clock read (pacing, SLO stamps): real in every build. */
inline MonoTime
tickNow()
{
    return monotonicNow();
}

/** Session/frame/sequence tags attached to a sample. */
struct SampleTag
{
    std::int32_t session = -1;  ///< serving session id; -1 = none
    std::int32_t frame = -1;    ///< trajectory frame; -1 = none
    std::uint32_t seq = 0;      ///< caller sequence (tests, ordering)
};

/** One recorded duration. */
struct PerfSample
{
    double start_us = 0.0;      ///< start, µs since recorder epoch
    double dur_ms = 0.0;
    std::int32_t session = -1;
    std::int32_t frame = -1;
    std::uint32_t seq = 0;
    std::int32_t thread = -1;   ///< recording-thread index (set on collect)
    Stage stage = Stage::Queue;
};

/** Merged per-stage aggregate. */
struct StageSummary
{
    std::int64_t count = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    /** Rolling history: the most recent retained durations, oldest
     *  first (at most PerfRecorder::kHistory). */
    std::vector<double> recent;
};

/** Deterministic merge of every thread's retained samples. */
struct PerfSummary
{
    std::array<StageSummary, kStageCount> stages{};
    std::uint64_t recorded = 0;  ///< samples ever recorded
    std::uint64_t retained = 0;  ///< samples still in the rings
};

/** {"stages": {...}, "recorded": N, "retained": N} */
std::string perfSummaryJson(const PerfSummary &summary);

#if GCC3D_OBS_ENABLED

class PerfRecorder
{
  public:
    static constexpr std::size_t kDefaultRingCapacity = 16384;
    static constexpr std::size_t kHistory = 32;

    explicit PerfRecorder(std::size_t ring_capacity = kDefaultRingCapacity);
    ~PerfRecorder();

    PerfRecorder(const PerfRecorder &) = delete;
    PerfRecorder &operator=(const PerfRecorder &) = delete;

    /** The process-wide recorder every hook feeds. */
    static PerfRecorder &global();

    /** Runtime kill switch (also the obs_overhead baseline): when
     *  off, record()/addSample() return immediately. */
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Record a span that started at @p start and ran @p dur_ms,
     *  tagged with the calling thread's ambient FrameTag. */
    void record(Stage stage, MonoTime start, double dur_ms);

    /** Inject an already-measured duration with an explicit tag; the
     *  sample is back-dated to end now. */
    void addSample(Stage stage, double dur_ms, SampleTag tag = {});

    /** Deterministic merged per-stage aggregates (see file comment
     *  for the quiescence requirement). */
    PerfSummary summary() const;

    /** Every retained sample, chronological (start, thread); thread
     *  indices filled in.  Trace-export input. */
    std::vector<PerfSample> samples() const;

    /** Drop every retained sample and reset counts; thread
     *  registrations and the epoch survive. */
    void reset();

    std::size_t ringCapacity() const { return capacity_; }

  private:
    struct ThreadLog
    {
        explicit ThreadLog(std::size_t capacity) : ring(capacity) {}
        std::vector<PerfSample> ring;
        std::size_t head = 0;        ///< next write slot
        std::uint64_t recorded = 0;  ///< samples ever written
    };

    /** The calling thread's log, registering it on first use. */
    ThreadLog &threadLog();

    const std::uint64_t id_;       ///< process-unique (cache validity)
    const std::size_t capacity_;
    const MonoTime epoch_;
    std::atomic<bool> enabled_{true};

    mutable Mutex mutex_;
    std::vector<std::unique_ptr<ThreadLog>> logs_ GUARDED_BY(mutex_);
    std::map<std::thread::id, std::size_t> index_ GUARDED_BY(mutex_);
};

/**
 * Ambient (thread-local) session/frame tag: samples recorded on this
 * thread while a FrameTag is alive carry its ids.  Nests; restores
 * the previous tag on destruction.
 */
class FrameTag
{
  public:
    FrameTag(std::int32_t session, std::int32_t frame);
    ~FrameTag();

    FrameTag(const FrameTag &) = delete;
    FrameTag &operator=(const FrameTag &) = delete;

  private:
    SampleTag saved_;
};

/** RAII span: records [construction, destruction) against @p stage
 *  and, when @p sink_ms is non-null, accumulates the duration there
 *  (the StageTimes fill path). */
class PerfScope
{
  public:
    explicit PerfScope(Stage stage, double *sink_ms = nullptr)
        : t0_(monotonicNow()), sink_(sink_ms), stage_(stage)
    {
    }

    ~PerfScope()
    {
        const double dur = msBetween(t0_, monotonicNow());
        if (sink_ != nullptr)
            *sink_ += dur;
        PerfRecorder::global().record(stage_, t0_, dur);
    }

    PerfScope(const PerfScope &) = delete;
    PerfScope &operator=(const PerfScope &) = delete;

  private:
    MonoTime t0_;
    double *sink_;
    Stage stage_;
};

/** Lap-based timer for sequential stage pipelines: lap() attributes
 *  the time since the previous lap (or construction) to @p stage and
 *  restarts the clock — one clock read per boundary, exactly the old
 *  hand-rolled msBetween() chains. */
class StageTimer
{
  public:
    StageTimer() : mark_(monotonicNow()) {}

    void
    lap(Stage stage, double *sink_ms = nullptr)
    {
        const MonoTime now = monotonicNow();
        const double dur = msBetween(mark_, now);
        if (sink_ms != nullptr)
            *sink_ms += dur;
        PerfRecorder::global().record(stage, mark_, dur);
        mark_ = now;
    }

  private:
    MonoTime mark_;
};

#else // !GCC3D_OBS_ENABLED — no-op stubs, identical signatures.

class PerfRecorder
{
  public:
    static constexpr std::size_t kDefaultRingCapacity = 16384;
    static constexpr std::size_t kHistory = 32;

    explicit PerfRecorder(std::size_t = kDefaultRingCapacity) {}

    static PerfRecorder &global();

    void setEnabled(bool) {}
    bool enabled() const { return false; }
    void record(Stage, MonoTime, double) {}
    void addSample(Stage, double, SampleTag = {}) {}
    PerfSummary summary() const { return {}; }
    std::vector<PerfSample> samples() const { return {}; }
    void reset() {}
    std::size_t ringCapacity() const { return 0; }
};

class FrameTag
{
  public:
    FrameTag(std::int32_t, std::int32_t) {}
};

class PerfScope
{
  public:
    explicit PerfScope(Stage, double * = nullptr) {}
};

class StageTimer
{
  public:
    StageTimer() {}  // user-provided: a no-op timer is not "unused"
    void lap(Stage, double * = nullptr) {}
};

#endif // GCC3D_OBS_ENABLED

} // namespace gcc3d::obs

#endif // GCC3D_OBS_PERF_RECORDER_H
