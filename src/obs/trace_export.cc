#include "obs/trace_export.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "obs/metrics_registry.h"

namespace gcc3d::obs {

std::string
traceJson(const PerfRecorder &recorder)
{
    const std::vector<PerfSample> samples = recorder.samples();

    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"traceEvents\": [";

    // Metadata events naming each recording thread, so the trace UI
    // shows "gcc3d worker N" rows instead of bare tids.
    std::int32_t max_thread = -1;
    for (const PerfSample &s : samples)
        max_thread = std::max(max_thread, s.thread);
    bool first = true;
    for (std::int32_t t = 0; t <= max_thread; ++t) {
        os << (first ? "" : ",")
           << "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
              "\"tid\": "
           << t << ", \"args\": {\"name\": \"gcc3d worker " << t << "\"}}";
        first = false;
    }

    for (const PerfSample &s : samples) {
        os << (first ? "" : ",") << "\n  {\"name\": \"" << stageName(s.stage)
           << "\", \"cat\": \"gcc3d\", \"ph\": \"X\", \"ts\": " << s.start_us
           << ", \"dur\": " << s.dur_ms * 1000.0
           << ", \"pid\": 1, \"tid\": " << s.thread;
        if (s.session >= 0 || s.frame >= 0) {
            os << ", \"args\": {";
            bool first_arg = true;
            if (s.session >= 0) {
                os << "\"session\": " << s.session;
                first_arg = false;
            }
            if (s.frame >= 0)
                os << (first_arg ? "" : ", ") << "\"frame\": " << s.frame;
            os << "}";
        }
        os << "}";
        first = false;
    }

    os << (first ? "]" : "\n ]") << ",\n \"displayTimeUnit\": \"ms\"}";
    return os.str();
}

std::string
traceJson()
{
    return traceJson(PerfRecorder::global());
}

std::string
observabilityJson()
{
    std::ostringstream os;
    os << "{\"stages\": " << perfSummaryJson(PerfRecorder::global().summary())
       << ",\n \"metrics\": " << MetricsRegistry::global().toJson() << "}";
    return os.str();
}

} // namespace gcc3d::obs
