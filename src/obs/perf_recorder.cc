#include "obs/perf_recorder.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace gcc3d::obs {

namespace {

/**
 * Pairwise (tree) summation over @p n already-ordered values: the
 * reduction shape depends only on n, so a fixed ordered sequence
 * always sums to the same bits — and with less rounding drift than a
 * left fold.
 */
double
treeSum(const double *v, std::size_t n)
{
    if (n == 0)
        return 0.0;
    if (n == 1)
        return v[0];
    const std::size_t half = n / 2;
    return treeSum(v, half) + treeSum(v + half, n - half);
}

/** Sort key making a sample multiset's merge order distribution-
 *  independent: value fields only, no thread or wall-clock terms
 *  (equal-key duplicates are interchangeable for summation). */
bool
mergeKeyLess(const PerfSample &a, const PerfSample &b)
{
    if (a.stage != b.stage)
        return a.stage < b.stage;
    if (a.session != b.session)
        return a.session < b.session;
    if (a.frame != b.frame)
        return a.frame < b.frame;
    if (a.seq != b.seq)
        return a.seq < b.seq;
    return a.dur_ms < b.dur_ms;
}

} // namespace

std::string
perfSummaryJson(const PerfSummary &summary)
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"recorded\": " << summary.recorded
       << ", \"retained\": " << summary.retained << ",\n   \"stages\": {";
    bool first = true;
    for (int i = 0; i < kStageCount; ++i) {
        const StageSummary &s = summary.stages[static_cast<std::size_t>(i)];
        if (s.count == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\n    \"" << stageName(static_cast<Stage>(i))
           << "\": {\"count\": " << s.count
           << ", \"total_ms\": " << s.total_ms
           << ", \"mean_ms\": " << s.total_ms / static_cast<double>(s.count)
           << ", \"min_ms\": " << s.min_ms << ", \"max_ms\": " << s.max_ms
           << ", \"recent\": [";
        for (std::size_t k = 0; k < s.recent.size(); ++k)
            os << (k != 0 ? ", " : "") << s.recent[k];
        os << "]}";
    }
    os << (first ? "}" : "\n  }") << "}";
    return os.str();
}

#if GCC3D_OBS_ENABLED

namespace {

std::uint64_t
nextRecorderId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/** Ambient tag of the calling thread (FrameTag RAII). */
SampleTag &
currentTag()
{
    thread_local SampleTag tag;
    return tag;
}

} // namespace

PerfRecorder::PerfRecorder(std::size_t ring_capacity)
    : id_(nextRecorderId()), capacity_(std::max<std::size_t>(1, ring_capacity)),
      epoch_(monotonicNow())
{
}

PerfRecorder::~PerfRecorder() = default;

PerfRecorder &
PerfRecorder::global()
{
    static PerfRecorder recorder;
    return recorder;
}

PerfRecorder::ThreadLog &
PerfRecorder::threadLog()
{
    // One-entry cache: (recorder id, log) of the last recorder this
    // thread recorded into.  Ids are process-unique, so a recorder
    // destroyed and another allocated at the same address can never
    // revive a stale pointer.
    thread_local std::uint64_t cached_id = 0;
    thread_local ThreadLog *cached_log = nullptr;
    if (cached_id == id_)
        return *cached_log;

    MutexLock lock(mutex_);
    auto [it, inserted] = index_.try_emplace(std::this_thread::get_id(),
                                             logs_.size());
    if (inserted)
        logs_.push_back(std::make_unique<ThreadLog>(capacity_));
    ThreadLog *log = logs_[it->second].get();
    cached_id = id_;
    cached_log = log;
    return *log;
}

void
PerfRecorder::record(Stage stage, MonoTime start, double dur_ms)
{
    if (!enabled())
        return;
    ThreadLog &log = threadLog();
    PerfSample &s = log.ring[log.head];
    const SampleTag &tag = currentTag();
    s.start_us =
        std::chrono::duration<double, std::micro>(start - epoch_).count();
    s.dur_ms = dur_ms;
    s.session = tag.session;
    s.frame = tag.frame;
    s.seq = tag.seq;
    s.thread = -1;
    s.stage = stage;
    log.head = log.head + 1 == log.ring.size() ? 0 : log.head + 1;
    ++log.recorded;
}

void
PerfRecorder::addSample(Stage stage, double dur_ms, SampleTag tag)
{
    if (!enabled())
        return;
    ThreadLog &log = threadLog();
    PerfSample &s = log.ring[log.head];
    // Back-date the span to end now.
    s.start_us =
        std::chrono::duration<double, std::micro>(monotonicNow() - epoch_)
            .count() -
        dur_ms * 1000.0;
    s.dur_ms = dur_ms;
    s.session = tag.session;
    s.frame = tag.frame;
    s.seq = tag.seq;
    s.thread = -1;
    s.stage = stage;
    log.head = log.head + 1 == log.ring.size() ? 0 : log.head + 1;
    ++log.recorded;
}

std::vector<PerfSample>
PerfRecorder::samples() const
{
    std::vector<PerfSample> out;
    {
        MutexLock lock(mutex_);
        for (std::size_t t = 0; t < logs_.size(); ++t) {
            const ThreadLog &log = *logs_[t];
            const std::size_t cap = log.ring.size();
            const std::size_t n =
                log.recorded < cap ? static_cast<std::size_t>(log.recorded)
                                   : cap;
            // Oldest first: a wrapped ring starts at head.
            const std::size_t first = log.recorded < cap ? 0 : log.head;
            for (std::size_t k = 0; k < n; ++k) {
                PerfSample s = log.ring[(first + k) % cap];
                s.thread = static_cast<std::int32_t>(t);
                out.push_back(s);
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const PerfSample &a, const PerfSample &b) {
                  if (a.start_us != b.start_us)
                      return a.start_us < b.start_us;
                  if (a.thread != b.thread)
                      return a.thread < b.thread;
                  return a.seq < b.seq;
              });
    return out;
}

PerfSummary
PerfRecorder::summary() const
{
    PerfSummary sum;
    std::vector<PerfSample> all = samples();  // chronological
    sum.retained = all.size();
    {
        MutexLock lock(mutex_);
        for (const std::unique_ptr<ThreadLog> &log : logs_)
            sum.recorded += log->recorded;
    }

    // Rolling histories come from chronological order; the aggregate
    // accumulation from the value-key order (see mergeKeyLess).
    for (const PerfSample &s : all) {
        StageSummary &st = sum.stages[static_cast<std::size_t>(s.stage)];
        st.recent.push_back(s.dur_ms);
        if (st.recent.size() > kHistory)
            st.recent.erase(st.recent.begin());
    }

    std::stable_sort(all.begin(), all.end(), mergeKeyLess);
    std::size_t i = 0;
    while (i < all.size()) {
        const Stage stage = all[i].stage;
        std::size_t j = i;
        while (j < all.size() && all[j].stage == stage)
            ++j;
        StageSummary &st = sum.stages[static_cast<std::size_t>(stage)];
        std::vector<double> durs;
        durs.reserve(j - i);
        for (std::size_t k = i; k < j; ++k)
            durs.push_back(all[k].dur_ms);
        st.count = static_cast<std::int64_t>(durs.size());
        st.total_ms = treeSum(durs.data(), durs.size());
        st.min_ms = *std::min_element(durs.begin(), durs.end());
        st.max_ms = *std::max_element(durs.begin(), durs.end());
        i = j;
    }
    return sum;
}

void
PerfRecorder::reset()
{
    MutexLock lock(mutex_);
    for (std::unique_ptr<ThreadLog> &log : logs_) {
        log->head = 0;
        log->recorded = 0;
    }
}

FrameTag::FrameTag(std::int32_t session, std::int32_t frame)
    : saved_(currentTag())
{
    currentTag() = SampleTag{session, frame, saved_.seq};
}

FrameTag::~FrameTag()
{
    currentTag() = saved_;
}

#else // !GCC3D_OBS_ENABLED

PerfRecorder &
PerfRecorder::global()
{
    static PerfRecorder recorder;
    return recorder;
}

#endif // GCC3D_OBS_ENABLED

} // namespace gcc3d::obs
