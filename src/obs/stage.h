/**
 * @file
 * The closed set of pipeline stages the perf recorder attributes time
 * to.  A fixed enum (not free-form strings) keeps the hot recording
 * path allocation-free and gives SLO miss attribution a stable,
 * exhaustive component vocabulary.
 */

#ifndef GCC3D_OBS_STAGE_H
#define GCC3D_OBS_STAGE_H

#include <cstdint>

namespace gcc3d::obs {

/** Where a recorded duration was spent. */
enum class Stage : std::uint8_t
{
    Queue = 0,   ///< scheduler queue wait (admissible -> dispatched)
    Preprocess,  ///< projection/SH/culling pass of either renderer
    Binning,     ///< tile/sub-view binning
    Raster,      ///< per-tile / per-sub-view rasterization
    Warp,        ///< temporal reprojection of an in-between frame
    Decode,      ///< LOD cut build of a frame (residency faults inside)
    ChunkDecode, ///< one leaf-chunk decode in the residency manager
    SceneIo,     ///< .gsc scene file read/write
    Frame,       ///< one served frame end to end (render call)
    Job,         ///< one batch sweep job / serial fleet replay
};

inline constexpr int kStageCount = static_cast<int>(Stage::Job) + 1;

/** Stable lower-case stage name (trace events, JSON keys). */
inline const char *
stageName(Stage stage)
{
    switch (stage) {
    case Stage::Queue:
        return "queue";
    case Stage::Preprocess:
        return "preprocess";
    case Stage::Binning:
        return "binning";
    case Stage::Raster:
        return "raster";
    case Stage::Warp:
        return "warp";
    case Stage::Decode:
        return "decode";
    case Stage::ChunkDecode:
        return "chunk_decode";
    case Stage::SceneIo:
        return "scene_io";
    case Stage::Frame:
        return "frame";
    case Stage::Job:
        return "job";
    }
    return "unknown";
}

} // namespace gcc3d::obs

#endif // GCC3D_OBS_STAGE_H
