/**
 * @file
 * Named counters, gauges and fixed-bucket log-scale histograms.
 *
 * The registry is the numeric side of the observability layer: where
 * the PerfRecorder answers "where did the time go", the registry
 * answers "how often / how many / how deep" — pool queue depth and
 * task wait, residency hits/faults/evictions, scheduler sheds,
 * temporal-cache tier hits, scene IO volume.
 *
 * Naming scheme: dotted lower-case `<module>.<subsystem>.<metric>`
 * (e.g. "runtime.pool.queue_wait_ms", "serve.sheds.edf",
 * "lod.residency.hits", "render.temporal.tiles_reused").  Histogram
 * names end in their unit.
 *
 * Hot-path contract: counter/gauge/histogram updates are lock-free
 * atomics; the by-name lookup takes the registry mutex, so call sites
 * on hot paths cache the returned reference (constructor member, or a
 * function-local static) — references stay valid for the registry's
 * lifetime.
 *
 * With GCC3D_OBS=OFF every type is a no-op stub; see obs_config.h.
 */

#ifndef GCC3D_OBS_METRICS_REGISTRY_H
#define GCC3D_OBS_METRICS_REGISTRY_H

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "obs/obs_config.h"
#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"

namespace gcc3d::obs {

/** Log2 bucket layout shared by every histogram: bucket 0 holds
 *  zero/negative/sub-2^kMinExp values, buckets 1..kBuckets-2 are
 *  [2^(kMinExp+i-1), 2^(kMinExp+i)), the last bucket is overflow. */
struct HistogramBuckets
{
    static constexpr int kBuckets = 32;
    static constexpr int kMinExp = -10;  ///< bucket 1 starts at 2^-10

    static int
    bucketIndex(double v)
    {
        if (!(v > 0.0))
            return 0;  // zero, negative, NaN
        if (std::isinf(v))
            return kBuckets - 1;
        const int idx = std::ilogb(v) - kMinExp + 1;
        return idx < 0 ? 0 : (idx >= kBuckets ? kBuckets - 1 : idx);
    }

    /** Inclusive lower bound of bucket @p i (0 for the underflow
     *  bucket). */
    static double
    bucketLowerBound(int i)
    {
        return i <= 0 ? 0.0 : std::exp2(kMinExp + i - 1);
    }

    /** Exclusive upper bound of bucket @p i (+inf for the last). */
    static double
    bucketUpperBound(int i)
    {
        return i >= kBuckets - 1
                   ? std::numeric_limits<double>::infinity()
                   : std::exp2(kMinExp + i);
    }
};

#if GCC3D_OBS_ENABLED

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(std::int64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/** Sampled instantaneous value with running count/sum/min/max. */
class Gauge
{
  public:
    void
    set(double v)
    {
        last_.store(v, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        atomicAdd(sum_, v);
        atomicMin(min_, v);
        atomicMax(max_, v);
    }

    std::int64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double last() const { return last_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    double
    mean() const
    {
        const std::int64_t n = count();
        return n > 0 ? sum() / static_cast<double>(n) : 0.0;
    }

    double
    min() const
    {
        return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
    }

    double
    max() const
    {
        return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
    }

    void
    reset()
    {
        count_.store(0, std::memory_order_relaxed);
        last_.store(0.0, std::memory_order_relaxed);
        sum_.store(0.0, std::memory_order_relaxed);
        min_.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
        max_.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    }

  private:
    static void
    atomicAdd(std::atomic<double> &a, double v)
    {
        double cur = a.load(std::memory_order_relaxed);
        while (!a.compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
        }
    }

    static void
    atomicMin(std::atomic<double> &a, double v)
    {
        double cur = a.load(std::memory_order_relaxed);
        while (v < cur && !a.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    static void
    atomicMax(std::atomic<double> &a, double v)
    {
        double cur = a.load(std::memory_order_relaxed);
        while (v > cur && !a.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    std::atomic<std::int64_t> count_{0};
    std::atomic<double> last_{0.0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/** Fixed-bucket log-scale distribution (see HistogramBuckets). */
class Histogram : public HistogramBuckets
{
  public:
    void
    record(double v)
    {
        buckets_[static_cast<std::size_t>(bucketIndex(v))].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        double cur = sum_.load(std::memory_order_relaxed);
        while (!sum_.compare_exchange_weak(cur, cur + v,
                                           std::memory_order_relaxed)) {
        }
    }

    std::int64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    double
    mean() const
    {
        const std::int64_t n = count();
        return n > 0 ? sum() / static_cast<double>(n) : 0.0;
    }

    std::int64_t
    bucketCount(int i) const
    {
        return buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0.0, std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
    std::atomic<std::int64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * Process-wide name -> instrument map.  Lookups are mutex-protected
 * and return stable references; updates through the references are
 * lock-free.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    static MetricsRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Zero every instrument (names and references survive). */
    void resetAll();

    /** {"counters": {...}, "gauges": {...}, "histograms": {...}},
     *  names sorted; histogram buckets exported sparse as
     *  [{"le": upper, "count": n}, ...]. */
    std::string toJson() const;

  private:
    mutable Mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_
        GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        GUARDED_BY(mutex_);
};

#else // !GCC3D_OBS_ENABLED — no-op stubs, identical signatures.

class Counter
{
  public:
    void add(std::int64_t = 1) {}
    std::int64_t value() const { return 0; }
    void reset() {}
};

class Gauge
{
  public:
    void set(double) {}
    std::int64_t count() const { return 0; }
    double last() const { return 0.0; }
    double sum() const { return 0.0; }
    double mean() const { return 0.0; }
    double min() const { return 0.0; }
    double max() const { return 0.0; }
    void reset() {}
};

class Histogram : public HistogramBuckets
{
  public:
    void record(double) {}
    std::int64_t count() const { return 0; }
    double sum() const { return 0.0; }
    double mean() const { return 0.0; }
    std::int64_t bucketCount(int) const { return 0; }
    void reset() {}
};

class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    Counter &counter(const std::string &);
    Gauge &gauge(const std::string &);
    Histogram &histogram(const std::string &);
    void resetAll() {}

    std::string
    toJson() const
    {
        return "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}";
    }
};

#endif // GCC3D_OBS_ENABLED

} // namespace gcc3d::obs

#endif // GCC3D_OBS_METRICS_REGISTRY_H
