#include "obs/fault_hooks.h"

#include <atomic>

namespace gcc3d::obs {

namespace {
std::atomic<FaultInjector *> g_injector{nullptr};
}  // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
    case FaultSite::SceneRead: return "scene_read";
    case FaultSite::ChunkDecode: return "chunk_decode";
    case FaultSite::WorkerStall: return "worker_stall";
    case FaultSite::Disconnect: return "disconnect";
    case FaultSite::BudgetPressure: return "budget_pressure";
    }
    return "unknown";
}

void
setFaultInjector(FaultInjector *injector)
{
    g_injector.store(injector, std::memory_order_release);
}

FaultAction
faultAt(FaultSite site, std::uint64_t key)
{
    FaultInjector *inj = g_injector.load(std::memory_order_acquire);
    if (!inj) return {};
    return inj->at(site, key);
}

bool
faultInjectionActive()
{
    return g_injector.load(std::memory_order_acquire) != nullptr;
}

}  // namespace gcc3d::obs
