/**
 * @file
 * Low-rank fault-injection seam.
 *
 * The chaos engine lives in src/serve/ (rank 5), but the interesting
 * injection points — scene IO, LOD chunk decode, residency budget —
 * live in scene (rank 1) and lod (rank 2), which must not include
 * serve headers.  This header is the seam: rank-1 code asks
 * `faultAt(site, key)` whether a deterministic fault fires here, and
 * the serve-level engine registers itself via `setFaultInjector()`.
 *
 * With no injector installed (the default, and the only state
 * production code ever sees) `faultAt` is a single relaxed atomic
 * load returning "no fault" — zero allocation, zero branches taken.
 *
 * Unlike the metrics stubs this seam is *not* gated on GCC3D_OBS:
 * fault injection is behavioral, not observational, and the retry
 * paths it exercises must compile identically in every build.
 */

#ifndef GCC3D_OBS_FAULT_HOOKS_H
#define GCC3D_OBS_FAULT_HOOKS_H

#include <cstdint>

namespace gcc3d::obs {

/** Where in the pipeline a fault can fire. */
enum class FaultSite : std::uint8_t {
    SceneRead,       ///< .gsc cache read / validation (scene_io)
    ChunkDecode,     ///< LOD chunk decode (LodScene::loadLeaf)
    WorkerStall,     ///< artificial latency in a scheduler worker
    Disconnect,      ///< session leaves mid-stream
    BudgetPressure,  ///< transient residency-budget squeeze
};

constexpr int kFaultSiteCount = 5;

/** Stable lower-case name, used in event logs and tests. */
const char *faultSiteName(FaultSite site);

/** Verdict for one (site, key) probe. */
struct FaultAction
{
    bool inject = false;      ///< fire the fault here?
    double magnitude = 0.0;   ///< site-specific: stall ms, budget factor…
};

/** Interface the serve-level chaos engine implements.  `at` must be
 *  thread-safe and deterministic in (site, key) for a fixed seed. */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;
    virtual FaultAction at(FaultSite site, std::uint64_t key) = 0;
};

/** Install (or clear, with nullptr) the process-wide injector.  The
 *  caller keeps ownership and must clear before destroying it; tests
 *  and gcc3d_serve do this via ChaosEngine's RAII scope. */
void setFaultInjector(FaultInjector *injector);

/** Probe the active injector.  Returns {false, 0} when none is set. */
FaultAction faultAt(FaultSite site, std::uint64_t key);

/** True iff an injector is currently installed (cheap). */
bool faultInjectionActive();

/** Shared bounded-retry policy for fault-hardened load paths.  Kept
 *  here (rank 1) so scene/lod and serve agree on one definition. */
struct RetryPolicy
{
    int max_attempts = 3;      ///< total tries, including the first
    double backoff_ms = 1.0;   ///< sleep before retry i is backoff_ms * 2^(i-1)
    /** Backoff before retry attempt `retry` (1-based); 0 for retry<=0. */
    double delayMs(int retry) const
    {
        if (retry <= 0) return 0.0;
        double d = backoff_ms;
        for (int i = 1; i < retry; ++i) d *= 2.0;
        return d;
    }
};

}  // namespace gcc3d::obs

#endif  // GCC3D_OBS_FAULT_HOOKS_H
