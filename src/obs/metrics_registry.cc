#include "obs/metrics_registry.h"

#include <limits>
#include <sstream>

namespace gcc3d::obs {

#if GCC3D_OBS_ENABLED

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    MutexLock lock(mutex_);
    auto [it, inserted] = counters_.try_emplace(name, nullptr);
    if (inserted)
        it->second = std::make_unique<Counter>();
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock lock(mutex_);
    auto [it, inserted] = gauges_.try_emplace(name, nullptr);
    if (inserted)
        it->second = std::make_unique<Gauge>();
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    MutexLock lock(mutex_);
    auto [it, inserted] = histograms_.try_emplace(name, nullptr);
    if (inserted)
        it->second = std::make_unique<Histogram>();
    return *it->second;
}

void
MetricsRegistry::resetAll()
{
    MutexLock lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    MutexLock lock(mutex_);

    os << "{\"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "" : ", ") << "\n   \"" << name
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "}" : "\n  }") << ",\n \"gauges\": {";

    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "" : ",") << "\n   \"" << name
           << "\": {\"count\": " << g->count() << ", \"last\": " << g->last()
           << ", \"mean\": " << g->mean() << ", \"min\": " << g->min()
           << ", \"max\": " << g->max() << "}";
        first = false;
    }
    os << (first ? "}" : "\n  }") << ",\n \"histograms\": {";

    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << "\n   \"" << name
           << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
           << ", \"mean\": " << h->mean() << ", \"buckets\": [";
        bool first_bucket = true;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            const std::int64_t n = h->bucketCount(i);
            if (n == 0)
                continue;
            os << (first_bucket ? "" : ", ") << "{\"le\": ";
            // JSON has no Infinity literal; the overflow bucket keys
            // on a sentinel string.
            if (i == Histogram::kBuckets - 1)
                os << "\"inf\"";
            else
                os << Histogram::bucketUpperBound(i);
            os << ", \"count\": " << n << "}";
            first_bucket = false;
        }
        os << "]}";
        first = false;
    }
    os << (first ? "}" : "\n  }") << "}";
    return os.str();
}

#else // !GCC3D_OBS_ENABLED

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &)
{
    static Counter dummy;
    return dummy;
}

Gauge &
MetricsRegistry::gauge(const std::string &)
{
    static Gauge dummy;
    return dummy;
}

Histogram &
MetricsRegistry::histogram(const std::string &)
{
    static Histogram dummy;
    return dummy;
}

#endif // GCC3D_OBS_ENABLED

} // namespace gcc3d::obs
