/**
 * @file
 * Chrome/Perfetto trace-event export of the perf recorder's retained
 * samples, plus the combined observability JSON block apps embed in
 * their --metrics-out files.
 *
 * The trace format is the Chrome "trace event" JSON object form
 * (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
 * one complete ("ph": "X") event per sample with ts/dur in
 * microseconds since the recorder epoch, tid = recording-thread
 * index, and session/frame args when tagged.  Open the file directly
 * in chrome://tracing or ui.perfetto.dev.
 *
 * Layering note: obs sits below runtime in the module DAG, so these
 * helpers return strings and the caller (app/bench) writes the file —
 * typically via runtime/result_table.h.
 *
 * In a GCC3D_OBS=OFF build the recorder retains nothing, so both
 * helpers return valid-but-empty documents.
 */

#ifndef GCC3D_OBS_TRACE_EXPORT_H
#define GCC3D_OBS_TRACE_EXPORT_H

#include <string>

#include "obs/perf_recorder.h"

namespace gcc3d::obs {

/** Chrome trace-event JSON of @p recorder's retained samples. */
std::string traceJson(const PerfRecorder &recorder);

/** Same, for the global recorder. */
std::string traceJson();

/** {"stages": <perfSummaryJson>, "metrics": <registry toJson>} —
 *  the block apps write for --metrics-out and benches embed in
 *  BENCH_*.json. */
std::string observabilityJson();

} // namespace gcc3d::obs

#endif // GCC3D_OBS_TRACE_EXPORT_H
