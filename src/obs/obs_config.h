/**
 * @file
 * Compile-time gate of the observability subsystem.
 *
 * The obs layer (PerfRecorder, MetricsRegistry, trace export) is
 * always-on by default under a hard cheapness contract: the recorder
 * hooks cost < 3% on the preset frame benches (bench/obs_overhead
 * enforces this with a non-zero exit).  For deployments that want the
 * hooks gone entirely, the CMake option GCC3D_OBS=OFF defines
 * GCC3D_OBS_DISABLED (PUBLIC, so the whole tree agrees on the ABI)
 * and every obs type in this module collapses to an empty no-op stub
 * with identical signatures — call sites compile unchanged.
 *
 * What stays real in a disabled build: obs::tickNow() and msBetween()
 * arithmetic.  Pacing, SLO latency accounting and shutdown timeouts
 * are *behavior*, not observability; they keep reading the sanctioned
 * clock.  What becomes a no-op: every sample/counter/histogram
 * record, so StageTimes, traces and metrics read as zero/empty.
 */

#ifndef GCC3D_OBS_OBS_CONFIG_H
#define GCC3D_OBS_OBS_CONFIG_H

#if defined(GCC3D_OBS_DISABLED)
#define GCC3D_OBS_ENABLED 0
#else
#define GCC3D_OBS_ENABLED 1
#endif

#endif // GCC3D_OBS_OBS_CONFIG_H
