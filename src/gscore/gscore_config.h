/**
 * @file
 * Architectural parameters of the GSCore baseline simulator.
 *
 * GSCore (ASPLOS'24) is the state-of-the-art 3DGS inference
 * accelerator the paper compares against: a two-stage
 * preprocess-then-render design with tile-wise rendering, 4-way
 * culling/conversion units, a 16-wide bitonic sorting unit and
 * OBB+subtile volume rendering units; 272 KB SRAM, 3.95 mm^2, 870 mW
 * at 1 GHz / 28 nm (Tables 3-4).  The GCC authors rebuilt GSCore in
 * simulation from its paper ("less than 3% performance deviation");
 * we do the same.
 */

#ifndef GCC3D_GSCORE_GSCORE_CONFIG_H
#define GCC3D_GSCORE_GSCORE_CONFIG_H

#include "render/tile_renderer.h"
#include "sim/dram.h"

namespace gcc3d {

/** Configuration of the GSCore cycle model. */
struct GscoreConfig
{
    double clock_ghz = 1.0;

    /** Culling/Conversion Units: projection throughput, Gaussians/cycle. */
    int ccu_units = 4;
    /** SH evaluation parallelism (Gaussians/cycle). */
    int sh_ways = 4;
    /** Width of the bitonic sorting network. */
    int sorter_width = 16;
    /** Volume Rendering Units x pixels per VRU per cycle. */
    int vru_pixels_per_cycle = 128;
    /**
     * Per tile-Gaussian fetch pipeline overhead (cycles): loading the
     * splat's conic/color/opacity into the VRU lanes before its first
     * subtile pass.
     */
    int tile_fetch_overhead = 2;

    /** Rendering tile side in pixels. */
    int tile_size = 16;
    /** Bounding method for tile binning (GSCore uses OBBs). */
    BoundingMode bounding = BoundingMode::Obb3Sigma;

    /** Bytes of a projected 2D splat record spilled to DRAM. */
    int splat2d_bytes = 48;
    /** Bytes of a Gaussian-tile key-value pair. */
    int kv_bytes = 8;

    DramConfig dram = DramConfig::lpddr4_3200();
};

} // namespace gcc3d

#endif // GCC3D_GSCORE_GSCORE_CONFIG_H
