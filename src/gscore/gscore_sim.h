/**
 * @file
 * Cycle-level simulator of the GSCore baseline accelerator.
 *
 * The simulator executes the standard dataflow functionally (via
 * TileRenderer, which produces both the image and exact activity
 * counts) and converts the activity into cycles, DRAM traffic and
 * energy using GSCore's architectural parameters.  The three frame
 * phases are serialized, as the decoupled two-stage dataflow
 * requires:
 *
 *   1. Preprocess: stream all 59-float Gaussians from DRAM, project
 *      4-wide, evaluate SH 4-wide, spill 2D splats back to DRAM.
 *   2. Sort: build Gaussian-tile KV pairs and depth-sort them with
 *      the 16-wide bitonic merge network.
 *   3. Render: tile by tile, refetch every overlapping 2D splat
 *      (the duplicated loading of Fig. 2b) and alpha-blend through
 *      the VRUs with per-pixel early termination.
 */

#ifndef GCC3D_GSCORE_GSCORE_SIM_H
#define GCC3D_GSCORE_GSCORE_SIM_H

#include <cstdint>

#include "gscore/gscore_config.h"
#include "render/image.h"
#include "render/render_stats.h"
#include "sim/dram.h"
#include "sim/energy_model.h"
#include "sim/stats.h"
#include "scene/camera.h"
#include "scene/gaussian_cloud.h"

namespace gcc3d {

/** Result of simulating one frame on GSCore. */
struct GscoreFrameResult
{
    Image image;                 ///< rendered frame (functional)
    StandardFlowStats flow;      ///< dataflow counters

    std::uint64_t preprocess_cycles = 0;
    std::uint64_t sort_cycles = 0;
    std::uint64_t render_cycles = 0;
    std::uint64_t total_cycles = 0;

    double fps = 0.0;            ///< frames/s at the configured clock
    EnergyBreakdown energy;      ///< per-frame energy (mJ)

    std::uint64_t dram_bytes_3d = 0;
    std::uint64_t dram_bytes_2d = 0;
    std::uint64_t dram_bytes_kv = 0;
    std::uint64_t dram_bytes_total = 0;
};

/**
 * GSCore accelerator simulator.
 *
 * Thread safety: renderFrame() is logically const but records the
 * frame's stats into the instance (for lastStats()), so concurrent
 * renderFrame() calls on ONE instance race.  Use one instance per
 * thread — the batch runtime (SweepRunner) constructs one per job.
 * The GaussianCloud and Camera arguments are only read and may be
 * shared across threads.
 */
class GscoreSim
{
  public:
    explicit GscoreSim(GscoreConfig config = {});

    const GscoreConfig &config() const { return config_; }
    const ChipModel &chip() const { return chip_; }

    /** Simulate rendering one frame of @p cloud from @p cam. */
    GscoreFrameResult renderFrame(const GaussianCloud &cloud,
                                  const Camera &cam) const;

    /**
     * Detailed named stats of the last simulated frame.  Only
     * meaningful single-threaded (see the class comment).
     */
    const StatSet &lastStats() const { return stats_; }

  private:
    GscoreConfig config_;
    ChipModel chip_;
    /** Written by renderFrame; the reason instances are per-thread. */
    mutable StatSet stats_;
};

} // namespace gcc3d

#endif // GCC3D_GSCORE_GSCORE_SIM_H
