#include "gscore/gscore_sim.h"

#include <algorithm>
#include <cmath>

#include "sim/pipeline.h"
#include "sim/sram.h"

namespace gcc3d {

GscoreSim::GscoreSim(GscoreConfig config)
    : config_(std::move(config)), chip_(gscoreChipModel())
{
}

GscoreFrameResult
GscoreSim::renderFrame(const GaussianCloud &cloud, const Camera &cam) const
{
    stats_.reset();
    GscoreFrameResult r;

    // ---- Functional execution: image + exact activity counts. ----
    TileRendererConfig trc;
    trc.tile_size = config_.tile_size;
    trc.bounding = config_.bounding;
    TileRenderer renderer(trc);
    r.image = renderer.render(cloud, cam, r.flow);

    Dram dram(config_.dram, config_.clock_ghz);
    EnergyIntegrator energy(chip_, config_.clock_ghz);

    const auto &f = r.flow;
    const std::uint64_t n_total = f.pre.total;
    const std::uint64_t n_frustum = f.pre.in_frustum;
    const std::uint64_t n_projected = f.pre.projected;

    // =====================================================================
    // Phase 1: preprocessing (decoupled; processes EVERY Gaussian).
    // =====================================================================
    // All 59 float parameters stream in regardless of downstream use
    // (the redundancy Challenge 1 describes).
    dram.access(TrafficClass::Gaussian3D, n_total * Gaussian::kTotalBytes);
    // Projected 2D splats are spilled to DRAM for the render phase.
    dram.access(TrafficClass::Splat2D,
                n_projected * static_cast<std::uint64_t>(
                                  config_.splat2d_bytes));

    std::uint64_t proj_cycles =
        ceilDiv(n_total, static_cast<std::uint64_t>(config_.ccu_units));
    std::uint64_t sh_cycles =
        ceilDiv(n_frustum, static_cast<std::uint64_t>(config_.sh_ways));
    std::uint64_t pre_mem_cycles = dram.cyclesFor(
        n_total * Gaussian::kTotalBytes +
        n_projected * static_cast<std::uint64_t>(config_.splat2d_bytes));

    r.preprocess_cycles = composePipeline({
        {"dram", pre_mem_cycles, 0},
        {"ccu", proj_cycles, 40},
        {"sh", sh_cycles, 16},
    }).cycles;
    energy.busy("CCU", std::max(proj_cycles, sh_cycles));

    // =====================================================================
    // Phase 2: tile binning + depth sorting.
    // =====================================================================
    std::uint64_t kv = static_cast<std::uint64_t>(f.kv_pairs);
    // KV pairs are written once and re-read for sorting and rendering.
    dram.access(TrafficClass::KeyValue,
                2 * kv * static_cast<std::uint64_t>(config_.kv_bytes));

    // Bitonic merge sort through the 16-wide network: per-tile pass
    // counts come from the functional run (longer lists merge more).
    std::uint64_t sorted = static_cast<std::uint64_t>(f.sorted_keys);
    std::uint64_t sort_compute = ceilDiv(
        static_cast<std::uint64_t>(f.sort_pass_keys),
        static_cast<std::uint64_t>(config_.sorter_width));
    std::uint64_t sort_mem_cycles = dram.cyclesFor(
        2 * kv * static_cast<std::uint64_t>(config_.kv_bytes));

    r.sort_cycles = composePipeline({
        {"dram", sort_mem_cycles, 0},
        {"gsu", sort_compute, 16},
    }).cycles;
    energy.busy("GSU", sort_compute);

    // =====================================================================
    // Phase 3: tile-wise rendering with duplicated splat refetches.
    // =====================================================================
    std::uint64_t fetches = static_cast<std::uint64_t>(f.tile_fetches);
    std::uint64_t refetch_bytes =
        fetches * static_cast<std::uint64_t>(config_.splat2d_bytes);
    dram.access(TrafficClass::Splat2D, refetch_bytes);
    // Finished tile colors stream back out (12 bytes RGB per pixel).
    std::uint64_t image_bytes =
        static_cast<std::uint64_t>(cam.width()) * cam.height() * 12;
    dram.access(TrafficClass::Meta, image_bytes);

    // The VRUs rasterize 8x8 subtiles in lockstep: a subtile with any
    // live pixel costs a full array pass regardless of how many lanes
    // are dead, so occupancy is bound by subtile passes, not by live
    // pixel evaluations.
    std::uint64_t alpha_cycles = ceilDiv(
        static_cast<std::uint64_t>(f.subtile_passes) * 64,
        static_cast<std::uint64_t>(config_.vru_pixels_per_cycle));
    std::uint64_t fetch_cycles =
        fetches * static_cast<std::uint64_t>(config_.tile_fetch_overhead);
    std::uint64_t render_mem_cycles =
        dram.cyclesFor(refetch_bytes + image_bytes);

    r.render_cycles = composePipeline({
        {"dram", render_mem_cycles, 0},
        {"vru", alpha_cycles + fetch_cycles, 24},
    }).cycles;
    energy.busy("VRU", alpha_cycles + fetch_cycles);

    // =====================================================================
    // Frame roll-up.
    // =====================================================================
    r.total_cycles =
        r.preprocess_cycles + r.sort_cycles + r.render_cycles;
    r.fps = config_.clock_ghz * 1e9 / static_cast<double>(r.total_cycles);

    // On-chip buffer traffic: splat staging, sorted lists, and the
    // per-pixel transmittance/color read-modify-write per blend.
    Sram gauss_buf(chip_.buffer("GaussianBuffer"));
    gauss_buf.write(fetches *
                    static_cast<std::uint64_t>(config_.splat2d_bytes));
    gauss_buf.read(static_cast<std::uint64_t>(f.alpha_evals) * 8);
    Sram tile_buf(chip_.buffer("TileBuffer"));
    tile_buf.read(static_cast<std::uint64_t>(f.blend_ops) * 16);
    tile_buf.write(static_cast<std::uint64_t>(f.blend_ops) * 16);
    Sram sort_buf(chip_.buffer("SortBuffer"));
    sort_buf.read(sorted * static_cast<std::uint64_t>(config_.kv_bytes));
    sort_buf.write(sorted * static_cast<std::uint64_t>(config_.kv_bytes));
    energy.addSramMj(gauss_buf.energyMj() + tile_buf.energyMj() +
                     sort_buf.energyMj());

    r.energy = energy.breakdown(r.total_cycles, dram);

    r.dram_bytes_3d = dram.bytes(TrafficClass::Gaussian3D);
    r.dram_bytes_2d = dram.bytes(TrafficClass::Splat2D);
    r.dram_bytes_kv = dram.bytes(TrafficClass::KeyValue);
    r.dram_bytes_total = dram.totalBytes();

    // Named stats for debugging and tests.
    stats_.counter("frame.cycles").set(static_cast<double>(r.total_cycles));
    stats_.counter("frame.fps").set(r.fps);
    stats_.counter("phase.preprocess_cycles")
        .set(static_cast<double>(r.preprocess_cycles));
    stats_.counter("phase.sort_cycles")
        .set(static_cast<double>(r.sort_cycles));
    stats_.counter("phase.render_cycles")
        .set(static_cast<double>(r.render_cycles));
    stats_.counter("dram.total_bytes")
        .set(static_cast<double>(r.dram_bytes_total));
    stats_.counter("energy.total_mj").set(r.energy.total());
    return r;
}

} // namespace gcc3d
