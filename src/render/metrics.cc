#include "render/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace gcc3d {

namespace {

float
luma(const Vec3 &c)
{
    return 0.299f * c.x + 0.587f * c.y + 0.114f * c.z;
}

void
requireSameShape(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument("metrics: image shapes differ");
}

} // namespace

double
mse(const Image &a, const Image &b)
{
    requireSameShape(a, b);
    if (a.pixelCount() == 0)
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.pixels().size(); ++i) {
        Vec3 d = a.pixels()[i] - b.pixels()[i];
        acc += static_cast<double>(d.x) * d.x +
               static_cast<double>(d.y) * d.y +
               static_cast<double>(d.z) * d.z;
    }
    return acc / (3.0 * static_cast<double>(a.pixelCount()));
}

double
psnr(const Image &a, const Image &b)
{
    // Guard before the log: a zero (or negative, which mse() cannot
    // produce but the guard covers anyway) MSE means bit-identical
    // content — return the documented sentinel instead of feeding
    // log10 a division by zero.
    double m = mse(a, b);
    if (m <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(1.0 / m);
}

double
psnrDb(const Image &a, const Image &b)
{
    return psnr(a, b);
}

double
ssim(const Image &a, const Image &b)
{
    requireSameShape(a, b);
    constexpr int kWin = 8;
    constexpr double kC1 = 0.01 * 0.01;
    constexpr double kC2 = 0.03 * 0.03;

    const int wx = a.width() / kWin;
    const int wy = a.height() / kWin;
    if (wx == 0 || wy == 0)
        return 1.0;

    double acc = 0.0;
    int windows = 0;
    for (int by = 0; by < wy; ++by) {
        for (int bx = 0; bx < wx; ++bx) {
            double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0,
                   sum_ab = 0;
            for (int y = 0; y < kWin; ++y) {
                for (int x = 0; x < kWin; ++x) {
                    double va = luma(a.at(bx * kWin + x, by * kWin + y));
                    double vb = luma(b.at(bx * kWin + x, by * kWin + y));
                    sum_a += va;
                    sum_b += vb;
                    sum_aa += va * va;
                    sum_bb += vb * vb;
                    sum_ab += va * vb;
                }
            }
            constexpr double kN = kWin * kWin;
            double mu_a = sum_a / kN;
            double mu_b = sum_b / kN;
            double var_a = std::max(0.0, sum_aa / kN - mu_a * mu_a);
            double var_b = std::max(0.0, sum_bb / kN - mu_b * mu_b);
            double cov = sum_ab / kN - mu_a * mu_b;

            double s = ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
                       ((mu_a * mu_a + mu_b * mu_b + kC1) *
                        (var_a + var_b + kC2));
            acc += s;
            ++windows;
        }
    }
    return acc / static_cast<double>(windows);
}

} // namespace gcc3d
