/**
 * @file
 * Alpha-based Gaussian Boundary Identification (paper Algorithm 1).
 *
 * Given a projected splat, find the minimal set of pixels whose alpha
 * contribution meets the 1/255 threshold, without rasterizing a full
 * bounding box.  Two granularities are provided:
 *
 *  - pixelBoundary(): the literal Algorithm 1 — a breadth-first pixel
 *    traversal from the projected center, expanding only through
 *    pixels that satisfy the elliptical alpha condition E(p).  Used
 *    by tests as the ground-truth region and by Table 1.
 *
 *  - BlockTraversal: the hardware realization (Sec. 4.4) — the screen
 *    is divided into n x n pixel blocks matching the Alpha Unit's PE
 *    array; traversal proceeds block-by-block from the center block,
 *    evaluating all n^2 alphas of a visited block in parallel and
 *    expanding only through blocks that contain passing pixels
 *    (directional early termination falls out of the convexity of the
 *    elliptical footprint).
 */

#ifndef GCC3D_RENDER_BOUNDARY_H
#define GCC3D_RENDER_BOUNDARY_H

#include <cstdint>
#include <functional>
#include <vector>

#include "gsmath/ellipse.h"

namespace gcc3d {

/** Counters describing one boundary-identification traversal. */
struct BoundaryStats
{
    std::int64_t alpha_evals = 0;      ///< alpha condition evaluations
    std::int64_t influence_pixels = 0; ///< pixels meeting the threshold
    std::int64_t visited_blocks = 0;   ///< blocks streamed (block mode)
    std::int64_t active_blocks = 0;    ///< blocks with >=1 passing pixel
};

/**
 * Visitor invoked for every influence pixel.
 * @param x,y    pixel coordinates
 * @param alpha  alpha contribution at the pixel (>= 1/255)
 */
using PixelVisitor = std::function<void(int x, int y, float alpha)>;

/**
 * Pixel-level Algorithm 1: BFS from the projected center (or nearest
 * in-bounds pixel), expanding through pixels passing E(p).
 *
 * @param e       projected ellipse
 * @param omega   Gaussian opacity
 * @param width   image width
 * @param height  image height
 * @param visit   called once per influence pixel (may be null)
 */
BoundaryStats pixelBoundary(const Ellipse &e, float omega, int width,
                            int height, const PixelVisitor &visit);

/**
 * Block-level traversal used by the Alpha Unit.  Blocks are n x n
 * pixels; a visited block evaluates all of its pixel alphas (one PE
 * per pixel).  A block mask lets the caller exclude blocks whose
 * transmittance is exhausted (the T-mask of Sec. 4.5).
 */
class BlockTraversal
{
  public:
    /**
     * @param block_size  n (paper: 8)
     * @param width       image width in pixels
     * @param height      image height in pixels
     */
    BlockTraversal(int block_size, int width, int height);

    int blocksX() const { return blocks_x_; }
    int blocksY() const { return blocks_y_; }
    int blockSize() const { return block_size_; }

    /**
     * Visitor invoked once per visited block that contains at least
     * one passing pixel.  @param bx,by block coordinates.
     */
    using BlockVisitor = std::function<void(int bx, int by)>;

    /**
     * Run the traversal for one splat.
     *
     * @param e          projected ellipse
     * @param omega      opacity
     * @param t_mask     optional per-block skip mask (true = skip);
     *                   size blocksX()*blocksY(); may be null
     * @param visit      called per pixel whose alpha passes and whose
     *                   block is not masked (may be null)
     * @param block_visit called per active (passing, unmasked) block
     *                    before its pixels are visited (may be null)
     */
    BoundaryStats traverse(const Ellipse &e, float omega,
                           const std::vector<std::uint8_t> *t_mask,
                           const PixelVisitor &visit,
                           const BlockVisitor &block_visit = nullptr) const;

    /**
     * Whether block (bx, by) can intersect the effective (alpha >=
     * 1/255) footprint of the splat — the same test the traversal's
     * directional pruning uses.  Exposed so the conditional-loading
     * check can skip a Gaussian exactly when every block the
     * traversal would evaluate is T-masked.
     */
    bool blockReachable(const Ellipse &e, float omega, int bx,
                        int by) const;

  private:
    int block_size_;
    int width_;
    int height_;
    int blocks_x_;
    int blocks_y_;
};

} // namespace gcc3d

#endif // GCC3D_RENDER_BOUNDARY_H
