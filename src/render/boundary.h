/**
 * @file
 * Alpha-based Gaussian Boundary Identification (paper Algorithm 1).
 *
 * Given a projected splat, find the minimal set of pixels whose alpha
 * contribution meets the 1/255 threshold, without rasterizing a full
 * bounding box.  Two granularities are provided:
 *
 *  - pixelBoundary(): the literal Algorithm 1 — a breadth-first pixel
 *    traversal from the projected center, expanding only through
 *    pixels that satisfy the elliptical alpha condition E(p).  Used
 *    by tests as the ground-truth region and by Table 1.
 *
 *  - BlockTraversal: the hardware realization (Sec. 4.4) — the screen
 *    is divided into n x n pixel blocks matching the Alpha Unit's PE
 *    array; traversal proceeds block-by-block from the center block,
 *    evaluating all n^2 alphas of a visited block in parallel and
 *    expanding only through blocks that contain passing pixels
 *    (directional early termination falls out of the convexity of the
 *    elliptical footprint).
 */

#ifndef GCC3D_RENDER_BOUNDARY_H
#define GCC3D_RENDER_BOUNDARY_H

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "gsmath/ellipse.h"
#include "gsmath/simd.h"

namespace gcc3d {

/** Counters describing one boundary-identification traversal. */
struct BoundaryStats
{
    std::int64_t alpha_evals = 0;      ///< alpha condition evaluations
    std::int64_t influence_pixels = 0; ///< pixels meeting the threshold
    std::int64_t visited_blocks = 0;   ///< blocks streamed (block mode)
    std::int64_t active_blocks = 0;    ///< blocks with >=1 passing pixel
};

/**
 * Visitor invoked for every influence pixel.
 * @param x,y    pixel coordinates
 * @param alpha  alpha contribution at the pixel (>= 1/255)
 */
using PixelVisitor = std::function<void(int x, int y, float alpha)>;

/**
 * Pixel-level Algorithm 1: BFS from the projected center (or nearest
 * in-bounds pixel), expanding through pixels passing E(p).
 *
 * @param e       projected ellipse
 * @param omega   Gaussian opacity
 * @param width   image width
 * @param height  image height
 * @param visit   called once per influence pixel (may be null)
 */
BoundaryStats pixelBoundary(const Ellipse &e, float omega, int width,
                            int height, const PixelVisitor &visit);

namespace boundary_detail {

/** Clamp the projected center to the nearest in-bounds pixel. */
inline std::pair<int, int>
nearestInBounds(const Vec2 &center, int width, int height)
{
    int x = static_cast<int>(std::floor(center.x));
    int y = static_cast<int>(std::floor(center.y));
    x = std::clamp(x, 0, width - 1);
    y = std::clamp(y, 0, height - 1);
    return {x, y};
}

inline Vec2
pixelCenter(int x, int y)
{
    return {static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f};
}

/** Alpha-threshold cutoff on the quadratic form: q <= 2 ln(255 omega). */
inline float
quadraticCutoff(float omega)
{
    if (omega <= kAlphaMin)
        return -1.0f;
    return 2.0f * std::log(255.0f * omega);
}

/**
 * Minimum of the conic quadratic form over a rectangle, approximated
 * by the clamped center and the four corners.  The single
 * implementation behind every ellipse-vs-rect reachability decision
 * (rectMayIntersect, the traversal's expansion filter, and the
 * renderer's conditional-loading window), taking the conic and
 * center as scalars so hot callers can pass hoisted locals — the
 * evaluation matches Ellipse::quadraticForm operation for operation.
 */
inline float
minConicQOverRect(float c00, float c01, float c10, float c11, float cx,
                  float cy, float x0, float y0, float x1, float y1)
{
    auto q_pt = [&](float px, float py) {
        float dx = px - cx;
        float dy = py - cy;
        return dx * (c00 * dx + c01 * dy) + dy * (c10 * dx + c11 * dy);
    };
    float q = q_pt(std::clamp(cx, x0, x1), std::clamp(cy, y0, y1));
    q = std::min(q, q_pt(x0, y0));
    q = std::min(q, q_pt(x1, y0));
    q = std::min(q, q_pt(x0, y1));
    q = std::min(q, q_pt(x1, y1));
    return q;
}

/**
 * Cheap conservative-ish test of whether a pixel rectangle can
 * intersect the effective ellipse: evaluates the quadratic form at
 * the clamped center and the four corners and takes the minimum.
 * Used only to decide whether traversal may pass *through* a
 * T-masked block.
 */
inline bool
rectMayIntersect(const Ellipse &e, float cutoff, float x0, float y0,
                 float x1, float y1)
{
    return minConicQOverRect(e.conic(0, 0), e.conic(0, 1),
                             e.conic(1, 0), e.conic(1, 1), e.center.x,
                             e.center.y, x0, y0, x1, y1) <= cutoff;
}

} // namespace boundary_detail

/**
 * Block-level traversal used by the Alpha Unit.  Blocks are n x n
 * pixels; a visited block evaluates all of its pixel alphas (one PE
 * per pixel).  A block mask lets the caller exclude blocks whose
 * transmittance is exhausted (the T-mask of Sec. 4.5).
 */
class BlockTraversal
{
  public:
    /**
     * @param block_size  n (paper: 8)
     * @param width       image width in pixels
     * @param height      image height in pixels
     */
    BlockTraversal(int block_size, int width, int height);

    int blocksX() const { return blocks_x_; }
    int blocksY() const { return blocks_y_; }
    int blockSize() const { return block_size_; }
    int viewWidth() const { return width_; }
    int viewHeight() const { return height_; }

    /**
     * Visitor invoked once per visited block that contains at least
     * one passing pixel.  @param bx,by block coordinates.
     */
    using BlockVisitor = std::function<void(int bx, int by)>;

    /**
     * Run the traversal for one splat.
     *
     * @param e          projected ellipse
     * @param omega      opacity
     * @param t_mask     optional per-block skip mask (true = skip);
     *                   size blocksX()*blocksY(); may be null
     * @param visit      called per pixel whose alpha passes and whose
     *                   block is not masked (may be null)
     * @param block_visit called per active (passing, unmasked) block
     *                    before its pixels are visited (may be null)
     */
    BoundaryStats traverse(const Ellipse &e, float omega,
                           const std::vector<std::uint8_t> *t_mask,
                           const PixelVisitor &visit,
                           const BlockVisitor &block_visit = nullptr) const;

    /**
     * Fast statically-dispatched traversal: identical walk order,
     * pass/fail decisions and statistics to traverse(), with three
     * hot-loop optimizations the scalar path deliberately omits:
     *
     *  - the visitors are template parameters (no std::function call
     *    per pixel);
     *  - the visitor receives the quadratic form q instead of the
     *    alpha, so the exp() is paid lazily — only for pixels whose
     *    transmittance is still live (alpha = min(0.99, omega *
     *    exp(-0.5 q)), bit-identical where it is computed);
     *  - within a visited block, each pixel row is restricted to the
     *    margin-padded interval where the conic can still reach the
     *    alpha threshold (the tile renderer's row-interval bound);
     *    pixels outside provably fail E(p), and the block's alpha
     *    evaluations are accounted analytically, so the reported
     *    stats and the visit sequence are unchanged;
     *  - each row interval is evaluated kWidth pixels at a time
     *    through the gsmath SIMD layer — every lane runs the exact
     *    scalar op sequence, so q (and every E(p) decision) stays
     *    bit-identical to the scalar reference.
     *
     * With PassAlpha = true (the renderers' opt-in fast-alpha mode)
     * the traversal additionally evaluates alpha for the whole lane
     * group with the vectorized polynomial exponential and hands the
     * visitor alpha = min(0.99, omega * simdExp(-q/2)) instead of q.
     * Walk order, pass/fail decisions and stats are unchanged; only
     * the alpha value is approximate (simdExp contract: relative
     * error < 3e-7).
     *
     * @p visit   callable (int x, int y, float q_or_alpha)
     * @p block_visit callable (int bx, int by)
     */
    template <bool PassAlpha = false, typename Visit,
              typename BlockVisit>
    BoundaryStats
    traverseWith(const Ellipse &e, float omega,
                 const std::vector<std::uint8_t> *t_mask, Visit &&visit,
                 BlockVisit &&block_visit) const
    {
        namespace bd = boundary_detail;
        BoundaryStats stats;
        float cutoff = bd::quadraticCutoff(omega);
        if (cutoff < 0.0f || blocks_x_ <= 0 || blocks_y_ <= 0)
            return stats;

        auto [cx, cy] = bd::nearestInBounds(e.center, width_, height_);
        int cbx = cx / block_size_;
        int cby = cy / block_size_;

        // Reusable scratch with generation stamping so repeated
        // traversals don't pay a per-call allocation of the full
        // block map.
        thread_local std::vector<std::uint32_t> stamp;
        thread_local std::uint32_t generation = 0;
        std::size_t nblocks =
            static_cast<std::size_t>(blocks_x_) * blocks_y_;
        if (stamp.size() < nblocks) {
            stamp.assign(nblocks, 0);
            generation = 0;
        }
        if (++generation == 0) {
            // 2^32 traversals on this thread: stale stamps would
            // alias the restarted counter, so wipe them once.
            std::fill(stamp.begin(), stamp.end(), 0u);
            generation = 1;
        }
        auto seen = [&](int bx, int by) -> std::uint32_t & {
            return stamp[static_cast<std::size_t>(by) * blocks_x_ + bx];
        };

        // Conic and center hoisted into locals: the visitor's image
        // writes are float stores, which type-based aliasing would
        // otherwise force to reload the Ellipse members per use.
        // Every evaluation below matches Ellipse::quadraticForm (and
        // rectMayIntersect's use of it) operation for operation, so
        // all pass/fail and expansion decisions are unchanged.
        const float fc00 = e.conic(0, 0), fc01 = e.conic(0, 1);
        const float fc10 = e.conic(1, 0), fc11 = e.conic(1, 1);
        const float fcx = e.center.x, fcy = e.center.y;

        // A block is enqueued only if the runtime identifier's
        // boundary test says the elliptical footprint can reach it —
        // the directional early termination of Sec. 4.4: directions
        // whose boundary alphas all fail the threshold are pruned, so
        // perimeter blocks outside the ellipse are never streamed
        // into the PE array.
        auto intersects = [&](int bx, int by) {
            float x0 = static_cast<float>(bx * block_size_);
            float y0 = static_cast<float>(by * block_size_);
            float x1 =
                std::min<float>(x0 + static_cast<float>(block_size_),
                                static_cast<float>(width_));
            float y1 =
                std::min<float>(y0 + static_cast<float>(block_size_),
                                static_cast<float>(height_));
            return bd::minConicQOverRect(fc00, fc01, fc10, fc11, fcx,
                                         fcy, x0, y0, x1,
                                         y1) <= cutoff;
        };

        thread_local std::deque<std::pair<int, int>> queue;
        queue.clear();
        auto push = [&](int bx, int by) {
            if (bx < 0 || bx >= blocks_x_ || by < 0 || by >= blocks_y_)
                return;
            std::uint32_t &s = seen(bx, by);
            if (s == generation)
                return;
            s = generation;
            if (intersects(bx, by))
                queue.emplace_back(bx, by);
        };

        // Seed: the block holding the projected center (or nearest
        // in-bounds block) and its 8 neighbors, so a center on a
        // block edge cannot strand the traversal.
        for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx)
                push(cbx + dx, cby + dy);

        // Broadcast conic/center/cutoff once per splat for the
        // vectorized row scans.  (An earlier revision solved a
        // per-row quadratic interval in double to skip dead row
        // tails; with blocks only block_size_ pixels wide and the
        // row evaluated kWidth lanes per step, the sqrt-per-row
        // solve cost more than the tails it saved, so every row now
        // just evaluates masked — same q bits, same decisions.)
        const simd::FloatV c00v(fc00), c01v(fc01), c10v(fc10),
            c11v(fc11);
        const simd::FloatV cxv(fcx), cutoff_v(cutoff), half_v(0.5f);
        const simd::FloatV omega_v(omega);

        while (!queue.empty()) {
            auto [bx, by] = queue.front();
            queue.pop_front();

            int x0 = bx * block_size_;
            int y0 = by * block_size_;
            int x1 = std::min(x0 + block_size_, width_) - 1;
            int y1 = std::min(y0 + block_size_, height_) - 1;

            bool masked =
                t_mask != nullptr &&
                (*t_mask)[static_cast<std::size_t>(by) * blocks_x_ +
                          bx] != 0;

            if (!masked) {
                // The whole block streams through the n x n PE array;
                // its alpha evaluations are accounted analytically so
                // the interval skips below don't change the stats.
                ++stats.visited_blocks;
                stats.alpha_evals +=
                    static_cast<std::int64_t>(x1 - x0 + 1) *
                    (y1 - y0 + 1);
                bool visited_block = false;
                for (int y = y0; y <= y1; ++y) {
                    const int row_x0 = x0;
                    const int row_x1 = x1;
                    // Vectorized row scan: q for kWidth pixels per
                    // step, each lane the exact scalar op sequence
                    // (bit-equal q).  The pass mask mirrors the
                    // scalar `q > cutoff -> skip` comparison exactly,
                    // then passing lanes are visited in x order.
                    const float fdy =
                        (static_cast<float>(y) + 0.5f) - fcy;
                    const simd::FloatV dyv(fdy);
                    for (int x = row_x0; x <= row_x1;
                         x += simd::kWidth) {
                        const int nlane = std::min<int>(
                            simd::kWidth, row_x1 - x + 1);
                        simd::FloatV dxv =
                            (simd::FloatV::iotaFrom(x) + half_v) - cxv;
                        simd::FloatV qv =
                            dxv * (c00v * dxv + c01v * dyv) +
                            dyv * (c10v * dxv + c11v * dyv);
                        unsigned bits =
                            simd::MaskV::firstN(nlane).bits() &
                            ~(qv > cutoff_v).bits();
                        if (bits == 0)
                            continue;
                        float qa_lane[simd::kWidth];
                        if constexpr (PassAlpha)
                            simd::min(simd::FloatV(0.99f),
                                      omega_v *
                                          simd::simdExp(
                                              qv *
                                              simd::FloatV(-0.5f)))
                                .store(qa_lane);
                        else
                            qv.store(qa_lane);
                        do {
                            const int i = std::countr_zero(bits);
                            bits &= bits - 1;
                            ++stats.influence_pixels;
                            if (!visited_block) {
                                ++stats.active_blocks;
                                block_visit(bx, by);
                                visited_block = true;
                            }
                            visit(x + i, y, qa_lane[i]);
                        } while (bits != 0);
                    }
                }
            }
            // T-masked blocks are excluded from alpha computation
            // (Sec. 4.5) but the walk continues through them: the
            // push filter above already restricts expansion to blocks
            // the ellipse reaches.
            static constexpr int kDx[8] = {1, -1, 0, 0, 1, 1, -1, -1};
            static constexpr int kDy[8] = {0, 0, 1, -1, 1, -1, 1, -1};
            for (int k = 0; k < 8; ++k)
                push(bx + kDx[k], by + kDy[k]);
        }
        return stats;
    }

    /**
     * Whether block (bx, by) can intersect the effective (alpha >=
     * 1/255) footprint of the splat — the same test the traversal's
     * directional pruning uses.  Exposed so the conditional-loading
     * check can skip a Gaussian exactly when every block the
     * traversal would evaluate is T-masked.
     */
    bool blockReachable(const Ellipse &e, float omega, int bx,
                        int by) const;

  private:
    int block_size_;
    int width_;
    int height_;
    int blocks_x_;
    int blocks_y_;
};

} // namespace gcc3d

#endif // GCC3D_RENDER_BOUNDARY_H
