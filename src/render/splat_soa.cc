#include "render/splat_soa.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gcc3d {

PixelRect
splatBounds(const Splat &s, BoundingMode mode)
{
    switch (mode) {
      case BoundingMode::Aabb3Sigma:
        return aabbFromRadius(s.ellipse.center, s.radius_3sigma);
      case BoundingMode::Obb3Sigma:
        // The OBB itself is oriented; its tile coverage is bounded by
        // the axis-aligned extent of the oriented box.
        return aabbFromCovariance(s.ellipse.center, s.ellipse.cov, 9.0f);
      case BoundingMode::OmegaSigma:
        return aabbFromRadius(s.ellipse.center, s.radius_omega);
      case BoundingMode::Conservative: {
        int r = std::max(s.radius_3sigma, s.radius_omega);
        return aabbFromRadius(s.ellipse.center, (r * 5 + 3) / 4);
      }
    }
    return {};
}

TileRange
tileRangeFor(const Splat &s, BoundingMode mode, int tile, int width,
             int height)
{
    PixelRect box = splatBounds(s, mode).clipped(width, height);
    TileRange r;
    if (box.empty())
        return r;
    r.bx0 = box.x0 / tile;
    r.by0 = box.y0 / tile;
    r.bx1 = box.x1 / tile;
    r.by1 = box.y1 / tile;
    return r;
}

ObbParams
obbParamsFor(const Splat &s)
{
    ObbParams o;
    o.cx = s.ellipse.center.x;
    o.cy = s.ellipse.center.y;
    o.ca = std::cos(s.ellipse.eig.angle);
    o.sa = std::sin(s.ellipse.eig.angle);
    o.ha = 3.0f * std::sqrt(s.ellipse.eig.l1);
    o.hb = 3.0f * std::sqrt(s.ellipse.eig.l2);
    return o;
}

bool
obbOverlapsTile(const ObbParams &o, float tx0, float ty0, float tx1,
                float ty1)
{
    // Tile corners relative to the splat center, projected onto the
    // box axes; the tile misses the box iff all corners fall beyond
    // one face (separating axis among the box axes).  The image-axis
    // separation is already handled by the AABB sweep.
    float min_u = 1e30f, max_u = -1e30f;
    float min_v = 1e30f, max_v = -1e30f;
    const float xs[2] = {tx0, tx1};
    const float ys[2] = {ty0, ty1};
    for (float x : xs) {
        for (float y : ys) {
            float dx = x - o.cx;
            float dy = y - o.cy;
            float u = dx * o.ca + dy * o.sa;
            float v = -dx * o.sa + dy * o.ca;
            min_u = std::min(min_u, u);
            max_u = std::max(max_u, u);
            min_v = std::min(min_v, v);
            max_v = std::max(max_v, v);
        }
    }
    return min_u <= o.ha && max_u >= -o.ha && min_v <= o.hb &&
           max_v >= -o.hb;
}

namespace {

/**
 * Radius beyond which a splat's alpha provably falls below
 * @p alpha_cutoff: the conic's quadratic form satisfies
 * q >= |d|^2 / max(l1, l2), so alpha = omega * exp(-q/2) < cutoff
 * once |d|^2 > 2 * max(l1, l2) * ln(omega / cutoff).  A 5% slack on
 * the squared radius plus a 3-pixel guard absorbs the rounding of the
 * conic/eigen computations, keeping the skip exact in practice (the
 * equivalence suite verifies bit-identical images).
 *
 * Returns a negative sentinel when no finite radius can be proven
 * safe (non-positive cutoff, or a footprint so large the bound
 * exceeds @p max_dim); the caller must then iterate the full image.
 */
int
cutoffRadius(const Splat &s, float alpha_cutoff, int max_dim)
{
    if (!(alpha_cutoff > 0.0f))
        return -1;  // no cutoff: nothing can be skipped
    double lam = std::max(s.ellipse.eig.l1, s.ellipse.eig.l2);
    double headroom = std::log(static_cast<double>(s.opacity)) -
                      std::log(static_cast<double>(alpha_cutoff));
    if (!(headroom > 0.0))
        return 2;  // opacity at/below cutoff: only near-center ties
    double r = std::sqrt(2.0 * lam * headroom * 1.05);
    if (!(r < static_cast<double>(max_dim)))
        return -1;  // a capped radius would not be conservative
    return static_cast<int>(r) + 3;
}

/**
 * Quadratic-form value at which alpha crosses @p alpha_cutoff, plus a
 * margin: alpha = omega * exp(-q/2) < cutoff whenever
 * q > 2 ln(omega / cutoff).  The 0.2 margin (alpha a further ~10%
 * below the cutoff) absorbs the rounding of the float exp and the
 * float quadratic form, so skipping exp for q above the threshold
 * can never flip a pass/fail decision the reference path makes.
 */
float
qSkipThreshold(float opacity, float alpha_cutoff)
{
    if (!(alpha_cutoff > 0.0f))
        return std::numeric_limits<float>::infinity();
    double headroom = std::log(static_cast<double>(opacity)) -
                      std::log(static_cast<double>(alpha_cutoff));
    if (!(headroom > 0.0))
        return 0.2f;  // opacity at/below cutoff: alpha<cutoff for q>~0
    return static_cast<float>(2.0 * headroom + 0.2);
}

} // namespace

SplatSoA
SplatSoA::build(const std::vector<Splat> &splats, BoundingMode mode,
                int tile_size, float alpha_cutoff, int width, int height)
{
    SplatSoA soa;
    const std::size_t n = splats.size();
    soa.blend.reserve(n);
    soa.range.reserve(n);
    soa.obb_refine = mode == BoundingMode::Obb3Sigma;
    if (soa.obb_refine)
        soa.obb.reserve(n);
    const int max_dim = width + height;
    std::vector<float> depths;
    depths.reserve(n);

    for (const Splat &s : splats) {
        Blend b;
        b.cx = s.ellipse.center.x;
        b.cy = s.ellipse.center.y;
        b.c00 = s.ellipse.conic(0, 0);
        b.c01 = s.ellipse.conic(0, 1);
        b.c10 = s.ellipse.conic(1, 0);
        b.c11 = s.ellipse.conic(1, 1);
        b.opacity = s.opacity;
        b.r = s.color.x;
        b.g = s.color.y;
        b.b = s.color.z;
        b.q_skip = qSkipThreshold(s.opacity, alpha_cutoff);

        const int cutoff_r = cutoffRadius(s, alpha_cutoff, max_dim);
        PixelRect it;
        if (cutoff_r < 0) {
            // No provable bound: iterate everything on screen.
            it.x0 = 0;
            it.y0 = 0;
            it.x1 = width - 1;
            it.y1 = height - 1;
        } else {
            it = aabbFromRadius(s.ellipse.center, cutoff_r)
                     .clipped(width, height);
        }
        b.it_x0 = it.x0;
        b.it_y0 = it.y0;
        b.it_x1 = it.x1;
        b.it_y1 = it.y1;

        PixelRect sb =
            aabbFromRadius(s.ellipse.center,
                           std::max(s.radius_3sigma, s.radius_omega))
                .clipped(width, height);
        b.sb_x0 = sb.x0;
        b.sb_y0 = sb.y0;
        b.sb_x1 = sb.x1;
        b.sb_y1 = sb.y1;

        soa.blend.push_back(b);
        depths.push_back(s.depth);
        soa.range.push_back(
            tileRangeFor(s, mode, tile_size, width, height));
        if (soa.obb_refine)
            soa.obb.push_back(obbParamsFor(s));
    }
    // Depth keys in one vectorized pass over the gathered depths
    // (integer bit manipulation; bit-identical to the scalar
    // orderedKeyFromFloat per element).
    soa.depth_key.resize(n);
    orderedKeysFromFloats(depths.data(), soa.depth_key.data(), n);
    return soa;
}

} // namespace gcc3d
