/**
 * @file
 * Dataflow counters reported by the functional renderers.
 *
 * These are the quantities the paper profiles to motivate and evaluate
 * GCC: population counts per pipeline phase (Fig. 2a), duplicated
 * Gaussian loads (Fig. 2b), pixel workloads per bounding method
 * (Table 1) and computation/traffic reductions (Fig. 11).
 */

#ifndef GCC3D_RENDER_RENDER_STATS_H
#define GCC3D_RENDER_RENDER_STATS_H

#include <cstdint>
#include <vector>

#include "render/preprocess.h"

namespace gcc3d {

/**
 * Wall-clock breakdown of one rendered frame by pipeline stage,
 * filled by the renderers (both fast and reference paths) so
 * bench/frame_throughput can report where the cycles went.  Pure
 * measurement — no test compares these, and they accumulate across
 * frames when one stats object is reused.
 */
struct StageTimes
{
    double preprocess_ms = 0.0; ///< projection / SH / depth passes
    double binning_ms = 0.0;    ///< tile CSR build or Cmode bin merge
    double raster_ms = 0.0;     ///< sort + alpha + blend (and merges)
    double warp_ms = 0.0;       ///< temporal reprojection synthesis
};

/** Counters for the standard (preprocess-then-render) dataflow. */
struct StandardFlowStats
{
    PreprocessStats pre;            ///< projection-stage counters
    StageTimes stage;               ///< per-stage wall clock

    std::int64_t kv_pairs = 0;      ///< Gaussian-tile pairs built
    std::int64_t tile_fetches = 0;  ///< splat loads summed over tiles
    std::int64_t fetched_gaussians = 0; ///< unique splats fetched >=1 time
    std::int64_t sorted_keys = 0;   ///< keys passing through sorting
    std::int64_t rendered_gaussians = 0; ///< contributed >=1 pixel
    std::int64_t alpha_evals = 0;   ///< per-pixel alpha evaluations
    std::int64_t blend_ops = 0;     ///< blended (passing, live) pixels
    std::int64_t pixels_touched = 0; ///< alpha evals (Table 1 metric)

    /**
     * (Gaussian, subtile) array passes: the VRU rasterizes an 8x8
     * subtile per cycle in lockstep, so a subtile with any live pixel
     * costs a full pass even when most lanes are dead.  This is the
     * quantity GSCore's rendering throughput is bound by.
     */
    std::int64_t subtile_passes = 0;

    /**
     * Sum over tiles of list_length x merge_passes: the work a
     * 16-wide bitonic merge sorter does to depth-sort each tile's
     * Gaussian list (longer lists need more merge passes).
     */
    std::int64_t sort_pass_keys = 0;

    /** Average times each fetched Gaussian was loaded (Fig. 2b). */
    double
    loadsPerRenderedGaussian() const
    {
        if (fetched_gaussians == 0)
            return 0.0;
        return static_cast<double>(tile_fetches) /
               static_cast<double>(fetched_gaussians);
    }
};

/**
 * Activity of one depth group as it flowed through Stages II-IV.
 * The cycle-level GCC simulator consumes this trace: per-group unit
 * occupancies compose into pipeline time, byte counts into DRAM
 * traffic.  Skipped groups (cross-stage conditional termination)
 * record only their population.  All fields count per-invocation
 * work: in Compatibility Mode one Gaussian contributes to the trace
 * once per sub-view it is binned into.
 */
struct GroupActivity
{
    std::int32_t members = 0;        ///< Gaussians in the group
    std::int32_t projected = 0;      ///< entered Stage II
    std::int32_t survivors = 0;      ///< survived omega-sigma culling
    std::int32_t sh_evals = 0;       ///< Stage III color evaluations
    std::int32_t sh_skipped = 0;     ///< SH loads skipped (per-Gaussian CC)
    /**
     * Survivors dropped when the frame (sub-view) terminated while
     * this group was mid-flight: their geometry was projected and
     * sorted, but the SH fetch and Alpha Unit dispatch never happened.
     * Flow balance: survivors == sh_evals + sh_skipped + terminated.
     */
    std::int32_t terminated = 0;
    std::int32_t rendered = 0;       ///< contributed >=1 pixel
    std::int64_t visited_blocks = 0; ///< Alpha Unit block dispatches
    std::int64_t active_blocks = 0;  ///< blocks with blended pixels
    std::int64_t alpha_evals = 0;    ///< pixel alpha evaluations
    std::int64_t blend_ops = 0;      ///< blended pixels
    bool skipped = false;            ///< never preprocessed (CC)
};

/**
 * Counters for the GCC (Gaussian-wise + conditional) dataflow.
 *
 * Two families, which coincide in full-view rendering and differ in
 * Compatibility Mode (sub-view partitioning duplicates processing):
 *
 *  - *Population* counters (total .. skipped_by_termination) have
 *    unique-Gaussian semantics: each Gaussian of the model counts at
 *    most once per counter, no matter how many sub-views re-process
 *    it, so every one of them is bounded by @c total (Fig. 2a-style
 *    accounting, and what `GccSim` derives its Stage I survivor
 *    population from).
 *  - *Work* counters (groups .. influence_pixels) count invocations:
 *    a Gaussian binned into three sub-views that projects in each
 *    adds three to stage2_invocations.  These are the quantities
 *    hardware time/energy/traffic scale with, and the Fig. 6
 *    duplication overhead is stage2_invocations over the unique
 *    rendered population.
 *
 * Unique classification of the skip counters: a Gaussian is
 * @c sh_evaluated if any sub-view evaluated its color; otherwise
 * @c sh_skipped if the per-Gaussian conditional-loading mask skipped
 * it somewhere; otherwise @c skipped_by_termination if cross-stage
 * termination dropped it (group never processed, or mid-group
 * in-flight drop) everywhere it was binned.
 */
struct GaussianWiseStats
{
    StageTimes stage;                  ///< per-stage wall clock

    // ---- Population counters (unique-Gaussian, each <= total). ----
    std::int64_t total = 0;            ///< Gaussians in the model
    std::int64_t depth_culled = 0;     ///< Stage I z-pivot culls
    std::int64_t projected = 0;        ///< entered Stage II >= once
    std::int64_t survived_cull = 0;    ///< survived omega-sigma culling
    std::int64_t sh_evaluated = 0;     ///< SH color evaluated >= once
    std::int64_t sh_skipped = 0;       ///< CC-masked, never evaluated
    std::int64_t rendered_gaussians = 0; ///< contributed >=1 pixel
    std::int64_t skipped_by_termination = 0; ///< termination-dropped everywhere

    // ---- Work counters (per (Gaussian, sub-view) invocation). ----
    std::int64_t groups = 0;           ///< depth groups formed
    std::int64_t groups_processed = 0; ///< groups entering Stage II
    std::int64_t stage2_invocations = 0; ///< Stage II projections
    std::int64_t survivor_invocations = 0; ///< cull survivors (sort keys)
    std::int64_t sh_eval_invocations = 0;  ///< SH evaluations (192 B loads)
    std::int64_t sh_skip_invocations = 0;  ///< per-Gaussian CC skips
    /** Group-skip members plus mid-group in-flight drops. */
    std::int64_t termination_skip_invocations = 0;
    /** Cmode (Gaussian, sub-view) bin records spilled by Stage I. */
    std::int64_t bin_records = 0;
    std::int64_t alpha_evals = 0;      ///< Stage IV alpha evaluations
    std::int64_t blend_ops = 0;        ///< blended pixels
    std::int64_t visited_blocks = 0;   ///< Alpha Unit block dispatches
    std::int64_t influence_pixels = 0; ///< pixels meeting alpha >= 1/255

    /** Per-group activity trace in processing order. */
    std::vector<GroupActivity> group_trace;
};

} // namespace gcc3d

#endif // GCC3D_RENDER_RENDER_STATS_H
