#include "render/boundary.h"

namespace gcc3d {

BoundaryStats
pixelBoundary(const Ellipse &e, float omega, int width, int height,
              const PixelVisitor &visit)
{
    namespace bd = boundary_detail;
    BoundaryStats stats;
    float cutoff = bd::quadraticCutoff(omega);
    if (cutoff < 0.0f || width <= 0 || height <= 0)
        return stats;

    auto [cx, cy] = bd::nearestInBounds(e.center, width, height);

    // Bound the visited map by the omega-sigma AABB (plus margin) so
    // scratch memory stays proportional to the footprint.
    int r = radiusOmegaSigma(e.eig, omega) + 2;
    int x_lo = std::max(0, cx - r), x_hi = std::min(width - 1, cx + r);
    int y_lo = std::max(0, cy - r), y_hi = std::min(height - 1, cy + r);
    int span_x = x_hi - x_lo + 1;
    int span_y = y_hi - y_lo + 1;
    if (span_x <= 0 || span_y <= 0)
        return stats;

    std::vector<std::uint8_t> seen(
        static_cast<std::size_t>(span_x) * span_y, 0);
    auto idx = [&](int x, int y) {
        return static_cast<std::size_t>(y - y_lo) * span_x + (x - x_lo);
    };

    std::deque<std::pair<int, int>> queue;
    // Seed with the 3x3 neighborhood of the start pixel: when the
    // projected center sits on a pixel boundary the start pixel itself
    // can fail E(p) while an immediate neighbor passes.
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            int x = cx + dx, y = cy + dy;
            if (x < x_lo || x > x_hi || y < y_lo || y > y_hi)
                continue;
            seen[idx(x, y)] = 1;
            queue.emplace_back(x, y);
        }
    }

    while (!queue.empty()) {
        auto [x, y] = queue.front();
        queue.pop_front();

        ++stats.alpha_evals;
        float q = e.quadraticForm(bd::pixelCenter(x, y));
        if (q > cutoff)
            continue;  // fails E(p): convexity lets us stop here

        ++stats.influence_pixels;
        if (visit) {
            float a = std::min(0.99f, omega * std::exp(-0.5f * q));
            visit(x, y, a);
        }

        static constexpr int kDx[8] = {1, -1, 0, 0, 1, 1, -1, -1};
        static constexpr int kDy[8] = {0, 0, 1, -1, 1, -1, 1, -1};
        for (int k = 0; k < 8; ++k) {
            int nx = x + kDx[k], ny = y + kDy[k];
            if (nx < x_lo || nx > x_hi || ny < y_lo || ny > y_hi)
                continue;
            std::uint8_t &flag = seen[idx(nx, ny)];
            if (flag)
                continue;
            flag = 1;
            queue.emplace_back(nx, ny);
        }
    }
    return stats;
}

BlockTraversal::BlockTraversal(int block_size, int width, int height)
    : block_size_(block_size), width_(width), height_(height),
      blocks_x_((width + block_size - 1) / block_size),
      blocks_y_((height + block_size - 1) / block_size)
{
}

bool
BlockTraversal::blockReachable(const Ellipse &e, float omega, int bx,
                               int by) const
{
    namespace bd = boundary_detail;
    float cutoff = bd::quadraticCutoff(omega);
    if (cutoff < 0.0f)
        return false;
    float x0 = static_cast<float>(bx * block_size_);
    float y0 = static_cast<float>(by * block_size_);
    float x1 = std::min<float>(x0 + static_cast<float>(block_size_),
                               static_cast<float>(width_));
    float y1 = std::min<float>(y0 + static_cast<float>(block_size_),
                               static_cast<float>(height_));
    return bd::rectMayIntersect(e, cutoff, x0, y0, x1, y1);
}

BoundaryStats
BlockTraversal::traverse(const Ellipse &e, float omega,
                         const std::vector<std::uint8_t> *t_mask,
                         const PixelVisitor &visit,
                         const BlockVisitor &block_visit) const
{
    namespace bd = boundary_detail;
    BoundaryStats stats;
    float cutoff = bd::quadraticCutoff(omega);
    if (cutoff < 0.0f || blocks_x_ <= 0 || blocks_y_ <= 0)
        return stats;

    auto [cx, cy] = bd::nearestInBounds(e.center, width_, height_);
    int cbx = cx / block_size_;
    int cby = cy / block_size_;

    // Reusable scratch with generation stamping so repeated traversals
    // don't pay a per-call allocation of the full block map.
    thread_local std::vector<std::uint32_t> stamp;
    thread_local std::uint32_t generation = 0;
    std::size_t nblocks =
        static_cast<std::size_t>(blocks_x_) * blocks_y_;
    if (stamp.size() < nblocks) {
        stamp.assign(nblocks, 0);
        generation = 0;
    }
    if (++generation == 0) {
        // 2^32 traversals on this thread: stale stamps would alias
        // the restarted counter, so wipe them once.
        std::fill(stamp.begin(), stamp.end(), 0u);
        generation = 1;
    }
    auto seen = [&](int bx, int by) -> std::uint32_t & {
        return stamp[static_cast<std::size_t>(by) * blocks_x_ + bx];
    };

    // A block is enqueued only if the runtime identifier's boundary
    // test says the elliptical footprint can reach it — this is the
    // directional early termination of Sec. 4.4: directions whose
    // boundary alphas all fail the threshold are pruned, so perimeter
    // blocks outside the ellipse are never streamed into the PE array.
    auto intersects = [&](int bx, int by) {
        float x0 = static_cast<float>(bx * block_size_);
        float y0 = static_cast<float>(by * block_size_);
        float x1 = std::min<float>(x0 + static_cast<float>(block_size_),
                                   static_cast<float>(width_));
        float y1 = std::min<float>(y0 + static_cast<float>(block_size_),
                                   static_cast<float>(height_));
        return bd::rectMayIntersect(e, cutoff, x0, y0, x1, y1);
    };

    std::deque<std::pair<int, int>> queue;
    auto push = [&](int bx, int by) {
        if (bx < 0 || bx >= blocks_x_ || by < 0 || by >= blocks_y_)
            return;
        std::uint32_t &s = seen(bx, by);
        if (s == generation)
            return;
        s = generation;
        if (intersects(bx, by))
            queue.emplace_back(bx, by);
    };

    // Seed: the block holding the projected center (or nearest
    // in-bounds block) and its 8 neighbors, so a center on a block
    // edge cannot strand the traversal.
    for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx)
            push(cbx + dx, cby + dy);

    while (!queue.empty()) {
        auto [bx, by] = queue.front();
        queue.pop_front();

        int x0 = bx * block_size_;
        int y0 = by * block_size_;
        int x1 = std::min(x0 + block_size_, width_) - 1;
        int y1 = std::min(y0 + block_size_, height_) - 1;

        bool masked =
            t_mask != nullptr &&
            (*t_mask)[static_cast<std::size_t>(by) * blocks_x_ + bx] != 0;

        if (!masked) {
            // The whole block streams through the n x n PE array.
            ++stats.visited_blocks;
            bool visited_block = false;
            for (int y = y0; y <= y1; ++y) {
                for (int x = x0; x <= x1; ++x) {
                    ++stats.alpha_evals;
                    float q = e.quadraticForm(bd::pixelCenter(x, y));
                    if (q > cutoff)
                        continue;
                    ++stats.influence_pixels;
                    if (!visited_block) {
                        ++stats.active_blocks;
                        if (block_visit)
                            block_visit(bx, by);
                        visited_block = true;
                    }
                    if (visit) {
                        float a = std::min(0.99f,
                                           omega * std::exp(-0.5f * q));
                        visit(x, y, a);
                    }
                }
            }
        }
        // T-masked blocks are excluded from alpha computation
        // (Sec. 4.5) but the walk continues through them: the push
        // filter above already restricts expansion to blocks the
        // ellipse reaches.
        static constexpr int kDx[8] = {1, -1, 0, 0, 1, 1, -1, -1};
        static constexpr int kDy[8] = {0, 0, 1, -1, 1, -1, 1, -1};
        for (int k = 0; k < 8; ++k)
            push(bx + kDx[k], by + kDy[k]);
    }
    return stats;
}

} // namespace gcc3d
