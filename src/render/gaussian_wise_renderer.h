/**
 * @file
 * Functional model of the GCC dataflow (Sec. 3): Gaussian-wise
 * rendering with cross-stage conditional processing.
 *
 * The four stages:
 *   I   Gaussian grouping by depth (near-plane pivot cull, depth
 *       groups of at most N Gaussians, near-to-far order),
 *   II  position and shape projection (PPU/RU/SCU; omega-sigma cull),
 *   III color mapping (SH) and intra-group depth sorting,
 *   IV  alpha computation (Algorithm 1 block traversal, T-mask) and
 *       front-to-back blending.
 *
 * Cross-stage conditional processing: groups are preprocessed only
 * while at least one pixel still accepts contributions; once the
 * frame-wide transmittance termination criterion is met, all deeper
 * groups are skipped entirely (never loaded, projected or shaded).
 *
 * Compatibility Mode (Sec. 4.6): the image is partitioned into
 * sub-views rendered independently; Gaussians are binned spatially,
 * so one Gaussian may be re-processed once per overlapping sub-view
 * (measured by Fig. 6).
 */

#ifndef GCC3D_RENDER_GAUSSIAN_WISE_RENDERER_H
#define GCC3D_RENDER_GAUSSIAN_WISE_RENDERER_H

#include <vector>

#include "render/boundary.h"
#include "render/image.h"
#include "render/preprocess.h"
#include "render/render_stats.h"
#include "scene/camera.h"
#include "scene/gaussian_cloud.h"

namespace gcc3d {

/** Configuration of the Gaussian-wise renderer. */
struct GaussianWiseConfig
{
    int group_capacity = 256;      ///< max Gaussians per depth group (N)
    int block_size = 8;            ///< Alpha Unit PE array side (n)
    float termination_t = 1e-4f;   ///< per-pixel termination threshold
    float depth_pivot = 0.2f;      ///< Stage I z cull pivot

    /**
     * Cross-stage conditional processing.  When false, every depth
     * group is preprocessed and shaded regardless of termination
     * (the "GW"-only ablation point of Fig. 11); rendering itself
     * still honours the per-pixel/per-block T-mask, as the baseline's
     * early termination does.
     */
    bool conditional = true;

    /**
     * Compatibility-mode sub-view side in pixels; 0 renders the full
     * view at once (no Cmode).
     */
    int subview_size = 0;
};

/** One depth group: splat indices ordered front-to-back. */
struct DepthGroup
{
    float depth_lo = 0.0f;
    float depth_hi = 0.0f;
    std::vector<std::uint32_t> members;  ///< indices into the ID table
};

/**
 * Stage I grouping as a reusable primitive: orders Gaussian indices
 * by view depth and chunks them into groups of at most
 * @p group_capacity, mirroring the RCA's coarse binning + recursive
 * subdivision (the resulting partition is identical: depth-ordered
 * groups no larger than N).
 *
 * @param depths  per-Gaussian view depth, parallel to ids
 * @param ids     Gaussian ids (already depth-pivot culled)
 */
std::vector<DepthGroup> groupByDepth(const std::vector<float> &depths,
                                     const std::vector<std::uint32_t> &ids,
                                     int group_capacity);

/**
 * GCC-dataflow functional renderer.
 *
 * Thread safety: render() keeps all per-frame state on the stack and
 * only reads config_ and its const arguments, so one renderer (or
 * one per thread) may render concurrently, including from a shared
 * const GaussianCloud.
 */
class GaussianWiseRenderer
{
  public:
    explicit GaussianWiseRenderer(GaussianWiseConfig config = {})
        : config_(config) {}

    const GaussianWiseConfig &config() const { return config_; }

    /** Render a frame, filling @p stats with the dataflow counters. */
    Image render(const GaussianCloud &cloud, const Camera &cam,
                 GaussianWiseStats &stats) const;

  private:
    /** Render one (sub-)view given the candidate Gaussian ids. */
    void renderView(const GaussianCloud &cloud, const Camera &cam,
                    const std::vector<std::uint32_t> &candidates,
                    int view_x0, int view_y0, int view_w, int view_h,
                    Image &image, GaussianWiseStats &stats) const;

    GaussianWiseConfig config_;
};

} // namespace gcc3d

#endif // GCC3D_RENDER_GAUSSIAN_WISE_RENDERER_H
