/**
 * @file
 * Functional model of the GCC dataflow (Sec. 3): Gaussian-wise
 * rendering with cross-stage conditional processing.
 *
 * The four stages:
 *   I   Gaussian grouping by depth (near-plane pivot cull, depth
 *       groups of at most N Gaussians, near-to-far order),
 *   II  position and shape projection (PPU/RU/SCU; omega-sigma cull),
 *   III color mapping (SH) and intra-group depth sorting,
 *   IV  alpha computation (Algorithm 1 block traversal, T-mask) and
 *       front-to-back blending.
 *
 * Cross-stage conditional processing: groups are preprocessed only
 * while at least one pixel still accepts contributions; once the
 * frame-wide transmittance termination criterion is met, all deeper
 * groups are skipped entirely (never loaded, projected or shaded).
 *
 * Compatibility Mode (Sec. 4.6): the image is partitioned into
 * sub-views rendered independently; Gaussians are binned spatially,
 * so one Gaussian may be re-processed once per overlapping sub-view
 * (measured by Fig. 6).
 *
 * Two implementations of the frame are kept:
 *
 *  - render(): the fast path — one shared projection pass feeding
 *    both the Cmode spatial binning and Stage II (each Gaussian is
 *    projected once per frame instead of once for binning plus once
 *    per overlapping sub-view), statically-dispatched block traversal
 *    (no per-pixel std::function call), reused per-view scratch
 *    buffers, and — because Cmode sub-views are disjoint pixel
 *    regions — optional multi-threaded sub-view rendering over a
 *    ThreadPool with a deterministic, sub-view-ordered stat merge;
 *  - renderReference(): the direct scalar transcription the fast
 *    path is validated against (per-group projectGaussian calls,
 *    std::function traversal, fresh per-view buffers, serial
 *    sub-views).
 *
 * Both produce bit-identical images and identical GaussianWiseStats
 * (including the group trace); tests/test_gw_equivalence.cc locks
 * that in across view modes, conditional settings and thread counts.
 */

#ifndef GCC3D_RENDER_GAUSSIAN_WISE_RENDERER_H
#define GCC3D_RENDER_GAUSSIAN_WISE_RENDERER_H

#include <vector>

#include "render/boundary.h"
#include "render/image.h"
#include "render/preprocess.h"
#include "render/render_stats.h"
#include "scene/camera.h"
#include "scene/gaussian_cloud.h"

namespace gcc3d {

class ThreadPool;

/** Configuration of the Gaussian-wise renderer. */
struct GaussianWiseConfig
{
    int group_capacity = 256;      ///< max Gaussians per depth group (N)
    int block_size = 8;            ///< Alpha Unit PE array side (n)
    float termination_t = 1e-4f;   ///< per-pixel termination threshold
    float depth_pivot = 0.2f;      ///< Stage I z cull pivot

    /**
     * Cross-stage conditional processing.  When false, every depth
     * group is preprocessed and shaded regardless of termination
     * (the "GW"-only ablation point of Fig. 11); rendering itself
     * still honours the per-pixel/per-block T-mask, as the baseline's
     * early termination does.
     */
    bool conditional = true;

    /**
     * Compatibility-mode sub-view side in pixels; 0 renders the full
     * view at once (no Cmode).
     */
    int subview_size = 0;

    /**
     * Opt-in fast-alpha mode: render() evaluates alpha with the
     * vectorized polynomial exponential (simd::simdExp, relative
     * error < 3e-7) instead of std::exp.  NOT bit-identical to
     * renderReference — the contract is perceptual: >= 55 dB PSNR
     * against the exact image on every preset scene
     * (tests/test_gw_equivalence.cc).  Off by default; the bit-
     * exactness guarantees elsewhere in this header assume it is off.
     */
    bool fast_alpha = false;

    /**
     * Copy with degenerate values clamped to the smallest legal
     * setting (group_capacity/block_size >= 1, subview_size >= 0).
     * The renderer constructor applies this, so a zero or negative
     * group capacity can never wedge the grouping loop.
     */
    GaussianWiseConfig
    validated() const
    {
        GaussianWiseConfig c = *this;
        if (c.group_capacity < 1)
            c.group_capacity = 1;
        if (c.block_size < 1)
            c.block_size = 1;
        if (c.subview_size < 0)
            c.subview_size = 0;
        return c;
    }
};

/** One depth group: splat indices ordered front-to-back. */
struct DepthGroup
{
    float depth_lo = 0.0f;
    float depth_hi = 0.0f;
    std::vector<std::uint32_t> members;  ///< indices into the ID table
};

/**
 * Stage I grouping as a reusable primitive: orders Gaussian indices
 * by view depth and chunks them into groups of at most
 * @p group_capacity, mirroring the RCA's coarse binning + recursive
 * subdivision (the resulting partition is identical: depth-ordered
 * groups no larger than N).  A capacity below 1 is treated as 1.
 *
 * @param depths  per-Gaussian view depth, parallel to ids
 * @param ids     Gaussian ids (already depth-pivot culled)
 */
std::vector<DepthGroup> groupByDepth(const std::vector<float> &depths,
                                     const std::vector<std::uint32_t> &ids,
                                     int group_capacity);

/**
 * GCC-dataflow functional renderer.
 *
 * Thread safety: render() keeps all per-frame state on the stack and
 * only reads config_ and its const arguments, so one renderer (or
 * one per thread) may render concurrently, including from a shared
 * const GaussianCloud.  A ThreadPool passed to render() is only used
 * to fan out the shared projection pass and (in Cmode) independent
 * sub-views; it may be shared between renderers and never changes
 * the result.
 */
class GaussianWiseRenderer
{
  public:
    explicit GaussianWiseRenderer(GaussianWiseConfig config = {})
        : config_(config.validated()) {}

    const GaussianWiseConfig &config() const { return config_; }

    /**
     * Render a frame (optimized path), filling @p stats with the
     * dataflow counters.
     *
     * @param pool  optional worker pool: parallelizes the shared
     *              depth/projection pass and, in Compatibility Mode,
     *              the independent sub-views.  Full-view rendering
     *              itself is inherently sequential (depth groups
     *              stream near-to-far through shared transmittance
     *              state), so meaningful frame-level scaling needs
     *              Cmode.  Null renders serially; the image and stats
     *              are bit-identical either way.
     */
    Image render(const GaussianCloud &cloud, const Camera &cam,
                 GaussianWiseStats &stats,
                 ThreadPool *pool = nullptr) const;

    /**
     * Render a frame through the retained scalar reference
     * implementation.  Used by the equivalence tests and the
     * frame-throughput benchmark as the speedup baseline; produces
     * bit-identical images and stats to render().
     */
    Image renderReference(const GaussianCloud &cloud, const Camera &cam,
                          GaussianWiseStats &stats) const;

  private:
    struct ViewScratch;
    struct SplatCache;

    /** Per-thread view scratch, reused across sub-views and frames. */
    static ViewScratch &localScratch();

    /**
     * Render one (sub-)view over pivot-culled candidates (optimized
     * hot path).  @p depths is parallel to @p candidates; @p cache is
     * non-null in Cmode (pre-projected splats, all candidates valid).
     * Per-candidate milestone flags are written to @p flags for the
     * frame-level unique-population merge.
     */
    void renderView(const GaussianCloud &cloud, const Camera &cam,
                    const std::vector<std::uint32_t> &candidates,
                    const std::vector<float> &depths,
                    const SplatCache *cache, int view_x0, int view_y0,
                    int view_w, int view_h, Image &image,
                    GaussianWiseStats &stats,
                    std::vector<std::uint8_t> &flags,
                    ViewScratch &scratch) const;

    /** Scalar transcription of renderView used by renderReference. */
    void renderViewReference(const GaussianCloud &cloud,
                             const Camera &cam,
                             const std::vector<std::uint32_t> &candidates,
                             const std::vector<float> &depths,
                             int view_x0, int view_y0, int view_w,
                             int view_h, Image &image,
                             GaussianWiseStats &stats,
                             std::vector<std::uint8_t> &flags) const;

    GaussianWiseConfig config_;
};

} // namespace gcc3d

#endif // GCC3D_RENDER_GAUSSIAN_WISE_RENDERER_H
