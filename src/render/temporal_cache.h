/**
 * @file
 * Cross-frame state for temporally coherent tile rendering.
 *
 * The tile renderer is frame-stateless by design: every frame
 * re-projects, re-bins, re-sorts and re-composites every splat and
 * every tile.  Along a Trajectory, consecutive cameras are nearly
 * identical, so most of that work recomputes last frame's answers.
 * A TemporalCache threads a cross-frame lifetime through the
 * streaming path — TileRenderer::renderTemporal() reads and updates
 * it — in three independently-gated tiers:
 *
 *  1. Incremental CSR binning: the SoA splat store, per-splat
 *     emitted-tile lists and per-tile sorted key-value lists persist
 *     across frames.  A new camera re-projects all splats (cheap,
 *     ~4% of a frame), then per-splat diffs of the blend record,
 *     depth key and tile coverage patch only the changed CSR rows
 *     and re-sort only tiles whose key order actually changed.
 *  2. Dirty-tile output reuse: a tile whose member list, depth order
 *     and members' blend inputs are all bit-unchanged keeps last
 *     frame's composited pixels; only dirty tiles re-rasterize.
 *     Exact-mode guarantee: the output image is bit-identical to a
 *     cold render of the same (cloud, camera, config) — the existing
 *     renderReference/equivalence machinery is the oracle
 *     (tests/test_renderer_equivalence.cc locks this in).
 *  3. Opt-in reprojection (options.every = k > 1): every k-th frame
 *     renders exactly; in-between frames are synthesized by a
 *     per-pixel depth backward warp from the last exact frame.
 *     NOT bit-exact — the contract is perceptual, >= 40 dB PSNR vs
 *     exact rendering on every preset scene along the bench
 *     trajectories (enforced by bench/frame_throughput and
 *     bench/serve_throughput).
 *
 * Ownership and threading: a cache belongs to exactly one frame
 * stream (one serving session, one bench replay loop).  Frames of
 * one stream must be rendered in trajectory order with external
 * happens-before between consecutive frames — the FrameScheduler's
 * one-frame-in-flight-per-session invariant provides exactly that;
 * concurrent renderTemporal() calls on one cache are not allowed.
 * Distinct caches are fully independent.
 */

#ifndef GCC3D_RENDER_TEMPORAL_CACHE_H
#define GCC3D_RENDER_TEMPORAL_CACHE_H

#include <cstdint>
#include <limits>
#include <vector>

#include "render/image.h"
#include "render/splat_soa.h"
#include "scene/camera.h"

namespace gcc3d {

/** Knobs of the temporal-coherence engine. */
struct TemporalOptions
{
    /**
     * Exact-render cadence: 1 renders every frame exactly (tiers 1+2
     * only, bit-identical output), k > 1 renders every k-th frame
     * exactly and warps the in-between frames from it (tier 3).
     */
    int every = 1;

    /**
     * Warp trust region: an in-between frame whose camera moved
     * farther than this from the last exact frame (translation in
     * world units, rotation in radians) is rendered exactly instead
     * of warped, resetting the cadence.  Infinite by default (the
     * bench trajectories control their own step sizes).
     */
    float max_warp_translation = std::numeric_limits<float>::infinity();
    float max_warp_rotation = std::numeric_limits<float>::infinity();

    /**
     * Maintain the tier-3 warp source (exact image snapshot + depth
     * buffer) even at every == 1.  Costs the per-pixel depth capture
     * on exact frames, but lets a caller request an on-demand
     * synthesized frame via renderTemporal(..., force_warp = true) —
     * the serving degradation ladder's warp tier.  Off by default so
     * the every == 1 bit-exactness fast path stays untouched.
     */
    bool keep_exact = false;
};

/**
 * Work-attribution counters of one frame stream, accumulated across
 * renderTemporal() calls until reset().  These complement
 * StandardFlowStats: in temporal mode the flow counters report the
 * work actually performed (fewer sorts and blends than a cold
 * frame), and these counters attribute the savings.
 */
struct TemporalCounters
{
    std::int64_t frames = 0;          ///< frames served through the cache
    std::int64_t exact_frames = 0;    ///< rendered exactly (cold or incremental)
    std::int64_t copied_frames = 0;   ///< bit-equal camera: output copied
    std::int64_t warped_frames = 0;   ///< synthesized by reprojection
    std::int64_t full_rebuilds = 0;   ///< cold path (first frame, invalidation)
    std::int64_t incremental_frames = 0; ///< diff-and-patch exact frames

    // Per-tile attribution over incremental frames.
    std::int64_t tiles_total = 0;     ///< tiles examined
    std::int64_t tiles_reused = 0;    ///< clean: composited pixels copied
    std::int64_t tiles_rastered = 0;  ///< dirty: re-sorted/re-blended
    std::int64_t tiles_patched = 0;   ///< membership edits applied
    std::int64_t tiles_resorted = 0;  ///< depth order changed: re-sorted

    /** Splats whose blend record changed vs the previous frame. */
    std::int64_t splats_changed = 0;
};

/**
 * All persistent state of one temporally-coherent frame stream.
 * TileRenderer::renderTemporal() owns the invariants of the private
 * state; callers only configure options, read counters and reset()
 * between independent replays.
 */
class TemporalCache
{
  public:
    TemporalOptions options;

    const TemporalCounters &counters() const { return counters_; }

    /**
     * Drop all cross-frame state and counters.  The next frame
     * renders cold; exact-mode output is unaffected by when (or
     * whether) this is called — that is the cache-state-independence
     * guarantee the equivalence tests pin down.
     */
    void
    reset()
    {
        valid_ = false;
        exact_valid_ = false;
        counters_ = TemporalCounters{};
        soa_ = SplatSoA{};
        ids_.clear();
        depths_.clear();
        cov_offsets_.clear();
        cov_tiles_.clear();
        tile_entries_.clear();
        image_ = Image{};
        exact_image_ = Image{};
        depth_.clear();
        depth_valid_ = false;
        warp_phase_ = 0;
        warp_cached_ = false;
        warp_image_ = Image{};
    }

  private:
    friend class TileRenderer;

    TemporalCounters counters_;

    // ---- Geometry/config snapshot the cached state is valid for. ----
    bool valid_ = false;       ///< incremental state usable
    int width_ = 0, height_ = 0, tile_size_ = 0;
    BoundingMode bounding_ = BoundingMode::Obb3Sigma;
    float termination_t_ = 0.0f, alpha_cutoff_ = 0.0f;
    bool fast_alpha_ = false;
    std::size_t cloud_size_ = 0;
    Camera camera_;            ///< camera of the cached exact state

    // ---- Tier 1: persisted binning state (previous exact frame). ----
    SplatSoA soa_;                            ///< previous SoA store
    std::vector<std::uint32_t> ids_;          ///< per-si source splat ids
    std::vector<float> depths_;               ///< per-si view depth
    std::vector<std::uint32_t> cov_offsets_;  ///< per-splat coverage CSR
    std::vector<std::uint32_t> cov_tiles_;    ///< emitted tiles, ascending
    /** Per-tile packed (key, si) lists, ascending uint64 == cold order. */
    std::vector<std::vector<std::uint64_t>> tile_entries_;

    // ---- Tier 2: previous composited output. ----
    Image image_;

    // ---- Tier 3: warp source (last exact frame when every > 1). ----
    bool exact_valid_ = false;
    Camera exact_camera_;
    Image exact_image_;
    /** Per-pixel median-surface view depth of the exact frame (0 where
     *  nothing contributed).  Captured during exact rasterization when
     *  every > 1; the warp lifts each pixel at this depth. */
    std::vector<float> depth_;
    bool depth_valid_ = false;
    int warp_phase_ = 0;             ///< frames left before next exact

    // Last synthesized frame, so a held camera during a warp run
    // copies instead of re-warping (trajectory presets hold each
    // camera for a few frames to model camera-update rates below the
    // render rate).
    bool warp_cached_ = false;
    Camera warp_camera_;
    Image warp_image_;
};

} // namespace gcc3d

#endif // GCC3D_RENDER_TEMPORAL_CACHE_H
