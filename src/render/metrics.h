/**
 * @file
 * Image quality metrics: PSNR and SSIM.
 *
 * The paper reports PSNR and LPIPS (Table 2).  LPIPS requires a
 * pretrained CNN, which is unavailable offline; SSIM serves the same
 * purpose here — a perceptual(ish) similarity score that detects any
 * structural divergence between pipelines (DESIGN.md §1).
 */

#ifndef GCC3D_RENDER_METRICS_H
#define GCC3D_RENDER_METRICS_H

#include "render/image.h"

namespace gcc3d {

/** Mean squared error over all pixels and channels. */
double mse(const Image &a, const Image &b);

/**
 * Peak signal-to-noise ratio in dB (peak = 1.0).  Identical images
 * return +infinity.
 */
double psnr(const Image &a, const Image &b);

/**
 * psnr() under its quality-contract name.  Guaranteed total for
 * same-shaped inputs: bit-identical images (which temporal exact
 * mode produces constantly) return the +infinity sentinel rather
 * than dividing by a zero MSE, and any pixel difference returns a
 * finite dB value.  Callers serializing to JSON must clamp the
 * sentinel to a finite stand-in (the benches use 999.0); comparisons
 * against a contract floor (e.g. the >= 40 dB temporal warp gate)
 * need no special case — +inf passes naturally.
 */
double psnrDb(const Image &a, const Image &b);

/**
 * Mean SSIM over 8x8 luma windows with the standard constants
 * (k1 = 0.01, k2 = 0.03, L = 1).  1.0 means identical.
 */
double ssim(const Image &a, const Image &b);

} // namespace gcc3d

#endif // GCC3D_RENDER_METRICS_H
