#include "render/gaussian_wise_renderer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gcc3d {

std::vector<DepthGroup>
groupByDepth(const std::vector<float> &depths,
             const std::vector<std::uint32_t> &ids, int group_capacity)
{
    std::vector<std::uint32_t> order(ids.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (depths[a] != depths[b])
                      return depths[a] < depths[b];
                  return ids[a] < ids[b];
              });

    std::vector<DepthGroup> groups;
    std::size_t n = order.size();
    std::size_t cap = static_cast<std::size_t>(group_capacity);
    groups.reserve((n + cap - 1) / std::max<std::size_t>(cap, 1));
    for (std::size_t start = 0; start < n; start += cap) {
        DepthGroup g;
        std::size_t end = std::min(start + cap, n);
        g.members.reserve(end - start);
        for (std::size_t k = start; k < end; ++k)
            g.members.push_back(ids[order[k]]);
        g.depth_lo = depths[order[start]];
        g.depth_hi = depths[order[end - 1]];
        groups.push_back(std::move(g));
    }
    return groups;
}

void
GaussianWiseRenderer::renderView(const GaussianCloud &cloud,
                                 const Camera &cam,
                                 const std::vector<std::uint32_t> &candidates,
                                 int view_x0, int view_y0, int view_w,
                                 int view_h, Image &image,
                                 GaussianWiseStats &stats) const
{
    // ---- Stage I: depth computation, pivot cull, grouping. ----
    std::vector<float> depths;
    std::vector<std::uint32_t> ids;
    depths.reserve(candidates.size());
    ids.reserve(candidates.size());
    for (std::uint32_t id : candidates) {
        float d = cam.worldToView(cloud[id].mean).z;
        if (d < config_.depth_pivot) {
            ++stats.depth_culled;
            continue;
        }
        depths.push_back(d);
        ids.push_back(id);
    }
    std::vector<DepthGroup> groups =
        groupByDepth(depths, ids, config_.group_capacity);
    stats.groups += static_cast<std::int64_t>(groups.size());

    // ---- Per-(sub)view pixel and block state. ----
    BlockTraversal traversal(config_.block_size, view_w, view_h);
    const int bx_n = traversal.blocksX();
    const int by_n = traversal.blocksY();
    std::vector<float> transmittance(
        static_cast<std::size_t>(view_w) * view_h, 1.0f);
    std::vector<std::uint8_t> t_mask(
        static_cast<std::size_t>(bx_n) * by_n, 0);
    std::vector<int> block_live(t_mask.size(), 0);
    for (int by = 0; by < by_n; ++by) {
        for (int bx = 0; bx < bx_n; ++bx) {
            int w = std::min(config_.block_size,
                             view_w - bx * config_.block_size);
            int h = std::min(config_.block_size,
                             view_h - by * config_.block_size);
            block_live[static_cast<std::size_t>(by) * bx_n + bx] = w * h;
        }
    }
    std::int64_t live = static_cast<std::int64_t>(view_w) * view_h;

    // ---- Stages II-IV, group by group, near to far. ----
    struct GroupSplat
    {
        Splat splat;
        std::uint32_t id;
    };
    std::vector<GroupSplat> gsplats;

    bool terminated = false;
    for (const DepthGroup &group : groups) {
        GroupActivity activity;
        activity.members = static_cast<std::int32_t>(group.members.size());
        if (terminated && config_.conditional) {
            // Cross-stage conditional processing: this group (and all
            // deeper ones) is never loaded from DRAM, projected or
            // shaded.
            stats.skipped_by_termination +=
                static_cast<std::int64_t>(group.members.size());
            activity.skipped = true;
            stats.group_trace.push_back(activity);
            continue;
        }
        ++stats.groups_processed;

        // Stage II: position/shape projection and omega-sigma culling.
        gsplats.clear();
        for (std::uint32_t id : group.members) {
            ++stats.projected;
            ++activity.projected;
            auto s = projectGaussian(cloud[id], id, cam, nullptr);
            if (!s)
                continue;
            ++stats.survived_cull;
            ++activity.survivors;
            gsplats.push_back({*s, id});
        }

        // Stage III: intra-group front-to-back sort (bitonic network
        // in hardware) and SH color for survivors only.
        std::sort(gsplats.begin(), gsplats.end(),
                  [](const GroupSplat &a, const GroupSplat &b) {
                      if (a.splat.depth != b.splat.depth)
                          return a.splat.depth < b.splat.depth;
                      return a.id < b.id;
                  });

        // Stage IV: alpha-based boundary identification + blending.
        for (GroupSplat &gs : gsplats) {
            if (live == 0) {
                terminated = true;
                break;
            }

            // Work in sub-view-local coordinates.
            Ellipse local = gs.splat.ellipse;
            local.center = local.center -
                           Vec2(static_cast<float>(view_x0),
                                static_cast<float>(view_y0));

            // Per-Gaussian conditional loading (the CC half of the
            // dataflow, Fig. 1): if every block the footprint can
            // touch has exhausted transmittance, the 48 SH floats are
            // never fetched and the Gaussian never enters the Alpha
            // Unit.
            if (config_.conditional) {
                int r = gs.splat.radius_omega;
                int bx0 = std::max(
                    0, (static_cast<int>(local.center.x) - r) /
                           config_.block_size);
                int by0 = std::max(
                    0, (static_cast<int>(local.center.y) - r) /
                           config_.block_size);
                int bx1 = std::min(
                    bx_n - 1, (static_cast<int>(local.center.x) + r) /
                                  config_.block_size);
                int by1 = std::min(
                    by_n - 1, (static_cast<int>(local.center.y) + r) /
                                  config_.block_size);
                bool all_masked = bx0 <= bx1 && by0 <= by1;
                for (int by = by0; by <= by1 && all_masked; ++by) {
                    for (int bx = bx0; bx <= bx1; ++bx) {
                        if (t_mask[static_cast<std::size_t>(by) * bx_n +
                                   bx])
                            continue;
                        // Unmasked corner blocks the elliptical
                        // footprint cannot reach don't block the skip:
                        // the traversal would never evaluate them.
                        if (!traversal.blockReachable(
                                local, gs.splat.opacity, bx, by))
                            continue;
                        all_masked = false;
                        break;
                    }
                }
                if (all_masked) {
                    ++stats.sh_skipped;
                    ++activity.sh_skipped;
                    continue;
                }
            }

            ++stats.sh_evaluated;
            ++activity.sh_evals;
            gs.splat.color = shColorFor(cloud[gs.id], cam);

            bool contributed = false;
            BoundaryStats bs = traversal.traverse(
                local, gs.splat.opacity, &t_mask,
                [&](int x, int y, float a) {
                    float &t =
                        transmittance[static_cast<std::size_t>(y) *
                                          view_w + x];
                    if (t < config_.termination_t)
                        return;
                    ++stats.blend_ops;
                    ++activity.blend_ops;
                    contributed = true;
                    image.at(view_x0 + x, view_y0 + y) +=
                        gs.splat.color * (a * t);
                    t *= 1.0f - a;
                    if (t < config_.termination_t) {
                        --live;
                        std::size_t bi =
                            static_cast<std::size_t>(
                                y / config_.block_size) * bx_n +
                            (x / config_.block_size);
                        if (--block_live[bi] == 0)
                            t_mask[bi] = 1;
                    }
                });
            stats.alpha_evals += bs.alpha_evals;
            stats.visited_blocks += bs.visited_blocks;
            stats.influence_pixels += bs.influence_pixels;
            activity.visited_blocks += bs.visited_blocks;
            activity.active_blocks += bs.active_blocks;
            activity.alpha_evals += bs.alpha_evals;
            if (contributed) {
                ++stats.rendered_gaussians;
                ++activity.rendered;
            }
        }
        if (live == 0)
            terminated = true;
        stats.group_trace.push_back(activity);
    }
}

Image
GaussianWiseRenderer::render(const GaussianCloud &cloud, const Camera &cam,
                             GaussianWiseStats &stats) const
{
    stats.total = static_cast<std::int64_t>(cloud.size());
    Image image(cam.width(), cam.height());

    if (config_.subview_size <= 0 ||
        (config_.subview_size >= cam.width() &&
         config_.subview_size >= cam.height())) {
        std::vector<std::uint32_t> all(cloud.size());
        std::iota(all.begin(), all.end(), 0u);
        renderView(cloud, cam, all, 0, 0, cam.width(), cam.height(),
                   image, stats);
        return image;
    }

    // ---- Compatibility Mode: 2D spatial binning into sub-views. ----
    const int sub = config_.subview_size;
    const int sx = (cam.width() + sub - 1) / sub;
    const int sy = (cam.height() + sub - 1) / sub;
    std::vector<std::vector<std::uint32_t>> bins(
        static_cast<std::size_t>(sx) * sy);

    for (std::uint32_t id = 0; id < cloud.size(); ++id) {
        auto s = projectGaussian(cloud[id], id, cam, nullptr);
        if (!s)
            continue;
        PixelRect box = aabbFromRadius(s->ellipse.center, s->radius_omega)
                            .clipped(cam.width(), cam.height());
        if (box.empty())
            continue;
        for (int by = box.y0 / sub; by <= box.y1 / sub; ++by)
            for (int bx = box.x0 / sub; bx <= box.x1 / sub; ++bx)
                bins[static_cast<std::size_t>(by) * sx + bx].push_back(id);
    }

    for (int by = 0; by < sy; ++by) {
        for (int bx = 0; bx < sx; ++bx) {
            const auto &bin =
                bins[static_cast<std::size_t>(by) * sx + bx];
            if (bin.empty())
                continue;
            int x0 = bx * sub;
            int y0 = by * sub;
            int w = std::min(sub, cam.width() - x0);
            int h = std::min(sub, cam.height() - y0);
            renderView(cloud, cam, bin, x0, y0, w, h, image, stats);
        }
    }
    return image;
}

} // namespace gcc3d
