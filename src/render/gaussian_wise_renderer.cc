#include "render/gaussian_wise_renderer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "obs/perf_recorder.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace gcc3d {

namespace {

/**
 * Per-candidate milestone flags collected while a (sub-)view renders.
 * In Compatibility Mode one Gaussian can reach different milestones
 * in different sub-views; the frame-level merge ORs the flags by
 * Gaussian id and classifies once, which is what gives the population
 * counters their unique-Gaussian semantics.
 */
enum : std::uint8_t
{
    kFlagProjected = 1u << 0,  ///< entered Stage II
    kFlagSurvived = 1u << 1,   ///< survived omega-sigma culling
    kFlagShEval = 1u << 2,     ///< SH color evaluated
    kFlagShSkip = 1u << 3,     ///< per-Gaussian conditional-load skip
    kFlagRendered = 1u << 4,   ///< contributed >= 1 pixel
    kFlagTermSkip = 1u << 5,   ///< dropped by cross-stage termination
};

/** Fold OR-merged milestone flags into the unique population counters. */
void
classifyFlags(const std::vector<std::uint8_t> &flags,
              GaussianWiseStats &stats)
{
    for (std::uint8_t f : flags) {
        if (f == 0)
            continue;
        if (f & kFlagProjected)
            ++stats.projected;
        if (f & kFlagSurvived)
            ++stats.survived_cull;
        if (f & kFlagRendered)
            ++stats.rendered_gaussians;
        if (f & kFlagShEval)
            ++stats.sh_evaluated;
        else if (f & kFlagShSkip)
            ++stats.sh_skipped;
        else if (f & kFlagTermSkip)
            ++stats.skipped_by_termination;
    }
}

/** Sum @p o's work counters into @p stats and append its trace. */
void
mergeWork(GaussianWiseStats &stats, GaussianWiseStats &&o)
{
    stats.groups += o.groups;
    stats.groups_processed += o.groups_processed;
    stats.stage2_invocations += o.stage2_invocations;
    stats.survivor_invocations += o.survivor_invocations;
    stats.sh_eval_invocations += o.sh_eval_invocations;
    stats.sh_skip_invocations += o.sh_skip_invocations;
    stats.termination_skip_invocations += o.termination_skip_invocations;
    stats.alpha_evals += o.alpha_evals;
    stats.blend_ops += o.blend_ops;
    stats.visited_blocks += o.visited_blocks;
    stats.influence_pixels += o.influence_pixels;
    if (stats.group_trace.empty())
        stats.group_trace = std::move(o.group_trace);
    else
        stats.group_trace.insert(stats.group_trace.end(),
                                 o.group_trace.begin(),
                                 o.group_trace.end());
}

/** Floor division (round toward negative infinity) for b > 0. */
inline int
floorDiv(int a, int b)
{
    int q = a / b;
    return (a % b != 0 && a < 0) ? q - 1 : q;
}

/**
 * Per-Gaussian conditional loading (the CC half of the dataflow,
 * Fig. 1): true when every block the footprint can touch has
 * exhausted transmittance, in which case the 48 SH floats are never
 * fetched and the Gaussian never enters the Alpha Unit.  The block
 * window uses floor division so footprints centered left/above the
 * view (negative local coordinates) still cover exactly the blocks
 * the traversal could reach.  The reachability test is
 * BlockTraversal::blockReachable's, inlined with the conic hoisted
 * into locals (identical operations, identical decisions).
 */
bool
conditionalLoadSkips(const BlockTraversal &traversal,
                     const std::vector<std::uint8_t> &t_mask,
                     const Ellipse &local, float opacity, int radius,
                     int block_size, int bx_n, int by_n)
{
    const int cx = static_cast<int>(std::floor(local.center.x));
    const int cy = static_cast<int>(std::floor(local.center.y));
    const int bx0 = std::max(0, floorDiv(cx - radius, block_size));
    const int by0 = std::max(0, floorDiv(cy - radius, block_size));
    const int bx1 = std::min(bx_n - 1, floorDiv(cx + radius, block_size));
    const int by1 = std::min(by_n - 1, floorDiv(cy + radius, block_size));
    if (bx0 > bx1 || by0 > by1)
        return false;  // footprint window misses the view: no skip claim

    const float cutoff = boundary_detail::quadraticCutoff(opacity);
    if (cutoff < 0.0f)
        return true;  // below 1/255 everywhere: nothing to load
    const float fc00 = local.conic(0, 0), fc01 = local.conic(0, 1);
    const float fc10 = local.conic(1, 0), fc11 = local.conic(1, 1);
    const float fcx = local.center.x, fcy = local.center.y;

    for (int by = by0; by <= by1; ++by) {
        for (int bx = bx0; bx <= bx1; ++bx) {
            if (t_mask[static_cast<std::size_t>(by) * bx_n + bx])
                continue;
            // Unmasked corner blocks the elliptical footprint cannot
            // reach don't block the skip: the traversal would never
            // evaluate them.
            float x0 = static_cast<float>(bx * block_size);
            float y0 = static_cast<float>(by * block_size);
            float x1 = std::min<float>(
                x0 + static_cast<float>(block_size),
                static_cast<float>(traversal.viewWidth()));
            float y1 = std::min<float>(
                y0 + static_cast<float>(block_size),
                static_cast<float>(traversal.viewHeight()));
            if (boundary_detail::minConicQOverRect(
                    fc00, fc01, fc10, fc11, fcx, fcy, x0, y0, x1,
                    y1) > cutoff)
                continue;
            return false;
        }
    }
    return true;
}

} // namespace

std::vector<DepthGroup>
groupByDepth(const std::vector<float> &depths,
             const std::vector<std::uint32_t> &ids, int group_capacity)
{
    std::vector<std::uint32_t> order(ids.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (depths[a] != depths[b])
                      return depths[a] < depths[b];
                  return ids[a] < ids[b];
              });

    std::vector<DepthGroup> groups;
    std::size_t n = order.size();
    // A degenerate capacity (0 or negative) would never advance the
    // chunking loop; clamp to the smallest legal group size.
    std::size_t cap =
        group_capacity < 1 ? 1 : static_cast<std::size_t>(group_capacity);
    groups.reserve((n + cap - 1) / cap);
    for (std::size_t start = 0; start < n; start += cap) {
        DepthGroup g;
        std::size_t end = std::min(start + cap, n);
        g.members.reserve(end - start);
        for (std::size_t k = start; k < end; ++k)
            g.members.push_back(ids[order[k]]);
        g.depth_lo = depths[order[start]];
        g.depth_hi = depths[order[end - 1]];
        groups.push_back(std::move(g));
    }
    return groups;
}

/** Pre-projected splats shared between Cmode binning and Stage II. */
struct GaussianWiseRenderer::SplatCache
{
    static constexpr std::uint32_t kNone = 0xffffffffu;

    std::vector<Splat> splats;              ///< compacted cull survivors
    std::vector<std::uint32_t> index_of_id; ///< id -> splats index / kNone
};

/**
 * Reusable per-view working set: the transmittance plane, T-mask,
 * per-block live counts and the group splat list are assigned (not
 * reallocated) per sub-view, so Cmode frames touching dozens of
 * sub-views stop churning the allocator.  One instance lives per
 * worker thread.
 */
struct GaussianWiseRenderer::ViewScratch
{
    struct GroupSplat
    {
        Splat splat;
        std::uint32_t id;   ///< Gaussian id (sort tie-break)
        std::uint32_t pos;  ///< candidate position (flag slot)
    };

    std::vector<float> transmittance;
    std::vector<std::uint8_t> t_mask;
    std::vector<int> block_live;
    std::vector<std::uint32_t> positions;
    std::vector<float> depths;
    std::vector<GroupSplat> gsplats;
};

GaussianWiseRenderer::ViewScratch &
GaussianWiseRenderer::localScratch()
{
    thread_local ViewScratch scratch;
    return scratch;
}

void
GaussianWiseRenderer::renderView(const GaussianCloud &cloud,
                                 const Camera &cam,
                                 const std::vector<std::uint32_t> &candidates,
                                 const std::vector<float> &depths,
                                 const SplatCache *cache, int view_x0,
                                 int view_y0, int view_w, int view_h,
                                 Image &image, GaussianWiseStats &stats,
                                 std::vector<std::uint8_t> &flags,
                                 ViewScratch &scratch) const
{
    // ---- Stage I: grouping over candidate positions (the caller has
    // already applied the depth-pivot cull). ----
    scratch.positions.resize(candidates.size());
    std::iota(scratch.positions.begin(), scratch.positions.end(), 0u);
    std::vector<DepthGroup> groups =
        groupByDepth(depths, scratch.positions, config_.group_capacity);
    stats.groups += static_cast<std::int64_t>(groups.size());

    // ---- Per-(sub)view pixel and block state. ----
    BlockTraversal traversal(config_.block_size, view_w, view_h);
    const int bx_n = traversal.blocksX();
    const int by_n = traversal.blocksY();
    scratch.transmittance.assign(
        static_cast<std::size_t>(view_w) * view_h, 1.0f);
    scratch.t_mask.assign(static_cast<std::size_t>(bx_n) * by_n, 0);
    scratch.block_live.assign(scratch.t_mask.size(), 0);
    for (int by = 0; by < by_n; ++by) {
        for (int bx = 0; bx < bx_n; ++bx) {
            int w = std::min(config_.block_size,
                             view_w - bx * config_.block_size);
            int h = std::min(config_.block_size,
                             view_h - by * config_.block_size);
            scratch.block_live[static_cast<std::size_t>(by) * bx_n + bx] =
                w * h;
        }
    }
    float *transmittance = scratch.transmittance.data();
    int *block_live = scratch.block_live.data();
    std::uint8_t *t_mask = scratch.t_mask.data();
    // Hoisted out of the per-pixel visitor: float image stores could
    // alias float members under type-based aliasing, forcing reloads.
    const float termination_t = config_.termination_t;
    const int block_size = config_.block_size;
    const bool fast_alpha = config_.fast_alpha;
    std::int64_t live = static_cast<std::int64_t>(view_w) * view_h;

    // ---- Stages II-IV, group by group, near to far. ----
    auto &gsplats = scratch.gsplats;
    bool terminated = false;
    for (const DepthGroup &group : groups) {
        GroupActivity activity;
        activity.members = static_cast<std::int32_t>(group.members.size());
        if (terminated && config_.conditional) {
            // Cross-stage conditional processing: this group (and all
            // deeper ones) is never loaded from DRAM, projected or
            // shaded.
            stats.termination_skip_invocations +=
                static_cast<std::int64_t>(group.members.size());
            for (std::uint32_t pos : group.members)
                flags[pos] |= kFlagTermSkip;
            activity.skipped = true;
            stats.group_trace.push_back(activity);
            continue;
        }
        ++stats.groups_processed;

        // Stage II: position/shape projection and omega-sigma culling.
        // With a splat cache (Cmode) the shared projection pass already
        // did the arithmetic; the invocation is a lookup but still
        // counts as Stage II work (hardware re-projects per sub-view).
        gsplats.clear();
        for (std::uint32_t pos : group.members) {
            const std::uint32_t id = candidates[pos];
            ++stats.stage2_invocations;
            ++activity.projected;
            flags[pos] |= kFlagProjected;
            if (cache != nullptr) {
                const Splat &s =
                    cache->splats[cache->index_of_id[id]];
                ++stats.survivor_invocations;
                ++activity.survivors;
                flags[pos] |= kFlagSurvived;
                gsplats.push_back({s, id, pos});
            } else {
                auto s = projectGaussian(cloud[id], id, cam, nullptr);
                if (!s)
                    continue;
                ++stats.survivor_invocations;
                ++activity.survivors;
                flags[pos] |= kFlagSurvived;
                gsplats.push_back({*s, id, pos});
            }
        }

        // Stage III: intra-group front-to-back sort (bitonic network
        // in hardware) and SH color for survivors only.
        std::sort(gsplats.begin(), gsplats.end(),
                  [](const ViewScratch::GroupSplat &a,
                     const ViewScratch::GroupSplat &b) {
                      if (a.splat.depth != b.splat.depth)
                          return a.splat.depth < b.splat.depth;
                      return a.id < b.id;
                  });

        // Stage IV: alpha-based boundary identification + blending.
        for (std::size_t k = 0; k < gsplats.size(); ++k) {
            ViewScratch::GroupSplat &gs = gsplats[k];
            if (config_.conditional && live == 0) {
                // Frame termination mid-group: the remaining sorted
                // survivors never load SH or enter the Alpha Unit.
                terminated = true;
                std::int32_t tail =
                    static_cast<std::int32_t>(gsplats.size() - k);
                activity.terminated += tail;
                stats.termination_skip_invocations += tail;
                for (std::size_t j = k; j < gsplats.size(); ++j)
                    flags[gsplats[j].pos] |= kFlagTermSkip;
                break;
            }

            // Work in sub-view-local coordinates.
            Ellipse local = gs.splat.ellipse;
            local.center = local.center -
                           Vec2(static_cast<float>(view_x0),
                                static_cast<float>(view_y0));

            if (config_.conditional &&
                conditionalLoadSkips(traversal, scratch.t_mask, local,
                                     gs.splat.opacity,
                                     gs.splat.radius_omega,
                                     config_.block_size, bx_n, by_n)) {
                ++stats.sh_skip_invocations;
                ++activity.sh_skipped;
                flags[gs.pos] |= kFlagShSkip;
                continue;
            }

            ++stats.sh_eval_invocations;
            ++activity.sh_evals;
            flags[gs.pos] |= kFlagShEval;
            // The shared Cmode pass evaluated SH once per Gaussian;
            // a Gaussian spanning several sub-views reuses it instead
            // of re-deriving the identical color per invocation.
            const Vec3 color = cache != nullptr
                                   ? gs.splat.color
                                   : shColorFor(cloud[gs.id], cam);

            const float opacity = gs.splat.opacity;
            // Blends are tallied in a register-resident local and
            // flushed once per splat: the counters live behind
            // references, so per-pixel increments would be memory
            // read-modify-writes in the hottest loop.
            std::int64_t splat_blends = 0;
            auto blend_body = [&](int x, int y, float a, float &t) {
                ++splat_blends;
                image.at(view_x0 + x, view_y0 + y) += color * (a * t);
                t *= 1.0f - a;
                if (t < termination_t) {
                    --live;
                    std::size_t bi =
                        static_cast<std::size_t>(y / block_size) *
                            bx_n +
                        (x / block_size);
                    if (--block_live[bi] == 0)
                        t_mask[bi] = 1;
                }
            };
            BoundaryStats bs;
            if (fast_alpha) {
                // Fast-alpha: the traversal hands back a vectorized
                // polynomial alpha (simdExp) per passing pixel.
                bs = traversal.traverseWith<true>(
                    local, opacity, &scratch.t_mask,
                    [&](int x, int y, float a) {
                        float &t = transmittance[
                            static_cast<std::size_t>(y) * view_w + x];
                        if (t < termination_t)
                            return;
                        blend_body(x, y, a, t);
                    },
                    [](int, int) {});
            } else {
                bs = traversal.traverseWith(
                    local, opacity, &scratch.t_mask,
                    [&](int x, int y, float q) {
                        float &t = transmittance[
                            static_cast<std::size_t>(y) * view_w + x];
                        if (t < termination_t)
                            return;
                        // Lazy alpha: the exp is paid only for live
                        // pixels, with the traversal's exact
                        // expression.
                        float a = std::min(
                            0.99f, opacity * std::exp(-0.5f * q));
                        blend_body(x, y, a, t);
                    },
                    [](int, int) {});
            }
            stats.alpha_evals += bs.alpha_evals;
            stats.visited_blocks += bs.visited_blocks;
            stats.influence_pixels += bs.influence_pixels;
            stats.blend_ops += splat_blends;
            activity.visited_blocks += bs.visited_blocks;
            activity.active_blocks += bs.active_blocks;
            activity.alpha_evals += bs.alpha_evals;
            activity.blend_ops += splat_blends;
            if (splat_blends > 0) {
                flags[gs.pos] |= kFlagRendered;
                ++activity.rendered;
            }
        }
        if (live == 0)
            terminated = true;
        stats.group_trace.push_back(activity);
    }
}

void
GaussianWiseRenderer::renderViewReference(
    const GaussianCloud &cloud, const Camera &cam,
    const std::vector<std::uint32_t> &candidates,
    const std::vector<float> &depths, int view_x0, int view_y0,
    int view_w, int view_h, Image &image, GaussianWiseStats &stats,
    std::vector<std::uint8_t> &flags) const
{
    // ---- Stage I: grouping over candidate positions. ----
    std::vector<std::uint32_t> positions(candidates.size());
    std::iota(positions.begin(), positions.end(), 0u);
    std::vector<DepthGroup> groups =
        groupByDepth(depths, positions, config_.group_capacity);
    stats.groups += static_cast<std::int64_t>(groups.size());

    // ---- Per-(sub)view pixel and block state. ----
    BlockTraversal traversal(config_.block_size, view_w, view_h);
    const int bx_n = traversal.blocksX();
    const int by_n = traversal.blocksY();
    std::vector<float> transmittance(
        static_cast<std::size_t>(view_w) * view_h, 1.0f);
    std::vector<std::uint8_t> t_mask(
        static_cast<std::size_t>(bx_n) * by_n, 0);
    std::vector<int> block_live(t_mask.size(), 0);
    for (int by = 0; by < by_n; ++by) {
        for (int bx = 0; bx < bx_n; ++bx) {
            int w = std::min(config_.block_size,
                             view_w - bx * config_.block_size);
            int h = std::min(config_.block_size,
                             view_h - by * config_.block_size);
            block_live[static_cast<std::size_t>(by) * bx_n + bx] = w * h;
        }
    }
    std::int64_t live = static_cast<std::int64_t>(view_w) * view_h;

    // ---- Stages II-IV, group by group, near to far. ----
    struct GroupSplat
    {
        Splat splat;
        std::uint32_t id;
        std::uint32_t pos;
    };
    std::vector<GroupSplat> gsplats;

    bool terminated = false;
    for (const DepthGroup &group : groups) {
        GroupActivity activity;
        activity.members = static_cast<std::int32_t>(group.members.size());
        if (terminated && config_.conditional) {
            stats.termination_skip_invocations +=
                static_cast<std::int64_t>(group.members.size());
            for (std::uint32_t pos : group.members)
                flags[pos] |= kFlagTermSkip;
            activity.skipped = true;
            stats.group_trace.push_back(activity);
            continue;
        }
        ++stats.groups_processed;

        // Stage II: the scalar path re-projects every group member
        // (in Cmode: once per overlapping sub-view) — exactly the
        // duplicated arithmetic the fast path's shared projection
        // pass eliminates.
        gsplats.clear();
        for (std::uint32_t pos : group.members) {
            const std::uint32_t id = candidates[pos];
            ++stats.stage2_invocations;
            ++activity.projected;
            flags[pos] |= kFlagProjected;
            auto s = projectGaussian(cloud[id], id, cam, nullptr);
            if (!s)
                continue;
            ++stats.survivor_invocations;
            ++activity.survivors;
            flags[pos] |= kFlagSurvived;
            gsplats.push_back({*s, id, pos});
        }

        // Stage III: intra-group front-to-back sort and SH color.
        std::sort(gsplats.begin(), gsplats.end(),
                  [](const GroupSplat &a, const GroupSplat &b) {
                      if (a.splat.depth != b.splat.depth)
                          return a.splat.depth < b.splat.depth;
                      return a.id < b.id;
                  });

        // Stage IV: alpha-based boundary identification + blending.
        for (std::size_t k = 0; k < gsplats.size(); ++k) {
            GroupSplat &gs = gsplats[k];
            if (config_.conditional && live == 0) {
                terminated = true;
                std::int32_t tail =
                    static_cast<std::int32_t>(gsplats.size() - k);
                activity.terminated += tail;
                stats.termination_skip_invocations += tail;
                for (std::size_t j = k; j < gsplats.size(); ++j)
                    flags[gsplats[j].pos] |= kFlagTermSkip;
                break;
            }

            Ellipse local = gs.splat.ellipse;
            local.center = local.center -
                           Vec2(static_cast<float>(view_x0),
                                static_cast<float>(view_y0));

            // Per-Gaussian conditional loading, scalar transcription:
            // same floor-division block window and the same decisions
            // as the fast path's conditionalLoadSkips, expressed as
            // the direct loop over blockReachable.
            if (config_.conditional) {
                const int r = gs.splat.radius_omega;
                const int cxi =
                    static_cast<int>(std::floor(local.center.x));
                const int cyi =
                    static_cast<int>(std::floor(local.center.y));
                const int bs = config_.block_size;
                const int bx0 = std::max(0, floorDiv(cxi - r, bs));
                const int by0 = std::max(0, floorDiv(cyi - r, bs));
                const int bx1 =
                    std::min(bx_n - 1, floorDiv(cxi + r, bs));
                const int by1 =
                    std::min(by_n - 1, floorDiv(cyi + r, bs));
                bool all_masked = bx0 <= bx1 && by0 <= by1;
                for (int by = by0; by <= by1 && all_masked; ++by) {
                    for (int bx = bx0; bx <= bx1; ++bx) {
                        if (t_mask[static_cast<std::size_t>(by) * bx_n +
                                   bx])
                            continue;
                        // Unmasked corner blocks the elliptical
                        // footprint cannot reach don't block the
                        // skip: the traversal would never evaluate
                        // them.
                        if (!traversal.blockReachable(
                                local, gs.splat.opacity, bx, by))
                            continue;
                        all_masked = false;
                        break;
                    }
                }
                if (all_masked) {
                    ++stats.sh_skip_invocations;
                    ++activity.sh_skipped;
                    flags[gs.pos] |= kFlagShSkip;
                    continue;
                }
            }

            ++stats.sh_eval_invocations;
            ++activity.sh_evals;
            flags[gs.pos] |= kFlagShEval;
            gs.splat.color = shColorFor(cloud[gs.id], cam);

            bool contributed = false;
            BoundaryStats bs = traversal.traverse(
                local, gs.splat.opacity, &t_mask,
                [&](int x, int y, float a) {
                    float &t =
                        transmittance[static_cast<std::size_t>(y) *
                                          view_w + x];
                    if (t < config_.termination_t)
                        return;
                    ++stats.blend_ops;
                    ++activity.blend_ops;
                    contributed = true;
                    image.at(view_x0 + x, view_y0 + y) +=
                        gs.splat.color * (a * t);
                    t *= 1.0f - a;
                    if (t < config_.termination_t) {
                        --live;
                        std::size_t bi =
                            static_cast<std::size_t>(
                                y / config_.block_size) * bx_n +
                            (x / config_.block_size);
                        if (--block_live[bi] == 0)
                            t_mask[bi] = 1;
                    }
                });
            stats.alpha_evals += bs.alpha_evals;
            stats.visited_blocks += bs.visited_blocks;
            stats.influence_pixels += bs.influence_pixels;
            activity.visited_blocks += bs.visited_blocks;
            activity.active_blocks += bs.active_blocks;
            activity.alpha_evals += bs.alpha_evals;
            if (contributed) {
                flags[gs.pos] |= kFlagRendered;
                ++activity.rendered;
            }
        }
        if (live == 0)
            terminated = true;
        stats.group_trace.push_back(activity);
    }
}

Image
GaussianWiseRenderer::render(const GaussianCloud &cloud, const Camera &cam,
                             GaussianWiseStats &stats,
                             ThreadPool *pool) const
{
    stats.total = static_cast<std::int64_t>(cloud.size());
    Image image(cam.width(), cam.height());

    if (config_.subview_size <= 0 ||
        (config_.subview_size >= cam.width() &&
         config_.subview_size >= cam.height())) {
        // ---- Full view: Stage I depth pass (vectorized world-to-
        // view z, fanned out over the pool in deterministic chunks),
        // then one view.  Stages II-IV stream depth groups
        // sequentially by construction, so this pass is the only
        // full-view stage the pool can help.
        obs::StageTimer stage_timer;
        struct DepthChunk
        {
            std::int64_t depth_culled = 0;
            std::vector<std::uint32_t> candidates;
            std::vector<float> depths;
        };
        std::vector<DepthChunk> chunks;
        forEachChunk(
            pool, cloud.size(), 4096,
            [&](std::size_t c, std::size_t begin, std::size_t end) {
                DepthChunk &out = chunks[c];
                out.candidates.reserve(end - begin);
                out.depths.reserve(end - begin);
                // SIMD z pass (bit-identical per element to the
                // scalar worldToView), then the scalar pivot filter.
                std::vector<float> z(end - begin);
                viewDepthsZ(cloud, cam, begin, end, z.data());
                for (std::size_t i = begin; i < end; ++i) {
                    const std::uint32_t id =
                        static_cast<std::uint32_t>(i);
                    float d = z[i - begin];
                    if (d < config_.depth_pivot) {
                        ++out.depth_culled;
                        continue;
                    }
                    out.candidates.push_back(id);
                    out.depths.push_back(d);
                }
            },
            [&](std::size_t chunk_count) { chunks.resize(chunk_count); });

        std::vector<std::uint32_t> candidates;
        std::vector<float> depths;
        for (DepthChunk &c : chunks) {
            stats.depth_culled += c.depth_culled;
            candidates.insert(candidates.end(), c.candidates.begin(),
                              c.candidates.end());
            depths.insert(depths.end(), c.depths.begin(),
                          c.depths.end());
        }
        stage_timer.lap(obs::Stage::Preprocess,
                        &stats.stage.preprocess_ms);
        std::vector<std::uint8_t> flags(candidates.size(), 0);
        renderView(cloud, cam, candidates, depths, nullptr, 0, 0,
                   cam.width(), cam.height(), image, stats, flags,
                   localScratch());
        classifyFlags(flags, stats);
        stage_timer.lap(obs::Stage::Raster, &stats.stage.raster_ms);
        return image;
    }

    // ---- Compatibility Mode: one shared projection pass feeds the
    // 2D spatial binning and Stage II (the scalar path projects every
    // Gaussian once for binning plus once per overlapping sub-view).
    // The pass fans out over the pool in deterministic chunks. ----
    const int sub = config_.subview_size;
    const int sx = (cam.width() + sub - 1) / sub;
    const int sy = (cam.height() + sub - 1) / sub;
    const std::size_t num_subviews = static_cast<std::size_t>(sx) * sy;

    obs::StageTimer stage_timer;
    SplatCache cache;
    cache.index_of_id.assign(cloud.size(), SplatCache::kNone);
    std::vector<std::vector<std::uint32_t>> bins(num_subviews);

    struct BinChunk
    {
        std::int64_t depth_culled = 0;
        std::vector<Splat> splats;
        std::vector<std::vector<std::uint32_t>> bins;
    };
    std::vector<BinChunk> chunks;
    forEachChunk(
        pool, cloud.size(), 1024,
        [&](std::size_t c, std::size_t begin, std::size_t end) {
            BinChunk &out = chunks[c];
            out.bins.resize(num_subviews);
            // SIMD z pass (bit-identical per element to the scalar
            // worldToView), then the scalar pivot filter.
            std::vector<float> z(end - begin);
            viewDepthsZ(cloud, cam, begin, end, z.data());
            for (std::size_t i = begin; i < end; ++i) {
                const std::uint32_t id = static_cast<std::uint32_t>(i);
                float d = z[i - begin];
                if (d < config_.depth_pivot) {
                    ++out.depth_culled;
                    continue;
                }
                auto s = projectGaussian(cloud[id], id, cam, nullptr);
                if (!s)
                    continue;
                PixelRect box =
                    aabbFromRadius(s->ellipse.center, s->radius_omega)
                        .clipped(cam.width(), cam.height());
                if (box.empty())
                    continue;
                // SH evaluated once here, shared by every sub-view
                // the Gaussian is binned into (identical value to a
                // per-invocation shColorFor call).
                s->color = shColorFor(cloud[id], cam);
                out.splats.push_back(*s);
                for (int by = box.y0 / sub; by <= box.y1 / sub; ++by)
                    for (int bx = box.x0 / sub; bx <= box.x1 / sub; ++bx)
                        out.bins[static_cast<std::size_t>(by) * sx + bx]
                            .push_back(id);
            }
        },
        [&](std::size_t chunk_count) { chunks.resize(chunk_count); });
    stage_timer.lap(obs::Stage::Preprocess, &stats.stage.preprocess_ms);

    // Chunk-ordered merge: bins stay sorted by id, exactly as a
    // serial pass would build them.
    for (BinChunk &c : chunks) {
        stats.depth_culled += c.depth_culled;
        for (Splat &s : c.splats) {
            cache.index_of_id[s.id] =
                static_cast<std::uint32_t>(cache.splats.size());
            cache.splats.push_back(s);
        }
        for (std::size_t b = 0; b < num_subviews; ++b) {
            if (c.bins[b].empty())
                continue;
            bins[b].insert(bins[b].end(), c.bins[b].begin(),
                           c.bins[b].end());
        }
    }
    chunks.clear();
    chunks.shrink_to_fit();
    for (const auto &bin : bins)
        stats.bin_records += static_cast<std::int64_t>(bin.size());
    stage_timer.lap(obs::Stage::Binning, &stats.stage.binning_ms);

    // ---- Render the sub-views: disjoint pixel regions, so they run
    // concurrently; stats merge in row-major sub-view order, making
    // the image, counters and group trace bit-identical to a serial
    // pass regardless of scheduling. ----
    struct SubViewOut
    {
        GaussianWiseStats stats;
        std::vector<std::uint8_t> flags;
    };
    std::vector<SubViewOut> outs(num_subviews);

    auto render_subview = [&](std::size_t v) {
        const auto &bin = bins[v];
        ViewScratch &scratch = localScratch();
        scratch.depths.resize(bin.size());
        for (std::size_t i = 0; i < bin.size(); ++i)
            scratch.depths[i] =
                cache.splats[cache.index_of_id[bin[i]]].depth;
        outs[v].flags.assign(bin.size(), 0);
        const int x0 = static_cast<int>(v) % sx * sub;
        const int y0 = static_cast<int>(v) / sx * sub;
        const int w = std::min(sub, cam.width() - x0);
        const int h = std::min(sub, cam.height() - y0);
        renderView(cloud, cam, bin, scratch.depths, &cache, x0, y0, w,
                   h, image, outs[v].stats, outs[v].flags, scratch);
    };

    // One single-element range per non-empty sub-view: the pool's
    // FIFO queue load-balances crowded center sub-views against empty
    // borders, and runChunks provides the drain-before-unwind safety.
    std::vector<std::pair<std::size_t, std::size_t>> subview_jobs;
    subview_jobs.reserve(num_subviews);
    for (std::size_t v = 0; v < num_subviews; ++v)
        if (!bins[v].empty())
            subview_jobs.emplace_back(v, v + 1);
    runChunks(pool, subview_jobs,
              [&](std::size_t, std::size_t v, std::size_t) {
                  render_subview(v);
              });

    // Deterministic merge + unique-population classification.
    std::vector<std::uint8_t> flags_by_id(cloud.size(), 0);
    for (std::size_t v = 0; v < num_subviews; ++v) {
        if (bins[v].empty())
            continue;
        mergeWork(stats, std::move(outs[v].stats));
        for (std::size_t i = 0; i < bins[v].size(); ++i)
            flags_by_id[bins[v][i]] |= outs[v].flags[i];
    }
    classifyFlags(flags_by_id, stats);
    stage_timer.lap(obs::Stage::Raster, &stats.stage.raster_ms);
    return image;
}

Image
GaussianWiseRenderer::renderReference(const GaussianCloud &cloud,
                                      const Camera &cam,
                                      GaussianWiseStats &stats) const
{
    stats.total = static_cast<std::int64_t>(cloud.size());
    Image image(cam.width(), cam.height());

    if (config_.subview_size <= 0 ||
        (config_.subview_size >= cam.width() &&
         config_.subview_size >= cam.height())) {
        obs::StageTimer stage_timer;
        std::vector<std::uint32_t> candidates;
        std::vector<float> depths;
        for (std::uint32_t id = 0; id < cloud.size(); ++id) {
            float d = cam.worldToView(cloud[id].mean).z;
            if (d < config_.depth_pivot) {
                ++stats.depth_culled;
                continue;
            }
            candidates.push_back(id);
            depths.push_back(d);
        }
        stage_timer.lap(obs::Stage::Preprocess,
                        &stats.stage.preprocess_ms);
        std::vector<std::uint8_t> flags(candidates.size(), 0);
        renderViewReference(cloud, cam, candidates, depths, 0, 0,
                            cam.width(), cam.height(), image, stats,
                            flags);
        classifyFlags(flags, stats);
        stage_timer.lap(obs::Stage::Raster, &stats.stage.raster_ms);
        return image;
    }

    // ---- Compatibility Mode: scalar 2D spatial binning. ----
    obs::StageTimer stage_timer;
    const int sub = config_.subview_size;
    const int sx = (cam.width() + sub - 1) / sub;
    const int sy = (cam.height() + sub - 1) / sub;
    std::vector<std::vector<std::uint32_t>> bins(
        static_cast<std::size_t>(sx) * sy);

    for (std::uint32_t id = 0; id < cloud.size(); ++id) {
        float d = cam.worldToView(cloud[id].mean).z;
        if (d < config_.depth_pivot) {
            ++stats.depth_culled;
            continue;
        }
        auto s = projectGaussian(cloud[id], id, cam, nullptr);
        if (!s)
            continue;
        PixelRect box = aabbFromRadius(s->ellipse.center, s->radius_omega)
                            .clipped(cam.width(), cam.height());
        if (box.empty())
            continue;
        for (int by = box.y0 / sub; by <= box.y1 / sub; ++by)
            for (int bx = box.x0 / sub; bx <= box.x1 / sub; ++bx) {
                bins[static_cast<std::size_t>(by) * sx + bx].push_back(id);
                ++stats.bin_records;
            }
    }
    // Projection and binning are one interleaved loop here; attribute
    // it to preprocess (the breakdown of interest is the fast path's).
    stage_timer.lap(obs::Stage::Preprocess, &stats.stage.preprocess_ms);

    std::vector<std::uint8_t> flags_by_id(cloud.size(), 0);
    for (int by = 0; by < sy; ++by) {
        for (int bx = 0; bx < sx; ++bx) {
            const auto &bin =
                bins[static_cast<std::size_t>(by) * sx + bx];
            if (bin.empty())
                continue;
            int x0 = bx * sub;
            int y0 = by * sub;
            int w = std::min(sub, cam.width() - x0);
            int h = std::min(sub, cam.height() - y0);
            std::vector<float> depths(bin.size());
            for (std::size_t i = 0; i < bin.size(); ++i)
                depths[i] = cam.worldToView(cloud[bin[i]].mean).z;
            std::vector<std::uint8_t> flags(bin.size(), 0);
            renderViewReference(cloud, cam, bin, depths, x0, y0, w, h,
                                image, stats, flags);
            for (std::size_t i = 0; i < bin.size(); ++i)
                flags_by_id[bin[i]] |= flags[i];
        }
    }
    classifyFlags(flags_by_id, stats);
    stage_timer.lap(obs::Stage::Raster, &stats.stage.raster_ms);
    return image;
}

} // namespace gcc3d
