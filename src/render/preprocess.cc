#include "render/preprocess.h"

#include "gsmath/simd.h"
#include "runtime/parallel_for.h"

namespace gcc3d {

void
viewDepthsZ(const GaussianCloud &cloud, const Camera &cam,
            std::size_t begin, std::size_t end, float *out)
{
    const Mat4 &m = cam.viewMatrix();
    // z row of transformPoint: ((m20*x + m21*y) + m22*z) + m23*1 —
    // the SIMD evaluation preserves this association per lane, and
    // m23*1.0f is bitwise m23, so each lane equals the scalar call.
    const simd::FloatV m20(m(2, 0)), m21(m(2, 1)), m22(m(2, 2));
    const simd::FloatV m23(m(2, 3));

    std::size_t i = begin;
    float mx[simd::kWidth], my[simd::kWidth], mz[simd::kWidth];
    for (; i + simd::kWidth <= end; i += simd::kWidth) {
        for (int l = 0; l < simd::kWidth; ++l) {
            const Vec3 &p = cloud[i + l].mean;
            mx[l] = p.x;
            my[l] = p.y;
            mz[l] = p.z;
        }
        simd::FloatV z = m20 * simd::FloatV::load(mx) +
                         m21 * simd::FloatV::load(my) +
                         m22 * simd::FloatV::load(mz) + m23;
        z.store(out + (i - begin));
    }
    for (; i < end; ++i)
        out[i - begin] = cam.worldToView(cloud[i].mean).z;
}

std::optional<Splat>
projectGaussian(const Gaussian &g, std::uint32_t id, const Camera &cam,
                PreprocessStats *stats)
{
    Vec3 v = cam.worldToView(g.mean);
    if (v.z < cam.nearPlane()) {
        if (stats != nullptr)
            ++stats->near_culled;
        return std::nullopt;
    }
    if (!cam.inFrustum(v)) {
        if (stats != nullptr)
            ++stats->frustum_culled;
        return std::nullopt;
    }
    if (stats != nullptr)
        ++stats->in_frustum;

    // Sigma' = J W Sigma W^T J^T (Eq. 1).
    Mat3 w = cam.viewMatrix().topLeft3x3();
    Mat3 jac = cam.projectionJacobian(v);
    Mat3 jw = jac * w;
    Mat3 cov3 = g.covariance3d();
    Mat3 cov2_full = jw * cov3 * jw.transposed();
    Mat2 cov2 = cov2_full.topLeft2x2();
    // Reference rasterizer's low-pass dilation: every splat is at
    // least ~one pixel wide, which also keeps the conic well-posed.
    cov2(0, 0) += 0.3f;
    cov2(1, 1) += 0.3f;

    Splat s;
    s.id = id;
    s.depth = v.z;
    s.ellipse = Ellipse::fromCovariance(cam.viewToPixel(v), cov2);
    s.opacity = g.opacity;
    s.radius_omega = radiusOmegaSigma(s.ellipse.eig, g.opacity);
    s.radius_3sigma = radius3Sigma(s.ellipse.eig);

    // Screen cull: a splat whose omega-sigma footprint cannot touch
    // the image contributes nothing.
    PixelRect box = aabbFromRadius(s.ellipse.center, s.radius_omega)
                        .clipped(cam.width(), cam.height());
    if (s.radius_omega == 0 || box.empty()) {
        if (stats != nullptr)
            ++stats->screen_culled;
        return std::nullopt;
    }

    if (stats != nullptr)
        ++stats->projected;
    return s;
}

Vec3
shColorFor(const Gaussian &g, const Camera &cam)
{
    return evalShColor(g.sh, g.mean - cam.position());
}

namespace {

/** Serial preprocess of the index range [begin, end). */
void
preprocessRange(const GaussianCloud &cloud, const Camera &cam,
                std::size_t begin, std::size_t end,
                std::vector<Splat> &splats, PreprocessStats &stats)
{
    for (std::size_t i = begin; i < end; ++i) {
        auto s = projectGaussian(cloud[i], static_cast<std::uint32_t>(i),
                                 cam, &stats);
        if (!s)
            continue;
        s->color = shColorFor(cloud[i], cam);
        splats.push_back(*s);
    }
}

/** Below this population, fan-out overhead dwarfs the projection work. */
constexpr std::size_t kMinParallelGaussians = 4096;

} // namespace

std::vector<Splat>
preprocessAll(const GaussianCloud &cloud, const Camera &cam,
              PreprocessStats &stats, ThreadPool *pool)
{
    stats.total = cloud.size();
    if (pool == nullptr || pool->workerCount() < 2 ||
        cloud.size() < kMinParallelGaussians) {
        std::vector<Splat> splats;
        splats.reserve(cloud.size() / 2);
        preprocessRange(cloud, cam, 0, cloud.size(), splats, stats);
        return splats;
    }

    // Chunked fan-out with deterministic chunk-order merge: the
    // concatenated splat list and the summed counters are identical
    // to the serial pass regardless of worker scheduling.
    std::vector<std::vector<Splat>> chunk_splats;
    std::vector<PreprocessStats> chunk_stats;
    forEachChunk(pool, cloud.size(), kMinParallelGaussians / 4,
                 [&](std::size_t c, std::size_t begin, std::size_t end) {
                     chunk_splats[c].reserve((end - begin) / 2);
                     preprocessRange(cloud, cam, begin, end,
                                     chunk_splats[c], chunk_stats[c]);
                 },
                 [&](std::size_t chunk_count) {
                     chunk_splats.resize(chunk_count);
                     chunk_stats.resize(chunk_count);
                 });

    std::size_t produced = 0;
    for (const auto &cs : chunk_splats)
        produced += cs.size();
    std::vector<Splat> splats;
    splats.reserve(produced);
    for (std::size_t c = 0; c < chunk_splats.size(); ++c) {
        splats.insert(splats.end(), chunk_splats[c].begin(),
                      chunk_splats[c].end());
        stats.merge(chunk_stats[c]);
    }
    return splats;
}

} // namespace gcc3d
