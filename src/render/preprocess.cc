#include "render/preprocess.h"

namespace gcc3d {

std::optional<Splat>
projectGaussian(const Gaussian &g, std::uint32_t id, const Camera &cam,
                PreprocessStats *stats)
{
    Vec3 v = cam.worldToView(g.mean);
    if (v.z < cam.nearPlane()) {
        if (stats != nullptr)
            ++stats->near_culled;
        return std::nullopt;
    }
    if (!cam.inFrustum(v)) {
        if (stats != nullptr)
            ++stats->near_culled;
        return std::nullopt;
    }
    if (stats != nullptr)
        ++stats->in_frustum;

    // Sigma' = J W Sigma W^T J^T (Eq. 1).
    Mat3 w = cam.viewMatrix().topLeft3x3();
    Mat3 jac = cam.projectionJacobian(v);
    Mat3 jw = jac * w;
    Mat3 cov3 = g.covariance3d();
    Mat3 cov2_full = jw * cov3 * jw.transposed();
    Mat2 cov2 = cov2_full.topLeft2x2();
    // Reference rasterizer's low-pass dilation: every splat is at
    // least ~one pixel wide, which also keeps the conic well-posed.
    cov2(0, 0) += 0.3f;
    cov2(1, 1) += 0.3f;

    Splat s;
    s.id = id;
    s.depth = v.z;
    s.ellipse = Ellipse::fromCovariance(cam.viewToPixel(v), cov2);
    s.opacity = g.opacity;
    s.radius_omega = radiusOmegaSigma(s.ellipse.eig, g.opacity);
    s.radius_3sigma = radius3Sigma(s.ellipse.eig);

    // Screen cull: a splat whose omega-sigma footprint cannot touch
    // the image contributes nothing.
    PixelRect box = aabbFromRadius(s.ellipse.center, s.radius_omega)
                        .clipped(cam.width(), cam.height());
    if (s.radius_omega == 0 || box.empty()) {
        if (stats != nullptr)
            ++stats->screen_culled;
        return std::nullopt;
    }

    if (stats != nullptr)
        ++stats->projected;
    return s;
}

Vec3
shColorFor(const Gaussian &g, const Camera &cam)
{
    return evalShColor(g.sh, g.mean - cam.position());
}

std::vector<Splat>
preprocessAll(const GaussianCloud &cloud, const Camera &cam,
              PreprocessStats &stats)
{
    std::vector<Splat> splats;
    splats.reserve(cloud.size() / 2);
    stats.total = cloud.size();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        auto s = projectGaussian(cloud[i], static_cast<std::uint32_t>(i),
                                 cam, &stats);
        if (!s)
            continue;
        s->color = shColorFor(cloud[i], cam);
        splats.push_back(*s);
    }
    return splats;
}

} // namespace gcc3d
