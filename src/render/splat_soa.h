/**
 * @file
 * Structure-of-arrays splat store and shared tile-coverage helpers
 * for the standard (tile-wise) dataflow.
 *
 * The preprocess stage produces an array of ~100-byte Splat structs.
 * The render hot loops only need a few fields each, in three distinct
 * phases with different access patterns:
 *
 *  - binning reads tile ranges (and OBB parameters in Obb3Sigma mode),
 *  - sorting reads a 4-byte monotone depth key,
 *  - blending reads center + conic + opacity + color together, per
 *    pixel, thousands of times per splat.
 *
 * SplatSoA packs each phase's fields contiguously so the inner loops
 * stream cache lines instead of striding through Splat structs; the
 * conic coefficients are hoisted out of Ellipse::alphaAt into four
 * flat floats per splat.  All values are bit-copies of what the
 * scalar path computes, so consuming them reproduces the reference
 * renderer's images and statistics exactly.
 *
 * The tile-coverage helpers (tileRangeFor / obbOverlapsTile) are the
 * single source of truth for which tiles a splat binds to; the
 * renderer's binning passes and TileRenderer::tilesPerSplat share
 * them.
 */

#ifndef GCC3D_RENDER_SPLAT_SOA_H
#define GCC3D_RENDER_SPLAT_SOA_H

#include <cstdint>
#include <vector>

#include "gsmath/sort_keys.h"
#include "render/preprocess.h"

namespace gcc3d {

/** Bounding method used for tile assignment (Table 1 / Fig. 4). */
enum class BoundingMode
{
    Aabb3Sigma,   ///< axis-aligned box of the 3-sigma circle (reference)
    Obb3Sigma,    ///< oriented box at 3 sigma (GSCore)
    OmegaSigma,   ///< axis-aligned box at the opacity-aware radius (Eq. 8)
    Conservative, ///< 1.25 * max(3-sigma, omega-sigma): ground-truth mode
};

/** Tile range [bx0,bx1] x [by0,by1] a splat maps to, or empty. */
struct TileRange
{
    int bx0 = 0, by0 = 0, bx1 = -1, by1 = -1;
    bool empty() const { return bx1 < bx0 || by1 < by0; }
    int count() const
    { return empty() ? 0 : (bx1 - bx0 + 1) * (by1 - by0 + 1); }
};

/** Pixel-space bound of @p s under @p mode (before clipping). */
PixelRect splatBounds(const Splat &s, BoundingMode mode);

/** Tile range the clipped bound of @p s covers; may be empty. */
TileRange tileRangeFor(const Splat &s, BoundingMode mode, int tile,
                       int width, int height);

/**
 * Per-splat parameters of the oriented 3-sigma box, hoisted so the
 * per-tile overlap test runs without re-deriving cos/sin per tile.
 */
struct ObbParams
{
    float cx = 0.0f, cy = 0.0f;  ///< splat center
    float ca = 0.0f, sa = 0.0f;  ///< cos/sin of the major-axis angle
    float ha = 0.0f, hb = 0.0f;  ///< half side lengths at 3 sigma
};

/** Oriented-box parameters of @p s (Obb3Sigma refinement). */
ObbParams obbParamsFor(const Splat &s);

/**
 * Exact-ish OBB vs tile overlap test (separating axes of the oriented
 * box): used in Obb3Sigma mode to drop corner tiles the axis-aligned
 * sweep would include.
 */
bool obbOverlapsTile(const ObbParams &o, float tx0, float ty0, float tx1,
                     float ty1);

/**
 * Hot-path splat data in structure-of-arrays form.  Built once per
 * frame from the preprocessed splat list.
 */
struct SplatSoA
{
    /** Blend-phase record: everything the per-pixel loop reads. */
    struct Blend
    {
        float cx, cy;                ///< projected center
        float c00, c01, c10, c11;    ///< conic coefficients
        float opacity;               ///< omega
        float r, g, b;               ///< SH-evaluated color
        /**
         * Quadratic-form threshold above which alpha is provably
         * below the configured cutoff (the exact crossing plus a
         * safety margin), letting the blend loop skip the exp() for
         * dead-tail pixels without changing any pass/fail decision.
         * +inf when the cutoff is non-positive.
         */
        float q_skip;
        // Cutoff-safe iteration rect (clipped): outside it alpha is
        // provably below the configured cutoff, so pixels there can
        // be skipped without changing the image or blend stats.
        std::int32_t it_x0, it_y0, it_x1, it_y1;
        // Subtile bound rect (max of the 3-sigma and omega-sigma
        // radii, clipped): drives the VRU array-pass accounting.
        std::int32_t sb_x0, sb_y0, sb_x1, sb_y1;
    };

    std::size_t size() const { return blend.size(); }

    std::vector<Blend> blend;            ///< blend-phase records
    std::vector<std::uint32_t> depth_key; ///< monotone float->uint keys
    std::vector<TileRange> range;        ///< binning tile ranges
    std::vector<ObbParams> obb;          ///< filled in Obb3Sigma mode
    bool obb_refine = false;             ///< Obb3Sigma per-tile test on

    /**
     * Build the SoA for @p splats under a renderer configuration.
     * @p alpha_cutoff bounds the iteration rects; a non-positive
     * cutoff disables the bound (rects cover the whole image).
     */
    static SplatSoA build(const std::vector<Splat> &splats,
                          BoundingMode mode, int tile_size,
                          float alpha_cutoff, int width, int height);
};

} // namespace gcc3d

#endif // GCC3D_RENDER_SPLAT_SOA_H
