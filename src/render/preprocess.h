/**
 * @file
 * Shared 3DGS preprocessing: projection of 3D Gaussians to 2D splats.
 *
 * Both pipelines (standard tile-wise and GCC Gaussian-wise) share the
 * same mathematical preprocessing (Eq. 1): view transform, near-plane
 * cull, EWA covariance projection via the Jacobian, and (optionally)
 * SH color evaluation.  They differ in *when* these steps run and for
 * *which* Gaussians — that scheduling lives in the renderers and the
 * hardware simulators, not here.
 */

#ifndef GCC3D_RENDER_PREPROCESS_H
#define GCC3D_RENDER_PREPROCESS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "gsmath/ellipse.h"
#include "scene/camera.h"
#include "scene/gaussian_cloud.h"

namespace gcc3d {

class ThreadPool;

/** A Gaussian projected into screen space (a 2D splat). */
struct Splat
{
    std::uint32_t id = 0;   ///< index into the source cloud
    float depth = 0.0f;     ///< view-space z'
    Ellipse ellipse;        ///< center mu', covariance, conic, eigen
    float opacity = 0.0f;   ///< omega
    Vec3 color;             ///< SH-evaluated RGB (when requested)
    int radius_omega = 0;   ///< omega-sigma law radius (Eq. 8)
    int radius_3sigma = 0;  ///< static 3-sigma radius (Eq. 6)
};

/** Counters produced while preprocessing a frame. */
struct PreprocessStats
{
    std::size_t total = 0;        ///< Gaussians in the model
    std::size_t near_culled = 0;  ///< culled by depth < near plane
    std::size_t frustum_culled = 0; ///< in front of near plane, outside view
    std::size_t in_frustum = 0;   ///< survived frustum test
    std::size_t screen_culled = 0; ///< projected footprint off-screen
    std::size_t projected = 0;    ///< splats produced

    /**
     * Fold another stats record in (all counters but @c total, which
     * describes the whole model rather than a partition of it).  Used
     * to reduce per-chunk stats of a parallel preprocess.
     */
    void
    merge(const PreprocessStats &o)
    {
        near_culled += o.near_culled;
        frustum_culled += o.frustum_culled;
        in_frustum += o.in_frustum;
        screen_culled += o.screen_culled;
        projected += o.projected;
    }
};

/**
 * Project a single Gaussian for @p cam.
 *
 * Performs the near-plane cull, the frustum test, the EWA covariance
 * projection with the reference rasterizer's 0.3-pixel dilation, and
 * the screen-bounds cull using the omega-sigma radius.  Color is NOT
 * evaluated here (the pipelines schedule SH independently).
 *
 * @return the splat, or nullopt if the Gaussian was culled.
 */
std::optional<Splat> projectGaussian(const Gaussian &g, std::uint32_t id,
                                     const Camera &cam,
                                     PreprocessStats *stats = nullptr);

/** Evaluate the SH color of @p g as seen from @p cam (Eq. 2). */
Vec3 shColorFor(const Gaussian &g, const Camera &cam);

/**
 * Vectorized view-space depth pass: out[i - begin] =
 * cam.worldToView(cloud[i].mean).z for i in [begin, end), evaluated
 * kWidth Gaussians at a time through the gsmath SIMD layer.  Each
 * lane performs the identical multiply/add sequence of
 * Mat4::transformPoint's z row, so every element is bit-identical to
 * the scalar call — the Gaussian-wise renderer's depth-pivot cull
 * can consume it without disturbing its equivalence guarantees.
 */
void viewDepthsZ(const GaussianCloud &cloud, const Camera &cam,
                 std::size_t begin, std::size_t end, float *out);

/**
 * Standard-dataflow preprocessing: project every Gaussian in the
 * cloud and evaluate SH for every survivor (the "preprocess-then-
 * render" first stage).
 *
 * When @p pool is non-null the cloud is preprocessed in contiguous
 * chunks fanned out over the pool, then merged in chunk order; the
 * resulting splat list and stats are bit-identical to the serial run
 * (per-Gaussian work is independent, and counter sums are
 * order-free).  A null pool — the default — runs serially.
 */
std::vector<Splat> preprocessAll(const GaussianCloud &cloud,
                                 const Camera &cam,
                                 PreprocessStats &stats,
                                 ThreadPool *pool = nullptr);

} // namespace gcc3d

#endif // GCC3D_RENDER_PREPROCESS_H
