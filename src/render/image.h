/**
 * @file
 * Float RGB framebuffer with PPM export.
 */

#ifndef GCC3D_RENDER_IMAGE_H
#define GCC3D_RENDER_IMAGE_H

#include <cstddef>
#include <string>
#include <vector>

#include "gsmath/vec.h"

namespace gcc3d {

/** A dense RGB image with float channels in [0, 1]. */
class Image
{
  public:
    Image() = default;
    Image(int width, int height, const Vec3 &fill = Vec3(0, 0, 0));

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t pixelCount() const
    { return static_cast<std::size_t>(width_) * height_; }

    const Vec3 &
    at(int x, int y) const
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    Vec3 &
    at(int x, int y)
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    const std::vector<Vec3> &pixels() const { return pixels_; }
    std::vector<Vec3> &pixels() { return pixels_; }

    /** Fill every pixel with @p value. */
    void fill(const Vec3 &value);

    /** Write as binary PPM (P6), 8 bits per channel, clamped. */
    bool writePpm(const std::string &path) const;

    /** Mean over all pixels of the mean channel intensity. */
    float meanIntensity() const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<Vec3> pixels_;
};

} // namespace gcc3d

#endif // GCC3D_RENDER_IMAGE_H
