#include "render/tile_renderer.h"

#include <algorithm>
#include <cmath>

namespace gcc3d {

namespace {

/** Tile range [bx0,bx1] x [by0,by1] a splat maps to, or empty. */
struct TileRange
{
    int bx0 = 0, by0 = 0, bx1 = -1, by1 = -1;
    bool empty() const { return bx1 < bx0 || by1 < by0; }
    int count() const
    { return empty() ? 0 : (bx1 - bx0 + 1) * (by1 - by0 + 1); }
};

PixelRect
splatBounds(const Splat &s, BoundingMode mode)
{
    switch (mode) {
      case BoundingMode::Aabb3Sigma:
        return aabbFromRadius(s.ellipse.center, s.radius_3sigma);
      case BoundingMode::Obb3Sigma:
        // The OBB itself is oriented; its tile coverage is bounded by
        // the axis-aligned extent of the oriented box.
        return aabbFromCovariance(s.ellipse.center, s.ellipse.cov, 9.0f);
      case BoundingMode::OmegaSigma:
        return aabbFromRadius(s.ellipse.center, s.radius_omega);
      case BoundingMode::Conservative: {
        int r = std::max(s.radius_3sigma, s.radius_omega);
        return aabbFromRadius(s.ellipse.center, (r * 5 + 3) / 4);
      }
    }
    return {};
}

/**
 * Exact-ish OBB vs tile overlap test (separating axes of the oriented
 * box): used in Obb3Sigma mode to drop corner tiles the axis-aligned
 * sweep would include.
 */
bool
obbOverlapsTile(const Splat &s, float tx0, float ty0, float tx1, float ty1)
{
    float ca = std::cos(s.ellipse.eig.angle);
    float sa = std::sin(s.ellipse.eig.angle);
    float ha = 3.0f * std::sqrt(s.ellipse.eig.l1);
    float hb = 3.0f * std::sqrt(s.ellipse.eig.l2);

    // Tile corners relative to the splat center, projected onto the
    // box axes; the tile misses the box iff all corners fall beyond
    // one face (separating axis among the box axes).  The image-axis
    // separation is already handled by the AABB sweep.
    float min_u = 1e30f, max_u = -1e30f;
    float min_v = 1e30f, max_v = -1e30f;
    const float xs[2] = {tx0, tx1};
    const float ys[2] = {ty0, ty1};
    for (float x : xs) {
        for (float y : ys) {
            float dx = x - s.ellipse.center.x;
            float dy = y - s.ellipse.center.y;
            float u = dx * ca + dy * sa;
            float v = -dx * sa + dy * ca;
            min_u = std::min(min_u, u);
            max_u = std::max(max_u, u);
            min_v = std::min(min_v, v);
            max_v = std::max(max_v, v);
        }
    }
    return min_u <= ha && max_u >= -ha && min_v <= hb && max_v >= -hb;
}

TileRange
tileRangeFor(const Splat &s, BoundingMode mode, int tile, int width,
             int height)
{
    PixelRect box = splatBounds(s, mode).clipped(width, height);
    TileRange r;
    if (box.empty())
        return r;
    r.bx0 = box.x0 / tile;
    r.by0 = box.y0 / tile;
    r.bx1 = box.x1 / tile;
    r.by1 = box.y1 / tile;
    return r;
}

} // namespace

std::vector<int>
TileRenderer::tilesPerSplat(const std::vector<Splat> &splats,
                            const Camera &cam) const
{
    std::vector<int> counts;
    counts.reserve(splats.size());
    for (const Splat &s : splats) {
        TileRange r = tileRangeFor(s, config_.bounding, config_.tile_size,
                                   cam.width(), cam.height());
        if (config_.bounding == BoundingMode::Obb3Sigma && !r.empty()) {
            int n = 0;
            for (int by = r.by0; by <= r.by1; ++by) {
                for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                    float tx0 = static_cast<float>(bx * config_.tile_size);
                    float ty0 = static_cast<float>(by * config_.tile_size);
                    if (obbOverlapsTile(s, tx0, ty0,
                                        tx0 + config_.tile_size,
                                        ty0 + config_.tile_size))
                        ++n;
                }
            }
            counts.push_back(n);
        } else {
            counts.push_back(r.count());
        }
    }
    return counts;
}

Image
TileRenderer::render(const GaussianCloud &cloud, const Camera &cam,
                     StandardFlowStats &stats) const
{
    const int width = cam.width();
    const int height = cam.height();
    const int tile = config_.tile_size;
    const int tiles_x = (width + tile - 1) / tile;
    const int tiles_y = (height + tile - 1) / tile;

    // ---- Stage 1: preprocess every Gaussian (decoupled). ----
    std::vector<Splat> splats = preprocessAll(cloud, cam, stats.pre);

    // ---- Tile binning: build Gaussian-tile KV pairs. ----
    std::vector<std::vector<std::uint32_t>> tile_lists(
        static_cast<std::size_t>(tiles_x) * tiles_y);
    for (std::uint32_t si = 0; si < splats.size(); ++si) {
        const Splat &s = splats[si];
        TileRange r =
            tileRangeFor(s, config_.bounding, tile, width, height);
        for (int by = r.by0; by <= r.by1; ++by) {
            for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                if (config_.bounding == BoundingMode::Obb3Sigma) {
                    float tx0 = static_cast<float>(bx * tile);
                    float ty0 = static_cast<float>(by * tile);
                    if (!obbOverlapsTile(s, tx0, ty0, tx0 + tile,
                                         ty0 + tile))
                        continue;
                }
                tile_lists[static_cast<std::size_t>(by) * tiles_x + bx]
                    .push_back(si);
                ++stats.kv_pairs;
            }
        }
    }

    // ---- Stage 2: render tile by tile in scanline order. ----
    Image image(width, height);
    std::vector<float> tile_t(static_cast<std::size_t>(tile) * tile);
    std::vector<std::uint8_t> contributed(splats.size(), 0);
    std::vector<std::uint8_t> fetched(splats.size(), 0);

    for (int by = 0; by < tiles_y; ++by) {
        for (int bx = 0; bx < tiles_x; ++bx) {
            auto &list =
                tile_lists[static_cast<std::size_t>(by) * tiles_x + bx];
            if (list.empty())
                continue;

            // Per-tile depth sort (radix sort on the GPU, bitonic
            // network in GSCore; functionally a stable sort by depth).
            std::stable_sort(list.begin(), list.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                                 return splats[a].depth < splats[b].depth;
                             });
            stats.sorted_keys += static_cast<std::int64_t>(list.size());
            // 16-wide bitonic merge sort: chunks of 16 sort in one
            // pass; merging ceil(n/16) chunks takes log2 more passes.
            std::int64_t chunks =
                static_cast<std::int64_t>((list.size() + 15) / 16);
            std::int64_t passes = 1;
            while ((std::int64_t{1} << (passes - 1)) < chunks)
                ++passes;
            stats.sort_pass_keys +=
                static_cast<std::int64_t>(list.size()) * passes;

            int x0 = bx * tile;
            int y0 = by * tile;
            int x1 = std::min(x0 + tile, width);
            int y1 = std::min(y0 + tile, height);
            int live = (x1 - x0) * (y1 - y0);
            std::fill(tile_t.begin(), tile_t.end(), 1.0f);

            // Per-subtile live-pixel counts (8x8 granularity): the
            // VRU processes one subtile per array pass in lockstep.
            constexpr int kSub = 8;
            const int sub_n = (tile + kSub - 1) / kSub;
            int sub_live[16] = {};
            for (int y = y0; y < y1; ++y)
                for (int x = x0; x < x1; ++x)
                    ++sub_live[((y - y0) / kSub) * sub_n +
                               (x - x0) / kSub];

            for (std::uint32_t si : list) {
                if (live == 0)
                    break;  // whole tile terminated: skip the rest
                ++stats.tile_fetches;
                if (!fetched[si]) {
                    fetched[si] = 1;
                    ++stats.fetched_gaussians;
                }
                const Splat &s = splats[si];

                // Array passes: live subtiles the splat's bounds reach.
                PixelRect sb =
                    aabbFromRadius(s.ellipse.center,
                                   std::max(s.radius_3sigma,
                                            s.radius_omega))
                        .clipped(width, height);
                for (int sy = 0; sy < sub_n; ++sy) {
                    for (int sx = 0; sx < sub_n; ++sx) {
                        if (sub_live[sy * sub_n + sx] == 0)
                            continue;
                        int rx0 = x0 + sx * kSub;
                        int ry0 = y0 + sy * kSub;
                        if (sb.x1 < rx0 || sb.x0 > rx0 + kSub - 1 ||
                            sb.y1 < ry0 || sb.y0 > ry0 + kSub - 1)
                            continue;
                        ++stats.subtile_passes;
                    }
                }

                for (int y = y0; y < y1; ++y) {
                    for (int x = x0; x < x1; ++x) {
                        float &t =
                            tile_t[static_cast<std::size_t>(y - y0) *
                                       tile + (x - x0)];
                        if (t < config_.termination_t)
                            continue;
                        ++stats.alpha_evals;
                        ++stats.pixels_touched;
                        Vec2 p(static_cast<float>(x) + 0.5f,
                               static_cast<float>(y) + 0.5f);
                        float a = s.ellipse.alphaAt(p, s.opacity);
                        if (a < config_.alpha_cutoff)
                            continue;
                        ++stats.blend_ops;
                        if (!contributed[si]) {
                            contributed[si] = 1;
                            ++stats.rendered_gaussians;
                        }
                        image.at(x, y) += s.color * (a * t);
                        t *= 1.0f - a;
                        if (t < config_.termination_t) {
                            --live;
                            --sub_live[((y - y0) / kSub) * sub_n +
                                       (x - x0) / kSub];
                        }
                    }
                }
            }
        }
    }
    return image;
}

} // namespace gcc3d
