#include "render/tile_renderer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "gsmath/simd.h"
#include "gsmath/sort_keys.h"
#include "obs/metrics_registry.h"
#include "obs/perf_recorder.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace gcc3d {

namespace {

/**
 * Mirrors the deltas a temporal frame applies to its cache-local
 * TemporalCounters into the global metrics registry, whatever path
 * the frame exits through.  The per-cache counters stay the source
 * of truth for stats/equivalence; the registry copies are for fleet
 * dashboards and --metrics-out.
 */
class TemporalCounterMirror
{
  public:
    explicit TemporalCounterMirror(const TemporalCounters &c)
        : c_(c), before_(c)
    {
    }

    ~TemporalCounterMirror()
    {
        static obs::Counter &frames =
            obs::MetricsRegistry::global().counter("render.temporal.frames");
        static obs::Counter &exact = obs::MetricsRegistry::global().counter(
            "render.temporal.exact_frames");
        static obs::Counter &copied = obs::MetricsRegistry::global().counter(
            "render.temporal.copied_frames");
        static obs::Counter &warped = obs::MetricsRegistry::global().counter(
            "render.temporal.warped_frames");
        static obs::Counter &reused = obs::MetricsRegistry::global().counter(
            "render.temporal.tiles_reused");
        static obs::Counter &rastered =
            obs::MetricsRegistry::global().counter(
                "render.temporal.tiles_rastered");
        frames.add(c_.frames - before_.frames);
        exact.add(c_.exact_frames - before_.exact_frames);
        copied.add(c_.copied_frames - before_.copied_frames);
        warped.add(c_.warped_frames - before_.warped_frames);
        reused.add(c_.tiles_reused - before_.tiles_reused);
        rastered.add(c_.tiles_rastered - before_.tiles_rastered);
    }

    TemporalCounterMirror(const TemporalCounterMirror &) = delete;
    TemporalCounterMirror &operator=(const TemporalCounterMirror &) = delete;

  private:
    const TemporalCounters &c_;
    const TemporalCounters before_;
};

/**
 * Dispatch grain of the per-tile rasterization fan-out: a chunk must
 * cover at least this many pixels of tiles, or pool dispatch costs
 * more than the chunk's work and the frame runs inline on the caller
 * (the parallel_for grain heuristic; small frames previously fanned
 * out one-tile chunks whose submit/future overhead showed up as the
 * flat-to-negative thread scaling in BENCH_frame.json).
 */
constexpr std::size_t kMinPixelsPerRasterChunk = 4096;

/**
 * Bitonic-sorter pass accounting shared by both render paths: a
 * 16-wide bitonic merge sort sorts chunks of 16 in one pass and
 * merges ceil(n/16) chunks in log2 more passes.
 */
std::int64_t
bitonicPassKeys(std::size_t list_len)
{
    std::int64_t chunks = static_cast<std::int64_t>((list_len + 15) / 16);
    std::int64_t passes = 1;
    while ((std::int64_t{1} << (passes - 1)) < chunks)
        ++passes;
    return static_cast<std::int64_t>(list_len) * passes;
}

/** Sub-tile granularity of the VRU array-pass accounting. */
constexpr int kSub = 8;

/** Reusable per-worker buffers of the tile raster kernel. */
struct TileScratch
{
    std::vector<float> tile_t;   ///< per-pixel transmittance
    std::vector<int> sub_live;   ///< live-pixel counts per 8x8 subtile
    std::vector<int> row_live;   ///< live-pixel counts per tile row
};

/**
 * Rasterize one tile from its depth-sorted entry list — the shared
 * kernel of render() and renderTemporal(), so a dirty tile re-blended
 * by the temporal path is bit-identical to the cold render of the
 * same list.  The tile's pixels in @p image must be zero on entry
 * (cold frames start from a zeroed image; the temporal path clears a
 * dirty tile's block before calling).  Writes stay inside the tile's
 * pixel region, so disjoint tiles rasterize concurrently.
 *
 * When @p depth_out is non-null (with @p splat_depth supplying the
 * per-slot view depths), the kernel also records a per-pixel surface
 * depth for the reprojection warp: the depth of the splat that first
 * drags the pixel's transmittance below one half — the pixel's median
 * surface — falling back to the first contributor for pixels that
 * never get that opaque.  The tile's depth_out block must be zero on
 * entry, like the pixels.  Blending math and stats are untouched, so
 * bit-identity with the depth-less call is preserved.
 */
void
rasterOneTile(const TileRendererConfig &config, const SplatSoA &soa,
              const std::uint64_t *entries, std::size_t list_len,
              int bx, int by, int width, int height, Image &image,
              StandardFlowStats &st, std::uint64_t *contributed,
              std::uint64_t *fetched, TileScratch &scratch,
              const float *splat_depth = nullptr,
              float *depth_out = nullptr)
{
    const int tile = config.tile_size;
    const int sub_n = (tile + kSub - 1) / kSub;
    const bool fast_alpha = config.fast_alpha;

    int x0 = bx * tile;
    int y0 = by * tile;
    int x1 = std::min(x0 + tile, width);
    int y1 = std::min(y0 + tile, height);
    int live = (x1 - x0) * (y1 - y0);
    scratch.tile_t.assign(static_cast<std::size_t>(tile) * tile, 1.0f);
    std::vector<float> &tile_t = scratch.tile_t;

    // Per-subtile live-pixel counts (8x8 granularity): the VRU
    // processes one subtile per array pass in lockstep.  Per-row
    // counts let the blend loop skip rows whose every pixel already
    // terminated.
    scratch.sub_live.assign(static_cast<std::size_t>(sub_n) * sub_n, 0);
    scratch.row_live.assign(static_cast<std::size_t>(tile), 0);
    std::vector<int> &sub_live = scratch.sub_live;
    std::vector<int> &row_live = scratch.row_live;
    for (int y = y0; y < y1; ++y) {
        row_live[y - y0] = x1 - x0;
        for (int x = x0; x < x1; ++x)
            ++sub_live[((y - y0) / kSub) * sub_n + (x - x0) / kSub];
    }

    for (std::size_t e = 0; e < list_len; ++e) {
        if (live == 0)
            break;  // whole tile terminated: skip the rest
        const std::uint32_t si = packedValue(entries[e]);
        ++st.tile_fetches;
        fetched[si >> 6] |= std::uint64_t{1} << (si & 63);
        const SplatSoA::Blend &b = soa.blend[si];

        // Array passes: live subtiles the splat's bounds reach.
        for (int sy = 0; sy < sub_n; ++sy) {
            for (int sx = 0; sx < sub_n; ++sx) {
                if (sub_live[sy * sub_n + sx] == 0)
                    continue;
                int rx0 = x0 + sx * kSub;
                int ry0 = y0 + sy * kSub;
                if (b.sb_x1 < rx0 || b.sb_x0 > rx0 + kSub - 1 ||
                    b.sb_y1 < ry0 || b.sb_y0 > ry0 + kSub - 1)
                    continue;
                ++st.subtile_passes;
            }
        }

        // The reference path alpha-tests every live pixel of the
        // tile; pixels outside the cutoff-safe rect are provably
        // below the alpha cutoff, so only the rect is walked and the
        // skipped evaluations are accounted from the live count
        // (identical totals, less work).
        st.alpha_evals += live;
        st.pixels_touched += live;
        const int rx0 = std::max(x0, b.it_x0);
        const int rx1 = std::min(x1 - 1, b.it_x1);
        const int ry0 = std::max(y0, b.it_y0);
        const int ry1 = std::min(y1 - 1, b.it_y1);
        // Conic and thresholds broadcast once per splat; the row
        // loop below evaluates q for kWidth pixels per step with
        // each lane running the scalar op sequence exactly (same
        // dx/dy derivation, same multiply/add order), so the
        // pass/fail decisions — and therefore the image and stats —
        // are bit-identical to the scalar reference.
        const simd::FloatV c00v(b.c00), c01v(b.c01);
        const simd::FloatV c10v(b.c10), c11v(b.c11);
        const simd::FloatV cxv(b.cx);
        const simd::FloatV q_skip_v(b.q_skip);
        const simd::FloatV half_v(0.5f);
        // (An earlier revision solved a per-row quadratic interval
        // in double to trim dead row tails; with rows clipped to the
        // tile and evaluated kWidth lanes per step under the q_skip
        // mask, the sqrt-per-row solve cost more than the tails it
        // saved — the mask makes the same pass/fail decisions
        // bit-identically.)
        for (int y = ry0; y <= ry1; ++y) {
            if (row_live[y - y0] == 0)
                continue;  // every pixel in the row terminated
            const float py = static_cast<float>(y) + 0.5f;
            const int row_x0 = rx0;
            const int row_x1 = rx1;
            const float dy_row = py - b.cy;
            const simd::FloatV dyv(dy_row);
            float *trow =
                tile_t.data() + static_cast<std::size_t>(y - y0) * tile;
            for (int x = row_x0; x <= row_x1; x += simd::kWidth) {
                const int nlane =
                    std::min<int>(simd::kWidth, row_x1 - x + 1);
                simd::FloatV dx =
                    (simd::FloatV::iotaFrom(x) + half_v) - cxv;
                simd::FloatV q = dx * (c00v * dx + c01v * dyv) +
                                 dyv * (c10v * dx + c11v * dyv);
                // Mirrors the scalar `q > q_skip -> skip` comparison
                // exactly (incl. NaN ordering).
                unsigned bits = simd::MaskV::firstN(nlane).bits() &
                                ~(q > q_skip_v).bits();
                if (bits == 0)
                    continue;  // all lanes provably sub-cutoff
                float qlane[simd::kWidth];
                float alane[simd::kWidth];
                if (fast_alpha)
                    simd::min(simd::FloatV(0.99f),
                              simd::FloatV(b.opacity) *
                                  simd::simdExp(q * simd::FloatV(-0.5f)))
                        .store(alane);
                else
                    q.store(qlane);
                // Surviving lanes compact into the exact scalar
                // alpha/blend path, front-to-back in x order.
                do {
                    const int i = std::countr_zero(bits);
                    bits &= bits - 1;
                    const int px = x + i;
                    float &t = trow[px - x0];
                    if (t < config.termination_t)
                        continue;
                    float a;
                    if (fast_alpha) {
                        a = alane[i];
                    } else {
                        a = b.opacity * std::exp(-0.5f * qlane[i]);
                        if (a > 0.99f)
                            a = 0.99f;
                    }
                    if (a < config.alpha_cutoff)
                        continue;
                    ++st.blend_ops;
                    contributed[si >> 6] |= std::uint64_t{1} << (si & 63);
                    image.at(px, y) += Vec3(b.r, b.g, b.b) * (a * t);
                    const float t_prev = t;
                    t *= 1.0f - a;
                    if (depth_out != nullptr) {
                        float &dz =
                            depth_out[static_cast<std::size_t>(y) *
                                          width +
                                      px];
                        if (dz == 0.0f ||
                            (t_prev >= 0.5f && t < 0.5f))
                            dz = splat_depth[si];
                    }
                    if (t < config.termination_t) {
                        --live;
                        --row_live[y - y0];
                        --sub_live[((y - y0) / kSub) * sub_n +
                                   (px - x0) / kSub];
                    }
                } while (bits != 0);
            }
        }
    }
}

/**
 * Synthesize a frame at @p dst_cam by backward-warping the exact
 * frame rendered at @p src_cam (tier 3 of the temporal engine).
 *
 * Each destination pixel is lifted to view space at the exact frame's
 * per-pixel median-surface depth (captured by rasterOneTile), carried
 * to world space, re-projected into the exact camera and bilinearly
 * sampled.  Pixels nothing contributed to (depth sentinel 0) and
 * points that land behind the exact camera's near plane fall back to
 * a straight same-pixel copy — trajectory steps between exact frames
 * are small, so the copy is a close approximation there too.
 */
Image
warpFromExact(const Camera &src_cam, const Image &src,
              const std::vector<float> &depth, const Camera &dst_cam)
{
    const int width = dst_cam.width();
    const int height = dst_cam.height();
    Image out(width, height);
    const float fx = dst_cam.focalX();
    const float fy = dst_cam.focalY();
    const float hw = 0.5f * static_cast<float>(width);
    const float hh = 0.5f * static_cast<float>(height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            // The source depth at the same pixel coordinate stands in
            // for the (unknown) destination depth — the cameras are a
            // sub-degree step apart, where the depth field is close
            // to coordinate-invariant away from occlusion edges.
            const float d =
                depth[static_cast<std::size_t>(y) * width + x];
            if (d <= 0.0f) {
                out.at(x, y) = src.at(x, y);
                continue;
            }
            const Vec3 v((static_cast<float>(x) + 0.5f - hw) * d / fx,
                         (static_cast<float>(y) + 0.5f - hh) * d / fy,
                         d);
            const Vec3 pe = src_cam.worldToView(dst_cam.viewToWorld(v));
            if (pe.z <= src_cam.nearPlane()) {
                out.at(x, y) = src.at(x, y);
                continue;
            }
            const Vec2 pp = src_cam.viewToPixel(pe);
            // Pixel centers sit at i + 0.5, so the continuous sample
            // coordinate is the projected position minus half a pixel.
            const float sx = std::clamp(pp.x - 0.5f, 0.0f,
                                        static_cast<float>(width - 1));
            const float sy = std::clamp(pp.y - 0.5f, 0.0f,
                                        static_cast<float>(height - 1));
            const int ix = static_cast<int>(sx);
            const int iy = static_cast<int>(sy);
            const int jx = std::min(ix + 1, width - 1);
            const int jy = std::min(iy + 1, height - 1);
            const float ax = sx - static_cast<float>(ix);
            const float ay = sy - static_cast<float>(iy);
            out.at(x, y) =
                src.at(ix, iy) * ((1.0f - ax) * (1.0f - ay)) +
                src.at(jx, iy) * (ax * (1.0f - ay)) +
                src.at(ix, jy) * ((1.0f - ax) * ay) +
                src.at(jx, jy) * (ax * ay);
        }
    }
    return out;
}

} // namespace

std::vector<int>
TileRenderer::tilesPerSplat(const std::vector<Splat> &splats,
                            const Camera &cam) const
{
    std::vector<int> counts;
    counts.reserve(splats.size());
    for (const Splat &s : splats) {
        TileRange r = tileRangeFor(s, config_.bounding, config_.tile_size,
                                   cam.width(), cam.height());
        if (config_.bounding == BoundingMode::Obb3Sigma && !r.empty()) {
            ObbParams o = obbParamsFor(s);
            int n = 0;
            for (int by = r.by0; by <= r.by1; ++by) {
                for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                    float tx0 = static_cast<float>(bx * config_.tile_size);
                    float ty0 = static_cast<float>(by * config_.tile_size);
                    if (obbOverlapsTile(o, tx0, ty0,
                                        tx0 + config_.tile_size,
                                        ty0 + config_.tile_size))
                        ++n;
                }
            }
            counts.push_back(n);
        } else {
            counts.push_back(r.count());
        }
    }
    return counts;
}

Image
TileRenderer::render(const GaussianCloud &cloud, const Camera &cam,
                     StandardFlowStats &stats, ThreadPool *pool) const
{
    const int width = cam.width();
    const int height = cam.height();
    const int tile = config_.tile_size;
    const int tiles_x = (width + tile - 1) / tile;
    const int tiles_y = (height + tile - 1) / tile;
    const std::size_t num_tiles =
        static_cast<std::size_t>(tiles_x) * tiles_y;

    // ---- Stage 1: preprocess every Gaussian (decoupled). ----
    obs::StageTimer stage_timer;
    std::vector<Splat> splats = preprocessAll(cloud, cam, stats.pre, pool);
    SplatSoA soa = SplatSoA::build(splats, config_.bounding, tile,
                                   config_.alpha_cutoff, width, height);
    const std::size_t n = soa.size();
    stage_timer.lap(obs::Stage::Preprocess, &stats.stage.preprocess_ms);

    // ---- Tile binning: CSR built in two passes over a flat pair
    // list.  Pass 1 walks each splat's coverage exactly once (the
    // OBB refinement test is not repeated) and emits (tile, packed
    // key-value) pairs in splat order while counting per-tile
    // populations; pass 2 scatters the pairs into one contiguous
    // entries array at per-tile offsets.  The scatter preserves the
    // splat-order tie-break within every tile. ----
    std::vector<std::uint32_t> pair_tile;
    std::vector<std::uint64_t> pair_kv;
    std::vector<std::size_t> offsets(num_tiles + 1, 0);
    for (std::size_t si = 0; si < n; ++si) {
        const TileRange &r = soa.range[si];
        const std::uint64_t kv = packKeyValue(
            soa.depth_key[si], static_cast<std::uint32_t>(si));
        for (int by = r.by0; by <= r.by1; ++by) {
            for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                if (soa.obb_refine) {
                    float tx0 = static_cast<float>(bx * tile);
                    float ty0 = static_cast<float>(by * tile);
                    if (!obbOverlapsTile(soa.obb[si], tx0, ty0,
                                         tx0 + tile, ty0 + tile))
                        continue;
                }
                const std::uint32_t t_idx =
                    static_cast<std::uint32_t>(by) * tiles_x + bx;
                pair_tile.push_back(t_idx);
                pair_kv.push_back(kv);
                ++offsets[t_idx + 1];
            }
        }
    }
    for (std::size_t t = 0; t < num_tiles; ++t)
        offsets[t + 1] += offsets[t];
    const std::size_t kv_total = offsets[num_tiles];
    stats.kv_pairs += static_cast<std::int64_t>(kv_total);

    std::vector<std::uint64_t> entries(kv_total);
    {
        std::vector<std::size_t> cursor(offsets.begin(),
                                        offsets.end() - 1);
        for (std::size_t i = 0; i < kv_total; ++i)
            entries[cursor[pair_tile[i]]++] = pair_kv[i];
        pair_tile.clear();
        pair_tile.shrink_to_fit();
        pair_kv.clear();
        pair_kv.shrink_to_fit();
    }
    stage_timer.lap(obs::Stage::Binning, &stats.stage.binning_ms);

    // ---- Stage 2: render tile by tile in scanline order.  Tiles own
    // disjoint pixel regions and disjoint CSR slices, so contiguous
    // chunks of the tile sequence fan out over the pool; per-chunk
    // counters merge in chunk order and the unique-splat populations
    // (fetched / rendered) come from OR-merged per-chunk maps, making
    // image and stats bit-identical to the serial sweep. ----
    Image image(width, height);

    // Unique-splat membership is tracked per chunk in word bitmaps
    // (n/8 bytes instead of n), so per-chunk memory and the OR-merge
    // stay cheap even for paper-scale splat counts at high worker
    // counts.
    const std::size_t map_words = (n + 63) / 64;
    struct TileChunkOut
    {
        StandardFlowStats stats;  ///< stage-2 counters only
        std::vector<std::uint64_t> contributed;
        std::vector<std::uint64_t> fetched;
    };

    // More chunks than workers smooths the load imbalance between
    // crowded and empty tiles; chunk boundaries stay deterministic.
    // The pixel-derived grain keeps every chunk heavy enough to
    // amortize dispatch — a frame smaller than two grains runs
    // inline on the caller thread.
    const bool fan_out = pool != nullptr && pool->workerCount() >= 2;
    const std::size_t grain_tiles = std::max<std::size_t>(
        1, kMinPixelsPerRasterChunk /
               (static_cast<std::size_t>(tile) * tile));
    auto tile_ranges = chunkRanges(
        num_tiles, fan_out ? pool->workerCount() * 4 : 1, grain_tiles);
    std::vector<TileChunkOut> chunk_out(tile_ranges.size());

    auto render_tiles = [&](std::size_t c, std::size_t t_begin,
                            std::size_t t_end) {
        TileChunkOut &out = chunk_out[c];
        out.contributed.assign(map_words, 0);
        out.fetched.assign(map_words, 0);
        StandardFlowStats &st = out.stats;
        std::vector<std::uint64_t> sort_scratch;
        TileScratch scratch;

        for (std::size_t t_idx = t_begin; t_idx < t_end; ++t_idx) {
            const int bx = static_cast<int>(t_idx % tiles_x);
            const int by = static_cast<int>(t_idx / tiles_x);
            const std::size_t begin = offsets[t_idx];
            const std::size_t end = offsets[t_idx + 1];
            if (begin == end)
                continue;
            const std::size_t list_len = end - begin;

            // Per-tile depth sort (radix sort on the GPU, bitonic
            // network in GSCore): stable LSD radix on the monotone
            // depth keys reproduces stable_sort's order exactly.
            radixSortByKey(entries.data() + begin, list_len,
                           sort_scratch);
            st.sorted_keys += static_cast<std::int64_t>(list_len);
            st.sort_pass_keys += bitonicPassKeys(list_len);

            rasterOneTile(config_, soa, entries.data() + begin,
                          list_len, bx, by, width, height, image, st,
                          out.contributed.data(), out.fetched.data(),
                          scratch);
        }
    };

    runChunks(fan_out ? pool : nullptr, tile_ranges, render_tiles);

    // Chunk-ordered merge; fetched/rendered are unique populations
    // over the whole frame, so they are counted from the OR of the
    // per-chunk maps (a splat fetched by tiles in two chunks is still
    // one fetched Gaussian, exactly as the serial first-touch count).
    std::vector<std::uint64_t> contributed_any(map_words, 0);
    std::vector<std::uint64_t> fetched_any(map_words, 0);
    for (const TileChunkOut &out : chunk_out) {
        stats.tile_fetches += out.stats.tile_fetches;
        stats.sorted_keys += out.stats.sorted_keys;
        stats.sort_pass_keys += out.stats.sort_pass_keys;
        stats.subtile_passes += out.stats.subtile_passes;
        stats.alpha_evals += out.stats.alpha_evals;
        stats.pixels_touched += out.stats.pixels_touched;
        stats.blend_ops += out.stats.blend_ops;
        for (std::size_t w = 0; w < map_words; ++w) {
            contributed_any[w] |= out.contributed[w];
            fetched_any[w] |= out.fetched[w];
        }
    }
    for (std::size_t w = 0; w < map_words; ++w) {
        stats.fetched_gaussians += std::popcount(fetched_any[w]);
        stats.rendered_gaussians += std::popcount(contributed_any[w]);
    }
    stage_timer.lap(obs::Stage::Raster, &stats.stage.raster_ms);
    return image;
}

Image
TileRenderer::renderTemporal(const GaussianCloud &cloud,
                             const Camera &cam,
                             StandardFlowStats &stats,
                             TemporalCache &cache,
                             ThreadPool *pool,
                             bool force_warp) const
{
    const int width = cam.width();
    const int height = cam.height();
    const int tile = config_.tile_size;
    const int tiles_x = (width + tile - 1) / tile;
    const int tiles_y = (height + tile - 1) / tile;
    const std::size_t num_tiles =
        static_cast<std::size_t>(tiles_x) * tiles_y;
    TemporalCounters &tc = cache.counters_;
    TemporalCounterMirror tc_mirror(tc);
    ++tc.frames;

    // ---- Snapshot check: any change of viewport, renderer config or
    // scene population invalidates every cached tier. ----
    if (cache.valid_ &&
        (cache.width_ != width || cache.height_ != height ||
         cache.tile_size_ != tile ||
         cache.bounding_ != config_.bounding ||
         cache.termination_t_ != config_.termination_t ||
         cache.alpha_cutoff_ != config_.alpha_cutoff ||
         cache.fast_alpha_ != config_.fast_alpha ||
         cache.cloud_size_ != cloud.size())) {
        cache.valid_ = false;
        cache.exact_valid_ = false;
        cache.warp_cached_ = false;
    }
    if (cache.options.every <= 1 && !cache.options.keep_exact) {
        cache.exact_valid_ = false;
        cache.warp_cached_ = false;
    }

    // ---- Held camera: the previous exact output is this frame's
    // exact output, bit for bit. ----
    if (cache.valid_ && camerasBitIdentical(cache.camera_, cam)) {
        ++tc.copied_frames;
        return cache.image_;
    }

    // ---- Tier 3: synthesize by reprojection unless the cadence or
    // the trust region demands an exact frame.  force_warp asks for
    // a synthesized frame outside the cadence (degradation ladder);
    // it still honors the trust region and falls through to exact
    // rendering when no valid warp source exists. ----
    if (cache.exact_valid_ &&
        (force_warp ||
         (cache.options.every > 1 && cache.warp_phase_ > 0))) {
        const CameraDelta d = cameraDelta(cache.exact_camera_, cam);
        if (d.translation <= cache.options.max_warp_translation &&
            d.rotation_rad <= cache.options.max_warp_rotation) {
            if (cache.warp_cached_ &&
                camerasBitIdentical(cache.warp_camera_, cam)) {
                ++tc.copied_frames;
                return cache.warp_image_;
            }
            Image out;
            {
                obs::PerfScope warp_scope(obs::Stage::Warp,
                                          &stats.stage.warp_ms);
                out = warpFromExact(cache.exact_camera_,
                                    cache.exact_image_,
                                    cache.depth_, cam);
            }
            ++tc.warped_frames;
            if (cache.warp_phase_ > 0)
                --cache.warp_phase_;
            cache.warp_cached_ = true;
            cache.warp_camera_ = cam;
            cache.warp_image_ = out;
            return out;
        }
        // Camera moved past the trust region: render exactly below,
        // which also resets the warp cadence.
    }

    // ---- Exact frame: preprocess + SoA (identical to render()). ----
    obs::StageTimer stage_timer;
    std::vector<Splat> splats = preprocessAll(cloud, cam, stats.pre, pool);
    SplatSoA soa = SplatSoA::build(splats, config_.bounding, tile,
                                   config_.alpha_cutoff, width, height);
    const std::size_t n = soa.size();
    std::vector<std::uint32_t> ids(n);
    std::vector<float> depths(n);
    for (std::size_t si = 0; si < n; ++si) {
        ids[si] = splats[si].id;
        depths[si] = splats[si].depth;
    }
    stage_timer.lap(obs::Stage::Preprocess, &stats.stage.preprocess_ms);

    // ---- Per-splat coverage lists (the CSR row inputs): the same
    // walk render()'s pair emission does, kept per splat so next
    // frame can diff row by row. ----
    std::vector<std::uint32_t> cov_offsets(n + 1, 0);
    std::vector<std::uint32_t> cov_tiles;
    cov_tiles.reserve(cache.cov_tiles_.size());
    for (std::size_t si = 0; si < n; ++si) {
        const TileRange &r = soa.range[si];
        for (int by = r.by0; by <= r.by1; ++by) {
            for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                if (soa.obb_refine) {
                    float tx0 = static_cast<float>(bx * tile);
                    float ty0 = static_cast<float>(by * tile);
                    if (!obbOverlapsTile(soa.obb[si], tx0, ty0,
                                         tx0 + tile, ty0 + tile))
                        continue;
                }
                cov_tiles.push_back(
                    static_cast<std::uint32_t>(by) * tiles_x + bx);
            }
        }
        cov_offsets[si + 1] =
            static_cast<std::uint32_t>(cov_tiles.size());
    }
    stats.kv_pairs += static_cast<std::int64_t>(cov_tiles.size());

    ++tc.exact_frames;
    std::vector<std::uint32_t> dirty_tiles;

    // Warp mode additionally maintains the per-pixel depth buffer the
    // reprojection samples; clean tiles keep last frame's depths, so
    // the incremental path also requires a valid buffer to inherit.
    const bool want_depth =
        cache.options.every > 1 || cache.options.keep_exact;

    // The incremental diff assumes frame-to-frame identity of the
    // splat population (same source Gaussians surviving culling, in
    // the same SoA slots); any mismatch falls back to a full rebuild
    // inside the temporal path.
    const bool incremental = cache.valid_ && cache.ids_ == ids &&
                             (!want_depth || cache.depth_valid_);
    if (!incremental) {
        // ---- Cold path: rebuild every per-tile list. ----
        ++tc.full_rebuilds;
        cache.tile_entries_.assign(num_tiles, {});
        for (std::size_t si = 0; si < n; ++si) {
            const std::uint64_t kv = packKeyValue(
                soa.depth_key[si], static_cast<std::uint32_t>(si));
            for (std::uint32_t c = cov_offsets[si];
                 c < cov_offsets[si + 1]; ++c)
                cache.tile_entries_[cov_tiles[c]].push_back(kv);
        }
        // Ascending packed (key, si) order is exactly the stable
        // radix order the cold renderer produces (monotone key in
        // the high half, unique ascending-emitted si in the low
        // half), so plain sort reproduces it bit for bit.
        for (std::size_t t = 0; t < num_tiles; ++t) {
            auto &v = cache.tile_entries_[t];
            if (v.empty())
                continue;
            std::sort(v.begin(), v.end());
            stats.sorted_keys += static_cast<std::int64_t>(v.size());
            stats.sort_pass_keys += bitonicPassKeys(v.size());
            dirty_tiles.push_back(static_cast<std::uint32_t>(t));
        }
        cache.image_ = Image(width, height);
        if (want_depth)
            cache.depth_.assign(
                static_cast<std::size_t>(width) * height, 0.0f);
    } else {
        // ---- Incremental path: diff each splat against last frame
        // and patch only what changed. ----
        ++tc.incremental_frames;
        tc.tiles_total += static_cast<std::int64_t>(num_tiles);
        std::vector<std::uint8_t> dirty(num_tiles, 0);
        std::vector<std::uint8_t> patched(num_tiles, 0);
        std::vector<std::uint8_t> fullsort(num_tiles, 0);
        std::vector<std::uint8_t> keyfix(num_tiles, 0);
        std::vector<std::uint32_t> appended(num_tiles, 0);

        for (std::size_t si = 0; si < n; ++si) {
            const bool blend_changed =
                std::memcmp(&soa.blend[si], &cache.soa_.blend[si],
                            sizeof(SplatSoA::Blend)) != 0;
            const bool key_changed =
                soa.depth_key[si] != cache.soa_.depth_key[si];
            const std::uint32_t *ob =
                cache.cov_tiles_.data() + cache.cov_offsets_[si];
            const std::uint32_t *oe =
                cache.cov_tiles_.data() + cache.cov_offsets_[si + 1];
            const std::uint32_t *nb = cov_tiles.data() + cov_offsets[si];
            const std::uint32_t *ne =
                cov_tiles.data() + cov_offsets[si + 1];
            if (!blend_changed && !key_changed && oe - ob == ne - nb &&
                std::memcmp(ob, nb,
                            static_cast<std::size_t>(oe - ob) *
                                sizeof(std::uint32_t)) == 0)
                continue;  // splat fully unchanged
            if (blend_changed)
                ++tc.splats_changed;
            const std::uint64_t kv_old = packKeyValue(
                cache.soa_.depth_key[si], static_cast<std::uint32_t>(si));
            const std::uint64_t kv_new = packKeyValue(
                soa.depth_key[si], static_cast<std::uint32_t>(si));
            // Both coverage lists ascend in tile index (the (by, bx)
            // emission walk), so a merge walk yields the exact set
            // difference.
            while (ob != oe || nb != ne) {
                if (nb == ne || (ob != oe && *ob < *nb)) {
                    // Left this tile: erase its old entry.  The
                    // sorted prefix excludes entries appended this
                    // frame (they sit past end - appended).
                    auto &v = cache.tile_entries_[*ob];
                    auto it = std::lower_bound(
                        v.begin(), v.end() - appended[*ob], kv_old);
                    v.erase(it);
                    dirty[*ob] = 1;
                    patched[*ob] = 1;
                    ++ob;
                } else if (ob == oe || *nb < *ob) {
                    // Entered this tile: append; the tile re-sorts.
                    auto &v = cache.tile_entries_[*nb];
                    v.push_back(kv_new);
                    ++appended[*nb];
                    fullsort[*nb] = 1;
                    dirty[*nb] = 1;
                    patched[*nb] = 1;
                    ++nb;
                } else {
                    if (blend_changed)
                        dirty[*ob] = 1;
                    if (key_changed)
                        keyfix[*ob] = 1;
                    ++ob;
                    ++nb;
                }
            }
        }

        // Per-tile fix-up: rewrite stale depth keys from the current
        // frame (stored entries must always carry current keys — the
        // next frame's erase lookups depend on it), then restore the
        // ascending invariant where it broke.
        auto rewrite_keys = [&](std::vector<std::uint64_t> &v) {
            for (std::uint64_t &kv : v) {
                const std::uint32_t si = packedValue(kv);
                kv = packKeyValue(soa.depth_key[si], si);
            }
        };
        for (std::size_t t = 0; t < num_tiles; ++t) {
            auto &v = cache.tile_entries_[t];
            if (fullsort[t]) {
                rewrite_keys(v);
                std::sort(v.begin(), v.end());
                stats.sorted_keys +=
                    static_cast<std::int64_t>(v.size());
                stats.sort_pass_keys += bitonicPassKeys(v.size());
                ++tc.tiles_resorted;
            } else if (keyfix[t]) {
                rewrite_keys(v);
                // Still ascending after the rewrite: the old position
                // order is the unique sorted order of the new keys,
                // so the blend order — and the tile's pixels, if
                // nothing else changed — are untouched.
                if (!std::is_sorted(v.begin(), v.end())) {
                    std::sort(v.begin(), v.end());
                    stats.sorted_keys +=
                        static_cast<std::int64_t>(v.size());
                    stats.sort_pass_keys += bitonicPassKeys(v.size());
                    dirty[t] = 1;
                    ++tc.tiles_resorted;
                }
            }
        }
        for (std::size_t t = 0; t < num_tiles; ++t) {
            if (patched[t])
                ++tc.tiles_patched;
            if (dirty[t])
                dirty_tiles.push_back(static_cast<std::uint32_t>(t));
        }
        tc.tiles_reused += static_cast<std::int64_t>(num_tiles) -
                           static_cast<std::int64_t>(dirty_tiles.size());
    }
    tc.tiles_rastered += static_cast<std::int64_t>(dirty_tiles.size());
    stage_timer.lap(obs::Stage::Binning, &stats.stage.binning_ms);

    // ---- Re-rasterize only the dirty tiles, straight into the
    // retained composited image (clean tiles keep their pixels).
    // Same chunk fan-out and deterministic merge as render();
    // unique-population counters cover the rastered tiles only. ----
    Image &image = cache.image_;
    const std::size_t map_words = (n + 63) / 64;
    struct TileChunkOut
    {
        StandardFlowStats stats;
        std::vector<std::uint64_t> contributed;
        std::vector<std::uint64_t> fetched;
    };
    const bool fan_out = pool != nullptr && pool->workerCount() >= 2;
    const std::size_t grain_tiles = std::max<std::size_t>(
        1, kMinPixelsPerRasterChunk /
               (static_cast<std::size_t>(tile) * tile));
    auto tile_ranges =
        chunkRanges(dirty_tiles.size(),
                    fan_out ? pool->workerCount() * 4 : 1, grain_tiles);
    std::vector<TileChunkOut> chunk_out(tile_ranges.size());
    float *depth_buf = want_depth ? cache.depth_.data() : nullptr;
    auto raster_dirty = [&](std::size_t c, std::size_t d_begin,
                            std::size_t d_end) {
        TileChunkOut &out = chunk_out[c];
        out.contributed.assign(map_words, 0);
        out.fetched.assign(map_words, 0);
        TileScratch scratch;
        for (std::size_t i = d_begin; i < d_end; ++i) {
            const std::uint32_t t_idx = dirty_tiles[i];
            const int bx = static_cast<int>(t_idx % tiles_x);
            const int by = static_cast<int>(t_idx / tiles_x);
            const int x0 = bx * tile;
            const int y0 = by * tile;
            const int x1 = std::min(x0 + tile, width);
            const int y1 = std::min(y0 + tile, height);
            for (int y = y0; y < y1; ++y) {
                for (int x = x0; x < x1; ++x)
                    image.at(x, y) = Vec3(0, 0, 0);
                if (depth_buf != nullptr)
                    for (int x = x0; x < x1; ++x)
                        depth_buf[static_cast<std::size_t>(y) * width +
                                  x] = 0.0f;
            }
            const auto &v = cache.tile_entries_[t_idx];
            if (!v.empty())
                rasterOneTile(config_, soa, v.data(), v.size(), bx, by,
                              width, height, image, out.stats,
                              out.contributed.data(),
                              out.fetched.data(), scratch,
                              want_depth ? depths.data() : nullptr,
                              depth_buf);
        }
    };
    runChunks(fan_out ? pool : nullptr, tile_ranges, raster_dirty);

    std::vector<std::uint64_t> contributed_any(map_words, 0);
    std::vector<std::uint64_t> fetched_any(map_words, 0);
    for (const TileChunkOut &out : chunk_out) {
        stats.tile_fetches += out.stats.tile_fetches;
        stats.subtile_passes += out.stats.subtile_passes;
        stats.alpha_evals += out.stats.alpha_evals;
        stats.pixels_touched += out.stats.pixels_touched;
        stats.blend_ops += out.stats.blend_ops;
        for (std::size_t w = 0; w < map_words; ++w) {
            contributed_any[w] |= out.contributed[w];
            fetched_any[w] |= out.fetched[w];
        }
    }
    for (std::size_t w = 0; w < map_words; ++w) {
        stats.fetched_gaussians += std::popcount(fetched_any[w]);
        stats.rendered_gaussians += std::popcount(contributed_any[w]);
    }
    stage_timer.lap(obs::Stage::Raster, &stats.stage.raster_ms);

    // ---- Retain this frame's state for the next one. ----
    cache.valid_ = true;
    cache.width_ = width;
    cache.height_ = height;
    cache.tile_size_ = tile;
    cache.bounding_ = config_.bounding;
    cache.termination_t_ = config_.termination_t;
    cache.alpha_cutoff_ = config_.alpha_cutoff;
    cache.fast_alpha_ = config_.fast_alpha;
    cache.cloud_size_ = cloud.size();
    cache.camera_ = cam;
    cache.soa_ = std::move(soa);
    cache.ids_ = std::move(ids);
    cache.depths_ = std::move(depths);
    cache.cov_offsets_ = std::move(cov_offsets);
    cache.cov_tiles_ = std::move(cov_tiles);
    cache.depth_valid_ = want_depth;

    if (cache.options.every > 1 || cache.options.keep_exact) {
        // Warp-source snapshot: this exact frame anchors the next
        // every-1 synthesized frames (or on-demand force_warp ones).
        cache.exact_valid_ = true;
        cache.exact_camera_ = cam;
        cache.exact_image_ = cache.image_;
        cache.warp_phase_ = std::max(0, cache.options.every - 1);
        cache.warp_cached_ = false;
    }
    return cache.image_;
}

Image
TileRenderer::renderReference(const GaussianCloud &cloud,
                              const Camera &cam,
                              StandardFlowStats &stats) const
{
    const int width = cam.width();
    const int height = cam.height();
    const int tile = config_.tile_size;
    const int tiles_x = (width + tile - 1) / tile;
    const int tiles_y = (height + tile - 1) / tile;

    // ---- Stage 1: preprocess every Gaussian (decoupled). ----
    obs::StageTimer stage_timer;
    std::vector<Splat> splats = preprocessAll(cloud, cam, stats.pre);
    stage_timer.lap(obs::Stage::Preprocess, &stats.stage.preprocess_ms);

    // ---- Tile binning: build Gaussian-tile KV pairs. ----
    std::vector<std::vector<std::uint32_t>> tile_lists(
        static_cast<std::size_t>(tiles_x) * tiles_y);
    for (std::uint32_t si = 0; si < splats.size(); ++si) {
        const Splat &s = splats[si];
        TileRange r =
            tileRangeFor(s, config_.bounding, tile, width, height);
        ObbParams o;
        if (config_.bounding == BoundingMode::Obb3Sigma)
            o = obbParamsFor(s);
        for (int by = r.by0; by <= r.by1; ++by) {
            for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                if (config_.bounding == BoundingMode::Obb3Sigma) {
                    float tx0 = static_cast<float>(bx * tile);
                    float ty0 = static_cast<float>(by * tile);
                    if (!obbOverlapsTile(o, tx0, ty0, tx0 + tile,
                                         ty0 + tile))
                        continue;
                }
                tile_lists[static_cast<std::size_t>(by) * tiles_x + bx]
                    .push_back(si);
                ++stats.kv_pairs;
            }
        }
    }

    stage_timer.lap(obs::Stage::Binning, &stats.stage.binning_ms);

    // ---- Stage 2: render tile by tile in scanline order. ----
    Image image(width, height);
    std::vector<float> tile_t(static_cast<std::size_t>(tile) * tile);
    std::vector<std::uint8_t> contributed(splats.size(), 0);
    std::vector<std::uint8_t> fetched(splats.size(), 0);
    constexpr int kSub = 8;
    const int sub_n = (tile + kSub - 1) / kSub;
    std::vector<int> sub_live(static_cast<std::size_t>(sub_n) * sub_n);

    for (int by = 0; by < tiles_y; ++by) {
        for (int bx = 0; bx < tiles_x; ++bx) {
            auto &list =
                tile_lists[static_cast<std::size_t>(by) * tiles_x + bx];
            if (list.empty())
                continue;

            // Per-tile depth sort (radix sort on the GPU, bitonic
            // network in GSCore; functionally a stable sort by depth).
            std::stable_sort(list.begin(), list.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                                 return splats[a].depth < splats[b].depth;
                             });
            stats.sorted_keys += static_cast<std::int64_t>(list.size());
            stats.sort_pass_keys += bitonicPassKeys(list.size());

            int x0 = bx * tile;
            int y0 = by * tile;
            int x1 = std::min(x0 + tile, width);
            int y1 = std::min(y0 + tile, height);
            int live = (x1 - x0) * (y1 - y0);
            std::fill(tile_t.begin(), tile_t.end(), 1.0f);

            // Per-subtile live-pixel counts (8x8 granularity): the
            // VRU processes one subtile per array pass in lockstep.
            std::fill(sub_live.begin(), sub_live.end(), 0);
            for (int y = y0; y < y1; ++y)
                for (int x = x0; x < x1; ++x)
                    ++sub_live[((y - y0) / kSub) * sub_n +
                               (x - x0) / kSub];

            for (std::uint32_t si : list) {
                if (live == 0)
                    break;  // whole tile terminated: skip the rest
                ++stats.tile_fetches;
                if (!fetched[si]) {
                    fetched[si] = 1;
                    ++stats.fetched_gaussians;
                }
                const Splat &s = splats[si];

                // Array passes: live subtiles the splat's bounds reach.
                PixelRect sb =
                    aabbFromRadius(s.ellipse.center,
                                   std::max(s.radius_3sigma,
                                            s.radius_omega))
                        .clipped(width, height);
                for (int sy = 0; sy < sub_n; ++sy) {
                    for (int sx = 0; sx < sub_n; ++sx) {
                        if (sub_live[sy * sub_n + sx] == 0)
                            continue;
                        int rx0 = x0 + sx * kSub;
                        int ry0 = y0 + sy * kSub;
                        if (sb.x1 < rx0 || sb.x0 > rx0 + kSub - 1 ||
                            sb.y1 < ry0 || sb.y0 > ry0 + kSub - 1)
                            continue;
                        ++stats.subtile_passes;
                    }
                }

                for (int y = y0; y < y1; ++y) {
                    for (int x = x0; x < x1; ++x) {
                        float &t =
                            tile_t[static_cast<std::size_t>(y - y0) *
                                       tile + (x - x0)];
                        if (t < config_.termination_t)
                            continue;
                        ++stats.alpha_evals;
                        ++stats.pixels_touched;
                        Vec2 p(static_cast<float>(x) + 0.5f,
                               static_cast<float>(y) + 0.5f);
                        float a = s.ellipse.alphaAt(p, s.opacity);
                        if (a < config_.alpha_cutoff)
                            continue;
                        ++stats.blend_ops;
                        if (!contributed[si]) {
                            contributed[si] = 1;
                            ++stats.rendered_gaussians;
                        }
                        image.at(x, y) += s.color * (a * t);
                        t *= 1.0f - a;
                        if (t < config_.termination_t) {
                            --live;
                            --sub_live[((y - y0) / kSub) * sub_n +
                                       (x - x0) / kSub];
                        }
                    }
                }
            }
        }
    }
    stage_timer.lap(obs::Stage::Raster, &stats.stage.raster_ms);
    return image;
}

} // namespace gcc3d
