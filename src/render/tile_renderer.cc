#include "render/tile_renderer.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>

#include "gsmath/simd.h"
#include "gsmath/sort_keys.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace gcc3d {

namespace {

using StageClock = std::chrono::steady_clock;

double
msBetween(StageClock::time_point a, StageClock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/**
 * Dispatch grain of the per-tile rasterization fan-out: a chunk must
 * cover at least this many pixels of tiles, or pool dispatch costs
 * more than the chunk's work and the frame runs inline on the caller
 * (the parallel_for grain heuristic; small frames previously fanned
 * out one-tile chunks whose submit/future overhead showed up as the
 * flat-to-negative thread scaling in BENCH_frame.json).
 */
constexpr std::size_t kMinPixelsPerRasterChunk = 4096;

/**
 * Bitonic-sorter pass accounting shared by both render paths: a
 * 16-wide bitonic merge sort sorts chunks of 16 in one pass and
 * merges ceil(n/16) chunks in log2 more passes.
 */
std::int64_t
bitonicPassKeys(std::size_t list_len)
{
    std::int64_t chunks = static_cast<std::int64_t>((list_len + 15) / 16);
    std::int64_t passes = 1;
    while ((std::int64_t{1} << (passes - 1)) < chunks)
        ++passes;
    return static_cast<std::int64_t>(list_len) * passes;
}

} // namespace

std::vector<int>
TileRenderer::tilesPerSplat(const std::vector<Splat> &splats,
                            const Camera &cam) const
{
    std::vector<int> counts;
    counts.reserve(splats.size());
    for (const Splat &s : splats) {
        TileRange r = tileRangeFor(s, config_.bounding, config_.tile_size,
                                   cam.width(), cam.height());
        if (config_.bounding == BoundingMode::Obb3Sigma && !r.empty()) {
            ObbParams o = obbParamsFor(s);
            int n = 0;
            for (int by = r.by0; by <= r.by1; ++by) {
                for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                    float tx0 = static_cast<float>(bx * config_.tile_size);
                    float ty0 = static_cast<float>(by * config_.tile_size);
                    if (obbOverlapsTile(o, tx0, ty0,
                                        tx0 + config_.tile_size,
                                        ty0 + config_.tile_size))
                        ++n;
                }
            }
            counts.push_back(n);
        } else {
            counts.push_back(r.count());
        }
    }
    return counts;
}

Image
TileRenderer::render(const GaussianCloud &cloud, const Camera &cam,
                     StandardFlowStats &stats, ThreadPool *pool) const
{
    const int width = cam.width();
    const int height = cam.height();
    const int tile = config_.tile_size;
    const int tiles_x = (width + tile - 1) / tile;
    const int tiles_y = (height + tile - 1) / tile;
    const std::size_t num_tiles =
        static_cast<std::size_t>(tiles_x) * tiles_y;

    // ---- Stage 1: preprocess every Gaussian (decoupled). ----
    const auto t_start = StageClock::now();
    std::vector<Splat> splats = preprocessAll(cloud, cam, stats.pre, pool);
    SplatSoA soa = SplatSoA::build(splats, config_.bounding, tile,
                                   config_.alpha_cutoff, width, height);
    const std::size_t n = soa.size();
    const auto t_preprocessed = StageClock::now();
    stats.stage.preprocess_ms += msBetween(t_start, t_preprocessed);

    // ---- Tile binning: CSR built in two passes over a flat pair
    // list.  Pass 1 walks each splat's coverage exactly once (the
    // OBB refinement test is not repeated) and emits (tile, packed
    // key-value) pairs in splat order while counting per-tile
    // populations; pass 2 scatters the pairs into one contiguous
    // entries array at per-tile offsets.  The scatter preserves the
    // splat-order tie-break within every tile. ----
    std::vector<std::uint32_t> pair_tile;
    std::vector<std::uint64_t> pair_kv;
    std::vector<std::size_t> offsets(num_tiles + 1, 0);
    for (std::size_t si = 0; si < n; ++si) {
        const TileRange &r = soa.range[si];
        const std::uint64_t kv = packKeyValue(
            soa.depth_key[si], static_cast<std::uint32_t>(si));
        for (int by = r.by0; by <= r.by1; ++by) {
            for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                if (soa.obb_refine) {
                    float tx0 = static_cast<float>(bx * tile);
                    float ty0 = static_cast<float>(by * tile);
                    if (!obbOverlapsTile(soa.obb[si], tx0, ty0,
                                         tx0 + tile, ty0 + tile))
                        continue;
                }
                const std::uint32_t t_idx =
                    static_cast<std::uint32_t>(by) * tiles_x + bx;
                pair_tile.push_back(t_idx);
                pair_kv.push_back(kv);
                ++offsets[t_idx + 1];
            }
        }
    }
    for (std::size_t t = 0; t < num_tiles; ++t)
        offsets[t + 1] += offsets[t];
    const std::size_t kv_total = offsets[num_tiles];
    stats.kv_pairs += static_cast<std::int64_t>(kv_total);

    std::vector<std::uint64_t> entries(kv_total);
    {
        std::vector<std::size_t> cursor(offsets.begin(),
                                        offsets.end() - 1);
        for (std::size_t i = 0; i < kv_total; ++i)
            entries[cursor[pair_tile[i]]++] = pair_kv[i];
        pair_tile.clear();
        pair_tile.shrink_to_fit();
        pair_kv.clear();
        pair_kv.shrink_to_fit();
    }
    const auto t_binned = StageClock::now();
    stats.stage.binning_ms += msBetween(t_preprocessed, t_binned);

    // ---- Stage 2: render tile by tile in scanline order.  Tiles own
    // disjoint pixel regions and disjoint CSR slices, so contiguous
    // chunks of the tile sequence fan out over the pool; per-chunk
    // counters merge in chunk order and the unique-splat populations
    // (fetched / rendered) come from OR-merged per-chunk maps, making
    // image and stats bit-identical to the serial sweep. ----
    Image image(width, height);
    constexpr int kSub = 8;
    const int sub_n = (tile + kSub - 1) / kSub;

    // Unique-splat membership is tracked per chunk in word bitmaps
    // (n/8 bytes instead of n), so per-chunk memory and the OR-merge
    // stay cheap even for paper-scale splat counts at high worker
    // counts.
    const std::size_t map_words = (n + 63) / 64;
    struct TileChunkOut
    {
        StandardFlowStats stats;  ///< stage-2 counters only
        std::vector<std::uint64_t> contributed;
        std::vector<std::uint64_t> fetched;
    };

    // More chunks than workers smooths the load imbalance between
    // crowded and empty tiles; chunk boundaries stay deterministic.
    // The pixel-derived grain keeps every chunk heavy enough to
    // amortize dispatch — a frame smaller than two grains runs
    // inline on the caller thread.
    const bool fan_out = pool != nullptr && pool->workerCount() >= 2;
    const std::size_t grain_tiles = std::max<std::size_t>(
        1, kMinPixelsPerRasterChunk /
               (static_cast<std::size_t>(tile) * tile));
    auto tile_ranges = chunkRanges(
        num_tiles, fan_out ? pool->workerCount() * 4 : 1, grain_tiles);
    std::vector<TileChunkOut> chunk_out(tile_ranges.size());

    const bool fast_alpha = config_.fast_alpha;
    auto render_tiles = [&](std::size_t c, std::size_t t_begin,
                            std::size_t t_end) {
        TileChunkOut &out = chunk_out[c];
        out.contributed.assign(map_words, 0);
        out.fetched.assign(map_words, 0);
        StandardFlowStats &st = out.stats;
        std::uint64_t *contributed = out.contributed.data();
        std::uint64_t *fetched = out.fetched.data();
        std::vector<float> tile_t(static_cast<std::size_t>(tile) * tile);
        std::vector<std::uint64_t> sort_scratch;
        std::vector<int> sub_live(static_cast<std::size_t>(sub_n) *
                                  sub_n);
        std::vector<int> row_live(static_cast<std::size_t>(tile));

        for (std::size_t t_idx = t_begin; t_idx < t_end; ++t_idx) {
            const int bx = static_cast<int>(t_idx % tiles_x);
            const int by = static_cast<int>(t_idx / tiles_x);
            const std::size_t begin = offsets[t_idx];
            const std::size_t end = offsets[t_idx + 1];
            if (begin == end)
                continue;
            const std::size_t list_len = end - begin;

            // Per-tile depth sort (radix sort on the GPU, bitonic
            // network in GSCore): stable LSD radix on the monotone
            // depth keys reproduces stable_sort's order exactly.
            radixSortByKey(entries.data() + begin, list_len,
                           sort_scratch);
            st.sorted_keys += static_cast<std::int64_t>(list_len);
            st.sort_pass_keys += bitonicPassKeys(list_len);

            int x0 = bx * tile;
            int y0 = by * tile;
            int x1 = std::min(x0 + tile, width);
            int y1 = std::min(y0 + tile, height);
            int live = (x1 - x0) * (y1 - y0);
            std::fill(tile_t.begin(), tile_t.end(), 1.0f);

            // Per-subtile live-pixel counts (8x8 granularity): the
            // VRU processes one subtile per array pass in lockstep.
            // Per-row counts let the blend loop skip rows whose every
            // pixel already terminated.
            std::fill(sub_live.begin(), sub_live.end(), 0);
            std::fill(row_live.begin(), row_live.end(), 0);
            for (int y = y0; y < y1; ++y) {
                row_live[y - y0] = x1 - x0;
                for (int x = x0; x < x1; ++x)
                    ++sub_live[((y - y0) / kSub) * sub_n +
                               (x - x0) / kSub];
            }

            for (std::size_t e = begin; e < end; ++e) {
                if (live == 0)
                    break;  // whole tile terminated: skip the rest
                const std::uint32_t si = packedValue(entries[e]);
                ++st.tile_fetches;
                fetched[si >> 6] |= std::uint64_t{1} << (si & 63);
                const SplatSoA::Blend &b = soa.blend[si];

                // Array passes: live subtiles the splat's bounds reach.
                for (int sy = 0; sy < sub_n; ++sy) {
                    for (int sx = 0; sx < sub_n; ++sx) {
                        if (sub_live[sy * sub_n + sx] == 0)
                            continue;
                        int rx0 = x0 + sx * kSub;
                        int ry0 = y0 + sy * kSub;
                        if (b.sb_x1 < rx0 || b.sb_x0 > rx0 + kSub - 1 ||
                            b.sb_y1 < ry0 || b.sb_y0 > ry0 + kSub - 1)
                            continue;
                        ++st.subtile_passes;
                    }
                }

                // The reference path alpha-tests every live pixel of
                // the tile; pixels outside the cutoff-safe rect are
                // provably below the alpha cutoff, so only the rect
                // is walked and the skipped evaluations are accounted
                // from the live count (identical totals, less work).
                st.alpha_evals += live;
                st.pixels_touched += live;
                const int rx0 = std::max(x0, b.it_x0);
                const int rx1 = std::min(x1 - 1, b.it_x1);
                const int ry0 = std::max(y0, b.it_y0);
                const int ry1 = std::min(y1 - 1, b.it_y1);
                // Conic and thresholds broadcast once per splat; the
                // row loop below evaluates q for kWidth pixels per
                // step with each lane running the scalar op sequence
                // exactly (same dx/dy derivation, same multiply/add
                // order), so the pass/fail decisions — and therefore
                // the image and stats — are bit-identical to the
                // scalar reference.
                const simd::FloatV c00v(b.c00), c01v(b.c01);
                const simd::FloatV c10v(b.c10), c11v(b.c11);
                const simd::FloatV cxv(b.cx);
                const simd::FloatV q_skip_v(b.q_skip);
                const simd::FloatV half_v(0.5f);
                // (An earlier revision solved a per-row quadratic
                // interval in double to trim dead row tails; with
                // rows clipped to the tile and evaluated kWidth
                // lanes per step under the q_skip mask, the
                // sqrt-per-row solve cost more than the tails it
                // saved — the mask makes the same pass/fail
                // decisions bit-identically.)
                for (int y = ry0; y <= ry1; ++y) {
                    if (row_live[y - y0] == 0)
                        continue;  // every pixel in the row terminated
                    const float py = static_cast<float>(y) + 0.5f;
                    const int row_x0 = rx0;
                    const int row_x1 = rx1;
                    const float dy_row = py - b.cy;
                    const simd::FloatV dyv(dy_row);
                    float *trow =
                        tile_t.data() +
                        static_cast<std::size_t>(y - y0) * tile;
                    for (int x = row_x0; x <= row_x1;
                         x += simd::kWidth) {
                        const int nlane = std::min<int>(
                            simd::kWidth, row_x1 - x + 1);
                        simd::FloatV dx =
                            (simd::FloatV::iotaFrom(x) + half_v) - cxv;
                        simd::FloatV q =
                            dx * (c00v * dx + c01v * dyv) +
                            dyv * (c10v * dx + c11v * dyv);
                        // Mirrors the scalar `q > q_skip -> skip`
                        // comparison exactly (incl. NaN ordering).
                        unsigned bits =
                            simd::MaskV::firstN(nlane).bits() &
                            ~(q > q_skip_v).bits();
                        if (bits == 0)
                            continue;  // all lanes provably sub-cutoff
                        float qlane[simd::kWidth];
                        float alane[simd::kWidth];
                        if (fast_alpha)
                            simd::min(simd::FloatV(0.99f),
                                      simd::FloatV(b.opacity) *
                                          simd::simdExp(
                                              q * simd::FloatV(-0.5f)))
                                .store(alane);
                        else
                            q.store(qlane);
                        // Surviving lanes compact into the exact
                        // scalar alpha/blend path, front-to-back in x
                        // order.
                        do {
                            const int i = std::countr_zero(bits);
                            bits &= bits - 1;
                            const int px = x + i;
                            float &t = trow[px - x0];
                            if (t < config_.termination_t)
                                continue;
                            float a;
                            if (fast_alpha) {
                                a = alane[i];
                            } else {
                                a = b.opacity *
                                    std::exp(-0.5f * qlane[i]);
                                if (a > 0.99f)
                                    a = 0.99f;
                            }
                            if (a < config_.alpha_cutoff)
                                continue;
                            ++st.blend_ops;
                            contributed[si >> 6] |= std::uint64_t{1}
                                                    << (si & 63);
                            image.at(px, y) +=
                                Vec3(b.r, b.g, b.b) * (a * t);
                            t *= 1.0f - a;
                            if (t < config_.termination_t) {
                                --live;
                                --row_live[y - y0];
                                --sub_live[((y - y0) / kSub) * sub_n +
                                           (px - x0) / kSub];
                            }
                        } while (bits != 0);
                    }
                }
            }
        }
    };

    runChunks(fan_out ? pool : nullptr, tile_ranges, render_tiles);

    // Chunk-ordered merge; fetched/rendered are unique populations
    // over the whole frame, so they are counted from the OR of the
    // per-chunk maps (a splat fetched by tiles in two chunks is still
    // one fetched Gaussian, exactly as the serial first-touch count).
    std::vector<std::uint64_t> contributed_any(map_words, 0);
    std::vector<std::uint64_t> fetched_any(map_words, 0);
    for (const TileChunkOut &out : chunk_out) {
        stats.tile_fetches += out.stats.tile_fetches;
        stats.sorted_keys += out.stats.sorted_keys;
        stats.sort_pass_keys += out.stats.sort_pass_keys;
        stats.subtile_passes += out.stats.subtile_passes;
        stats.alpha_evals += out.stats.alpha_evals;
        stats.pixels_touched += out.stats.pixels_touched;
        stats.blend_ops += out.stats.blend_ops;
        for (std::size_t w = 0; w < map_words; ++w) {
            contributed_any[w] |= out.contributed[w];
            fetched_any[w] |= out.fetched[w];
        }
    }
    for (std::size_t w = 0; w < map_words; ++w) {
        stats.fetched_gaussians += std::popcount(fetched_any[w]);
        stats.rendered_gaussians += std::popcount(contributed_any[w]);
    }
    stats.stage.raster_ms += msBetween(t_binned, StageClock::now());
    return image;
}

Image
TileRenderer::renderReference(const GaussianCloud &cloud,
                              const Camera &cam,
                              StandardFlowStats &stats) const
{
    const int width = cam.width();
    const int height = cam.height();
    const int tile = config_.tile_size;
    const int tiles_x = (width + tile - 1) / tile;
    const int tiles_y = (height + tile - 1) / tile;

    // ---- Stage 1: preprocess every Gaussian (decoupled). ----
    const auto t_start = StageClock::now();
    std::vector<Splat> splats = preprocessAll(cloud, cam, stats.pre);
    const auto t_preprocessed = StageClock::now();
    stats.stage.preprocess_ms += msBetween(t_start, t_preprocessed);

    // ---- Tile binning: build Gaussian-tile KV pairs. ----
    std::vector<std::vector<std::uint32_t>> tile_lists(
        static_cast<std::size_t>(tiles_x) * tiles_y);
    for (std::uint32_t si = 0; si < splats.size(); ++si) {
        const Splat &s = splats[si];
        TileRange r =
            tileRangeFor(s, config_.bounding, tile, width, height);
        ObbParams o;
        if (config_.bounding == BoundingMode::Obb3Sigma)
            o = obbParamsFor(s);
        for (int by = r.by0; by <= r.by1; ++by) {
            for (int bx = r.bx0; bx <= r.bx1; ++bx) {
                if (config_.bounding == BoundingMode::Obb3Sigma) {
                    float tx0 = static_cast<float>(bx * tile);
                    float ty0 = static_cast<float>(by * tile);
                    if (!obbOverlapsTile(o, tx0, ty0, tx0 + tile,
                                         ty0 + tile))
                        continue;
                }
                tile_lists[static_cast<std::size_t>(by) * tiles_x + bx]
                    .push_back(si);
                ++stats.kv_pairs;
            }
        }
    }

    const auto t_binned = StageClock::now();
    stats.stage.binning_ms += msBetween(t_preprocessed, t_binned);

    // ---- Stage 2: render tile by tile in scanline order. ----
    Image image(width, height);
    std::vector<float> tile_t(static_cast<std::size_t>(tile) * tile);
    std::vector<std::uint8_t> contributed(splats.size(), 0);
    std::vector<std::uint8_t> fetched(splats.size(), 0);
    constexpr int kSub = 8;
    const int sub_n = (tile + kSub - 1) / kSub;
    std::vector<int> sub_live(static_cast<std::size_t>(sub_n) * sub_n);

    for (int by = 0; by < tiles_y; ++by) {
        for (int bx = 0; bx < tiles_x; ++bx) {
            auto &list =
                tile_lists[static_cast<std::size_t>(by) * tiles_x + bx];
            if (list.empty())
                continue;

            // Per-tile depth sort (radix sort on the GPU, bitonic
            // network in GSCore; functionally a stable sort by depth).
            std::stable_sort(list.begin(), list.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                                 return splats[a].depth < splats[b].depth;
                             });
            stats.sorted_keys += static_cast<std::int64_t>(list.size());
            stats.sort_pass_keys += bitonicPassKeys(list.size());

            int x0 = bx * tile;
            int y0 = by * tile;
            int x1 = std::min(x0 + tile, width);
            int y1 = std::min(y0 + tile, height);
            int live = (x1 - x0) * (y1 - y0);
            std::fill(tile_t.begin(), tile_t.end(), 1.0f);

            // Per-subtile live-pixel counts (8x8 granularity): the
            // VRU processes one subtile per array pass in lockstep.
            std::fill(sub_live.begin(), sub_live.end(), 0);
            for (int y = y0; y < y1; ++y)
                for (int x = x0; x < x1; ++x)
                    ++sub_live[((y - y0) / kSub) * sub_n +
                               (x - x0) / kSub];

            for (std::uint32_t si : list) {
                if (live == 0)
                    break;  // whole tile terminated: skip the rest
                ++stats.tile_fetches;
                if (!fetched[si]) {
                    fetched[si] = 1;
                    ++stats.fetched_gaussians;
                }
                const Splat &s = splats[si];

                // Array passes: live subtiles the splat's bounds reach.
                PixelRect sb =
                    aabbFromRadius(s.ellipse.center,
                                   std::max(s.radius_3sigma,
                                            s.radius_omega))
                        .clipped(width, height);
                for (int sy = 0; sy < sub_n; ++sy) {
                    for (int sx = 0; sx < sub_n; ++sx) {
                        if (sub_live[sy * sub_n + sx] == 0)
                            continue;
                        int rx0 = x0 + sx * kSub;
                        int ry0 = y0 + sy * kSub;
                        if (sb.x1 < rx0 || sb.x0 > rx0 + kSub - 1 ||
                            sb.y1 < ry0 || sb.y0 > ry0 + kSub - 1)
                            continue;
                        ++stats.subtile_passes;
                    }
                }

                for (int y = y0; y < y1; ++y) {
                    for (int x = x0; x < x1; ++x) {
                        float &t =
                            tile_t[static_cast<std::size_t>(y - y0) *
                                       tile + (x - x0)];
                        if (t < config_.termination_t)
                            continue;
                        ++stats.alpha_evals;
                        ++stats.pixels_touched;
                        Vec2 p(static_cast<float>(x) + 0.5f,
                               static_cast<float>(y) + 0.5f);
                        float a = s.ellipse.alphaAt(p, s.opacity);
                        if (a < config_.alpha_cutoff)
                            continue;
                        ++stats.blend_ops;
                        if (!contributed[si]) {
                            contributed[si] = 1;
                            ++stats.rendered_gaussians;
                        }
                        image.at(x, y) += s.color * (a * t);
                        t *= 1.0f - a;
                        if (t < config_.termination_t) {
                            --live;
                            --sub_live[((y - y0) / kSub) * sub_n +
                                       (x - x0) / kSub];
                        }
                    }
                }
            }
        }
    }
    stats.stage.raster_ms += msBetween(t_binned, StageClock::now());
    return image;
}

} // namespace gcc3d
