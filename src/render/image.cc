#include "render/image.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

namespace gcc3d {

Image::Image(int width, int height, const Vec3 &fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill)
{
}

void
Image::fill(const Vec3 &value)
{
    std::fill(pixels_.begin(), pixels_.end(), value);
}

bool
Image::writePpm(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << "P6\n" << width_ << " " << height_ << "\n255\n";
    auto to8 = [](float v) {
        float c = std::clamp(v, 0.0f, 1.0f);
        return static_cast<std::uint8_t>(c * 255.0f + 0.5f);
    };
    std::vector<std::uint8_t> row(static_cast<std::size_t>(width_) * 3);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            const Vec3 &p = at(x, y);
            row[3 * x + 0] = to8(p.x);
            row[3 * x + 1] = to8(p.y);
            row[3 * x + 2] = to8(p.z);
        }
        f.write(reinterpret_cast<const char *>(row.data()),
                static_cast<std::streamsize>(row.size()));
    }
    return static_cast<bool>(f);
}

float
Image::meanIntensity() const
{
    if (pixels_.empty())
        return 0.0f;
    double acc = 0.0;
    for (const Vec3 &p : pixels_)
        acc += (p.x + p.y + p.z) / 3.0;
    return static_cast<float>(acc / static_cast<double>(pixels_.size()));
}

} // namespace gcc3d
