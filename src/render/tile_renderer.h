/**
 * @file
 * Standard-dataflow functional renderer: preprocess-then-render with
 * tile-wise rasterization (the pipeline GSCore and the reference GPU
 * rasterizer share, Sec. 2).
 *
 * For a frame: every Gaussian is preprocessed (projection + SH),
 * splats are bound to the fixed-size tiles they overlap (KV pairs),
 * each tile sorts its splats by depth and alpha-blends front-to-back
 * with per-pixel early termination.
 *
 * Besides the image, the renderer reports the dataflow statistics the
 * paper profiles: per-Gaussian tile loads (Fig. 2b), rendered vs
 * preprocessed counts (Fig. 2a), KV pair counts and per-pixel alpha
 * evaluation counts (Table 1, Fig. 11).
 *
 * Two implementations of the frame are kept:
 *
 *  - render(): the fast path — SoA splat store, two-pass CSR tile
 *    binning into one flat key-value array, per-tile LSD radix sort
 *    on monotone depth keys, and per-splat pixel iteration bounded by
 *    the cutoff-safe footprint rect (skipped pixels are accounted
 *    analytically, so the reported hardware stats do not change);
 *  - renderReference(): the direct scalar transcription the fast
 *    path is validated against — nested per-tile vectors, comparator
 *    stable_sort, full-tile pixel sweeps.
 *
 * Both produce bit-identical images and identical StandardFlowStats;
 * tests/test_renderer_equivalence.cc locks that in across bounding
 * modes and tile sizes.
 */

#ifndef GCC3D_RENDER_TILE_RENDERER_H
#define GCC3D_RENDER_TILE_RENDERER_H

#include <cstdint>
#include <vector>

#include "render/image.h"
#include "render/preprocess.h"
#include "render/render_stats.h"
#include "render/splat_soa.h"
#include "render/temporal_cache.h"
#include "scene/camera.h"
#include "scene/gaussian_cloud.h"

namespace gcc3d {

/** Configuration of the standard-dataflow renderer. */
struct TileRendererConfig
{
    int tile_size = 16;                       ///< pixels per tile side
    BoundingMode bounding = BoundingMode::Obb3Sigma;
    float termination_t = 1e-4f;              ///< early-termination T
    float alpha_cutoff = kAlphaMin;           ///< min blended alpha

    /**
     * Opt-in fast-alpha mode: render() evaluates alpha with the
     * vectorized polynomial exponential (simd::simdExp, relative
     * error < 3e-7) instead of std::exp.  NOT bit-identical to
     * renderReference — the contract is perceptual: >= 55 dB PSNR
     * against the exact image on every preset scene
     * (tests/test_renderer_equivalence.cc).  Off by default; every
     * bit-exactness guarantee elsewhere in this header assumes it is
     * off.
     */
    bool fast_alpha = false;

    /**
     * Near-exact settings used as the quality ground truth of Table 2:
     * generous bounds, negligible cutoffs — removes every
     * approximation the three pipelines differ in.
     */
    static TileRendererConfig
    groundTruth()
    {
        TileRendererConfig c;
        c.bounding = BoundingMode::Conservative;
        c.termination_t = 1e-7f;
        c.alpha_cutoff = 1e-6f;
        return c;
    }
};

/**
 * Standard-dataflow renderer (tile-wise, decoupled two-stage).
 *
 * Thread safety: render() keeps all per-frame state on the stack and
 * only reads config_ and its const arguments, so one renderer (or
 * one per thread) may render concurrently, including from a shared
 * const GaussianCloud.  A ThreadPool passed to render() is only used
 * for the preprocess fan-out and may be shared between renderers.
 */
class TileRenderer
{
  public:
    explicit TileRenderer(TileRendererConfig config = {})
        : config_(config) {}

    const TileRendererConfig &config() const { return config_; }

    /**
     * Render a frame (optimized path).
     *
     * @param cloud  the scene
     * @param cam    viewpoint
     * @param stats  populated with dataflow counters
     * @param pool   optional worker pool: fans out the preprocess
     *               stage and the per-tile rasterization loop (tiles
     *               cover disjoint pixels and disjoint slices of the
     *               binned splat lists; per-chunk counters and
     *               unique-splat maps merge deterministically).  Null
     *               renders serially; the image and stats are
     *               bit-identical either way.
     */
    Image render(const GaussianCloud &cloud, const Camera &cam,
                 StandardFlowStats &stats,
                 ThreadPool *pool = nullptr) const;

    /**
     * Render a frame of a trajectory stream with temporal coherence.
     *
     * @p cache carries the cross-frame state (see temporal_cache.h
     * for the tier breakdown and ownership rules).  With
     * cache.options.every == 1 the output is bit-identical to
     * render() of the same (cloud, cam) no matter what the cache
     * held — unchanged tiles copy last frame's composited pixels, a
     * bit-equal camera copies the whole frame, and any scene/config
     * change falls back to a full rebuild.  With every == k > 1,
     * only every k-th frame renders exactly; frames in between are
     * synthesized by per-tile reprojection from the last exact frame
     * (>= 40 dB PSNR contract, bench-enforced).
     *
     * Stats semantics: the flow counters report the work actually
     * performed this frame (a reused tile contributes no sorts or
     * blends; a copied or warped frame contributes almost nothing),
     * so savings show up in the counters as well as the clock.
     * Unique-population counters (fetched/rendered Gaussians) cover
     * only the re-rasterized tiles.  cache.counters() attributes
     * frames and tiles to the path that produced them.
     *
     * Frames of one cache must be rendered sequentially (external
     * happens-before); @p pool only fans out the preprocess stage
     * and dirty-tile rasterization, never frame-level state.
     *
     * @p force_warp asks for a synthesized frame regardless of the
     * every-k cadence (the serving degradation ladder's warp tier;
     * requires cache.options.keep_exact or every > 1 so a warp
     * source exists).  Best-effort: if no exact source is valid yet
     * or the camera left the trust region, the frame renders exactly
     * instead — callers detect which path served the frame via
     * cache.counters().warped_frames.
     */
    Image renderTemporal(const GaussianCloud &cloud, const Camera &cam,
                         StandardFlowStats &stats, TemporalCache &cache,
                         ThreadPool *pool = nullptr,
                         bool force_warp = false) const;

    /**
     * Render a frame through the retained reference implementation
     * (scalar binning into nested vectors, comparator stable_sort,
     * full-tile pixel sweeps).  Used by the equivalence tests and the
     * frame-throughput benchmark as the speedup baseline; produces
     * bit-identical images and stats to render().
     */
    Image renderReference(const GaussianCloud &cloud, const Camera &cam,
                          StandardFlowStats &stats) const;

    /**
     * Tile-binning only: returns the number of tiles each splat maps
     * to under the configured bounding mode (used by Fig. 2b without
     * paying for full rendering).  Shares the coverage helpers of
     * splat_soa.h with the render paths.
     */
    std::vector<int> tilesPerSplat(const std::vector<Splat> &splats,
                                   const Camera &cam) const;

  private:
    TileRendererConfig config_;
};

} // namespace gcc3d

#endif // GCC3D_RENDER_TILE_RENDERER_H
