#include "serve/session.h"

#include <stdexcept>

#include "obs/perf_recorder.h"
#include "runtime/sweep_runner.h"

namespace gcc3d {

std::string
sessionRendererName(SessionRenderer renderer)
{
    switch (renderer) {
    case SessionRenderer::Tile:
        return "tile";
    case SessionRenderer::GaussianWise:
        return "gw";
    }
    return "unknown";
}

SessionRenderer
sessionRendererFromName(const std::string &name)
{
    if (name == "tile")
        return SessionRenderer::Tile;
    if (name == "gw" || name == "gaussian-wise")
        return SessionRenderer::GaussianWise;
    throw std::invalid_argument("unknown session renderer: " + name);
}

Session::Session(SessionConfig config, SceneHandle scene)
    : config_(std::move(config)), scene_(std::move(scene)),
      tile_(config_.tile), gw_(config_.gw)
{
    if ((!scene_.cloud && !scene_.lod) || !scene_.trajectory)
        throw std::invalid_argument("session needs a complete scene handle");
    if (config_.frames < 1)
        throw std::invalid_argument("session needs at least one frame");
    if (static_cast<std::size_t>(config_.frames) >
        scene_.trajectory->frameCount())
        throw std::invalid_argument(
            "session trajectory shorter than requested frames");
    if (config_.fps_target < 0.0)
        throw std::invalid_argument("fps target must be >= 0");
    if (config_.temporal >= 1 &&
        config_.renderer == SessionRenderer::Tile && !scene_.lod) {
        temporal_ = std::make_unique<TemporalCache>();
        temporal_->options.every = config_.temporal;
    }
}

double
Session::periodMs() const
{
    return config_.fps_target > 0.0 ? 1000.0 / config_.fps_target : 0.0;
}

double
Session::renderFrame(int frame) const
{
    return renderFrame(frame, nullptr);
}

double
Session::renderFrame(int frame, FrameStageCost *cost) const
{
    if (frame < 0 || frame >= config_.frames)
        throw std::out_of_range("session frame index out of range");
    // Recorder samples emitted below (renderer laps, LOD decode,
    // chunk decodes) carry this session/frame in the trace.
    obs::FrameTag tag(config_.id, frame);
    const Camera &cam =
        scene_.trajectory->frame(static_cast<std::size_t>(frame));
    // LOD sessions render the camera's cut; resident-cloud sessions
    // render the shared cloud.  Both are pure in (scene, camera).
    GaussianCloud cut;
    const GaussianCloud *cloud = scene_.cloud.get();
    double decode_ms = 0.0;
    if (scene_.lod) {
        obs::PerfScope decode_scope(obs::Stage::Decode, &decode_ms);
        cut = scene_.lod->buildCut(cam, config_.lod_cut);
        cloud = &cut;
    }
    if (config_.renderer == SessionRenderer::Tile) {
        StandardFlowStats stats;
        const Image image =
            temporal_ ? tile_.renderTemporal(*cloud, cam, stats, *temporal_)
                      : tile_.render(*cloud, cam, stats);
        if (cost != nullptr) {
            cost->pre_ms = stats.stage.preprocess_ms;
            cost->bin_ms = stats.stage.binning_ms;
            cost->raster_ms = stats.stage.raster_ms;
            cost->warp_ms = stats.stage.warp_ms;
            cost->decode_ms = decode_ms;
        }
        return imageChecksum(image);
    }
    GaussianWiseStats stats;
    const Image image = gw_.render(*cloud, cam, stats);
    if (cost != nullptr) {
        cost->pre_ms = stats.stage.preprocess_ms;
        cost->bin_ms = stats.stage.binning_ms;
        cost->raster_ms = stats.stage.raster_ms;
        cost->warp_ms = stats.stage.warp_ms;
        cost->decode_ms = decode_ms;
    }
    return imageChecksum(image);
}

} // namespace gcc3d
