#include "serve/session.h"

#include <cmath>
#include <stdexcept>

#include "obs/perf_recorder.h"
#include "runtime/sweep_runner.h"

namespace gcc3d {

std::string
sessionRendererName(SessionRenderer renderer)
{
    switch (renderer) {
    case SessionRenderer::Tile:
        return "tile";
    case SessionRenderer::GaussianWise:
        return "gw";
    }
    return "unknown";
}

SessionRenderer
sessionRendererFromName(const std::string &name)
{
    if (name == "tile")
        return SessionRenderer::Tile;
    if (name == "gw" || name == "gaussian-wise")
        return SessionRenderer::GaussianWise;
    throw std::invalid_argument("unknown session renderer: " + name);
}

const char *
degradeTierName(DegradeTier tier)
{
    switch (tier) {
    case DegradeTier::Full: return "full";
    case DegradeTier::Warp: return "warp";
    case DegradeTier::HalfRes: return "half_res";
    case DegradeTier::CoarseLod: return "coarse_lod";
    case DegradeTier::Drop: return "drop";
    }
    return "unknown";
}

const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
    case ShedReason::None: return "none";
    case ShedReason::Late: return "late";
    case ShedReason::Admission: return "admission";
    case ShedReason::Fairness: return "fairness";
    case ShedReason::Degrade: return "degrade";
    case ShedReason::Disconnect: return "disconnect";
    }
    return "unknown";
}

Session::Session(SessionConfig config, SceneHandle scene)
    : config_(std::move(config)), scene_(std::move(scene)),
      tile_(config_.tile), gw_(config_.gw)
{
    if ((!scene_.cloud && !scene_.lod) || !scene_.trajectory)
        throw std::invalid_argument("session needs a complete scene handle");
    if (config_.frames < 1)
        throw std::invalid_argument("session needs at least one frame");
    if (static_cast<std::size_t>(config_.frames) >
        scene_.trajectory->frameCount())
        throw std::invalid_argument(
            "session trajectory shorter than requested frames");
    if (!(config_.fps_target >= 0.0) || !std::isfinite(config_.fps_target))
        throw std::invalid_argument("fps target must be finite and >= 0");
    if (!std::isfinite(config_.start_ms) || config_.start_ms < 0.0)
        throw std::invalid_argument("start_ms must be finite and >= 0");
    if (config_.degrade &&
        (!(config_.degrade_render_scale > 0.0f) ||
         config_.degrade_render_scale >= 1.0f ||
         !(config_.degrade_tau_factor >= 1.0f)))
        throw std::invalid_argument("degrade knobs out of range");
    // A temporal cache exists when temporal streaming is requested,
    // or when the degradation ladder needs a warp source (keep_exact
    // maintains the exact snapshot + depth buffer at every == 1).
    const bool wants_cache =
        (config_.temporal >= 1 || config_.degrade) &&
        config_.renderer == SessionRenderer::Tile && !scene_.lod;
    if (wants_cache) {
        temporal_ = std::make_unique<TemporalCache>();
        temporal_->options.every = std::max(1, config_.temporal);
        temporal_->options.keep_exact = config_.degrade;
    }
}

double
Session::periodMs() const
{
    return config_.fps_target > 0.0 ? 1000.0 / config_.fps_target : 0.0;
}

double
Session::renderFrame(int frame) const
{
    return renderFrame(frame, nullptr);
}

double
Session::renderFrame(int frame, FrameStageCost *cost) const
{
    if (frame < 0 || frame >= config_.frames)
        throw std::out_of_range("session frame index out of range");
    // Recorder samples emitted below (renderer laps, LOD decode,
    // chunk decodes) carry this session/frame in the trace.
    obs::FrameTag tag(config_.id, frame);
    const Camera &cam =
        scene_.trajectory->frame(static_cast<std::size_t>(frame));
    // LOD sessions render the camera's cut; resident-cloud sessions
    // render the shared cloud.  Both are pure in (scene, camera).
    GaussianCloud cut;
    const GaussianCloud *cloud = scene_.cloud.get();
    double decode_ms = 0.0;
    if (scene_.lod) {
        obs::PerfScope decode_scope(obs::Stage::Decode, &decode_ms);
        cut = scene_.lod->buildCut(cam, config_.lod_cut);
        cloud = &cut;
    }
    if (config_.renderer == SessionRenderer::Tile) {
        StandardFlowStats stats;
        const Image image =
            temporal_ ? tile_.renderTemporal(*cloud, cam, stats, *temporal_)
                      : tile_.render(*cloud, cam, stats);
        if (cost != nullptr) {
            cost->pre_ms = stats.stage.preprocess_ms;
            cost->bin_ms = stats.stage.binning_ms;
            cost->raster_ms = stats.stage.raster_ms;
            cost->warp_ms = stats.stage.warp_ms;
            cost->decode_ms = decode_ms;
        }
        return imageChecksum(image);
    }
    GaussianWiseStats stats;
    const Image image = gw_.render(*cloud, cam, stats);
    if (cost != nullptr) {
        cost->pre_ms = stats.stage.preprocess_ms;
        cost->bin_ms = stats.stage.binning_ms;
        cost->raster_ms = stats.stage.raster_ms;
        cost->warp_ms = stats.stage.warp_ms;
        cost->decode_ms = decode_ms;
    }
    return imageChecksum(image);
}

bool
Session::tierAvailable(DegradeTier tier) const
{
    switch (tier) {
    case DegradeTier::Full:
        return true;
    case DegradeTier::Warp:
        return temporal_ != nullptr;
    case DegradeTier::HalfRes:
        return config_.degrade_render_scale > 0.0f &&
               config_.degrade_render_scale < 1.0f;
    case DegradeTier::CoarseLod:
        return scene_.lod != nullptr;
    case DegradeTier::Drop:
        return false;
    }
    return false;
}

double
Session::renderFrameDegraded(int frame, DegradeTier tier,
                             FrameStageCost *cost,
                             DegradeTier *served) const
{
    if (tier == DegradeTier::Full || tier == DegradeTier::Drop ||
        !tierAvailable(tier)) {
        if (served != nullptr)
            *served = DegradeTier::Full;
        return renderFrame(frame, cost);
    }
    if (frame < 0 || frame >= config_.frames)
        throw std::out_of_range("session frame index out of range");
    obs::FrameTag tag(config_.id, frame);
    const Camera &cam =
        scene_.trajectory->frame(static_cast<std::size_t>(frame));

    if (tier == DegradeTier::Warp) {
        // Forced reprojection from the last exact frame.  Falls back
        // to an exact render when no warp source is valid yet (the
        // fallback also primes the source for the next request).
        StandardFlowStats stats;
        const std::int64_t warped_before =
            temporal_->counters().warped_frames;
        const std::int64_t copied_before =
            temporal_->counters().copied_frames;
        const Image image = tile_.renderTemporal(
            *scene_.cloud, cam, stats, *temporal_, nullptr,
            /*force_warp=*/true);
        if (cost != nullptr) {
            cost->pre_ms = stats.stage.preprocess_ms;
            cost->bin_ms = stats.stage.binning_ms;
            cost->raster_ms = stats.stage.raster_ms;
            cost->warp_ms = stats.stage.warp_ms;
        }
        if (served != nullptr)
            *served = (temporal_->counters().warped_frames > warped_before ||
                       temporal_->counters().copied_frames > copied_before)
                          ? DegradeTier::Warp
                          : DegradeTier::Full;
        return imageChecksum(image);
    }

    // HalfRes / CoarseLod: stateless exact renders with a cheaper
    // camera or cut — the temporal cache is never touched.
    GaussianCloud cut;
    const GaussianCloud *cloud = scene_.cloud.get();
    double decode_ms = 0.0;
    if (scene_.lod) {
        obs::PerfScope decode_scope(obs::Stage::Decode, &decode_ms);
        LodCutParams params = config_.lod_cut;
        if (tier == DegradeTier::CoarseLod)
            params.tau *= config_.degrade_tau_factor;
        cut = scene_.lod->buildCut(cam, params);
        cloud = &cut;
    }
    const Camera render_cam =
        tier == DegradeTier::HalfRes
            ? cam.scaledResolution(config_.degrade_render_scale)
            : cam;
    if (served != nullptr)
        *served = tier;
    if (config_.renderer == SessionRenderer::Tile) {
        StandardFlowStats stats;
        const Image image = tile_.render(*cloud, render_cam, stats);
        if (cost != nullptr) {
            cost->pre_ms = stats.stage.preprocess_ms;
            cost->bin_ms = stats.stage.binning_ms;
            cost->raster_ms = stats.stage.raster_ms;
            cost->warp_ms = stats.stage.warp_ms;
            cost->decode_ms = decode_ms;
        }
        return imageChecksum(image);
    }
    GaussianWiseStats stats;
    const Image image = gw_.render(*cloud, render_cam, stats);
    if (cost != nullptr) {
        cost->pre_ms = stats.stage.preprocess_ms;
        cost->bin_ms = stats.stage.binning_ms;
        cost->raster_ms = stats.stage.raster_ms;
        cost->warp_ms = stats.stage.warp_ms;
        cost->decode_ms = decode_ms;
    }
    return imageChecksum(image);
}

} // namespace gcc3d
