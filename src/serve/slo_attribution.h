/**
 * @file
 * SLO miss attribution: names the dominant cost component of every
 * missed deadline, so "p99 got worse" decomposes into "queue wait
 * under overload" vs "raster got slower" vs "LOD decode stalls"
 * without opening a trace.
 *
 * Classification is deliberately simple and total: a dropped frame is
 * pure queueing (it never rendered); a rendered-but-late frame is
 * charged to the largest entry of {queue wait, preprocess, binning,
 * raster, warp, decode}.  Unknown only appears when every component
 * measured <= 0 — e.g. a GCC3D_OBS=OFF build where the stage costs
 * read zero — and the serve report tracks the named fraction so a
 * regression to "unknown" is visible.
 */

#ifndef GCC3D_SERVE_SLO_ATTRIBUTION_H
#define GCC3D_SERVE_SLO_ATTRIBUTION_H

#include <array>
#include <cstdint>
#include <string>

#include "serve/session.h"

namespace gcc3d {

/** Dominant cost component of a missed deadline. */
enum class MissComponent
{
    Queue = 0,   ///< scheduler queue wait (includes dropped frames)
    Preprocess,  ///< projection/SH/culling
    Binning,     ///< tile / sub-view binning
    Raster,      ///< rasterization
    Warp,        ///< temporal reprojection
    Decode,      ///< LOD cut build
    Unknown,     ///< no component measured > 0
};

inline constexpr int kMissComponentCount =
    static_cast<int>(MissComponent::Unknown) + 1;

/** Stable lower-case component name ("queue", "pre", "bin", ...). */
const char *missComponentName(MissComponent component);

/** Classify one missed frame (see file comment for the rule). */
MissComponent classifyMiss(const FrameRecord &rec);

/** Per-component miss counts; rolls up per session and fleet-wide. */
struct MissAttribution
{
    std::array<std::int64_t, kMissComponentCount> counts{};

    void
    add(MissComponent component)
    {
        ++counts[static_cast<std::size_t>(component)];
    }

    void
    merge(const MissAttribution &other)
    {
        for (int i = 0; i < kMissComponentCount; ++i)
            counts[static_cast<std::size_t>(i)] +=
                other.counts[static_cast<std::size_t>(i)];
    }

    std::int64_t total() const;

    /** Fraction of misses attributed to a real component (not
     *  Unknown); 1.0 when there are no misses at all. */
    double namedFraction() const;

    /** {"queue": N, "pre": N, ..., "unknown": N, "named_fraction": f} */
    std::string toJson() const;
};

} // namespace gcc3d

#endif // GCC3D_SERVE_SLO_ATTRIBUTION_H
