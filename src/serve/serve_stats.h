/**
 * @file
 * Per-session and fleet SLO reporting for the serving subsystem.
 *
 * The scheduler records one FrameRecord per frame (queue wait, render
 * latency, deadline outcome, checksum); this module aggregates those
 * into the questions a serving operator asks: per-session and fleet
 * p50/p90/p99/p99.9 latency, achieved FPS against the target,
 * deadline-miss rate, and dropped frames under overload — plus JSON
 * export (the BENCH_serve.json building block) and a human-readable
 * report table.
 */

#ifndef GCC3D_SERVE_SERVE_STATS_H
#define GCC3D_SERVE_SERVE_STATS_H

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/result_table.h"
#include "serve/session.h"
#include "serve/slo_attribution.h"

namespace gcc3d {

/** Aggregated serving outcome of one session. */
struct SessionStats
{
    int session = 0;
    std::string scene;
    std::string renderer;       ///< "tile" or "gw"
    double fps_target = 0.0;    ///< 0 = best effort

    int frames_total = 0;
    int frames_rendered = 0;
    int frames_dropped = 0;
    int deadline_misses = 0;    ///< rendered but past deadline
    int frames_on_time = 0;     ///< rendered within deadline (goodput)

    /** Rendered frames by degradation tier (Drop stays 0 — dropped
     *  frames are counted in sheds_by_reason / frames_dropped). */
    int tier_frames[kDegradeTierCount] = {0, 0, 0, 0, 0};

    /** Ladder activity: count of frame-to-frame served-tier changes. */
    int degrade_transitions = 0;

    /** Dropped frames by shed reason (index ShedReason). */
    int sheds_by_reason[kShedReasonCount] = {0, 0, 0, 0, 0, 0};

    /** Chaos churn: true when the client disconnected mid-stream;
     *  frames_unserved counts the frames torn down with it. */
    bool disconnected = false;
    int frames_unserved = 0;

    /** Rendered frames over the fleet serving wall time. */
    double achieved_fps = 0.0;

    /**
     * Sum of per-frame checksums in frame order (dropped frames
     * contribute 0) — deterministic, so a scheduled run is compared
     * against serial rendering by a single double.
     */
    double checksum = 0.0;

    Aggregate queue_wait_ms;    ///< over rendered frames
    Aggregate render_ms;        ///< over rendered frames
    Aggregate latency_ms;       ///< released -> completed

    /**
     * Temporal-coherence attribution, snapshotted from the session's
     * TemporalCache at summary time (all zero when the session runs
     * without one).  `temporal` echoes the configured mode so SLO
     * output can attribute the time saved.
     */
    int temporal = 0;                 ///< configured every-k (0 = off)
    TemporalCounters temporal_counters;

    /** Dominant-component attribution of this session's SLO misses
     *  (dropped frames + late renders); see serve/slo_attribution.h. */
    MissAttribution miss_attribution;

    std::vector<FrameRecord> frames;  ///< per-frame detail, frame order
};

/**
 * Aggregate @p frames (already in frame order) for @p session.
 * @p disconnect_frame >= 0 marks a chaos-injected mid-stream
 * disconnect: the session's stream ended there and the remaining
 * configured frames count as unserved, not dropped.
 */
SessionStats summarizeSession(const Session &session,
                              std::vector<FrameRecord> frames,
                              double wall_ms,
                              int disconnect_frame = -1);

/** The full outcome of one FrameScheduler::run. */
struct ServeReport
{
    std::string policy;   ///< scheduler policy name
    int workers = 0;
    double wall_ms = 0.0;
    bool drained = false; ///< true when stopped before completion

    /** Admissible-session count sampled at every dispatch decision —
     *  the scheduler's queue-depth profile under this load. */
    Aggregate queue_depth;

    /** Frames shed by the policy (dropped without rendering). */
    std::int64_t sheds = 0;

    std::vector<SessionStats> sessions;

    int framesTotal() const;
    int framesRendered() const;
    int framesDropped() const;
    int deadlineMisses() const;

    /** Rendered frames that met their deadline (best-effort frames
     *  always count — they have no deadline to miss). */
    int framesOnTime() const;

    /** Chaos churn: sessions that disconnected mid-stream. */
    int disconnects() const;

    /** Fleet ladder activity, summed over sessions. */
    int degradeTransitions() const;

    /** Rendered frames by degradation tier, summed over sessions. */
    void tierTotals(int out[kDegradeTierCount]) const;

    /** Dropped frames by shed reason, summed over sessions. */
    void shedTotals(int out[kShedReasonCount]) const;

    /** Fleet throughput: rendered frames / serving wall time. */
    double fleetFps() const;

    /** Fleet goodput: on-time frames / serving wall time — the
     *  overload metric (late or dropped frames earn nothing). */
    double goodputFps() const;

    /**
     * SLO violations (late renders + dropped frames) over all served
     * frames of deadline-bearing sessions — dropped frames count as
     * missed, so overload shedding cannot make the rate look good.
     */
    double missRate() const;

    /** Fleet-wide latency/queue/render aggregates (rendered frames). */
    Aggregate fleetLatencyMs() const;
    Aggregate fleetQueueWaitMs() const;
    Aggregate fleetRenderMs() const;

    /** Fleet-wide SLO miss attribution (merged over sessions). */
    MissAttribution missAttribution() const;

    /** JSON object (fleet summary + per-session entries). */
    std::string toJson() const;

    /** Human-readable SLO report. */
    void print(std::FILE *out = stdout) const;
};

} // namespace gcc3d

#endif // GCC3D_SERVE_SERVE_STATS_H
