/**
 * @file
 * Deterministic, seeded fault-injection harness.
 *
 * Every injection decision is a pure hash of (seed, site, key): no
 * clocks, no global RNG state, no call-order dependence.  Two runs
 * with the same seed and the same probe keys see the same faults, so
 * chaos runs are reproducible bug reports, not flaky noise.  Call
 * sites that retry fold the attempt number into the key, which is
 * what makes "fails, retries, recovers" a deterministic sequence
 * instead of an infinite loop.
 *
 * The engine records each fired fault in a canonically ordered event
 * log (keyed map, not arrival order) so multi-worker runs still
 * export byte-identical logs for a fixed seed and probe set.
 *
 * Wiring: construct a ChaosEngine from a ChaosConfig, install it with
 * a ChaosScope for the duration of the run.  scene/lod code never
 * sees this header — it probes through obs/fault_hooks.h.
 */

#ifndef GCC3D_SERVE_CHAOS_H
#define GCC3D_SERVE_CHAOS_H

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/fault_hooks.h"
#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"

namespace gcc3d::serve {

/** Rates are independent per-probe probabilities in [0,1]. */
struct ChaosConfig
{
    std::uint64_t seed = 0;          ///< 0 disables everything
    double io_fail_rate = 0.0;       ///< scene .gsc read throws
    double io_truncate_rate = 0.0;   ///< scene .gsc read sees a truncated file
    double decode_fail_rate = 0.0;   ///< LOD chunk decode throws
    double stall_rate = 0.0;         ///< worker stalls before rendering
    double stall_ms = 5.0;           ///< stall duration when it fires
    double disconnect_rate = 0.0;    ///< session leaves mid-stream
    double budget_pressure_rate = 0.0;   ///< transient residency budget squeeze
    double budget_pressure_factor = 0.5; ///< effective budget multiplier when fired
    obs::RetryPolicy retry;          ///< bounded retry/backoff for load paths

    bool enabled() const { return seed != 0; }
};

/** One aggregated log entry: a fault class that fired at a key. */
struct ChaosEvent
{
    obs::FaultSite site{};
    std::uint64_t key = 0;
    double magnitude = 0.0;
    std::uint64_t count = 0;  ///< times this exact fault fired
};

/** SplitMix64 — the repo-sanctioned deterministic bit mixer. */
std::uint64_t chaosMix(std::uint64_t x);

/** Uniform double in [0,1) from a hash of (seed, site-salt, key). */
double chaosHash01(std::uint64_t seed, std::uint64_t salt, std::uint64_t key);

class ChaosEngine final : public obs::FaultInjector
{
  public:
    explicit ChaosEngine(const ChaosConfig &config) : config_(config) {}

    const ChaosConfig &config() const { return config_; }

    /** Deterministic verdict for one probe; records fired faults. */
    obs::FaultAction at(obs::FaultSite site, std::uint64_t key) override;

    /** Frame at which session `session_key` (hash of its id) drops the
     *  connection, or -1 if it stays for all `frames`.  Pure. */
    int disconnectFrame(std::uint64_t session_key, int frames) const;

    /** Fired faults in canonical (site, key) order. */
    std::vector<ChaosEvent> events() const;

    /** Canonical text form of the log — byte-identical across runs
     *  with the same seed and probe set. */
    std::string eventLogText() const;

    std::uint64_t totalFired() const;

  private:
    double rateFor(obs::FaultSite site) const;

    ChaosConfig config_;
    mutable Mutex mutex_;
    std::map<std::tuple<int, std::uint64_t>, ChaosEvent> log_ GUARDED_BY(mutex_);
};

/** Installs the engine into the fault-hook seam for its lifetime. */
class ChaosScope
{
  public:
    explicit ChaosScope(ChaosEngine *engine)
    {
        obs::setFaultInjector(engine && engine->config().enabled() ? engine
                                                                   : nullptr);
    }
    ~ChaosScope() { obs::setFaultInjector(nullptr); }
    ChaosScope(const ChaosScope &) = delete;
    ChaosScope &operator=(const ChaosScope &) = delete;
};

/** Stable 64-bit key for string identifiers (session/scene names). */
std::uint64_t chaosKey(const std::string &name);

}  // namespace gcc3d::serve

#endif  // GCC3D_SERVE_CHAOS_H
