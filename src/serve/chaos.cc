#include "serve/chaos.h"

#include <cstdio>

namespace gcc3d::serve {

std::uint64_t
chaosMix(std::uint64_t x)
{
    // SplitMix64 finalizer (public domain, Vigna).
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double
chaosHash01(std::uint64_t seed, std::uint64_t salt, std::uint64_t key)
{
    std::uint64_t h = chaosMix(chaosMix(seed ^ (salt * 0x9e3779b97f4a7c15ULL)) ^ key);
    // Top 53 bits -> [0,1) with full double precision.
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t
chaosKey(const std::string &name)
{
    // FNV-1a, stable across platforms.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

double
ChaosEngine::rateFor(obs::FaultSite site) const
{
    switch (site) {
    case obs::FaultSite::SceneRead:
        return config_.io_fail_rate + config_.io_truncate_rate;
    case obs::FaultSite::ChunkDecode: return config_.decode_fail_rate;
    case obs::FaultSite::WorkerStall: return config_.stall_rate;
    case obs::FaultSite::Disconnect: return config_.disconnect_rate;
    case obs::FaultSite::BudgetPressure: return config_.budget_pressure_rate;
    }
    return 0.0;
}

obs::FaultAction
ChaosEngine::at(obs::FaultSite site, std::uint64_t key)
{
    if (!config_.enabled()) return {};
    const double rate = rateFor(site);
    if (rate <= 0.0) return {};
    const auto salt = static_cast<std::uint64_t>(site) + 1;
    const double u = chaosHash01(config_.seed, salt, key);
    if (u >= rate) return {};

    obs::FaultAction action;
    action.inject = true;
    switch (site) {
    case obs::FaultSite::SceneRead:
        // Flavor 1 = read failure, 2 = truncation.
        action.magnitude = (u < config_.io_fail_rate) ? 1.0 : 2.0;
        break;
    case obs::FaultSite::ChunkDecode: action.magnitude = 1.0; break;
    case obs::FaultSite::WorkerStall: action.magnitude = config_.stall_ms; break;
    case obs::FaultSite::Disconnect:
        // Secondary hash: where in the stream the disconnect lands.
        action.magnitude = chaosHash01(config_.seed, salt + 17, key);
        break;
    case obs::FaultSite::BudgetPressure:
        action.magnitude = config_.budget_pressure_factor;
        break;
    }

    {
        MutexLock lock(mutex_);
        ChaosEvent &ev = log_[{static_cast<int>(site), key}];
        ev.site = site;
        ev.key = key;
        ev.magnitude = action.magnitude;
        ++ev.count;
    }
    return action;
}

int
ChaosEngine::disconnectFrame(std::uint64_t session_key, int frames) const
{
    if (!config_.enabled() || config_.disconnect_rate <= 0.0 || frames <= 0)
        return -1;
    const auto salt =
        static_cast<std::uint64_t>(obs::FaultSite::Disconnect) + 1;
    const double u = chaosHash01(config_.seed, salt, session_key);
    if (u >= config_.disconnect_rate) return -1;
    const double where = chaosHash01(config_.seed, salt + 17, session_key);
    int frame = static_cast<int>(where * frames);
    if (frame >= frames) frame = frames - 1;
    return frame;
}

std::vector<ChaosEvent>
ChaosEngine::events() const
{
    MutexLock lock(mutex_);
    std::vector<ChaosEvent> out;
    out.reserve(log_.size());
    for (const auto &kv : log_) out.push_back(kv.second);
    return out;
}

std::string
ChaosEngine::eventLogText() const
{
    std::string out;
    for (const ChaosEvent &ev : events()) {
        char line[128];
        std::snprintf(line, sizeof(line), "%s key=%llu mag=%.6f n=%llu\n",
                      obs::faultSiteName(ev.site),
                      static_cast<unsigned long long>(ev.key), ev.magnitude,
                      static_cast<unsigned long long>(ev.count));
        out += line;
    }
    return out;
}

std::uint64_t
ChaosEngine::totalFired() const
{
    MutexLock lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &kv : log_) n += kv.second.count;
    return n;
}

}  // namespace gcc3d::serve
