/**
 * @file
 * Fleet construction and the serial serving baseline.
 *
 * A FleetSpec describes a whole client population the way the serve
 * CLI and benchmark do: N sessions cycling through a scene list and a
 * renderer mix, sharing one frame count, scale and FPS target.
 * buildFleet() resolves it into live Sessions against a SceneRegistry
 * (so sessions viewing the same scene share its immutable state), and
 * renderSerial() is the one-session-at-a-time baseline the scheduled
 * fleet is benchmarked and checksum-verified against.
 */

#ifndef GCC3D_SERVE_FLEET_H
#define GCC3D_SERVE_FLEET_H

#include <vector>

#include "serve/load_gen.h"
#include "serve/scene_registry.h"
#include "serve/session.h"

namespace gcc3d {

/** Declarative description of a session fleet. */
struct FleetSpec
{
    int sessions = 8;       ///< client count
    int frames = 8;         ///< frames streamed per client
    float scale = 1.0f;     ///< population scale in (0, 1]
    double fps_target = 0.0; ///< per-session FPS target; 0 = best effort

    /** Scenes, assigned round-robin across sessions; must not be empty. */
    std::vector<SceneSpec> scenes;

    /** Renderer mix, assigned round-robin; must not be empty. */
    std::vector<SessionRenderer> renderers = {SessionRenderer::Tile};

    TileRendererConfig tile;
    GaussianWiseConfig gw;

    /**
     * When non-empty, every session serves the .gsc v2 LOD scene at
     * this path (built by src/lod/lod_builder) instead of generating
     * its scene; the scene list still supplies the camera paths.
     */
    std::string lod_path;

    /** Leaf-chunk residency budget for the LOD scene (bytes). */
    std::size_t lod_budget_bytes = 256u << 20;

    /** Cut selection shared by every LOD session. */
    LodCutParams lod_cut;

    /**
     * Temporal-coherence mode applied to every Tile resident-cloud
     * session (SessionConfig::temporal): 0 = off, 1 = exact
     * incremental mode, k > 1 = reproject the in-between frames.
     */
    int temporal = 0;

    /**
     * Fraction of each scene's natural camera path the trajectories
     * cover (Trajectory::forSceneArc); 1.0 is the full path.
     * Temporal serving replays shrink this so per-frame camera steps
     * model a headset stream rather than a whirlwind tour.
     */
    float traj_arc = 1.0f;

    /** Opt every session into the graceful-degradation ladder
     *  (SessionConfig::degrade and its knobs). */
    bool degrade = false;
    float degrade_render_scale = 0.5f;
    float degrade_tau_factor = 4.0f;
};

/**
 * Validate and normalize a fleet spec before any scene work: throws
 * std::invalid_argument on degenerate configs that would otherwise
 * flow into the EDF deadline math (negative, NaN or infinite
 * fps_target; sessions/frames < 1; empty scene or renderer lists;
 * out-of-range scale or degrade knobs).  buildFleet() calls this
 * first; callers constructing SessionConfigs by hand can reuse it.
 */
void validateFleetSpec(const FleetSpec &spec);

/**
 * Resolve @p spec into live sessions (ids 0..sessions-1) sharing
 * scene state through @p registry.  Throws on an empty scene or
 * renderer list and on whatever scene building throws.
 */
std::vector<Session> buildFleet(const FleetSpec &spec,
                                SceneRegistry &registry);

/**
 * Resolve an open-loop arrival table (serve/load_gen.h) into live
 * sessions: one session per arrival, joining at arrival.start_ms
 * with its own frame count and FPS target; scenes and renderers are
 * assigned round-robin by arrival slot from @p spec's lists.
 * @p spec's sessions/frames/fps_target fields are ignored — the
 * arrival table is the population.  Scene state is shared through
 * @p registry exactly as in buildFleet.
 */
std::vector<Session> buildOpenLoopFleet(
    const FleetSpec &spec,
    const std::vector<serve::SessionArrival> &arrivals,
    SceneRegistry &registry);

/** Outcome of the serial one-session-at-a-time baseline. */
struct SerialBaseline
{
    double wall_ms = 0.0;
    double fleet_fps = 0.0;           ///< frames rendered / wall time
    std::vector<double> checksums;    ///< per-session frame-order sums
};

/**
 * Render every session's frames in order, one session after another,
 * on the calling thread — the no-scheduler baseline.  The per-session
 * checksums are the ground truth any scheduled run must reproduce.
 */
SerialBaseline renderSerial(const std::vector<Session> &sessions);

} // namespace gcc3d

#endif // GCC3D_SERVE_FLEET_H
