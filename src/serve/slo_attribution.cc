#include "serve/slo_attribution.h"

#include <sstream>
#include <utility>

namespace gcc3d {

const char *
missComponentName(MissComponent component)
{
    switch (component) {
    case MissComponent::Queue:
        return "queue";
    case MissComponent::Preprocess:
        return "pre";
    case MissComponent::Binning:
        return "bin";
    case MissComponent::Raster:
        return "raster";
    case MissComponent::Warp:
        return "warp";
    case MissComponent::Decode:
        return "decode";
    case MissComponent::Unknown:
        return "unknown";
    }
    return "unknown";
}

MissComponent
classifyMiss(const FrameRecord &rec)
{
    // A dropped frame never rendered: the only cost it accrued is
    // sitting in the queue past its deadline.
    if (!rec.rendered)
        return MissComponent::Queue;

    const std::array<std::pair<MissComponent, double>, 6> components = {{
        {MissComponent::Queue, rec.queue_wait_ms},
        {MissComponent::Preprocess, rec.cost.pre_ms},
        {MissComponent::Binning, rec.cost.bin_ms},
        {MissComponent::Raster, rec.cost.raster_ms},
        {MissComponent::Warp, rec.cost.warp_ms},
        {MissComponent::Decode, rec.cost.decode_ms},
    }};
    MissComponent best = MissComponent::Unknown;
    double best_ms = 0.0;
    for (const auto &[component, ms] : components) {
        if (ms > best_ms) {
            best = component;
            best_ms = ms;
        }
    }
    return best;
}

std::int64_t
MissAttribution::total() const
{
    std::int64_t sum = 0;
    for (const std::int64_t n : counts)
        sum += n;
    return sum;
}

double
MissAttribution::namedFraction() const
{
    const std::int64_t all = total();
    if (all == 0)
        return 1.0;
    const std::int64_t unknown =
        counts[static_cast<std::size_t>(MissComponent::Unknown)];
    return static_cast<double>(all - unknown) / static_cast<double>(all);
}

std::string
MissAttribution::toJson() const
{
    std::ostringstream os;
    os << "{";
    for (int i = 0; i < kMissComponentCount; ++i)
        os << "\"" << missComponentName(static_cast<MissComponent>(i))
           << "\": " << counts[static_cast<std::size_t>(i)] << ", ";
    os << "\"named_fraction\": " << namedFraction() << "}";
    return os.str();
}

} // namespace gcc3d
