/**
 * @file
 * SLO-aware multi-session frame scheduling over the ThreadPool.
 *
 * The scheduler serves a fleet of Sessions concurrently: each session
 * streams its trajectory frames in order with at most one frame in
 * flight (a client consumes frames sequentially), and any scheduler
 * worker may render any session's admissible next frame.  Admission
 * is paced by the session's FPS target — frame i of a session with
 * target f is released i/f seconds after serving starts and carries
 * deadline (i+1)/f — while best-effort sessions (target 0) are always
 * released and never miss.
 *
 * Pluggable policies decide which admissible session a free worker
 * serves next:
 *
 *  - Fifo        the frame that has been admissible longest (global
 *                arrival order; long sessions can starve late ones),
 *  - RoundRobin  the session with the fewest frames served (fair
 *                share),
 *  - Edf         earliest deadline first (classic SLO scheduling;
 *                best-effort sessions yield to deadline-bearing ones).
 *
 * Every frame records queue wait, render latency, end-to-end latency
 * and its deadline outcome; under overload, drop_late sheds frames
 * whose deadline has already passed at dispatch instead of rendering
 * them.  Scheduling never changes pixels: frames are pure functions
 * of (scene, camera, config), which the serving benchmark
 * cross-checks against serial rendering by checksum.
 */

#ifndef GCC3D_SERVE_FRAME_SCHEDULER_H
#define GCC3D_SERVE_FRAME_SCHEDULER_H

#include <atomic>
#include <string>
#include <vector>

#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"
#include "runtime/thread_pool.h"
#include "serve/serve_stats.h"
#include "serve/session.h"

namespace gcc3d {

/** Which admissible frame a free worker serves next. */
enum class SchedulerPolicy
{
    Fifo,       ///< longest-admissible first
    RoundRobin, ///< fewest-served session first
    Edf,        ///< earliest deadline first
};

/** Lower-case policy name ("fifo", "rr", "edf"). */
std::string schedulerPolicyName(SchedulerPolicy policy);

/** Parse a policy name ("fifo", "rr", "round-robin", "edf"); throws. */
SchedulerPolicy schedulerPolicyFromName(const std::string &name);

/** Execution knobs of a serving run. */
struct SchedulerOptions
{
    SchedulerPolicy policy = SchedulerPolicy::Fifo;

    /**
     * Concurrent render workers; <= 0 uses every pool worker.
     * Clamped to the pool's worker count.
     */
    int workers = 0;

    /**
     * Overload shedding: drop (instead of render) frames whose
     * deadline has already passed when they are dispatched.  Off by
     * default so benchmark runs render every frame.
     */
    bool drop_late = false;
};

/**
 * Work-queue scheduler executing a session fleet on a ThreadPool.
 *
 * One scheduler instance performs one run() (stop requests are
 * sticky); construct a fresh scheduler per serving run.
 */
class FrameScheduler
{
  public:
    explicit FrameScheduler(SchedulerOptions options = {})
        : options_(options) {}

    FrameScheduler(const FrameScheduler &) = delete;
    FrameScheduler &operator=(const FrameScheduler &) = delete;

    const SchedulerOptions &options() const { return options_; }

    /**
     * Serve every frame of every session to completion (or until
     * requestStop()), blocking the caller.  Worker loops run as pool
     * tasks, so the pool may be shared — but must not be saturated
     * with tasks that wait on this scheduler.
     */
    ServeReport run(const std::vector<Session> &sessions,
                    ThreadPool &pool);

    /**
     * Graceful drain: stop admitting new frames.  Frames already in
     * flight complete and are recorded; run() then returns with every
     * completed frame accounted, and ServeReport::drained = true iff
     * the stop left frames unserved (a fleet that finished first
     * reports drained = false).  Safe to call from any thread, any
     * number of times.
     */
    void requestStop();

    bool stopRequested() const
    {
        return stop_.load(std::memory_order_acquire);
    }

  private:
    struct SessionState;

    SchedulerOptions options_;
    std::atomic<bool> stop_{false};

    /**
     * Guards the per-run SessionState table (a run()-local vector:
     * every field of every SessionState, and the pick()/record logic
     * over them, executes under mutex_ — locals cannot carry
     * GUARDED_BY, so the contract is enforced by construction: the
     * worker lambda only touches states inside its UniqueLock scope).
     * Also the hand-off that makes a temporal session's mutable cache
     * safe: releasing mutex_ after in_flight is set and re-acquiring
     * it on completion orders consecutive frames of one session.
     *
     * gsc-lint: allow(mutex-guard) — the guarded data is run()-local
     * (see above), so no *member* can carry GUARDED_BY(mutex_).
     */
    Mutex mutex_;
    CondVar cv_;
};

} // namespace gcc3d

#endif // GCC3D_SERVE_FRAME_SCHEDULER_H
