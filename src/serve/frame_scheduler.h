/**
 * @file
 * SLO-aware multi-session frame scheduling over the ThreadPool.
 *
 * The scheduler serves a fleet of Sessions concurrently: each session
 * streams its trajectory frames in order with at most one frame in
 * flight (a client consumes frames sequentially), and any scheduler
 * worker may render any session's admissible next frame.  Admission
 * is paced by the session's FPS target — frame i of a session with
 * target f is released i/f seconds after serving starts and carries
 * deadline (i+1)/f — while best-effort sessions (target 0) are always
 * released and never miss.
 *
 * Pluggable policies decide which admissible session a free worker
 * serves next:
 *
 *  - Fifo        the frame that has been admissible longest (global
 *                arrival order; long sessions can starve late ones),
 *  - RoundRobin  the session with the fewest frames served (fair
 *                share),
 *  - Edf         earliest deadline first (classic SLO scheduling;
 *                best-effort sessions yield to deadline-bearing ones).
 *
 * Every frame records queue wait, render latency, end-to-end latency
 * and its deadline outcome; under overload, drop_late sheds frames
 * whose deadline has already passed at dispatch instead of rendering
 * them.  Scheduling never changes pixels: frames are pure functions
 * of (scene, camera, config), which the serving benchmark
 * cross-checks against serial rendering by checksum.
 */

#ifndef GCC3D_SERVE_FRAME_SCHEDULER_H
#define GCC3D_SERVE_FRAME_SCHEDULER_H

#include <atomic>
#include <string>
#include <vector>

#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"
#include "runtime/thread_pool.h"
#include "serve/chaos.h"
#include "serve/serve_stats.h"
#include "serve/session.h"

namespace gcc3d {

/** Which admissible frame a free worker serves next. */
enum class SchedulerPolicy
{
    Fifo,       ///< longest-admissible first
    RoundRobin, ///< fewest-served session first
    Edf,        ///< earliest deadline first
};

/** Lower-case policy name ("fifo", "rr", "edf"). */
std::string schedulerPolicyName(SchedulerPolicy policy);

/** Parse a policy name ("fifo", "rr", "round-robin", "edf"); throws. */
SchedulerPolicy schedulerPolicyFromName(const std::string &name);

/**
 * Admission control, layered on (and strictly earlier than) the
 * --drop-late shed: where drop_late reacts to a deadline that has
 * already passed, admission control sheds frames that are *predicted*
 * hopeless before they burn a worker, caps the aggregate render rate
 * with a token bucket, and keeps one hot session from starving the
 * fleet when resources are scarce.  All gates apply only to
 * deadline-bearing frames; best-effort sessions are never shed.
 */
struct AdmissionOptions
{
    bool enabled = false;

    /** Global render-token refill rate (tokens/s); 0 disables the
     *  bucket.  Each dispatched render consumes one token; a frame
     *  arriving at an empty bucket is shed (ShedReason::Admission). */
    double rate_hz = 0.0;

    /** Token bucket capacity. */
    double burst = 4.0;

    /** Queue depth above which resources count as scarce for the
     *  fairness gate; 0 disables the depth trigger. */
    int max_queue_depth = 0;

    /** Predictive shed: without the degradation ladder, a frame whose
     *  remaining slack is below slack_factor × the session's
     *  predicted Full-tier cost is shed at dispatch. */
    double slack_factor = 1.0;

    /** Fairness cap: under scarcity (empty bucket or deep queue), a
     *  session holding more than fair_share × (fleet average + 1)
     *  dispatched renders yields its slot (ShedReason::Fairness).
     *  0 disables. */
    double fair_share = 0.0;
};

/**
 * Feedback controller of the graceful-degradation ladder: per session
 * and tier, an EWMA of measured render cost predicts whether a tier
 * fits the frame's remaining deadline slack; the scheduler serves the
 * highest-fidelity tier that fits and falls down the ladder —
 * Full → Warp → HalfRes → CoarseLod → Drop — as slack shrinks.
 * Recovery is automatic: when load lightens, slack grows and Full
 * wins again.  Only sessions with SessionConfig::degrade participate.
 */
struct DegradeOptions
{
    bool enabled = false;

    /** A tier fits when predicted_ms <= slack × safety. */
    double safety = 0.9;
};

/** Execution knobs of a serving run. */
struct SchedulerOptions
{
    SchedulerPolicy policy = SchedulerPolicy::Fifo;

    /**
     * Concurrent render workers; <= 0 uses every pool worker.
     * Clamped to the pool's worker count.
     */
    int workers = 0;

    /**
     * Overload shedding: drop (instead of render) frames whose
     * deadline has already passed when they are dispatched.  Off by
     * default so benchmark runs render every frame.
     */
    bool drop_late = false;

    AdmissionOptions admission;
    DegradeOptions degrade;

    /**
     * Fault-injection engine consulted for worker stalls and session
     * disconnects (null = no injection; scene/LOD-level faults flow
     * through obs/fault_hooks.h instead).  The caller owns the engine
     * and keeps it alive for the run.
     */
    serve::ChaosEngine *chaos = nullptr;
};

/**
 * Work-queue scheduler executing a session fleet on a ThreadPool.
 *
 * One scheduler instance performs one run() (stop requests are
 * sticky); construct a fresh scheduler per serving run.
 */
class FrameScheduler
{
  public:
    explicit FrameScheduler(SchedulerOptions options = {})
        : options_(options) {}

    FrameScheduler(const FrameScheduler &) = delete;
    FrameScheduler &operator=(const FrameScheduler &) = delete;

    const SchedulerOptions &options() const { return options_; }

    /**
     * Serve every frame of every session to completion (or until
     * requestStop()), blocking the caller.  Worker loops run as pool
     * tasks, so the pool may be shared — but must not be saturated
     * with tasks that wait on this scheduler.
     */
    ServeReport run(const std::vector<Session> &sessions,
                    ThreadPool &pool);

    /**
     * Graceful drain: stop admitting new frames.  Frames already in
     * flight complete and are recorded; run() then returns with every
     * completed frame accounted, and ServeReport::drained = true iff
     * the stop left frames unserved (a fleet that finished first
     * reports drained = false).  Safe to call from any thread, any
     * number of times.
     */
    void requestStop();

    bool stopRequested() const
    {
        return stop_.load(std::memory_order_acquire);
    }

  private:
    struct SessionState;

    SchedulerOptions options_;
    std::atomic<bool> stop_{false};

    /**
     * Guards the per-run SessionState table (a run()-local vector:
     * every field of every SessionState, and the pick()/record logic
     * over them, executes under mutex_ — locals cannot carry
     * GUARDED_BY, so the contract is enforced by construction: the
     * worker lambda only touches states inside its UniqueLock scope).
     * Also the hand-off that makes a temporal session's mutable cache
     * safe: releasing mutex_ after in_flight is set and re-acquiring
     * it on completion orders consecutive frames of one session.
     *
     * gsc-lint: allow(mutex-guard) — the guarded data is run()-local
     * (see above), so no *member* can carry GUARDED_BY(mutex_).
     */
    Mutex mutex_;
    CondVar cv_;
};

} // namespace gcc3d

#endif // GCC3D_SERVE_FRAME_SCHEDULER_H
