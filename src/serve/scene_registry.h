/**
 * @file
 * Shared immutable scene state for multi-session serving.
 *
 * Many concurrent render sessions typically view a handful of scenes
 * (every headset in a venue streams the same venue model).  The
 * registry deduplicates that state: the first acquire() of a (spec,
 * scale, frames) key builds the GaussianCloud and Trajectory once —
 * optionally through the .gsc scene cache — and every later acquire()
 * of the same key returns shared_ptrs to the same immutable objects.
 * Both renderers document that concurrent rendering from a shared
 * const cloud is safe, so sessions never copy scene data.
 *
 * Clouds and trajectories are refcounted separately: sessions that
 * view the same scene through different trajectory lengths still
 * share the (much larger) cloud.
 */

#ifndef GCC3D_SERVE_SCENE_REGISTRY_H
#define GCC3D_SERVE_SCENE_REGISTRY_H

#include <map>
#include <memory>
#include <string>

#include "lod/lod_scene.h"
#include "runtime/mutex.h"
#include "runtime/thread_annotations.h"
#include "scene/scene_generator.h"
#include "scene/trajectory.h"

namespace gcc3d {

/**
 * Refcounted handles to one scene's serving state.  Exactly one of
 * cloud/lod is set: cloud for fully-resident scenes, lod for .gsc v2
 * LOD scenes served under a memory budget (sessions build a per-frame
 * cut instead of sharing one cloud).  The LodScene is shared across
 * sessions — its residency cache is thread-safe, and cut content is a
 * pure function of the camera, so sharing never changes pixels.
 */
struct SceneHandle
{
    std::shared_ptr<const GaussianCloud> cloud;
    std::shared_ptr<LodScene> lod;
    std::shared_ptr<const Trajectory> trajectory;
};

/** Thread-safe build-once cache of scene state shared across sessions. */
class SceneRegistry
{
  public:
    /** @param cache_dir .gsc cache for cloud builds; empty disables. */
    explicit SceneRegistry(std::string cache_dir = "")
        : cache_dir_(std::move(cache_dir)) {}

    SceneRegistry(const SceneRegistry &) = delete;
    SceneRegistry &operator=(const SceneRegistry &) = delete;

    /**
     * The shared handle for (spec, scale, frames, traj_arc); built on
     * first use.  @p traj_arc is the fraction of the scene's natural
     * camera path the trajectory covers in the same frame count
     * (Trajectory::forSceneArc) — 1.0 is the full path; smaller
     * values give the slow-motion streams temporal serving replays.
     * The arc is part of the trajectory key but not the cloud key, so
     * sessions at different arcs still share the cloud.  Throws what
     * scene generation/loading throws (on scale out of (0, 1] for
     * instance); a failed build is not cached.
     */
    SceneHandle acquire(const SceneSpec &spec, float scale, int frames,
                        float traj_arc = 1.0f);

    /**
     * The shared handle for the .gsc v2 LOD scene at @p path served
     * under @p budget_bytes of leaf-chunk residency; @p spec supplies
     * the camera path (trajectory + image size), not the content.
     * Sessions asking for the same (path, budget) share one LodScene
     * and with it one residency cache.  Throws what LodScene's
     * constructor throws on a missing or malformed file.
     */
    SceneHandle acquireLod(const std::string &path,
                           std::size_t budget_bytes, const SceneSpec &spec,
                           int frames, float traj_arc = 1.0f);

    /** Distinct clouds built so far (deduplication observability). */
    std::size_t cloudCount() const;

    /** Distinct trajectories built so far. */
    std::size_t trajectoryCount() const;

    const std::string &cacheDir() const { return cache_dir_; }

  private:
    std::string cache_dir_;  ///< immutable after construction

    /**
     * One registry-wide mutex guards all three dedup maps: builds of
     * distinct scenes serialize, which is acceptable because fleets
     * reuse few scenes and admission happens once per session, not
     * per frame.  The mapped objects themselves are immutable (or,
     * for LodScene, internally synchronized), so only the maps need
     * the lock.
     */
    mutable Mutex mutex_;
    std::map<std::string, std::shared_ptr<const GaussianCloud>>
        clouds_ GUARDED_BY(mutex_);
    std::map<std::string, std::shared_ptr<LodScene>>
        lod_scenes_ GUARDED_BY(mutex_);
    std::map<std::string, std::shared_ptr<const Trajectory>>
        trajectories_ GUARDED_BY(mutex_);
};

} // namespace gcc3d

#endif // GCC3D_SERVE_SCENE_REGISTRY_H
