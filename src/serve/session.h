/**
 * @file
 * One client's render session.
 *
 * A Session binds a client id to shared immutable scene state (from
 * the SceneRegistry), a Trajectory-driven camera stream, and a
 * renderer configuration — either the standard tile-wise renderer or
 * the Gaussian-wise (GCC-dataflow) renderer, with Compatibility Mode
 * and conditional processing as per-session knobs.  Frames are pure
 * functions of (scene, trajectory frame, config): rendering frame i
 * of a session yields the same pixels whether it runs serially, on a
 * scheduler worker, or interleaved with other sessions — the property
 * the serving benchmark cross-checks by checksum.
 */

#ifndef GCC3D_SERVE_SESSION_H
#define GCC3D_SERVE_SESSION_H

#include <memory>
#include <string>

#include "render/gaussian_wise_renderer.h"
#include "render/temporal_cache.h"
#include "render/tile_renderer.h"
#include "serve/scene_registry.h"

namespace gcc3d {

/** Which functional renderer a session streams through. */
enum class SessionRenderer
{
    Tile,         ///< standard dataflow (tile-wise)
    GaussianWise, ///< GCC dataflow (Gaussian-wise)
};

/** Lower-case renderer name ("tile", "gw"). */
std::string sessionRendererName(SessionRenderer renderer);

/** Parse a renderer name ("tile", "gw", "gaussian-wise"); throws. */
SessionRenderer sessionRendererFromName(const std::string &name);

/**
 * The graceful-degradation ladder, cheapest-acceptable-first.  Under
 * overload the scheduler's feedback controller walks down the ladder
 * until the predicted frame cost fits the remaining deadline slack:
 *
 *   Full      exact full-resolution render (the only tier that exists
 *             with degradation disabled),
 *   Warp      temporal reprojection from the session's last exact
 *             frame (resident-cloud Tile sessions with a temporal
 *             cache; >= 40 dB PSNR contract, bench-enforced),
 *   HalfRes   exact render at a reduced resolution
 *             (SessionConfig::degrade_render_scale),
 *   CoarseLod LOD sessions only: cut built with tau scaled by
 *             degrade_tau_factor (coarser proxies, fewer leaves),
 *   Drop      nothing delivered — the ladder's floor, equivalent to
 *             an admission shed.
 */
enum class DegradeTier
{
    Full = 0,
    Warp,
    HalfRes,
    CoarseLod,
    Drop,
};

constexpr int kDegradeTierCount = 5;

/** Stable lower-case tier name ("full", "warp", "half_res", ...). */
const char *degradeTierName(DegradeTier tier);

/** Why the scheduler shed (or served) a frame. */
enum class ShedReason
{
    None = 0,    ///< frame was rendered
    Late,        ///< past deadline at dispatch (--drop-late)
    Admission,   ///< token bucket / predicted-late admission control
    Fairness,    ///< hot session yielded under scarcity
    Degrade,     ///< ladder walked to Drop: no tier fit the slack
    Disconnect,  ///< session left before this frame (chaos)
};

constexpr int kShedReasonCount = 6;

/** Stable lower-case reason name ("late", "admission", ...). */
const char *shedReasonName(ShedReason reason);

/** Full description of one client's stream. */
struct SessionConfig
{
    int id = 0;                 ///< client id, unique within a fleet
    SceneSpec spec;             ///< scene viewed (resolved preset)
    float scale = 1.0f;         ///< population scale in (0, 1]
    int frames = 8;             ///< frames requested along the path

    SessionRenderer renderer = SessionRenderer::Tile;
    TileRendererConfig tile;    ///< used when renderer == Tile
    GaussianWiseConfig gw;      ///< used when renderer == GaussianWise

    /** LOD cut selection, used when the scene handle is a LodScene. */
    LodCutParams lod_cut;

    /**
     * Per-session FPS target; frame i's deadline is (i+1)/fps_target
     * after serving starts.  0 = best effort (no deadlines, never
     * counted as missed).  Must be finite and >= 0 (the constructor
     * validates, so degenerate targets can never reach the EDF
     * deadline math).
     */
    double fps_target = 0.0;

    /**
     * Open-loop arrival offset: the session joins start_ms after
     * serving starts, so frame i releases at start_ms + i/fps_target
     * and carries deadline start_ms + (i+1)/fps_target.  0 (the
     * closed-loop default) preserves the historical timeline.
     */
    double start_ms = 0.0;

    /**
     * Opt into the graceful-degradation ladder: the scheduler may
     * serve this session Warp/HalfRes/CoarseLod frames when the
     * deadline slack cannot fit a Full render.  Off by default —
     * every existing checksum guarantee assumes exact frames.
     */
    bool degrade = false;

    /** Resolution multiplier of the HalfRes tier, in (0, 1). */
    float degrade_render_scale = 0.5f;

    /** Tau multiplier of the CoarseLod tier (> 1 = coarser cut). */
    float degrade_tau_factor = 4.0f;

    /**
     * Temporal-coherence mode for Tile resident-cloud sessions:
     * 0 disables it (the stateless render() path); k >= 1 streams
     * frames through a per-session TemporalCache with
     * options.every = k — 1 is exact incremental mode (bit-identical
     * to stateless rendering), k > 1 synthesizes the in-between
     * frames by reprojection under the >= 40 dB PSNR contract.
     * Ignored by GaussianWise sessions and by LOD sessions, whose
     * per-frame cut rebuild would invalidate the cache every frame.
     */
    int temporal = 0;
};

/**
 * Per-stage cost breakdown of one rendered frame, the evidence SLO
 * miss attribution (serve/slo_attribution.h) argmaxes over.  Filled
 * by Session::renderFrame from the renderer's StageTimes plus the
 * session-level LOD cut build; all zeros when the frame was dropped
 * or the observability hooks are compiled out (GCC3D_OBS=OFF), in
 * which case misses attribute to queue wait or "unknown".
 */
struct FrameStageCost
{
    double pre_ms = 0.0;     ///< projection/SH/culling
    double bin_ms = 0.0;     ///< tile / sub-view binning
    double raster_ms = 0.0;  ///< rasterization
    double warp_ms = 0.0;    ///< temporal reprojection
    double decode_ms = 0.0;  ///< LOD cut build (chunk decodes inside)
};

/** The outcome of rendering (or dropping) one session frame. */
struct FrameRecord
{
    int frame = 0;               ///< trajectory frame index
    bool rendered = false;       ///< false = dropped under overload
    bool deadline_missed = false;
    double queue_wait_ms = 0.0;  ///< admissible -> dispatched
    double render_ms = 0.0;      ///< render call wall time
    double latency_ms = 0.0;     ///< released -> completed (SLO metric)
    double checksum = 0.0;       ///< pixel fingerprint (0 when dropped)
    DegradeTier tier = DegradeTier::Full;  ///< ladder tier served
    ShedReason shed_reason = ShedReason::None;  ///< set when !rendered
    FrameStageCost cost;         ///< where render_ms went
};

/**
 * A live session: config + shared scene handle + renderer instances.
 *
 * Thread safety: renderFrame() is const and keeps all frame state on
 * the stack (both renderers document the same), so any worker may
 * render any session's frame; the scheduler still serves each
 * session's frames in order, one in flight, as a client consuming a
 * stream would.  A temporal session additionally carries mutable
 * cross-frame cache state: the in-order, one-in-flight invariant
 * (whose mutex hand-off provides the happens-before between
 * consecutive frames) is then a requirement, not just a fidelity
 * choice — exactly what FrameScheduler and renderSerial() guarantee.
 */
class Session
{
  public:
    /**
     * @param config  the stream description
     * @param scene   shared handle; its trajectory must cover
     *                config.frames frames
     */
    Session(SessionConfig config, SceneHandle scene);

    const SessionConfig &config() const { return config_; }
    int id() const { return config_.id; }
    int frameCount() const { return config_.frames; }
    const SceneHandle &scene() const { return scene_; }

    /** Frame period implied by the FPS target (0 when best-effort). */
    double periodMs() const;

    /**
     * Render trajectory frame @p frame through the configured
     * renderer and return the image checksum.  Pure: identical
     * arguments give bit-identical pixels on any thread.  LOD
     * sessions first build the frame's cut (a pure function of the
     * camera — residency cache state never changes it), so the
     * purity guarantee survives budget pressure.
     */
    double renderFrame(int frame) const;

    /**
     * As above, additionally reporting the frame's per-stage cost
     * breakdown into @p cost (may be null).  Rendering runs under an
     * obs::FrameTag, so recorder samples from inside the renderers
     * carry this session/frame.
     */
    double renderFrame(int frame, FrameStageCost *cost) const;

    /**
     * True iff this session can serve @p tier at all: Full always,
     * Warp needs a temporal cache (Tile, resident cloud), HalfRes
     * needs a valid degrade_render_scale, CoarseLod needs an LOD
     * scene.  Drop is never "available" — it is the absence of a
     * frame.
     */
    bool tierAvailable(DegradeTier tier) const;

    /**
     * Render frame @p frame at the requested ladder tier.  Best
     * effort: a Warp request without a valid warp source (first
     * frame, trust region exceeded) renders Full instead, and an
     * unavailable tier falls back to Full; @p served (may be null)
     * reports the tier actually delivered.  Degraded tiers are
     * stateless — they never advance the temporal cache, so the
     * next Full frame is unaffected.  Deterministic in (session
     * state, frame, tier) like renderFrame.
     */
    double renderFrameDegraded(int frame, DegradeTier tier,
                               FrameStageCost *cost,
                               DegradeTier *served) const;

    /**
     * The session's temporal cache, or null when config.temporal is
     * 0 or the session type doesn't support one.  Counters feed the
     * serve report; options are owned by the session.
     */
    const TemporalCache *temporalCache() const { return temporal_.get(); }

    /**
     * Drop the temporal cache's cross-frame state (no-op without a
     * cache).  Called before every independent replay of the
     * trajectory — the serial baseline and each scheduler policy run
     * — so every replay sees the same frame sequence and reproduces
     * the same checksums.
     */
    void
    resetTemporal() const
    {
        if (temporal_)
            temporal_->reset();
    }

  private:
    SessionConfig config_;
    SceneHandle scene_;
    TileRenderer tile_;
    GaussianWiseRenderer gw_;
    /** Cross-frame temporal state; mutated by const renderFrame()
     *  under the caller's in-order one-in-flight guarantee. */
    mutable std::unique_ptr<TemporalCache> temporal_;
};

} // namespace gcc3d

#endif // GCC3D_SERVE_SESSION_H
