#include "serve/scene_registry.h"

#include <cstdio>
#include <stdexcept>

#include "scene/scene_io.h"

namespace gcc3d {

namespace {

/**
 * Trajectory cache key: the scene identity plus every camera field
 * (and the frame count) that the cloud key deliberately excludes.
 */
std::string
trajectoryKey(const std::string &scene_key, const SceneSpec &spec,
              int frames, float traj_arc)
{
    char cam[160];
    std::snprintf(cam, sizeof cam, "#f%d#%dx%d|%.9g|%.9g|%.9g|a%.9g",
                  frames, spec.image_width, spec.image_height,
                  static_cast<double>(spec.fov_x),
                  static_cast<double>(spec.camera_distance),
                  static_cast<double>(spec.camera_height),
                  static_cast<double>(traj_arc));
    return scene_key + cam;
}

} // namespace

SceneHandle
SceneRegistry::acquire(const SceneSpec &spec, float scale, int frames,
                       float traj_arc)
{
    if (scale <= 0.0f || scale > 1.0f)
        throw std::invalid_argument("scene scale must be in (0, 1]");
    if (frames < 1)
        throw std::invalid_argument("session needs at least one frame");

    // sceneGenKey covers every generation-determining field, so two
    // specs share a cloud exactly when generation would produce the
    // same one.
    const std::string ckey = sceneGenKey(spec, scale);
    const std::string tkey = trajectoryKey(ckey, spec, frames, traj_arc);

    MutexLock lock(mutex_);
    SceneHandle handle;

    auto cit = clouds_.find(ckey);
    if (cit == clouds_.end()) {
        auto cloud = std::make_shared<const GaussianCloud>(
            loadOrGenerateScene(spec, scale, cache_dir_));
        cit = clouds_.emplace(ckey, std::move(cloud)).first;
    }
    handle.cloud = cit->second;

    auto tit = trajectories_.find(tkey);
    if (tit == trajectories_.end()) {
        auto traj = std::make_shared<const Trajectory>(
            Trajectory::forSceneArc(spec, frames, traj_arc));
        tit = trajectories_.emplace(tkey, std::move(traj)).first;
    }
    handle.trajectory = tit->second;
    return handle;
}

SceneHandle
SceneRegistry::acquireLod(const std::string &path,
                          std::size_t budget_bytes, const SceneSpec &spec,
                          int frames, float traj_arc)
{
    if (frames < 1)
        throw std::invalid_argument("session needs at least one frame");

    // The file is the scene identity; the budget changes residency
    // behaviour (though never pixels), so each budget gets its own
    // LodScene and cache.
    const std::string lkey = path + "#b" + std::to_string(budget_bytes);
    const std::string tkey = trajectoryKey(lkey, spec, frames, traj_arc);

    MutexLock lock(mutex_);
    SceneHandle handle;

    auto lit = lod_scenes_.find(lkey);
    if (lit == lod_scenes_.end()) {
        auto lod = std::make_shared<LodScene>(path, budget_bytes);
        lit = lod_scenes_.emplace(lkey, std::move(lod)).first;
    }
    handle.lod = lit->second;

    auto tit = trajectories_.find(tkey);
    if (tit == trajectories_.end()) {
        auto traj = std::make_shared<const Trajectory>(
            Trajectory::forSceneArc(spec, frames, traj_arc));
        tit = trajectories_.emplace(tkey, std::move(traj)).first;
    }
    handle.trajectory = tit->second;
    return handle;
}

std::size_t
SceneRegistry::cloudCount() const
{
    MutexLock lock(mutex_);
    return clouds_.size();
}

std::size_t
SceneRegistry::trajectoryCount() const
{
    MutexLock lock(mutex_);
    return trajectories_.size();
}

} // namespace gcc3d
