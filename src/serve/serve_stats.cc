#include "serve/serve_stats.h"

#include <limits>
#include <sstream>

namespace gcc3d {

namespace {

/** Collect one FrameRecord field over the rendered frames of a fleet. */
template <typename Getter>
std::vector<double>
collectRendered(const std::vector<SessionStats> &sessions, Getter get)
{
    std::vector<double> values;
    for (const SessionStats &s : sessions)
        for (const FrameRecord &f : s.frames)
            if (f.rendered)
                values.push_back(get(f));
    return values;
}

} // namespace

SessionStats
summarizeSession(const Session &session, std::vector<FrameRecord> frames,
                 double wall_ms, int disconnect_frame)
{
    const SessionConfig &cfg = session.config();
    SessionStats s;
    s.session = cfg.id;
    s.scene = cfg.spec.name;
    s.renderer = sessionRendererName(cfg.renderer);
    s.fps_target = cfg.fps_target;
    s.frames_total = cfg.frames;
    if (disconnect_frame >= 0) {
        s.disconnected = true;
        s.frames_unserved = cfg.frames - disconnect_frame;
    }
    if (const TemporalCache *tc = session.temporalCache()) {
        s.temporal = cfg.temporal;
        s.temporal_counters = tc->counters();
    }

    bool have_tier = false;
    DegradeTier last = DegradeTier::Full;
    std::vector<double> waits, renders, latencies;
    for (const FrameRecord &f : frames) {
        if (!f.rendered) {
            ++s.frames_dropped;
            const int r = static_cast<int>(f.shed_reason);
            if (r >= 0 && r < kShedReasonCount)
                ++s.sheds_by_reason[r];
            s.miss_attribution.add(classifyMiss(f));
            continue;
        }
        ++s.frames_rendered;
        const int t = static_cast<int>(f.tier);
        if (t >= 0 && t < kDegradeTierCount)
            ++s.tier_frames[t];
        if (have_tier && f.tier != last)
            ++s.degrade_transitions;
        have_tier = true;
        last = f.tier;
        if (f.deadline_missed) {
            ++s.deadline_misses;
            s.miss_attribution.add(classifyMiss(f));
        } else {
            ++s.frames_on_time;
        }
        s.checksum += f.checksum;  // frame order: deterministic sum
        waits.push_back(f.queue_wait_ms);
        renders.push_back(f.render_ms);
        latencies.push_back(f.latency_ms);
    }
    s.achieved_fps =
        wall_ms > 0.0 ? s.frames_rendered * 1000.0 / wall_ms : 0.0;
    s.queue_wait_ms = aggregate(std::move(waits));
    s.render_ms = aggregate(std::move(renders));
    s.latency_ms = aggregate(std::move(latencies));
    s.frames = std::move(frames);
    return s;
}

int
ServeReport::framesTotal() const
{
    int n = 0;
    for (const SessionStats &s : sessions)
        n += s.frames_total;
    return n;
}

int
ServeReport::framesRendered() const
{
    int n = 0;
    for (const SessionStats &s : sessions)
        n += s.frames_rendered;
    return n;
}

int
ServeReport::framesDropped() const
{
    int n = 0;
    for (const SessionStats &s : sessions)
        n += s.frames_dropped;
    return n;
}

int
ServeReport::deadlineMisses() const
{
    int n = 0;
    for (const SessionStats &s : sessions)
        n += s.deadline_misses;
    return n;
}

int
ServeReport::framesOnTime() const
{
    int n = 0;
    for (const SessionStats &s : sessions)
        n += s.frames_on_time;
    return n;
}

int
ServeReport::disconnects() const
{
    int n = 0;
    for (const SessionStats &s : sessions)
        n += s.disconnected ? 1 : 0;
    return n;
}

int
ServeReport::degradeTransitions() const
{
    int n = 0;
    for (const SessionStats &s : sessions)
        n += s.degrade_transitions;
    return n;
}

void
ServeReport::tierTotals(int out[kDegradeTierCount]) const
{
    for (int t = 0; t < kDegradeTierCount; ++t)
        out[t] = 0;
    for (const SessionStats &s : sessions)
        for (int t = 0; t < kDegradeTierCount; ++t)
            out[t] += s.tier_frames[t];
}

void
ServeReport::shedTotals(int out[kShedReasonCount]) const
{
    for (int r = 0; r < kShedReasonCount; ++r)
        out[r] = 0;
    for (const SessionStats &s : sessions)
        for (int r = 0; r < kShedReasonCount; ++r)
            out[r] += s.sheds_by_reason[r];
}

double
ServeReport::fleetFps() const
{
    return wall_ms > 0.0 ? framesRendered() * 1000.0 / wall_ms : 0.0;
}

double
ServeReport::goodputFps() const
{
    return wall_ms > 0.0 ? framesOnTime() * 1000.0 / wall_ms : 0.0;
}

double
ServeReport::missRate() const
{
    // A dropped frame is an SLO violation too — it was never
    // delivered, let alone on time — so shedding under overload must
    // push the miss rate toward 1, not hide the violations.
    int served_with_deadline = 0;
    int violations = 0;
    for (const SessionStats &s : sessions) {
        if (s.fps_target <= 0.0)
            continue;
        served_with_deadline += s.frames_rendered + s.frames_dropped;
        violations += s.deadline_misses + s.frames_dropped;
    }
    return served_with_deadline > 0
               ? static_cast<double>(violations) / served_with_deadline
               : 0.0;
}

Aggregate
ServeReport::fleetLatencyMs() const
{
    return aggregate(collectRendered(
        sessions, [](const FrameRecord &f) { return f.latency_ms; }));
}

Aggregate
ServeReport::fleetQueueWaitMs() const
{
    return aggregate(collectRendered(
        sessions, [](const FrameRecord &f) { return f.queue_wait_ms; }));
}

Aggregate
ServeReport::fleetRenderMs() const
{
    return aggregate(collectRendered(
        sessions, [](const FrameRecord &f) { return f.render_ms; }));
}

MissAttribution
ServeReport::missAttribution() const
{
    MissAttribution fleet;
    for (const SessionStats &s : sessions)
        fleet.merge(s.miss_attribution);
    return fleet;
}

std::string
ServeReport::toJson() const
{
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"policy\": \"" << policy << "\",\n"
       << "  \"workers\": " << workers << ",\n"
       << "  \"wall_ms\": " << wall_ms << ",\n"
       << "  \"drained\": " << (drained ? "true" : "false") << ",\n"
       << "  \"fleet\": {\"frames_total\": " << framesTotal()
       << ", \"frames_rendered\": " << framesRendered()
       << ", \"frames_dropped\": " << framesDropped()
       << ", \"deadline_misses\": " << deadlineMisses()
       << ", \"fleet_fps\": " << fleetFps()
       << ", \"goodput_fps\": " << goodputFps()
       << ", \"frames_on_time\": " << framesOnTime()
       << ", \"miss_rate\": " << missRate()
       << ", \"sheds\": " << sheds << ",\n";
    int tiers[kDegradeTierCount];
    tierTotals(tiers);
    os << "    \"degradation\": {";
    for (int t = 0; t < kDegradeTierCount; ++t)
        os << "\"" << degradeTierName(static_cast<DegradeTier>(t))
           << "\": " << tiers[t] << ", ";
    os << "\"transitions\": " << degradeTransitions() << "},\n";
    int reasons[kShedReasonCount];
    shedTotals(reasons);
    os << "    \"admission\": {";
    for (int r = 1; r < kShedReasonCount; ++r)
        os << "\"" << shedReasonName(static_cast<ShedReason>(r))
           << "\": " << reasons[r] << (r + 1 < kShedReasonCount ? ", " : "");
    os << ", \"disconnects\": " << disconnects() << "},\n"
       << "    \"latency_ms\": " << aggregateJson(fleetLatencyMs())
       << ",\n    \"queue_wait_ms\": " << aggregateJson(fleetQueueWaitMs())
       << ",\n    \"render_ms\": " << aggregateJson(fleetRenderMs())
       << ",\n    \"queue_depth\": " << aggregateJson(queue_depth)
       << ",\n    \"miss_attribution\": " << missAttribution().toJson()
       << "},\n  \"sessions\": [\n";
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        const SessionStats &s = sessions[i];
        os << "    {\"session\": " << s.session << ", \"scene\": \""
           << s.scene << "\", \"renderer\": \"" << s.renderer
           << "\", \"fps_target\": " << s.fps_target
           << ", \"frames_total\": " << s.frames_total
           << ", \"frames_rendered\": " << s.frames_rendered
           << ", \"frames_dropped\": " << s.frames_dropped
           << ", \"deadline_misses\": " << s.deadline_misses
           << ", \"frames_on_time\": " << s.frames_on_time
           << ", \"degrade_transitions\": " << s.degrade_transitions
           << ", \"disconnected\": " << (s.disconnected ? "true" : "false")
           << ", \"frames_unserved\": " << s.frames_unserved
           << ", \"achieved_fps\": " << s.achieved_fps
           << ", \"checksum\": " << s.checksum
           << ", \"temporal\": " << s.temporal
           << ",\n     \"temporal_counters\": {\"frames\": "
           << s.temporal_counters.frames
           << ", \"exact\": " << s.temporal_counters.exact_frames
           << ", \"copied\": " << s.temporal_counters.copied_frames
           << ", \"warped\": " << s.temporal_counters.warped_frames
           << ", \"full_rebuilds\": " << s.temporal_counters.full_rebuilds
           << ", \"incremental\": "
           << s.temporal_counters.incremental_frames
           << ", \"tiles_total\": " << s.temporal_counters.tiles_total
           << ", \"tiles_reused\": " << s.temporal_counters.tiles_reused
           << ", \"tiles_rastered\": "
           << s.temporal_counters.tiles_rastered
           << ", \"tiles_patched\": " << s.temporal_counters.tiles_patched
           << ", \"tiles_resorted\": "
           << s.temporal_counters.tiles_resorted
           << ", \"splats_changed\": "
           << s.temporal_counters.splats_changed << "}"
           << ",\n     \"latency_ms\": " << aggregateJson(s.latency_ms)
           << ",\n     \"queue_wait_ms\": "
           << aggregateJson(s.queue_wait_ms)
           << ",\n     \"render_ms\": " << aggregateJson(s.render_ms)
           << ",\n     \"miss_attribution\": "
           << s.miss_attribution.toJson()
           << "}" << (i + 1 < sessions.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
ServeReport::print(std::FILE *out) const
{
    std::fprintf(out,
                 "serve: policy %s, %d workers, wall %.1f ms%s\n",
                 policy.c_str(), workers, wall_ms,
                 drained ? " (drained before completion)" : "");
    std::fprintf(out,
                 "%-4s %-10s %-5s %7s %5s %5s %5s %8s %8s %8s %8s %8s\n",
                 "id", "scene", "rend", "target", "done", "drop", "miss",
                 "fps", "lat_p50", "lat_p99", "wait_p50", "rend_p50");
    for (const SessionStats &s : sessions)
        std::fprintf(out,
                     "%-4d %-10s %-5s %7.1f %5d %5d %5d %8.2f %8.2f "
                     "%8.2f %8.2f %8.2f\n",
                     s.session, s.scene.c_str(), s.renderer.c_str(),
                     s.fps_target, s.frames_rendered, s.frames_dropped,
                     s.deadline_misses, s.achieved_fps, s.latency_ms.p50,
                     s.latency_ms.p99, s.queue_wait_ms.p50,
                     s.render_ms.p50);
    Aggregate lat = fleetLatencyMs();
    std::fprintf(out,
                 "fleet: %d/%d frames rendered (%d dropped), fleet FPS "
                 "%.2f, miss rate %.1f%%\n"
                 "fleet latency ms: mean %.2f p50 %.2f p90 %.2f p99 %.2f "
                 "p99.9 %.2f max %.2f\n",
                 framesRendered(), framesTotal(), framesDropped(),
                 fleetFps(), 100.0 * missRate(), lat.mean, lat.p50,
                 lat.p90, lat.p99, lat.p999, lat.max);
    int tiers[kDegradeTierCount];
    tierTotals(tiers);
    if (tiers[1] + tiers[2] + tiers[3] > 0 || degradeTransitions() > 0)
        std::fprintf(out,
                     "degradation: full %d warp %d half_res %d "
                     "coarse_lod %d, %d transitions, goodput %.2f fps\n",
                     tiers[0], tiers[1], tiers[2], tiers[3],
                     degradeTransitions(), goodputFps());
    int reasons[kShedReasonCount];
    shedTotals(reasons);
    if (sheds > 0 || disconnects() > 0) {
        std::fprintf(out, "sheds:");
        for (int r = 1; r < kShedReasonCount; ++r)
            if (reasons[r] > 0)
                std::fprintf(out, " %s %d",
                             shedReasonName(static_cast<ShedReason>(r)),
                             reasons[r]);
        std::fprintf(out, "; disconnects %d\n", disconnects());
    }
    const MissAttribution ma = missAttribution();
    if (ma.total() > 0) {
        std::fprintf(out, "fleet miss attribution:");
        for (int i = 0; i < kMissComponentCount; ++i) {
            const std::int64_t n =
                ma.counts[static_cast<std::size_t>(i)];
            if (n > 0)
                std::fprintf(
                    out, " %s %lld",
                    missComponentName(static_cast<MissComponent>(i)),
                    static_cast<long long>(n));
        }
        std::fprintf(out, " (%.0f%% named)\n",
                     100.0 * ma.namedFraction());
    }
}

} // namespace gcc3d
