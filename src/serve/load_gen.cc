#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>

#include "serve/chaos.h"

namespace gcc3d::serve {

namespace {
constexpr std::uint64_t kArrivalSalt = 101;
constexpr std::uint64_t kThinSalt = 102;
constexpr std::uint64_t kFramesSalt = 103;
}  // namespace

std::vector<SessionArrival>
generateArrivals(const LoadGenConfig &config)
{
    std::vector<SessionArrival> arrivals;
    const double rate_hz =
        std::max(0.0, config.base_rate_hz * config.rate_multiplier);
    if (rate_hz <= 0.0 || config.duration_ms <= 0.0) return arrivals;

    const double amplitude =
        std::clamp(config.diurnal_amplitude, 0.0, 0.999);
    const double period_ms = std::max(1.0, config.diurnal_period_ms);
    const int frames_min = std::max(1, config.frames_min);
    const int frames_max = std::max(frames_min, config.frames_max);

    // Thinning: draw candidates at the peak rate, accept each with
    // probability lambda(t)/lambda_peak.
    const double peak_rate_hz = rate_hz * (1.0 + amplitude);
    const double two_pi = 6.283185307179586;

    double t_ms = 0.0;
    std::uint64_t draw = 0;
    std::size_t accepted = 0;
    while (arrivals.size() < config.max_sessions) {
        const double u1 =
            chaosHash01(config.seed, kArrivalSalt, draw);
        // Exponential inter-arrival at the peak rate, in ms.
        const double dt_ms =
            -std::log(1.0 - u1) / peak_rate_hz * 1000.0;
        t_ms += dt_ms;
        if (t_ms >= config.duration_ms) break;

        const double envelope =
            1.0 + amplitude * std::sin(two_pi * t_ms / period_ms);
        const double accept_p = envelope / (1.0 + amplitude);
        const double u2 = chaosHash01(config.seed, kThinSalt, draw);
        ++draw;
        if (u2 >= accept_p) continue;

        const double u3 = chaosHash01(config.seed, kFramesSalt, accepted);
        SessionArrival a;
        a.start_ms = t_ms;
        a.frames = frames_min +
                   static_cast<int>(u3 * (frames_max - frames_min + 1));
        a.frames = std::min(a.frames, frames_max);
        a.scene_slot = accepted;
        a.renderer_slot = accepted;
        a.fps_target = config.fps_target;
        arrivals.push_back(a);
        ++accepted;
    }
    return arrivals;
}

std::uint64_t
totalOfferedFrames(const std::vector<SessionArrival> &arrivals)
{
    std::uint64_t n = 0;
    for (const SessionArrival &a : arrivals)
        n += static_cast<std::uint64_t>(a.frames);
    return n;
}

}  // namespace gcc3d::serve
