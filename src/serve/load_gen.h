/**
 * @file
 * Open-loop load generator: Poisson arrivals, diurnal ramps, churn.
 *
 * The closed-loop fleet walk in bench/serve_throughput starts every
 * session at t=0 and lets the scheduler's own backpressure set the
 * pace — that can never show overload collapse, because the offered
 * load adapts to the achieved throughput.  This generator is
 * open-loop: sessions arrive on a fixed timeline (inhomogeneous
 * Poisson process with a sinusoidal diurnal envelope, thinning
 * method), stay for a bounded random number of frames, and leave —
 * regardless of whether the service keeps up.  Sweeping the rate
 * multiplier up produces the goodput-vs-offered-load curve.
 *
 * Determinism: all draws are counter-indexed hashes of the seed
 * (serve/chaos.h mixers) — the arrival table is a pure function of
 * the config, independent of thread count or wall clock.
 */

#ifndef GCC3D_SERVE_LOAD_GEN_H
#define GCC3D_SERVE_LOAD_GEN_H

#include <cstdint>
#include <vector>

namespace gcc3d::serve {

struct LoadGenConfig
{
    std::uint64_t seed = 1;
    double base_rate_hz = 4.0;       ///< mean arrival rate at envelope = 1
    double rate_multiplier = 1.0;    ///< offered-load sweep knob
    double duration_ms = 2000.0;     ///< arrival window (sessions may outlive it)
    double diurnal_amplitude = 0.0;  ///< [0,1): rate swings ±amplitude
    double diurnal_period_ms = 1000.0;
    int frames_min = 4;              ///< session length bounds (churn)
    int frames_max = 16;
    float fps_target = 30.0f;        ///< paced deadline target per session
    std::size_t max_sessions = 4096; ///< hard cap, guards sweep explosions
};

/** One simulated client: joins at start_ms, requests `frames` paced
 *  frames, then leaves.  scene/renderer slots index into whatever
 *  lists the fleet builder round-robins over. */
struct SessionArrival
{
    double start_ms = 0.0;
    int frames = 0;
    std::size_t scene_slot = 0;
    std::size_t renderer_slot = 0;
    float fps_target = 30.0f;
};

/** Pure function of the config — same table for any thread count. */
std::vector<SessionArrival> generateArrivals(const LoadGenConfig &config);

/** Total frames requested across all arrivals. */
std::uint64_t totalOfferedFrames(const std::vector<SessionArrival> &arrivals);

}  // namespace gcc3d::serve

#endif  // GCC3D_SERVE_LOAD_GEN_H
