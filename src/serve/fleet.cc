#include "serve/fleet.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/perf_recorder.h"

namespace gcc3d {

void
validateFleetSpec(const FleetSpec &spec)
{
    if (spec.sessions < 1)
        throw std::invalid_argument("fleet needs at least one session");
    if (spec.frames < 1)
        throw std::invalid_argument("fleet needs at least one frame");
    if (spec.scenes.empty())
        throw std::invalid_argument("fleet needs at least one scene");
    if (spec.renderers.empty())
        throw std::invalid_argument("fleet needs at least one renderer");
    // Degenerate FPS targets (negative, NaN, inf) would flow into the
    // EDF release/deadline arithmetic as garbage periods; reject them
    // here, before any scene work.
    if (!(spec.fps_target >= 0.0) || !std::isfinite(spec.fps_target))
        throw std::invalid_argument(
            "fleet fps_target must be finite and >= 0");
    if (!(spec.scale > 0.0f) || spec.scale > 1.0f)
        throw std::invalid_argument("fleet scale must be in (0, 1]");
    if (spec.degrade &&
        (!(spec.degrade_render_scale > 0.0f) ||
         spec.degrade_render_scale >= 1.0f ||
         !(spec.degrade_tau_factor >= 1.0f)))
        throw std::invalid_argument("fleet degrade knobs out of range");
}

std::vector<Session>
buildFleet(const FleetSpec &spec, SceneRegistry &registry)
{
    validateFleetSpec(spec);

    std::vector<Session> fleet;
    fleet.reserve(static_cast<std::size_t>(spec.sessions));
    for (int i = 0; i < spec.sessions; ++i) {
        SessionConfig cfg;
        cfg.id = i;
        cfg.spec = spec.scenes[static_cast<std::size_t>(i) %
                               spec.scenes.size()];
        cfg.scale = spec.scale;
        cfg.frames = spec.frames;
        cfg.renderer = spec.renderers[static_cast<std::size_t>(i) %
                                      spec.renderers.size()];
        cfg.tile = spec.tile;
        cfg.gw = spec.gw;
        cfg.fps_target = spec.fps_target;
        cfg.lod_cut = spec.lod_cut;
        cfg.temporal = spec.temporal;
        cfg.degrade = spec.degrade;
        cfg.degrade_render_scale = spec.degrade_render_scale;
        cfg.degrade_tau_factor = spec.degrade_tau_factor;
        SceneHandle handle =
            spec.lod_path.empty()
                ? registry.acquire(cfg.spec, cfg.scale, cfg.frames,
                                   spec.traj_arc)
                : registry.acquireLod(spec.lod_path,
                                      spec.lod_budget_bytes, cfg.spec,
                                      cfg.frames, spec.traj_arc);
        fleet.emplace_back(std::move(cfg), std::move(handle));
    }
    return fleet;
}

std::vector<Session>
buildOpenLoopFleet(const FleetSpec &spec,
                   const std::vector<serve::SessionArrival> &arrivals,
                   SceneRegistry &registry)
{
    if (spec.scenes.empty())
        throw std::invalid_argument("fleet needs at least one scene");
    if (spec.renderers.empty())
        throw std::invalid_argument("fleet needs at least one renderer");

    // One trajectory (per scene) covering the longest session keeps
    // the registry's dedup effective across heterogeneous lifetimes.
    int max_frames = 1;
    for (const serve::SessionArrival &a : arrivals)
        max_frames = std::max(max_frames, a.frames);

    std::vector<Session> fleet;
    fleet.reserve(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const serve::SessionArrival &a = arrivals[i];
        SessionConfig cfg;
        cfg.id = static_cast<int>(i);
        cfg.spec = spec.scenes[a.scene_slot % spec.scenes.size()];
        cfg.scale = spec.scale;
        cfg.frames = std::max(1, a.frames);
        cfg.renderer =
            spec.renderers[a.renderer_slot % spec.renderers.size()];
        cfg.tile = spec.tile;
        cfg.gw = spec.gw;
        cfg.fps_target = a.fps_target;
        cfg.start_ms = a.start_ms;
        cfg.lod_cut = spec.lod_cut;
        cfg.temporal = spec.temporal;
        cfg.degrade = spec.degrade;
        cfg.degrade_render_scale = spec.degrade_render_scale;
        cfg.degrade_tau_factor = spec.degrade_tau_factor;
        SceneHandle handle =
            spec.lod_path.empty()
                ? registry.acquire(cfg.spec, cfg.scale, max_frames,
                                   spec.traj_arc)
                : registry.acquireLod(spec.lod_path,
                                      spec.lod_budget_bytes, cfg.spec,
                                      max_frames, spec.traj_arc);
        fleet.emplace_back(std::move(cfg), std::move(handle));
    }
    return fleet;
}

SerialBaseline
renderSerial(const std::vector<Session> &sessions)
{
    SerialBaseline base;
    base.checksums.reserve(sessions.size());
    // Fresh temporal state for this replay: fleets are reused across
    // baseline and policy runs, and every run must see the same frame
    // sequence to reproduce the same checksums.
    for (const Session &s : sessions)
        s.resetTemporal();
    // wall_ms feeds fleet_fps (a report field, not a perf sample), so
    // it reads the behavioral clock — real in GCC3D_OBS=OFF builds.
    const MonoTime start = obs::tickNow();
    int rendered = 0;
    for (const Session &s : sessions) {
        double sum = 0.0;
        for (int f = 0; f < s.frameCount(); ++f) {
            sum += s.renderFrame(f);
            ++rendered;
        }
        base.checksums.push_back(sum);
    }
    base.wall_ms = msBetween(start, obs::tickNow());
    obs::PerfRecorder::global().addSample(obs::Stage::Job, base.wall_ms);
    base.fleet_fps =
        base.wall_ms > 0.0 ? rendered * 1000.0 / base.wall_ms : 0.0;
    return base;
}

} // namespace gcc3d
