#include "serve/frame_scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "obs/metrics_registry.h"
#include "obs/perf_recorder.h"

namespace gcc3d {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

std::string
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
    case SchedulerPolicy::Fifo:
        return "fifo";
    case SchedulerPolicy::RoundRobin:
        return "rr";
    case SchedulerPolicy::Edf:
        return "edf";
    }
    return "unknown";
}

SchedulerPolicy
schedulerPolicyFromName(const std::string &name)
{
    if (name == "fifo")
        return SchedulerPolicy::Fifo;
    if (name == "rr" || name == "round-robin")
        return SchedulerPolicy::RoundRobin;
    if (name == "edf")
        return SchedulerPolicy::Edf;
    throw std::invalid_argument("unknown scheduler policy: " + name);
}

/** Mutable serving state of one session; mutex_-guarded. */
struct FrameScheduler::SessionState
{
    const Session *session = nullptr;
    double period_ms = 0.0;      ///< 0 = best effort
    int next_frame = 0;          ///< cursor: next frame to serve
    bool in_flight = false;
    std::uint64_t ready_seq = 0; ///< FIFO tiebreak of the head frame
    double ready_ms = 0.0;       ///< when the head frame reached the queue
    std::vector<FrameRecord> records;

    bool
    exhausted() const
    {
        return next_frame >= session->frameCount();
    }

    /** Pacing: frame i is released i periods after serving starts. */
    double
    releaseMs(int frame) const
    {
        return period_ms * frame;
    }

    double
    deadlineMs(int frame) const
    {
        return period_ms > 0.0 ? period_ms * (frame + 1) : kInf;
    }

    /** When the head frame became admissible (released AND queued). */
    double
    admissibleMs() const
    {
        return std::max(releaseMs(next_frame), ready_ms);
    }
};

ServeReport
FrameScheduler::run(const std::vector<Session> &sessions, ThreadPool &pool)
{
    // Fresh temporal-cache state for this run: fleets are reused
    // across policy runs, and every replay of the trajectory must see
    // the same frame sequence to reproduce the serial checksums.
    for (const Session &s : sessions)
        s.resetTemporal();

    // Pacing and SLO accounting are behavior, not observability:
    // obs::tickNow() stays a real clock read in every build.
    const MonoTime t0 = obs::tickNow();
    auto now_ms = [t0] { return msBetween(t0, obs::tickNow()); };

    // Scheduler-level instrumentation.  The registry refs are cached
    // once per run; the depth profile also feeds the report so tests
    // see it without the registry.
    obs::Gauge &depth_gauge =
        obs::MetricsRegistry::global().gauge("serve.queue_depth");
    obs::Counter &shed_counter = obs::MetricsRegistry::global().counter(
        "serve.sheds." + schedulerPolicyName(options_.policy));
    obs::Histogram &latency_hist =
        obs::MetricsRegistry::global().histogram("serve.latency_ms");
    std::vector<double> depth_samples;  // mutex_-guarded (workers)
    std::int64_t sheds = 0;             // mutex_-guarded (workers)

    std::vector<SessionState> states(sessions.size());
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        states[i].session = &sessions[i];
        states[i].period_ms = sessions[i].periodMs();
        states[i].ready_seq = seq++;
        states[i].records.reserve(
            static_cast<std::size_t>(sessions[i].frameCount()));
    }

    int loops = options_.workers <= 0
                    ? pool.workerCount()
                    : std::min(options_.workers, pool.workerCount());
    loops = std::max(loops, 1);

    // Policy choice among admissible sessions; mutex_ held.  Also
    // reports the admissible count — the queue depth this dispatch
    // decision chose from.
    auto pick = [this, &states](double now, int *depth) -> SessionState * {
        SessionState *best = nullptr;
        int admissible = 0;
        for (SessionState &s : states) {
            if (s.exhausted() || s.in_flight ||
                s.releaseMs(s.next_frame) > now)
                continue;
            ++admissible;
            if (best == nullptr) {
                best = &s;
                continue;
            }
            bool wins = false;
            switch (options_.policy) {
            case SchedulerPolicy::Fifo:
                wins = s.admissibleMs() < best->admissibleMs() ||
                       (s.admissibleMs() == best->admissibleMs() &&
                        s.ready_seq < best->ready_seq);
                break;
            case SchedulerPolicy::RoundRobin:
                wins = s.next_frame < best->next_frame ||
                       (s.next_frame == best->next_frame &&
                        s.ready_seq < best->ready_seq);
                break;
            case SchedulerPolicy::Edf: {
                double d = s.deadlineMs(s.next_frame);
                double bd = best->deadlineMs(best->next_frame);
                wins = d < bd ||
                       (d == bd && s.ready_seq < best->ready_seq);
                break;
            }
            }
            if (wins)
                best = &s;
        }
        if (depth != nullptr)
            *depth = admissible;
        return best;
    };

    auto worker = [this, &states, &seq, &pick, &now_ms, &depth_samples,
                   &sheds, &depth_gauge, &shed_counter, &latency_hist] {
        bool done = false;
        while (!done) {
            UniqueLock lock(mutex_);
            SessionState *picked = nullptr;
            int depth = 0;
            while (true) {
                if (stop_.load(std::memory_order_acquire)) {
                    done = true;
                    break;
                }
                double now = now_ms();
                picked = pick(now, &depth);
                if (picked != nullptr)
                    break;

                // Nothing admissible: either the fleet is finished,
                // or we wait for a pacing release / an in-flight
                // completion to free a session's next frame.
                bool all_exhausted = true;
                double next_release = kInf;
                for (SessionState &s : states) {
                    if (s.exhausted())
                        continue;
                    all_exhausted = false;
                    if (!s.in_flight)
                        next_release = std::min(
                            next_release, s.releaseMs(s.next_frame));
                }
                if (all_exhausted) {
                    done = true;
                    break;
                }
                if (std::isinf(next_release))
                    cv_.wait(lock);
                else
                    cv_.waitForMs(lock, next_release - now);
            }
            if (picked == nullptr)
                continue;  // done: fall out of the outer loop

            const int frame = picked->next_frame;
            const double release = picked->releaseMs(frame);
            const double deadline = picked->deadlineMs(frame);
            const double admissible = picked->admissibleMs();
            const double dispatch = now_ms();
            const obs::SampleTag tag{picked->session->id(), frame, 0};

            // Every dispatch decision samples the depth it chose from.
            depth_samples.push_back(static_cast<double>(depth));
            depth_gauge.set(static_cast<double>(depth));

            FrameRecord rec;
            rec.frame = frame;
            rec.queue_wait_ms = std::max(0.0, dispatch - admissible);
            obs::PerfRecorder::global().addSample(obs::Stage::Queue,
                                                  rec.queue_wait_ms, tag);

            if (options_.drop_late && dispatch > deadline) {
                // Overload shedding: hopelessly late, don't render.
                rec.rendered = false;
                rec.deadline_missed = true;
                picked->records.push_back(rec);
                picked->next_frame++;
                picked->ready_ms = dispatch;
                picked->ready_seq = seq++;
                ++sheds;
                shed_counter.add();
                cv_.notifyAll();
                continue;
            }

            picked->in_flight = true;
            lock.unlock();

            double checksum = 0.0;
            bool rendered = true;
            try {
                checksum = picked->session->renderFrame(frame, &rec.cost);
            } catch (const std::exception &) {
                rendered = false;  // never wedge the fleet on one frame
            }
            // Timestamp before re-acquiring the contended mutex, so
            // lock-wait time is never billed as render time and can't
            // flip an on-time frame into a recorded miss.
            const double complete = now_ms();

            lock.lock();
            rec.rendered = rendered;
            rec.checksum = checksum;
            rec.render_ms = complete - dispatch;
            // Best-effort sessions measure latency from queueing; a
            // paced frame measures from its release (the client asked
            // for it then).
            rec.latency_ms =
                complete - (picked->period_ms > 0.0 ? release : admissible);
            rec.deadline_missed = complete > deadline;
            obs::PerfRecorder::global().addSample(obs::Stage::Frame,
                                                  rec.render_ms, tag);
            latency_hist.record(rec.latency_ms);
            picked->records.push_back(rec);
            picked->next_frame++;
            picked->in_flight = false;
            picked->ready_ms = complete;
            picked->ready_seq = seq++;
            cv_.notifyAll();
        }
    };

    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(loops));
    for (int i = 0; i < loops; ++i)
        futures.push_back(pool.submit(worker));
    for (std::future<void> &f : futures)
        f.get();

    ServeReport report;
    report.policy = schedulerPolicyName(options_.policy);
    report.workers = loops;
    report.wall_ms = now_ms();
    report.queue_depth = aggregate(std::move(depth_samples));
    report.sheds = sheds;
    for (const SessionState &s : states)
        if (!s.exhausted())
            report.drained = true;
    report.sessions.reserve(states.size());
    for (std::size_t i = 0; i < states.size(); ++i)
        report.sessions.push_back(summarizeSession(
            sessions[i], std::move(states[i].records), report.wall_ms));
    return report;
}

void
FrameScheduler::requestStop()
{
    stop_.store(true, std::memory_order_release);
    // Lock so no worker can slip between its stop check and its wait;
    // the notify then reaches every sleeping worker.
    MutexLock lock(mutex_);
    cv_.notifyAll();
}

} // namespace gcc3d
