#include "serve/frame_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>

#include "obs/fault_hooks.h"
#include "obs/metrics_registry.h"
#include "obs/perf_recorder.h"

namespace gcc3d {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Cold-start cost priors of the degradation tiers, as fractions of
 *  the session's measured Full cost (used until the tier has its own
 *  EWMA sample): warp ~ a per-pixel copy, half-res ~ scale² raster +
 *  full preprocess, coarse LOD ~ a proxy-heavy cut. */
constexpr double kTierCostPrior[4] = {1.0, 0.25, 0.4, 0.5};

} // namespace

std::string
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
    case SchedulerPolicy::Fifo:
        return "fifo";
    case SchedulerPolicy::RoundRobin:
        return "rr";
    case SchedulerPolicy::Edf:
        return "edf";
    }
    return "unknown";
}

SchedulerPolicy
schedulerPolicyFromName(const std::string &name)
{
    if (name == "fifo")
        return SchedulerPolicy::Fifo;
    if (name == "rr" || name == "round-robin")
        return SchedulerPolicy::RoundRobin;
    if (name == "edf")
        return SchedulerPolicy::Edf;
    throw std::invalid_argument("unknown scheduler policy: " + name);
}

/** Mutable serving state of one session; mutex_-guarded. */
struct FrameScheduler::SessionState
{
    const Session *session = nullptr;
    double period_ms = 0.0;      ///< 0 = best effort
    double start_ms = 0.0;       ///< open-loop arrival offset
    int next_frame = 0;          ///< cursor: next frame to serve
    int effective_frames = 0;    ///< frames servable (disconnect truncates)
    int disconnect_frame = -1;   ///< chaos: leaves before this frame
    bool in_flight = false;
    std::uint64_t ready_seq = 0; ///< FIFO tiebreak of the head frame
    double ready_ms = 0.0;       ///< when the head frame reached the queue
    std::uint64_t renders_done = 0;  ///< dispatched renders (fairness)
    /** Degradation controller: per-tier EWMA of measured render cost
     *  (Full, Warp, HalfRes, CoarseLod). */
    double tier_ewma[4] = {0.0, 0.0, 0.0, 0.0};
    bool tier_seen[4] = {false, false, false, false};
    DegradeTier last_tier = DegradeTier::Full;  ///< transition counting
    std::vector<FrameRecord> records;

    bool
    exhausted() const
    {
        return next_frame >= effective_frames;
    }

    /** Pacing: frame i releases i periods after the session joins. */
    double
    releaseMs(int frame) const
    {
        return start_ms + period_ms * frame;
    }

    double
    deadlineMs(int frame) const
    {
        return period_ms > 0.0 ? start_ms + period_ms * (frame + 1)
                               : kInf;
    }

    /** When the head frame became admissible (released AND queued). */
    double
    admissibleMs() const
    {
        return std::max(releaseMs(next_frame), ready_ms);
    }

    /** Controller prediction for a tier: its own EWMA, else the Full
     *  EWMA scaled by the tier's cost prior, else 0 (optimistic —
     *  first frames render Full and seed the model). */
    double
    predictedMs(DegradeTier tier) const
    {
        const int t = static_cast<int>(tier);
        if (t < 0 || t >= 4)
            return 0.0;
        if (tier_seen[t])
            return tier_ewma[t];
        if (tier_seen[0])
            return tier_ewma[0] * kTierCostPrior[t];
        return 0.0;
    }
};

ServeReport
FrameScheduler::run(const std::vector<Session> &sessions, ThreadPool &pool)
{
    // Fresh temporal-cache state for this run: fleets are reused
    // across policy runs, and every replay of the trajectory must see
    // the same frame sequence to reproduce the serial checksums.
    for (const Session &s : sessions)
        s.resetTemporal();

    // Pacing and SLO accounting are behavior, not observability:
    // obs::tickNow() stays a real clock read in every build.
    const MonoTime t0 = obs::tickNow();
    auto now_ms = [t0] { return msBetween(t0, obs::tickNow()); };

    // Scheduler-level instrumentation.  The registry refs are cached
    // once per run; the depth profile also feeds the report so tests
    // see it without the registry.
    obs::Gauge &depth_gauge =
        obs::MetricsRegistry::global().gauge("serve.queue_depth");
    obs::Counter &shed_counter = obs::MetricsRegistry::global().counter(
        "serve.sheds." + schedulerPolicyName(options_.policy));
    obs::Counter &admission_counter =
        obs::MetricsRegistry::global().counter("serve.sheds.admission");
    obs::Counter &fairness_counter =
        obs::MetricsRegistry::global().counter("serve.sheds.fairness");
    obs::Counter &degrade_drop_counter =
        obs::MetricsRegistry::global().counter("serve.degrade.drops");
    obs::Counter &degrade_served_counter =
        obs::MetricsRegistry::global().counter("serve.degrade.served");
    obs::Counter &degrade_transition_counter = obs::MetricsRegistry::
        global().counter("serve.degrade.transitions");
    obs::Counter &disconnect_counter =
        obs::MetricsRegistry::global().counter("serve.disconnects");
    obs::Histogram &latency_hist =
        obs::MetricsRegistry::global().histogram("serve.latency_ms");
    std::vector<double> depth_samples;  // mutex_-guarded (workers)
    std::int64_t sheds = 0;             // mutex_-guarded (workers)

    // Admission token bucket + fairness totals; mutex_-guarded.
    const AdmissionOptions &adm = options_.admission;
    double tokens = adm.burst;
    double last_refill_ms = 0.0;
    std::uint64_t total_renders = 0;

    std::vector<SessionState> states(sessions.size());
    std::size_t active_sessions = 0;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        states[i].session = &sessions[i];
        const double p = sessions[i].periodMs();
        states[i].period_ms = (std::isfinite(p) && p > 0.0) ? p : 0.0;
        const double s0 = sessions[i].config().start_ms;
        states[i].start_ms = (std::isfinite(s0) && s0 > 0.0) ? s0 : 0.0;
        states[i].effective_frames = sessions[i].frameCount();
        if (options_.chaos != nullptr) {
            // Deterministic churn: chaos decides, per session, whether
            // and where the client disconnects mid-stream.  Frames
            // past the disconnect are torn down cleanly — never
            // dispatched, never counted as drained.
            const int d = options_.chaos->disconnectFrame(
                static_cast<std::uint64_t>(sessions[i].id()) + 1,
                sessions[i].frameCount());
            if (d >= 0) {
                states[i].disconnect_frame = d;
                states[i].effective_frames = d;
                disconnect_counter.add();
            }
        }
        if (states[i].effective_frames > 0)
            ++active_sessions;
        states[i].ready_seq = seq++;
        states[i].records.reserve(
            static_cast<std::size_t>(states[i].effective_frames));
    }

    int loops = options_.workers <= 0
                    ? pool.workerCount()
                    : std::min(options_.workers, pool.workerCount());
    loops = std::max(loops, 1);

    // Policy choice among admissible sessions; mutex_ held.  Also
    // reports the admissible count — the queue depth this dispatch
    // decision chose from.
    auto pick = [this, &states](double now, int *depth) -> SessionState * {
        SessionState *best = nullptr;
        int admissible = 0;
        for (SessionState &s : states) {
            if (s.exhausted() || s.in_flight ||
                s.releaseMs(s.next_frame) > now)
                continue;
            ++admissible;
            if (best == nullptr) {
                best = &s;
                continue;
            }
            bool wins = false;
            switch (options_.policy) {
            case SchedulerPolicy::Fifo:
                wins = s.admissibleMs() < best->admissibleMs() ||
                       (s.admissibleMs() == best->admissibleMs() &&
                        s.ready_seq < best->ready_seq);
                break;
            case SchedulerPolicy::RoundRobin:
                wins = s.next_frame < best->next_frame ||
                       (s.next_frame == best->next_frame &&
                        s.ready_seq < best->ready_seq);
                break;
            case SchedulerPolicy::Edf: {
                double d = s.deadlineMs(s.next_frame);
                double bd = best->deadlineMs(best->next_frame);
                wins = d < bd ||
                       (d == bd && s.ready_seq < best->ready_seq);
                break;
            }
            }
            if (wins)
                best = &s;
        }
        if (depth != nullptr)
            *depth = admissible;
        return best;
    };

    auto worker = [this, &states, &seq, &pick, &now_ms, &depth_samples,
                   &sheds, &depth_gauge, &shed_counter, &latency_hist,
                   &adm, &tokens, &last_refill_ms, &total_renders,
                   &active_sessions, &admission_counter, &fairness_counter,
                   &degrade_drop_counter, &degrade_served_counter,
                   &degrade_transition_counter] {
        bool done = false;
        while (!done) {
            UniqueLock lock(mutex_);
            SessionState *picked = nullptr;
            int depth = 0;
            while (true) {
                if (stop_.load(std::memory_order_acquire)) {
                    done = true;
                    break;
                }
                double now = now_ms();
                picked = pick(now, &depth);
                if (picked != nullptr)
                    break;

                // Nothing admissible: either the fleet is finished,
                // or we wait for a pacing release / an in-flight
                // completion to free a session's next frame.
                bool all_exhausted = true;
                double next_release = kInf;
                for (SessionState &s : states) {
                    if (s.exhausted())
                        continue;
                    all_exhausted = false;
                    if (!s.in_flight)
                        next_release = std::min(
                            next_release, s.releaseMs(s.next_frame));
                }
                if (all_exhausted) {
                    done = true;
                    break;
                }
                if (std::isinf(next_release))
                    cv_.wait(lock);
                else
                    cv_.waitForMs(lock, next_release - now);
            }
            if (picked == nullptr)
                continue;  // done: fall out of the outer loop

            const int frame = picked->next_frame;
            const double release = picked->releaseMs(frame);
            const double deadline = picked->deadlineMs(frame);
            const double admissible = picked->admissibleMs();
            const double dispatch = now_ms();
            const obs::SampleTag tag{picked->session->id(), frame, 0};

            // Every dispatch decision samples the depth it chose from.
            depth_samples.push_back(static_cast<double>(depth));
            depth_gauge.set(static_cast<double>(depth));

            FrameRecord rec;
            rec.frame = frame;
            rec.queue_wait_ms = std::max(0.0, dispatch - admissible);
            obs::PerfRecorder::global().addSample(obs::Stage::Queue,
                                                  rec.queue_wait_ms, tag);

            // Shed decision ladder.  Gates are ordered cheapest-first:
            // already-late (drop_late), then admission control, then
            // the degradation controller's last rung.  Best-effort
            // frames (no deadline) are never shed or degraded.
            ShedReason shed = ShedReason::None;
            DegradeTier tier = DegradeTier::Full;
            const bool has_deadline = picked->period_ms > 0.0;
            const double slack = deadline - dispatch;

            if (options_.drop_late && dispatch > deadline)
                shed = ShedReason::Late;

            if (shed == ShedReason::None && adm.enabled && has_deadline) {
                // Token bucket: refill by elapsed time, one token per
                // dispatched render.
                if (adm.rate_hz > 0.0) {
                    tokens = std::min(
                        adm.burst,
                        tokens + (dispatch - last_refill_ms) *
                                     adm.rate_hz / 1000.0);
                    last_refill_ms = dispatch;
                }
                const bool scarce =
                    (adm.rate_hz > 0.0 && tokens < 1.0) ||
                    (adm.max_queue_depth > 0 &&
                     depth > adm.max_queue_depth);
                if (scarce && adm.fair_share > 0.0 &&
                    active_sessions > 0) {
                    // Under scarcity a hog yields before it can take
                    // the last token from a starved session.
                    const double avg =
                        static_cast<double>(total_renders) /
                        static_cast<double>(active_sessions);
                    if (static_cast<double>(picked->renders_done) >
                        adm.fair_share * (avg + 1.0))
                        shed = ShedReason::Fairness;
                }
                if (shed == ShedReason::None && adm.rate_hz > 0.0) {
                    if (tokens >= 1.0)
                        tokens -= 1.0;
                    else
                        shed = ShedReason::Admission;
                }
                // Predictive shed only when no ladder can soften the
                // frame: a hopeless Full render is better degraded
                // than dropped.
                if (shed == ShedReason::None &&
                    !options_.degrade.enabled &&
                    slack < picked->predictedMs(DegradeTier::Full) *
                                adm.slack_factor)
                    shed = ShedReason::Admission;
            }

            if (shed == ShedReason::None && options_.degrade.enabled &&
                has_deadline && picked->session->config().degrade) {
                // First fit down the ladder; nothing fits -> last rung.
                tier = DegradeTier::Drop;
                shed = ShedReason::Degrade;
                for (int t = 0; t < 4; ++t) {
                    const auto cand = static_cast<DegradeTier>(t);
                    if (cand != DegradeTier::Full &&
                        !picked->session->tierAvailable(cand))
                        continue;
                    if (picked->predictedMs(cand) <=
                        slack * options_.degrade.safety) {
                        tier = cand;
                        shed = ShedReason::None;
                        break;
                    }
                }
            }

            if (shed != ShedReason::None) {
                // Overload shedding: don't render, record why.
                rec.rendered = false;
                rec.deadline_missed = true;
                rec.tier = DegradeTier::Drop;
                rec.shed_reason = shed;
                picked->records.push_back(rec);
                picked->next_frame++;
                picked->ready_ms = dispatch;
                picked->ready_seq = seq++;
                ++sheds;
                shed_counter.add();
                switch (shed) {
                case ShedReason::Admission:
                    admission_counter.add();
                    break;
                case ShedReason::Fairness:
                    fairness_counter.add();
                    break;
                case ShedReason::Degrade:
                    degrade_drop_counter.add();
                    break;
                default:
                    break;
                }
                cv_.notifyAll();
                continue;
            }

            picked->in_flight = true;
            picked->renders_done++;
            total_renders++;
            lock.unlock();

            if (options_.chaos != nullptr) {
                // Deterministic worker stall, keyed on (session, frame)
                // so a fixed seed stalls the same renders every run.
                const obs::FaultAction stall = options_.chaos->at(
                    obs::FaultSite::WorkerStall,
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         picked->session->id()))
                     << 32) |
                        static_cast<std::uint32_t>(frame));
                if (stall.inject && stall.magnitude > 0.0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(
                            stall.magnitude));
            }

            double checksum = 0.0;
            bool rendered = true;
            DegradeTier served = DegradeTier::Full;
            try {
                checksum =
                    tier != DegradeTier::Full
                        ? picked->session->renderFrameDegraded(
                              frame, tier, &rec.cost, &served)
                        : picked->session->renderFrame(frame, &rec.cost);
            } catch (const std::exception &) {
                rendered = false;  // never wedge the fleet on one frame
            }
            // Timestamp before re-acquiring the contended mutex, so
            // lock-wait time is never billed as render time and can't
            // flip an on-time frame into a recorded miss.
            const double complete = now_ms();

            lock.lock();
            rec.rendered = rendered;
            rec.checksum = checksum;
            rec.tier = served;
            rec.render_ms = complete - dispatch;
            if (rendered) {
                // Feed the degradation controller: EWMA of the tier
                // actually served (best-effort fallbacks bill Full).
                const int t = static_cast<int>(served);
                if (t >= 0 && t < 4) {
                    picked->tier_ewma[t] =
                        picked->tier_seen[t]
                            ? 0.7 * picked->tier_ewma[t] +
                                  0.3 * rec.render_ms
                            : rec.render_ms;
                    picked->tier_seen[t] = true;
                }
                if (served != DegradeTier::Full)
                    degrade_served_counter.add();
                if (served != picked->last_tier) {
                    degrade_transition_counter.add();
                    picked->last_tier = served;
                }
            }
            // Best-effort sessions measure latency from queueing; a
            // paced frame measures from its release (the client asked
            // for it then).
            rec.latency_ms =
                complete - (picked->period_ms > 0.0 ? release : admissible);
            rec.deadline_missed = complete > deadline;
            obs::PerfRecorder::global().addSample(obs::Stage::Frame,
                                                  rec.render_ms, tag);
            latency_hist.record(rec.latency_ms);
            picked->records.push_back(rec);
            picked->next_frame++;
            picked->in_flight = false;
            picked->ready_ms = complete;
            picked->ready_seq = seq++;
            cv_.notifyAll();
        }
    };

    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(loops));
    for (int i = 0; i < loops; ++i)
        futures.push_back(pool.submit(worker));
    for (std::future<void> &f : futures)
        f.get();

    ServeReport report;
    report.policy = schedulerPolicyName(options_.policy);
    report.workers = loops;
    report.wall_ms = now_ms();
    report.queue_depth = aggregate(std::move(depth_samples));
    report.sheds = sheds;
    for (const SessionState &s : states)
        if (!s.exhausted())
            report.drained = true;
    report.sessions.reserve(states.size());
    for (std::size_t i = 0; i < states.size(); ++i)
        report.sessions.push_back(summarizeSession(
            sessions[i], std::move(states[i].records), report.wall_ms,
            states[i].disconnect_frame));
    return report;
}

void
FrameScheduler::requestStop()
{
    stop_.store(true, std::memory_order_release);
    // Lock so no worker can slip between its stop check and its wait;
    // the notify then reaches every sleeping worker.
    MutexLock lock(mutex_);
    cv_.notifyAll();
}

} // namespace gcc3d
