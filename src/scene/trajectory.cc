#include "scene/trajectory.h"

#include <algorithm>
#include <cmath>

namespace gcc3d {

Trajectory
Trajectory::orbit(const Camera &proto, const Vec3 &center, float radius,
                  float height, int frames, float fraction)
{
    frames = std::max(frames, 1);
    Trajectory t;
    for (int i = 0; i < frames; ++i) {
        float phi = 2.0f * static_cast<float>(M_PI) * fraction *
                    static_cast<float>(i) / static_cast<float>(frames);
        Vec3 eye(center.x + radius * std::cos(phi), center.y + height,
                 center.z + radius * std::sin(phi));
        Camera cam = proto;
        cam.lookAt(eye, center);
        t.add(cam);
    }
    return t;
}

Trajectory
Trajectory::dolly(const Camera &proto, const Vec3 &from, const Vec3 &to,
                  const Vec3 &look_at, int frames, float fraction)
{
    frames = std::max(frames, 1);
    Trajectory t;
    for (int i = 0; i < frames; ++i) {
        float s = frames > 1 ? static_cast<float>(i) /
                                   static_cast<float>(frames - 1)
                             : 0.0f;
        Vec3 eye = from + (to - from) * (s * fraction);
        Camera cam = proto;
        cam.lookAt(eye, look_at);
        t.add(cam);
    }
    return t;
}

Trajectory
Trajectory::forScene(const SceneSpec &spec, int frames)
{
    return forSceneArc(spec, frames, 1.0f);
}

Trajectory
Trajectory::forSceneArc(const SceneSpec &spec, int frames,
                        float fraction)
{
    Camera proto = makeCamera(spec);
    float e = spec.extent;
    switch (spec.layout) {
      case SceneLayout::Object:
        return orbit(proto, Vec3(0, 0, 0),
                     spec.camera_distance * e * 1.28f,
                     spec.camera_height * e, frames, fraction);
      case SceneLayout::Street:
        return dolly(proto, Vec3(-0.6f * e, spec.camera_height * e, 0),
                     Vec3(1.4f * e, spec.camera_height * e, 0),
                     Vec3(3.0f * e, 0.25f * e, 0), frames, fraction);
      case SceneLayout::Room:
        return dolly(proto, Vec3(-0.7f * e, 0.4f * e, -0.7f * e),
                     Vec3(0.0f, 0.4f * e, -0.4f * e),
                     Vec3(0.6f * e, 0.3f * e, 0.6f * e), frames,
                     fraction);
    }
    return Trajectory();
}

} // namespace gcc3d
