/**
 * @file
 * Binary serialization of Gaussian clouds (.gsc format).
 *
 * A tiny self-describing container so that generated scenes can be
 * cached between runs and exchanged with external tools.  Layout:
 * 16-byte header (magic "GSC1", u32 name length, u64 count), the
 * UTF-8 name, then count records of 59 little-endian fp32 values in
 * the canonical parameter order (mean, scale, quat, opacity, sh).
 */

#ifndef GCC3D_SCENE_SCENE_IO_H
#define GCC3D_SCENE_SCENE_IO_H

#include <iosfwd>
#include <string>

#include "scene/gaussian_cloud.h"

namespace gcc3d {

/** Write @p cloud to @p os in .gsc format. @return false on I/O error. */
bool saveCloud(const GaussianCloud &cloud, std::ostream &os);

/** Write @p cloud to @p path. @return false on I/O error. */
bool saveCloudFile(const GaussianCloud &cloud, const std::string &path);

/**
 * Read a cloud from @p is.
 * @throws std::runtime_error on malformed input.
 */
GaussianCloud loadCloud(std::istream &is);

/** Read a cloud from @p path. @throws std::runtime_error on error. */
GaussianCloud loadCloudFile(const std::string &path);

} // namespace gcc3d

#endif // GCC3D_SCENE_SCENE_IO_H
