/**
 * @file
 * Binary serialization of Gaussian clouds (.gsc format).
 *
 * A tiny self-describing container so that generated scenes can be
 * cached between runs and exchanged with external tools.  Layout:
 * 16-byte header (magic "GSC1", u32 name length, u64 count), the
 * UTF-8 name, then count records of 59 little-endian fp32 values in
 * the canonical parameter order (mean, scale, quat, opacity, sh).
 */

#ifndef GCC3D_SCENE_SCENE_IO_H
#define GCC3D_SCENE_SCENE_IO_H

#include <iosfwd>
#include <string>

#include "scene/gaussian_cloud.h"
#include "scene/scene_generator.h"

namespace gcc3d {

/** Write @p cloud to @p os in .gsc format. @return false on I/O error. */
bool saveCloud(const GaussianCloud &cloud, std::ostream &os);

/** Write @p cloud to @p path. @return false on I/O error. */
bool saveCloudFile(const GaussianCloud &cloud, const std::string &path);

/**
 * Read a cloud from @p is.
 * @throws std::runtime_error on malformed input.
 */
GaussianCloud loadCloud(std::istream &is);

/** Read a cloud from @p path. @throws std::runtime_error on error. */
GaussianCloud loadCloudFile(const std::string &path);

/**
 * Cache file path of (spec, scale) under @p dir:
 * `<sceneGenKey>.gsc`, i.e. the scene name, seed, exact scaled count
 * and a digest of every generation-determining spec field — so one
 * directory safely caches every (scene, scale) combination side by
 * side and stale files from edited specs simply miss.
 */
std::string sceneCachePath(const std::string &dir, const SceneSpec &spec,
                           float scale);

/**
 * generateScene with a .gsc cache in front: when @p cache_dir holds a
 * valid cache file for (spec, scale) it is loaded instead of
 * generating; otherwise the scene is generated and written back
 * (best-effort — an unwritable cache never fails the call).  A stale,
 * truncated or foreign cache file is regenerated and overwritten, so
 * a corrupt cache can only cost time, never correctness.  An empty
 * @p cache_dir is a plain generateScene.
 */
GaussianCloud loadOrGenerateScene(const SceneSpec &spec, float scale,
                                  const std::string &cache_dir);

} // namespace gcc3d

#endif // GCC3D_SCENE_SCENE_IO_H
