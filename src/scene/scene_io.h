/**
 * @file
 * Binary serialization of Gaussian clouds: .gsc v1 and the chunked,
 * compressed v2 container.
 *
 * v1 (magic "GSC1") is the flat format earlier PRs cached scenes in:
 * 16-byte header (magic, u32 name length, u64 count), the UTF-8 name,
 * then count records of 59 little-endian fp32 values in the canonical
 * parameter order (mean, scale, quat, opacity, sh).  v1 files keep
 * loading forever; loadCloud() negotiates the version from the magic.
 *
 * v2 (magic "GSC2") is the scene-scale container behind src/lod/:
 *
 *   header   magic "GSC2", u32 version, u32 flags (bit0 = quantized),
 *            u32 name_len, u64 total_count, u64 footer_offset,
 *            u32 proxy_levels, u32 chunk_count, name bytes
 *   payload  leaf chunks back to back (independently decodable)
 *   footer   magic "GSCF", u32 chunk_count (cross-checked against the
 *            header), then per chunk: f32 aabb[6], u64 payload offset,
 *            u64 count, and for each proxy level 1..proxy_levels a
 *            u32 count + that many proxy records
 *
 * All offsets are relative to the header start, so a v2 image can be
 * embedded at any stream position.  Every record carries the source
 * index of its Gaussian, so a full decode reassembles the original
 * cloud order exactly — loading a v2 file with LOD disabled yields
 * the same cloud a v1 file of the same (encoded) data would.
 *
 * Quantized records (flags bit0) compress 236 fp32 bytes to 118:
 *  - positions: chunk-AABB-normalized UnitFixed (Q1.15, int16/axis);
 *    worst-case error is half_extent * 2^-15 per axis
 *  - scales: log-quantized u16 over ln s in [-14, 6]
 *    (relative step ~3.1e-4)
 *  - rotation: normalized quaternion components as UnitFixed int16
 *  - opacity: log-quantized u16 over ln a in [ln 1e-4, 0]
 *  - SH: IEEE fp16 (round-to-nearest-even, saturating)
 * Unquantized v2 files (flags bit0 clear) store raw fp32 records and
 * decode bit-identically to their source cloud.
 */

#ifndef GCC3D_SCENE_SCENE_IO_H
#define GCC3D_SCENE_SCENE_IO_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scene/gaussian_cloud.h"
#include "scene/scene_generator.h"

namespace gcc3d {

/** Write @p cloud to @p os in .gsc v1 format. @return false on I/O error. */
bool saveCloud(const GaussianCloud &cloud, std::ostream &os);

/** Write @p cloud to @p path (v1). @return false on I/O error. */
bool saveCloudFile(const GaussianCloud &cloud, const std::string &path);

/**
 * Read a cloud from @p is; the format version is negotiated from the
 * magic ("GSC1" flat, "GSC2" chunked).  A v2 file decodes every leaf
 * chunk and reassembles the original Gaussian order (the LOD-off
 * path).
 * @throws std::runtime_error on malformed input.
 */
GaussianCloud loadCloud(std::istream &is);

/** Read a cloud (v1 or v2) from @p path. @throws std::runtime_error. */
GaussianCloud loadCloudFile(const std::string &path);

/** @return true when @p path starts with the v2 magic. */
bool isGscV2File(const std::string &path);

/** Options for writing .gsc v2 images. */
struct GscV2Options
{
    /** Quantized records (118 B) vs raw fp32 records (236 B). */
    bool quantize = true;

    /**
     * Leaf chunk granularity for saveCloudV2's sequential chunking.
     * The LOD builder partitions spatially instead and drives
     * GscV2Writer directly.
     */
    std::size_t chunk_target = 4096;
};

/**
 * One leaf chunk ready for writing: the member Gaussians, their
 * indices in the source cloud, the AABB of their means (the
 * quantization frame) and, optionally, the per-level proxy pyramid
 * the LOD builder merged for this chunk.
 */
struct GscChunkDraft
{
    Vec3 lo, hi;
    std::vector<std::uint32_t> indices;
    std::vector<Gaussian> gaussians;
    /** proxies[l] holds level l+1; missing levels are written empty. */
    std::vector<std::vector<Gaussian>> proxies;
};

/**
 * Streaming v2 writer: construct on a seekable stream, feed chunks,
 * then finish().  Chunks are written as they arrive (nothing but the
 * directory is buffered), so scenes far larger than RAM can be
 * written by generating and encoding one chunk at a time.
 */
class GscV2Writer
{
  public:
    GscV2Writer(std::ostream &os, std::string name, int proxy_levels,
                bool quantize);
    ~GscV2Writer();  // out of line: DirEntry is incomplete here

    /** Append one leaf chunk (+ its proxy pyramid). @return stream ok. */
    bool writeChunk(const GscChunkDraft &chunk);

    /** Write the footer and patch the header. @return stream ok. */
    bool finish();

    std::uint64_t totalWritten() const { return total_; }

  private:
    struct DirEntry;

    std::ostream &os_;
    std::uint64_t base_ = 0;
    std::uint64_t total_ = 0;
    int proxy_levels_;
    bool quantize_;
    bool finished_ = false;
    std::vector<DirEntry> dir_;
    std::vector<std::vector<std::vector<Gaussian>>> proxies_;
};

/** Parsed v2 chunk directory entry (proxies decoded, leaves on disk). */
struct GscV2ChunkInfo
{
    Vec3 lo, hi;
    std::uint64_t offset = 0;  ///< leaf payload offset from header start
    std::uint64_t count = 0;   ///< leaf Gaussians in the chunk
    std::vector<std::vector<Gaussian>> proxies;  ///< levels 1..proxyLevels
};

/**
 * v2 metadata reader: parses and validates the header and footer
 * (including every chunk's proxy pyramid — the always-resident part)
 * and decodes leaf chunks on demand.  Throws std::runtime_error with
 * a descriptive message on any malformed input: bad magic or version,
 * oversized header fields, truncated header/footer/chunk, chunk
 * counts that disagree between header and footer, payloads that
 * escape the payload region, and leaf indices that do not form a
 * permutation of [0, totalCount).
 */
class GscV2Reader
{
  public:
    /** Parse header + footer from @p is (leaf payloads stay unread). */
    explicit GscV2Reader(std::istream &is);

    const std::string &name() const { return name_; }
    bool quantized() const { return quantized_; }
    std::uint64_t totalCount() const { return total_; }
    int proxyLevels() const { return proxy_levels_; }
    std::size_t chunkCount() const { return chunks_.size(); }
    const GscV2ChunkInfo &chunk(std::size_t i) const { return chunks_[i]; }

    /**
     * Decode leaf chunk @p i from @p is (a stream positioned on the
     * same bytes this reader parsed).  @p out receives the Gaussians,
     * @p indices their positions in the source cloud.
     * @throws std::runtime_error on truncation.
     */
    void loadChunk(std::istream &is, std::size_t i,
                   std::vector<Gaussian> &out,
                   std::vector<std::uint32_t> &indices) const;

  private:
    std::uint64_t base_ = 0;
    std::string name_;
    bool quantized_ = false;
    std::uint64_t total_ = 0;
    int proxy_levels_ = 0;
    std::vector<GscV2ChunkInfo> chunks_;
};

/**
 * Write @p cloud as a v2 image with sequential chunking and no proxy
 * levels (the plain compressed-container use; LOD files come from
 * src/lod/lod_builder).  @return false on I/O error.
 */
bool saveCloudV2(const GaussianCloud &cloud, std::ostream &os,
                 const GscV2Options &options = {});

/** saveCloudV2 to @p path. @return false on I/O error. */
bool saveCloudV2File(const GaussianCloud &cloud, const std::string &path,
                     const GscV2Options &options = {});

/**
 * Cache file path of (spec, scale) under @p dir:
 * `<sceneGenKey>.gsc`, i.e. the scene name, seed, exact scaled count
 * and a digest of every generation-determining spec field — so one
 * directory safely caches every (scene, scale) combination side by
 * side and stale files from edited specs simply miss.
 */
std::string sceneCachePath(const std::string &dir, const SceneSpec &spec,
                           float scale);

/**
 * generateScene with a .gsc cache in front: when @p cache_dir holds a
 * valid cache file for (spec, scale) it is loaded instead of
 * generating; otherwise the scene is generated and written back
 * (best-effort — an unwritable cache never fails the call).  A stale,
 * truncated or foreign cache file is regenerated and overwritten, so
 * a corrupt cache can only cost time, never correctness.  An empty
 * @p cache_dir is a plain generateScene.
 */
GaussianCloud loadOrGenerateScene(const SceneSpec &spec, float scale,
                                  const std::string &cache_dir);

} // namespace gcc3d

#endif // GCC3D_SCENE_SCENE_IO_H
