/**
 * @file
 * Pinhole camera model for 3DGS rendering.
 *
 * Provides the per-viewpoint data the preprocessing stage consumes:
 * the world-to-camera view matrix W, the focal lengths used by the
 * EWA Jacobian, and the projection to pixel coordinates.  Convention:
 * camera looks down +z in view space (view-space depth = z'), pixel
 * origin at the top-left corner.
 */

#ifndef GCC3D_SCENE_CAMERA_H
#define GCC3D_SCENE_CAMERA_H

#include "gsmath/mat.h"
#include "gsmath/vec.h"

namespace gcc3d {

/** A pinhole camera: intrinsics + world-to-camera extrinsics. */
class Camera
{
  public:
    Camera() = default;

    /**
     * Construct from viewport and horizontal field of view.
     *
     * @param width   image width in pixels
     * @param height  image height in pixels
     * @param fov_x   horizontal field of view, radians
     */
    Camera(int width, int height, float fov_x);

    /** Place the camera at @p eye looking at @p target (up = +y). */
    void lookAt(const Vec3 &eye, const Vec3 &target,
                const Vec3 &up = Vec3(0, 1, 0));

    int width() const { return width_; }
    int height() const { return height_; }
    float focalX() const { return focal_x_; }
    float focalY() const { return focal_y_; }
    const Mat4 &viewMatrix() const { return view_; }
    const Vec3 &position() const { return position_; }

    /** Near-plane depth below which Gaussians are culled (paper: 0.2). */
    float nearPlane() const { return near_; }
    void setNearPlane(float near) { near_ = near; }

    /** World point -> camera/view space (z = depth). */
    Vec3
    worldToView(const Vec3 &p) const
    {
        return view_.transformPoint(p);
    }

    /**
     * View-space point -> pixel coordinates.  Callers must ensure
     * v.z > 0 (in front of the camera).
     */
    Vec2
    viewToPixel(const Vec3 &v) const
    {
        return {focal_x_ * v.x / v.z + 0.5f * static_cast<float>(width_),
                focal_y_ * v.y / v.z + 0.5f * static_cast<float>(height_)};
    }

    /** World point -> pixel coordinates (must be in front of camera). */
    Vec2
    worldToPixel(const Vec3 &p) const
    {
        return viewToPixel(worldToView(p));
    }

    /**
     * Jacobian J of the perspective projection at view-space point v
     * (the 2x3 EWA Jacobian padded to 3x3 with a zero row), used in
     * Sigma' = J W Sigma W^T J^T (Eq. 1, right).
     */
    Mat3 projectionJacobian(const Vec3 &v) const;

    /**
     * Generous in-frustum test in view space with a guard-band factor
     * (projected Gaussians slightly off-screen can still contribute).
     */
    bool
    inFrustum(const Vec3 &v, float guard_band = 1.3f) const
    {
        if (v.z < near_)
            return false;
        float lim_x = guard_band * 0.5f * static_cast<float>(width_) *
                      v.z / focal_x_;
        float lim_y = guard_band * 0.5f * static_cast<float>(height_) *
                      v.z / focal_y_;
        return v.x > -lim_x && v.x < lim_x && v.y > -lim_y && v.y < lim_y;
    }

  private:
    int width_ = 0;
    int height_ = 0;
    float focal_x_ = 1.0f;
    float focal_y_ = 1.0f;
    float near_ = 0.2f;
    Mat4 view_ = Mat4::identity();
    Vec3 position_;
};

} // namespace gcc3d

#endif // GCC3D_SCENE_CAMERA_H
