/**
 * @file
 * Pinhole camera model for 3DGS rendering.
 *
 * Provides the per-viewpoint data the preprocessing stage consumes:
 * the world-to-camera view matrix W, the focal lengths used by the
 * EWA Jacobian, and the projection to pixel coordinates.  Convention:
 * camera looks down +z in view space (view-space depth = z'), pixel
 * origin at the top-left corner.
 */

#ifndef GCC3D_SCENE_CAMERA_H
#define GCC3D_SCENE_CAMERA_H

#include <algorithm>
#include <cmath>
#include <cstring>

#include "gsmath/mat.h"
#include "gsmath/vec.h"

namespace gcc3d {

/** A pinhole camera: intrinsics + world-to-camera extrinsics. */
class Camera
{
  public:
    Camera() = default;

    /**
     * Construct from viewport and horizontal field of view.
     *
     * @param width   image width in pixels
     * @param height  image height in pixels
     * @param fov_x   horizontal field of view, radians
     */
    Camera(int width, int height, float fov_x);

    /** Place the camera at @p eye looking at @p target (up = +y). */
    void lookAt(const Vec3 &eye, const Vec3 &target,
                const Vec3 &up = Vec3(0, 1, 0));

    int width() const { return width_; }
    int height() const { return height_; }
    float focalX() const { return focal_x_; }
    float focalY() const { return focal_y_; }
    const Mat4 &viewMatrix() const { return view_; }
    const Vec3 &position() const { return position_; }

    /** Near-plane depth below which Gaussians are culled (paper: 0.2). */
    float nearPlane() const { return near_; }
    void setNearPlane(float near) { near_ = near; }

    /** World point -> camera/view space (z = depth). */
    Vec3
    worldToView(const Vec3 &p) const
    {
        return view_.transformPoint(p);
    }

    /**
     * View-space point -> pixel coordinates.  Callers must ensure
     * v.z > 0 (in front of the camera).
     */
    Vec2
    viewToPixel(const Vec3 &v) const
    {
        return {focal_x_ * v.x / v.z + 0.5f * static_cast<float>(width_),
                focal_y_ * v.y / v.z + 0.5f * static_cast<float>(height_)};
    }

    /** World point -> pixel coordinates (must be in front of camera). */
    Vec2
    worldToPixel(const Vec3 &p) const
    {
        return viewToPixel(worldToView(p));
    }

    /**
     * Camera/view-space point -> world space: the rigid inverse
     * R^T (v - t) of the lookAt view matrix (used by the temporal
     * reprojection warp to carry a pixel's depth plane between
     * nearby viewpoints).
     */
    Vec3
    viewToWorld(const Vec3 &v) const
    {
        Vec3 t(view_(0, 3), view_(1, 3), view_(2, 3));
        return view_.topLeft3x3().transposed() * (v - t);
    }

    /**
     * Jacobian J of the perspective projection at view-space point v
     * (the 2x3 EWA Jacobian padded to 3x3 with a zero row), used in
     * Sigma' = J W Sigma W^T J^T (Eq. 1, right).
     */
    Mat3 projectionJacobian(const Vec3 &v) const;

    /**
     * Generous in-frustum test in view space with a guard-band factor
     * (projected Gaussians slightly off-screen can still contribute).
     */
    bool
    inFrustum(const Vec3 &v, float guard_band = 1.3f) const
    {
        if (v.z < near_)
            return false;
        float lim_x = guard_band * 0.5f * static_cast<float>(width_) *
                      v.z / focal_x_;
        float lim_y = guard_band * 0.5f * static_cast<float>(height_) *
                      v.z / focal_y_;
        return v.x > -lim_x && v.x < lim_x && v.y > -lim_y && v.y < lim_y;
    }

    /**
     * Copy of this camera rendering to an @p s -scaled viewport: width
     * and height scale by s (clamped to >= 1 pixel) and the focal
     * lengths scale by the realized per-axis ratios, so the field of
     * view — and therefore the framed content — is unchanged.  Used by
     * the serving degradation ladder's reduced-resolution tier.
     */
    Camera
    scaledResolution(float s) const
    {
        if (width_ <= 0 || height_ <= 0 || !(s > 0.0f))
            return *this;
        Camera c = *this;
        c.width_ = std::max(
            1, static_cast<int>(std::lround(static_cast<float>(width_) * s)));
        c.height_ = std::max(
            1, static_cast<int>(std::lround(static_cast<float>(height_) * s)));
        c.focal_x_ = focal_x_ * static_cast<float>(c.width_) /
                     static_cast<float>(width_);
        c.focal_y_ = focal_y_ * static_cast<float>(c.height_) /
                     static_cast<float>(height_);
        return c;
    }

  private:
    int width_ = 0;
    int height_ = 0;
    float focal_x_ = 1.0f;
    float focal_y_ = 1.0f;
    float near_ = 0.2f;
    Mat4 view_ = Mat4::identity();
    Vec3 position_;
};

/**
 * Bitwise pose/intrinsics equality: true iff rendering through @p a
 * and @p b is guaranteed to produce bit-identical frames of the same
 * scene.  Field-wise memcmp (not object memcmp) so padding bytes
 * never produce false negatives; NaN fields compare by bits, which
 * is the conservative direction for a cache hit test.
 */
inline bool
camerasBitIdentical(const Camera &a, const Camera &b)
{
    auto feq = [](float x, float y) {
        return std::memcmp(&x, &y, sizeof(float)) == 0;
    };
    if (a.width() != b.width() || a.height() != b.height())
        return false;
    if (!feq(a.focalX(), b.focalX()) || !feq(a.focalY(), b.focalY()) ||
        !feq(a.nearPlane(), b.nearPlane()))
        return false;
    return std::memcmp(&a.viewMatrix(), &b.viewMatrix(),
                       sizeof(Mat4)) == 0 &&
           std::memcmp(&a.position(), &b.position(), sizeof(Vec3)) == 0;
}

/** Pose change between two cameras, split into its rigid components. */
struct CameraDelta
{
    float translation = 0.0f;   ///< |pos_b - pos_a|, world units
    float rotation_rad = 0.0f;  ///< angle of R_b R_a^T, radians
};

/**
 * Pose delta from @p a to @p b: the camera-center displacement and
 * the geodesic rotation angle between the two view orientations
 * (angle of the relative rotation R_b R_a^T, via its trace).  Used by
 * Trajectory's step-size accessors and the temporal warp trust region.
 */
inline CameraDelta
cameraDelta(const Camera &a, const Camera &b)
{
    CameraDelta d;
    d.translation = (b.position() - a.position()).norm();
    const Mat3 rel =
        b.viewMatrix().topLeft3x3() *
        a.viewMatrix().topLeft3x3().transposed();
    const float tr = rel(0, 0) + rel(1, 1) + rel(2, 2);
    const float c = std::clamp((tr - 1.0f) * 0.5f, -1.0f, 1.0f);
    d.rotation_rad = std::acos(c);
    return d;
}

} // namespace gcc3d

#endif // GCC3D_SCENE_CAMERA_H
