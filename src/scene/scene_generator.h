/**
 * @file
 * Procedural 3DGS scene generation.
 *
 * The paper evaluates on pre-trained Gaussian models (Lego, Palace,
 * Train, Truck, Playroom, Drjohnson).  Those assets are not available
 * offline, so we synthesize statistically equivalent scenes: the
 * accelerator's behaviour depends on *population statistics* — how
 * many Gaussians fall in the frustum, how many survive to blending,
 * footprint sizes (tile overlap), opacity distribution (omega-sigma
 * culling, early termination) — not on what the scene depicts.
 * DESIGN.md §1 documents this substitution.
 *
 * A SceneSpec describes a scene as a set of clustered Gaussian
 * populations with log-normal footprints and a bimodal opacity mix;
 * generation is fully deterministic given the spec's seed.
 */

#ifndef GCC3D_SCENE_SCENE_GENERATOR_H
#define GCC3D_SCENE_SCENE_GENERATOR_H

#include <cstdint>
#include <string>

#include "scene/camera.h"
#include "scene/gaussian_cloud.h"

namespace gcc3d {

/** Spatial layout archetypes for the synthetic scenes. */
enum class SceneLayout
{
    Object,  ///< bounded object at the origin, orbit camera (Lego, Palace)
    Street,  ///< elongated outdoor corridor, camera inside (Train, Truck)
    Room,    ///< indoor box with furniture clusters, camera inside
             ///< (Playroom, Drjohnson)
};

/** Full description of a synthetic scene and its evaluation camera. */
struct SceneSpec
{
    std::string name;
    SceneLayout layout = SceneLayout::Object;
    std::uint64_t seed = 1;

    /** Gaussian count at scale 1.0 (the paper-scale population). */
    std::size_t gaussian_count = 100000;

    /** Number of spatial clusters the population is drawn from. */
    int cluster_count = 64;

    /** Overall scene half-extent in world units. */
    float extent = 4.0f;

    /** Within-cluster standard deviation (world units). */
    float cluster_sigma = 0.35f;

    /** Log-normal parameters of per-axis Gaussian scales (world units). */
    float log_scale_mean = -4.2f;
    float log_scale_sigma = 0.75f;

    /** Anisotropy: per-axis jitter applied on top of the base scale. */
    float anisotropy = 0.6f;

    /** Fraction of Gaussians drawn from the high-opacity mode. */
    float high_opacity_fraction = 0.55f;

    /**
     * Lower bound of the high-opacity mode (upper bound 0.99).
     * Trained synthetic-object models (Lego) have near-opaque
     * surfaces; real captures keep more translucency.
     */
    float high_opacity_min = 0.65f;

    /** Std-dev of higher-order SH coefficients (view dependence). */
    float sh_detail = 0.15f;

    // Evaluation viewpoint.
    int image_width = 800;
    int image_height = 800;
    float fov_x = 0.87f;            ///< horizontal FOV, radians
    float camera_distance = 2.4f;   ///< eye distance as multiple of extent
    float camera_height = 0.35f;    ///< eye height as multiple of extent
};

/**
 * Generate the Gaussian cloud for @p spec.
 *
 * @param spec  scene description
 * @param scale population scale factor in (0, 1]; the count is
 *              multiplied by it (unit tests use small scales, benches
 *              run at 1.0).
 */
GaussianCloud generateScene(const SceneSpec &spec, float scale = 1.0f);

/**
 * Generate @p count Gaussians of the population described by @p spec
 * starting at global index @p begin, without materializing the rest
 * of the scene.  The cluster layout is identical to generateScene's
 * (it is drawn from the spec seed before any Gaussian), and each
 * batch draws from an independent deterministic stream keyed on
 * (seed, begin) — so a scene streamed in fixed-size batches is fully
 * reproducible, batches can be generated in any order, and scenes of
 * 10M+ Gaussians never need to exist in RAM at once.  Note the
 * resulting population is a *different sample* of the same
 * distribution than generateScene(spec) — the streamed LOD builder is
 * its only intended consumer, and keys its output files accordingly.
 */
GaussianCloud generateSceneBatch(const SceneSpec &spec, std::uint64_t begin,
                                 std::size_t count);

/**
 * The exact population generateScene(spec, scale) produces: the
 * scaled count, floored to at least 16.  Scene caching keys and
 * validates cache files with it.
 */
std::size_t scaledGaussianCount(const SceneSpec &spec, float scale);

/**
 * Deterministic identity of the cloud generateScene(spec, scale)
 * returns: `<name>-s<seed>-n<count>-<digest>`, where the digest
 * hashes every generation-determining SceneSpec field (layout,
 * clustering, footprint, opacity and SH parameters — camera fields do
 * not contribute).  Two keys are equal iff generation produces the
 * same cloud, so scene caches and registries key on it; any spec
 * change invalidates stale entries instead of silently reusing them.
 */
std::string sceneGenKey(const SceneSpec &spec, float scale);

/** Build the evaluation camera for @p spec. */
Camera makeCamera(const SceneSpec &spec);

} // namespace gcc3d

#endif // GCC3D_SCENE_SCENE_GENERATOR_H
