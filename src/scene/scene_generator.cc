#include "scene/scene_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

namespace gcc3d {

namespace {

/** Per-cluster sampling context. */
struct Cluster
{
    Vec3 center;
    float sigma;
    Vec3 palette;  ///< base albedo of the cluster
};

Vec3
randomUnitVec(std::mt19937_64 &rng)
{
    std::normal_distribution<float> n(0.0f, 1.0f);
    Vec3 v(n(rng), n(rng), n(rng));
    return v.norm() > 0 ? v.normalized() : Vec3(1, 0, 0);
}

Vec3
randomPalette(std::mt19937_64 &rng)
{
    std::uniform_real_distribution<float> u(0.15f, 0.9f);
    return {u(rng), u(rng), u(rng)};
}

/**
 * Place cluster centers according to the layout archetype.  The three
 * archetypes reproduce the qualitative distributions the paper calls
 * out in Sec. 5.2: Palace-like scenes cluster near the camera center,
 * Drjohnson-like scenes are sparse and deep.
 */
std::vector<Cluster>
makeClusters(const SceneSpec &spec, std::mt19937_64 &rng)
{
    std::vector<Cluster> clusters;
    clusters.reserve(static_cast<std::size_t>(spec.cluster_count));
    std::uniform_real_distribution<float> u01(0.0f, 1.0f);
    std::normal_distribution<float> n(0.0f, 1.0f);
    float e = spec.extent;

    for (int i = 0; i < spec.cluster_count; ++i) {
        Cluster c;
        c.sigma = spec.cluster_sigma *
                  (0.5f + 1.0f * u01(rng));  // heterogeneous cluster sizes
        c.palette = randomPalette(rng);
        switch (spec.layout) {
          case SceneLayout::Object: {
            // Blobby object: clusters inside a sphere of radius extent,
            // biased toward a shell (surface detail).
            Vec3 dir = randomUnitVec(rng);
            // Surface-shell bias: trained object captures (Lego,
            // Palace) concentrate Gaussians on opaque surfaces.
            float r = e * (0.75f + 0.25f * std::sqrt(u01(rng)));
            c.center = dir * r;
            break;
          }
          case SceneLayout::Street: {
            // Corridor along x: content on both sides and on the ground,
            // stretching several extents forward.
            float x = e * (4.0f * u01(rng) - 0.5f);
            float side = u01(rng) < 0.5f ? -1.0f : 1.0f;
            float y = e * (0.05f + 0.45f * u01(rng));
            float z = side * e * (0.25f + 0.75f * u01(rng));
            // A third of clusters form the road/ground plane.
            if (u01(rng) < 0.33f) {
                y = 0.03f * e;
                z = e * (u01(rng) - 0.5f);
            }
            c.center = Vec3(x, y, z);
            break;
          }
          case SceneLayout::Room: {
            // Indoor box: clusters on the walls and furniture inside.
            float which = u01(rng);
            if (which < 0.55f) {
                // wall/ceiling/floor shells
                int face = static_cast<int>(u01(rng) * 6.0f) % 6;
                Vec3 p(e * (2.0f * u01(rng) - 1.0f),
                       e * u01(rng) * 0.8f,
                       e * (2.0f * u01(rng) - 1.0f));
                switch (face) {
                  case 0: p.x = -e; break;
                  case 1: p.x = e; break;
                  case 2: p.z = -e; break;
                  case 3: p.z = e; break;
                  case 4: p.y = 0.0f; break;
                  default: p.y = 0.8f * e; break;
                }
                c.center = p;
            } else {
                // furniture in the interior
                c.center = Vec3(e * 1.4f * (u01(rng) - 0.5f),
                                e * 0.35f * u01(rng),
                                e * 1.4f * (u01(rng) - 0.5f));
            }
            break;
          }
        }
        clusters.push_back(c);
    }
    return clusters;
}

/**
 * Per-Gaussian sampling state shared by the whole-scene and batched
 * generators.  The distribution objects are members (not locals) so
 * that their internal state — e.g. the cached second Box-Muller
 * normal draw — persists across samples exactly as it did when the
 * loop body lived inline in generateScene; the draw sequence, and
 * with it every generated scene, is unchanged.
 */
struct SampleContext
{
    const SceneSpec &spec;
    const std::vector<Cluster> &clusters;
    float compensation;
    std::uniform_real_distribution<float> u01{0.0f, 1.0f};
    std::normal_distribution<float> n01{0.0f, 1.0f};
    std::lognormal_distribution<float> scale_dist;
    std::uniform_int_distribution<std::size_t> pick;

    SampleContext(const SceneSpec &s, const std::vector<Cluster> &c,
                  float comp)
        : spec(s), clusters(c), compensation(comp),
          scale_dist(s.log_scale_mean, s.log_scale_sigma),
          pick(0, c.size() - 1)
    {
    }

    Gaussian
    sample(std::mt19937_64 &rng)
    {
        const Cluster &c = clusters[pick(rng)];

        Gaussian g;
        g.mean = c.center + Vec3(n01(rng), n01(rng), n01(rng)) * c.sigma;
        if (spec.layout != SceneLayout::Object)
            g.mean.y = std::max(g.mean.y, 0.0f);

        // Log-normal base scale with per-axis anisotropy; world scale
        // is proportional to the scene extent so that footprints keep
        // their pixel size across scene archetypes.
        float base = scale_dist(rng) * spec.extent * compensation;
        auto axis = [&]() {
            return base * std::exp(spec.anisotropy * n01(rng));
        };
        g.scale = Vec3(axis(), axis(), axis());

        g.rotation =
            Quat(n01(rng), n01(rng), n01(rng), n01(rng)).normalized();

        // Bimodal opacity: trained 3DGS models keep a high-opacity
        // core population (after pruning) plus a translucent detail
        // tail.
        if (u01(rng) < spec.high_opacity_fraction)
            g.opacity = spec.high_opacity_min +
                        (0.99f - spec.high_opacity_min) * u01(rng);
        else
            g.opacity = 0.02f + 0.6f * u01(rng);

        // Color: cluster palette + jitter in the DC term, small random
        // higher-order coefficients that shrink with band index.
        Vec3 albedo =
            c.palette + Vec3(n01(rng), n01(rng), n01(rng)) * 0.08f;
        albedo.x = std::clamp(albedo.x, 0.02f, 0.98f);
        albedo.y = std::clamp(albedo.y, 0.02f, 0.98f);
        albedo.z = std::clamp(albedo.z, 0.02f, 0.98f);
        g.setBaseColor(albedo);
        for (int ch = 0; ch < 3; ++ch) {
            for (int k = 1; k < kShCoeffsPerChannel; ++k) {
                int band = k < 4 ? 1 : (k < 9 ? 2 : 3);
                float s = spec.sh_detail / static_cast<float>(band);
                g.sh[ch * kShCoeffsPerChannel + k] = s * n01(rng);
            }
        }
        return g;
    }
};

/** Finalizing mix of splitmix64 — decorrelates (seed, begin) keys. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t begin)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (begin + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

std::size_t
scaledGaussianCount(const SceneSpec &spec, float scale)
{
    std::size_t count = static_cast<std::size_t>(
        static_cast<double>(spec.gaussian_count) * scale);
    return std::max<std::size_t>(count, 16);
}

std::string
sceneGenKey(const SceneSpec &spec, float scale)
{
    // Serialize every field generateScene reads (beyond name, seed
    // and the scaled count, which appear in the key directly), then
    // FNV-1a it into a short digest.  %.9g round-trips fp32 exactly.
    char fields[256];
    std::snprintf(fields, sizeof fields,
                  "%d|%.9g|%d|%.9g|%.9g|%.9g|%.9g|%.9g|%.9g|%.9g|%.9g",
                  static_cast<int>(spec.layout),
                  static_cast<double>(spec.extent), spec.cluster_count,
                  static_cast<double>(spec.cluster_sigma),
                  static_cast<double>(spec.log_scale_mean),
                  static_cast<double>(spec.log_scale_sigma),
                  static_cast<double>(spec.anisotropy),
                  static_cast<double>(spec.high_opacity_fraction),
                  static_cast<double>(spec.high_opacity_min),
                  static_cast<double>(spec.sh_detail),
                  static_cast<double>(scale));
    std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
    for (const char *p = fields; *p != '\0'; ++p) {
        hash ^= static_cast<unsigned char>(*p);
        hash *= 1099511628211ull;
    }
    char digest[17];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(hash));
    return spec.name + "-s" + std::to_string(spec.seed) + "-n" +
           std::to_string(scaledGaussianCount(spec, scale)) + "-" +
           digest;
}

GaussianCloud
generateScene(const SceneSpec &spec, float scale)
{
    GaussianCloud cloud(spec.name);
    std::mt19937_64 rng(spec.seed);

    std::size_t count = scaledGaussianCount(spec, scale);
    cloud.reserve(count);

    std::vector<Cluster> clusters = makeClusters(spec, rng);

    // Footprint compensation for reduced populations: at scale < 1 the
    // per-Gaussian footprint grows by scale^-1/2 (capped) so that total
    // screen coverage — and with it the occlusion/early-termination
    // statistics the paper profiles — is preserved.  At scale 1.0 this
    // is a no-op.
    float compensation =
        std::min(3.0f, 1.0f / std::sqrt(std::max(scale, 1e-3f)));

    SampleContext ctx(spec, clusters, compensation);
    for (std::size_t i = 0; i < count; ++i)
        cloud.add(ctx.sample(rng));
    return cloud;
}

GaussianCloud
generateSceneBatch(const SceneSpec &spec, std::uint64_t begin,
                   std::size_t count)
{
    GaussianCloud cloud(spec.name);
    cloud.reserve(count);

    // The cluster layout comes from the spec seed alone (the same
    // draws generateScene performs before its first Gaussian), so all
    // batches of a scene agree on where its content is.
    std::mt19937_64 cluster_rng(spec.seed);
    std::vector<Cluster> clusters = makeClusters(spec, cluster_rng);

    // Each batch samples from its own stream keyed on (seed, begin):
    // reproducible in any generation order, no shared state.
    std::mt19937_64 rng(mixSeed(spec.seed, begin));
    SampleContext ctx(spec, clusters, 1.0f);
    for (std::size_t i = 0; i < count; ++i)
        cloud.add(ctx.sample(rng));
    return cloud;
}

Camera
makeCamera(const SceneSpec &spec)
{
    Camera cam(spec.image_width, spec.image_height, spec.fov_x);
    float e = spec.extent;
    switch (spec.layout) {
      case SceneLayout::Object:
        cam.lookAt(Vec3(spec.camera_distance * e,
                        spec.camera_height * e,
                        spec.camera_distance * e * 0.8f),
                   Vec3(0, 0, 0));
        break;
      case SceneLayout::Street:
        // Inside the corridor looking down its axis.
        cam.lookAt(Vec3(-0.6f * e, spec.camera_height * e, 0.0f),
                   Vec3(3.0f * e, 0.25f * e, 0.0f));
        break;
      case SceneLayout::Room:
        // Inside the room, near one corner, looking across.
        cam.lookAt(Vec3(-0.7f * e, 0.4f * e, -0.7f * e),
                   Vec3(0.6f * e, 0.3f * e, 0.6f * e));
        break;
    }
    return cam;
}

} // namespace gcc3d
