/**
 * @file
 * Camera trajectories for multi-frame evaluation.
 *
 * The paper's motivating use case is sustained immersive rendering
 * (>= 90 FPS on AR headsets, Sec. 1).  Single-frame results hide the
 * frame-to-frame variance that conditional processing introduces —
 * how much work is skipped depends on the viewpoint.  This module
 * provides deterministic camera paths (orbits around objects, dolly
 * paths through scenes) so examples and benches can evaluate
 * sustained throughput.
 */

#ifndef GCC3D_SCENE_TRAJECTORY_H
#define GCC3D_SCENE_TRAJECTORY_H

#include <vector>

#include "scene/camera.h"
#include "scene/scene_generator.h"

namespace gcc3d {

/** A sequence of camera poses sharing one intrinsic model. */
class Trajectory
{
  public:
    Trajectory() = default;

    std::size_t frameCount() const { return cameras_.size(); }
    bool empty() const { return cameras_.empty(); }
    const Camera &frame(std::size_t i) const { return cameras_[i]; }
    const std::vector<Camera> &frames() const { return cameras_; }
    void add(const Camera &cam) { cameras_.push_back(cam); }

    /**
     * Pose change from frame @p i to frame i+1 (@p i in
     * [0, frameCount() - 2]): the inputs to temporal-cache
     * invalidation heuristics and warp trust regions.
     */
    CameraDelta
    stepDelta(std::size_t i) const
    {
        return cameraDelta(cameras_[i], cameras_[i + 1]);
    }

    /**
     * Component-wise maximum step delta over the whole path (zero
     * for paths of fewer than two frames).  Note the two maxima may
     * come from different steps.
     */
    CameraDelta
    maxCameraDelta() const
    {
        CameraDelta m;
        for (std::size_t i = 0; i + 1 < cameras_.size(); ++i) {
            CameraDelta d = stepDelta(i);
            m.translation = std::max(m.translation, d.translation);
            m.rotation_rad = std::max(m.rotation_rad, d.rotation_rad);
        }
        return m;
    }

    /**
     * Circular orbit around @p center at the given radius/height,
     * covering @p fraction of a revolution in @p frames steps (1.0 =
     * full circle).  A frame count below 1 is clamped to 1, so every
     * factory returns a non-empty path.
     *
     * @param proto  camera carrying the intrinsics (width/height/fov)
     */
    static Trajectory orbit(const Camera &proto, const Vec3 &center,
                            float radius, float height, int frames,
                            float fraction = 1.0f);

    /**
     * Linear dolly from @p from toward @p to, always looking at
     * @p look_at, in @p frames steps (clamped to at least 1),
     * stopping @p fraction of the way there (1.0 = the full path).
     */
    static Trajectory dolly(const Camera &proto, const Vec3 &from,
                            const Vec3 &to, const Vec3 &look_at,
                            int frames, float fraction = 1.0f);

    /** Natural path for a scene archetype (orbit for objects, dolly
     *  for streets/rooms), derived from the spec's geometry.  The
     *  frame count is clamped to at least 1 like the factories. */
    static Trajectory forScene(const SceneSpec &spec, int frames);

    /**
     * forScene() covering only @p fraction of the natural path in the
     * same number of frames — per-step camera deltas shrink by the
     * same factor.  The slow-motion trajectories the temporal
     * benches replay (and the `--traj-arc` serve flag) come from
     * here; fraction 1.0 is exactly forScene().
     */
    static Trajectory forSceneArc(const SceneSpec &spec, int frames,
                                  float fraction);

  private:
    std::vector<Camera> cameras_;
};

} // namespace gcc3d

#endif // GCC3D_SCENE_TRAJECTORY_H
