/**
 * @file
 * Camera trajectories for multi-frame evaluation.
 *
 * The paper's motivating use case is sustained immersive rendering
 * (>= 90 FPS on AR headsets, Sec. 1).  Single-frame results hide the
 * frame-to-frame variance that conditional processing introduces —
 * how much work is skipped depends on the viewpoint.  This module
 * provides deterministic camera paths (orbits around objects, dolly
 * paths through scenes) so examples and benches can evaluate
 * sustained throughput.
 */

#ifndef GCC3D_SCENE_TRAJECTORY_H
#define GCC3D_SCENE_TRAJECTORY_H

#include <vector>

#include "scene/camera.h"
#include "scene/scene_generator.h"

namespace gcc3d {

/** A sequence of camera poses sharing one intrinsic model. */
class Trajectory
{
  public:
    Trajectory() = default;

    std::size_t frameCount() const { return cameras_.size(); }
    bool empty() const { return cameras_.empty(); }
    const Camera &frame(std::size_t i) const { return cameras_[i]; }
    const std::vector<Camera> &frames() const { return cameras_; }
    void add(const Camera &cam) { cameras_.push_back(cam); }

    /**
     * Circular orbit around @p center at the given radius/height,
     * covering a full revolution in @p frames steps.  A frame count
     * below 1 is clamped to 1, so every factory returns a non-empty
     * path.
     *
     * @param proto  camera carrying the intrinsics (width/height/fov)
     */
    static Trajectory orbit(const Camera &proto, const Vec3 &center,
                            float radius, float height, int frames);

    /**
     * Linear dolly from @p from to @p to, always looking at
     * @p look_at, in @p frames steps (clamped to at least 1).
     */
    static Trajectory dolly(const Camera &proto, const Vec3 &from,
                            const Vec3 &to, const Vec3 &look_at,
                            int frames);

    /** Natural path for a scene archetype (orbit for objects, dolly
     *  for streets/rooms), derived from the spec's geometry.  The
     *  frame count is clamped to at least 1 like the factories. */
    static Trajectory forScene(const SceneSpec &spec, int frames);

  private:
    std::vector<Camera> cameras_;
};

} // namespace gcc3d

#endif // GCC3D_SCENE_TRAJECTORY_H
