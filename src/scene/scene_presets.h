/**
 * @file
 * The six evaluation scenes of the paper as SceneSpec presets.
 *
 * Gaussian counts follow the published 3DGS model sizes (Fig. 2a);
 * resolutions follow the standard evaluation resolutions of each
 * dataset.  The remaining generator knobs (clustering, opacity mix,
 * footprint distribution) are calibrated so that the dataflow
 * statistics the paper reports — in-frustum fraction, unused-Gaussian
 * fraction (Fig. 2a), per-Gaussian tile loads (Fig. 2b) — land in the
 * paper's bands.  EXPERIMENTS.md records paper-vs-measured values.
 */

#ifndef GCC3D_SCENE_SCENE_PRESETS_H
#define GCC3D_SCENE_SCENE_PRESETS_H

#include <string>
#include <vector>

#include "scene/scene_generator.h"

namespace gcc3d {

/** Identifiers for the paper's six evaluation scenes. */
enum class SceneId
{
    Palace,    ///< synthetic, compact, object-centric
    Lego,      ///< synthetic NeRF scene, object-centric
    Train,     ///< Tanks&Temples, outdoor
    Truck,     ///< Tanks&Temples, outdoor
    Playroom,  ///< Deep Blending, indoor
    Drjohnson, ///< Deep Blending, indoor, largest model
};

/** All six scenes in the paper's presentation order. */
const std::vector<SceneId> &allScenes();

/** Scene preset for @p id (counts, layout, camera). */
SceneSpec scenePreset(SceneId id);

/** Human-readable scene name ("Train", ...). */
std::string sceneName(SceneId id);

/** Parse a scene name (case-insensitive); throws on unknown names. */
SceneId sceneFromName(const std::string &name);

/**
 * The city-scale fly-through preset behind bench/lod_scale and the
 * --city serving flag: a Street-layout corridor with @p gaussian_count
 * splats (default 10M — ~30x the largest paper preset, far past what
 * a full-precision in-RAM GaussianCloud serves comfortably).  Not a
 * paper scene, so it is deliberately outside SceneId/allScenes(); it
 * exists to exercise the .gsc v2 + clustered-LOD + residency path.
 */
SceneSpec citySpec(std::size_t gaussian_count = 10000000);

/**
 * Population scale used by benchmarks; reads the GCC3D_SCALE
 * environment variable (default 1.0 = paper-scale populations).
 * Unit tests pass explicit small scales instead.
 */
float benchScale();

} // namespace gcc3d

#endif // GCC3D_SCENE_SCENE_PRESETS_H
