#include "scene/scene_presets.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace gcc3d {

const std::vector<SceneId> &
allScenes()
{
    static const std::vector<SceneId> scenes = {
        SceneId::Palace, SceneId::Lego, SceneId::Train,
        SceneId::Truck, SceneId::Playroom, SceneId::Drjohnson,
    };
    return scenes;
}

std::string
sceneName(SceneId id)
{
    switch (id) {
      case SceneId::Palace: return "Palace";
      case SceneId::Lego: return "Lego";
      case SceneId::Train: return "Train";
      case SceneId::Truck: return "Truck";
      case SceneId::Playroom: return "Playroom";
      case SceneId::Drjohnson: return "Drjohnson";
    }
    return "Unknown";
}

SceneId
sceneFromName(const std::string &name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    for (SceneId id : allScenes()) {
        std::string n = sceneName(id);
        std::transform(n.begin(), n.end(), n.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (n == lower)
            return id;
    }
    throw std::invalid_argument("unknown scene: " + name);
}

SceneSpec
scenePreset(SceneId id)
{
    SceneSpec s;
    s.name = sceneName(id);
    switch (id) {
      case SceneId::Palace:
        // Compact synthetic scene; "most Gaussians cluster near the
        // camera center" (Sec. 5.2).
        s.layout = SceneLayout::Object;
        s.seed = 101;
        s.gaussian_count = 450000;
        s.cluster_count = 160;
        s.extent = 3.0f;
        s.cluster_sigma = 0.08f;
        s.log_scale_mean = -5.6f;
        s.log_scale_sigma = 0.55f;
        s.anisotropy = 0.45f;
        s.high_opacity_fraction = 0.97f;
        s.high_opacity_min = 0.93f;
        s.image_width = 800;
        s.image_height = 800;
        s.camera_distance = 2.0f;
        break;
      case SceneId::Lego:
        s.layout = SceneLayout::Object;
        s.seed = 102;
        s.gaussian_count = 340000;
        s.cluster_count = 120;
        s.extent = 2.5f;
        s.cluster_sigma = 0.07f;
        s.log_scale_mean = -5.6f;
        s.log_scale_sigma = 0.55f;
        s.anisotropy = 0.45f;
        s.high_opacity_fraction = 0.97f;
        s.high_opacity_min = 0.94f;
        s.image_width = 800;
        s.image_height = 800;
        s.camera_distance = 2.0f;
        break;
      case SceneId::Train:
        s.layout = SceneLayout::Street;
        s.seed = 103;
        s.gaussian_count = 1060000;
        s.cluster_count = 300;
        s.extent = 5.0f;
        s.cluster_sigma = 0.55f;
        s.log_scale_mean = -6.4f;
        s.log_scale_sigma = 0.55f;
        s.anisotropy = 0.45f;
        s.high_opacity_fraction = 0.7f;
        s.high_opacity_min = 0.75f;
        s.image_width = 980;
        s.image_height = 545;
        s.fov_x = 1.05f;
        s.camera_height = 0.25f;
        break;
      case SceneId::Truck:
        s.layout = SceneLayout::Street;
        s.seed = 104;
        s.gaussian_count = 2570000;
        s.cluster_count = 420;
        s.extent = 6.0f;
        s.cluster_sigma = 0.55f;
        s.log_scale_mean = -6.8f;
        s.log_scale_sigma = 0.55f;
        s.anisotropy = 0.45f;
        s.high_opacity_fraction = 0.7f;
        s.high_opacity_min = 0.75f;
        s.image_width = 980;
        s.image_height = 545;
        s.fov_x = 1.05f;
        s.camera_height = 0.25f;
        break;
      case SceneId::Playroom:
        s.layout = SceneLayout::Room;
        s.seed = 105;
        s.gaussian_count = 2330000;
        s.cluster_count = 380;
        s.extent = 4.0f;
        s.cluster_sigma = 0.45f;
        s.log_scale_mean = -6.6f;
        s.log_scale_sigma = 0.55f;
        s.anisotropy = 0.45f;
        s.high_opacity_fraction = 0.9f;
        s.high_opacity_min = 0.82f;
        s.image_width = 1264;
        s.image_height = 832;
        s.fov_x = 1.2f;
        break;
      case SceneId::Drjohnson:
        s.layout = SceneLayout::Room;
        s.seed = 106;
        s.gaussian_count = 3280000;
        s.cluster_count = 480;
        s.extent = 4.5f;
        s.cluster_sigma = 0.45f;
        s.log_scale_mean = -6.6f;
        s.log_scale_sigma = 0.55f;
        s.anisotropy = 0.45f;
        s.high_opacity_fraction = 0.9f;
        s.high_opacity_min = 0.82f;
        s.image_width = 1264;
        s.image_height = 832;
        s.fov_x = 1.2f;
        break;
    }
    return s;
}

SceneSpec
citySpec(std::size_t gaussian_count)
{
    // An elongated urban corridor far past any paper preset: the
    // fly-through workload of ROADMAP item 3.  Many small clusters
    // spread over a deep street layout give real spatial sparsity, so
    // the distance-dependent LOD cut has something to cut.
    SceneSpec s;
    s.name = "City";
    s.layout = SceneLayout::Street;
    s.seed = 1107;
    s.gaussian_count = gaussian_count;
    s.cluster_count = 4096;
    s.extent = 14.0f;
    s.cluster_sigma = 0.5f;
    s.log_scale_mean = -7.0f;
    s.log_scale_sigma = 0.55f;
    s.anisotropy = 0.45f;
    s.high_opacity_fraction = 0.75f;
    s.high_opacity_min = 0.78f;
    s.image_width = 980;
    s.image_height = 545;
    s.fov_x = 1.05f;
    s.camera_height = 0.25f;
    return s;
}

float
benchScale()
{
    // 0.25 keeps the full figure suite tractable on a laptop-class
    // single core while preserving all population *ratios*; set
    // GCC3D_SCALE=1.0 for paper-scale counts.
    constexpr float kDefault = 0.25f;
    const char *env = std::getenv("GCC3D_SCALE");
    if (env == nullptr)
        return kDefault;
    float v = std::strtof(env, nullptr);
    if (v <= 0.0f || v > 1.0f)
        return kDefault;
    return v;
}

} // namespace gcc3d
