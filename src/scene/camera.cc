#include "scene/camera.h"

#include <cmath>

namespace gcc3d {

Camera::Camera(int width, int height, float fov_x)
    : width_(width), height_(height)
{
    focal_x_ = 0.5f * static_cast<float>(width) / std::tan(0.5f * fov_x);
    // Square pixels: same focal length in both axes.
    focal_y_ = focal_x_;
}

void
Camera::lookAt(const Vec3 &eye, const Vec3 &target, const Vec3 &up)
{
    position_ = eye;
    Vec3 fwd = (target - eye).normalized();      // +z in view space
    Vec3 right = fwd.cross(up).normalized();     // +x
    Vec3 cam_up = fwd.cross(right);              // +y (image-down consistent)

    // Rows of the rotation block are the camera basis vectors; the
    // translation column brings the eye to the origin.
    Mat3 rot(right.x, right.y, right.z,
             cam_up.x, cam_up.y, cam_up.z,
             fwd.x, fwd.y, fwd.z);
    Vec3 t = rot * (-eye);
    view_ = Mat4::fromRotationTranslation(rot, t);
}

Mat3
Camera::projectionJacobian(const Vec3 &v) const
{
    float inv_z = 1.0f / v.z;
    float inv_z2 = inv_z * inv_z;
    // d(pixel)/d(view): standard EWA Jacobian; third row unused.
    return Mat3(focal_x_ * inv_z, 0.0f, -focal_x_ * v.x * inv_z2,
                0.0f, focal_y_ * inv_z, -focal_y_ * v.y * inv_z2,
                0.0f, 0.0f, 0.0f);
}

} // namespace gcc3d
