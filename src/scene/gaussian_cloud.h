/**
 * @file
 * A trained 3DGS model: a cloud of Gaussians plus scene metadata.
 */

#ifndef GCC3D_SCENE_GAUSSIAN_CLOUD_H
#define GCC3D_SCENE_GAUSSIAN_CLOUD_H

#include <cstddef>
#include <string>
#include <vector>

#include "scene/gaussian.h"

namespace gcc3d {

/**
 * A complete 3DGS scene model.  Owns the Gaussian array and records
 * the scene name and the bounding volume of the Gaussian means (used
 * by camera placement helpers and by the scene generators).
 */
class GaussianCloud
{
  public:
    GaussianCloud() = default;
    explicit GaussianCloud(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    std::size_t size() const { return gaussians_.size(); }
    bool empty() const { return gaussians_.empty(); }

    const Gaussian &operator[](std::size_t i) const { return gaussians_[i]; }
    Gaussian &operator[](std::size_t i) { return gaussians_[i]; }

    const std::vector<Gaussian> &gaussians() const { return gaussians_; }
    std::vector<Gaussian> &gaussians() { return gaussians_; }

    void reserve(std::size_t n) { gaussians_.reserve(n); }
    void add(const Gaussian &g) { gaussians_.push_back(g); }
    void clear() { gaussians_.clear(); }

    /** Total model size in bytes at fp32 (59 floats per Gaussian). */
    std::size_t
    sizeBytes() const
    {
        return gaussians_.size() * Gaussian::kTotalBytes;
    }

    /** Axis-aligned bounds of the Gaussian means. */
    void
    bounds(Vec3 &lo, Vec3 &hi) const
    {
        lo = Vec3(0, 0, 0);
        hi = Vec3(0, 0, 0);
        if (gaussians_.empty())
            return;
        lo = hi = gaussians_.front().mean;
        for (const Gaussian &g : gaussians_) {
            lo = lo.cwiseMin(g.mean);
            hi = hi.cwiseMax(g.mean);
        }
    }

    /** Centroid of the Gaussian means. */
    Vec3
    centroid() const
    {
        Vec3 c;
        if (gaussians_.empty())
            return c;
        for (const Gaussian &g : gaussians_)
            c += g.mean;
        return c / static_cast<float>(gaussians_.size());
    }

  private:
    std::string name_;
    std::vector<Gaussian> gaussians_;
};

} // namespace gcc3d

#endif // GCC3D_SCENE_GAUSSIAN_CLOUD_H
