/**
 * @file
 * The trained 3D Gaussian primitive.
 *
 * Each Gaussian carries the 59 floating-point parameters the paper
 * enumerates (Sec. 2.2): 3 position + 3 scale + 4 rotation quaternion
 * + 1 opacity + 48 spherical-harmonic color coefficients.  The
 * accelerator's DRAM traffic accounting is expressed in terms of this
 * layout: the 11 "geometry" floats are needed by projection/culling,
 * while the 48 SH floats are only needed by Gaussians that survive to
 * color evaluation — the asymmetry cross-stage conditional processing
 * exploits.
 */

#ifndef GCC3D_SCENE_GAUSSIAN_H
#define GCC3D_SCENE_GAUSSIAN_H

#include <array>
#include <cstddef>

#include "gsmath/quat.h"
#include "gsmath/sh.h"
#include "gsmath/vec.h"

namespace gcc3d {

/** A single trained 3D Gaussian (59 float parameters). */
struct Gaussian
{
    Vec3 mean;                               ///< world-space center mu
    Vec3 scale;                              ///< per-axis std-dev s
    Quat rotation;                           ///< orientation q
    float opacity = 1.0f;                    ///< omega in (0, 1]
    std::array<float, kShCoeffsTotal> sh{};  ///< 48 SH color coefficients

    /** Geometry-only parameter count (loaded before SH is needed). */
    static constexpr std::size_t kGeomFloats = 11;
    /** SH parameter count. */
    static constexpr std::size_t kShFloats = kShCoeffsTotal;
    /** Total per-Gaussian parameter count (59). */
    static constexpr std::size_t kTotalFloats = kGeomFloats + kShFloats;

    /** Bytes of the geometry portion (fp32). */
    static constexpr std::size_t kGeomBytes = kGeomFloats * sizeof(float);
    /** Bytes of the SH portion (fp32). */
    static constexpr std::size_t kShBytes = kShFloats * sizeof(float);
    /** Bytes of the full parameter record (fp32). */
    static constexpr std::size_t kTotalBytes = kTotalFloats * sizeof(float);

    /** Set the DC (degree-0) SH term so the base color is roughly rgb. */
    void
    setBaseColor(const Vec3 &rgb)
    {
        // Inverse of the +0.5 offset and Y00 scaling in evalShColor.
        constexpr float kInvC0 = 1.0f / 0.28209479177387814f;
        sh[0 * kShCoeffsPerChannel] = (rgb.x - 0.5f) * kInvC0;
        sh[1 * kShCoeffsPerChannel] = (rgb.y - 0.5f) * kInvC0;
        sh[2 * kShCoeffsPerChannel] = (rgb.z - 0.5f) * kInvC0;
    }

    /** World-space 3x3 covariance Sigma = R S S^T R^T (Eq. 1, left). */
    Mat3
    covariance3d() const
    {
        Mat3 r = rotation.toMatrix();
        Mat3 s = Mat3::diagonal(scale);
        Mat3 rs = r * s;
        return rs * rs.transposed();
    }
};

} // namespace gcc3d

#endif // GCC3D_SCENE_GAUSSIAN_H
