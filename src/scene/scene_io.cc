#include "scene/scene_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace gcc3d {

namespace {

constexpr char kMagic[4] = {'G', 'S', 'C', '1'};

void
packGaussian(const Gaussian &g, float *out)
{
    out[0] = g.mean.x;
    out[1] = g.mean.y;
    out[2] = g.mean.z;
    out[3] = g.scale.x;
    out[4] = g.scale.y;
    out[5] = g.scale.z;
    out[6] = g.rotation.w;
    out[7] = g.rotation.x;
    out[8] = g.rotation.y;
    out[9] = g.rotation.z;
    out[10] = g.opacity;
    std::memcpy(out + 11, g.sh.data(), sizeof(float) * kShCoeffsTotal);
}

Gaussian
unpackGaussian(const float *in)
{
    Gaussian g;
    g.mean = Vec3(in[0], in[1], in[2]);
    g.scale = Vec3(in[3], in[4], in[5]);
    g.rotation = Quat(in[6], in[7], in[8], in[9]);
    g.opacity = in[10];
    std::memcpy(g.sh.data(), in + 11, sizeof(float) * kShCoeffsTotal);
    return g;
}

} // namespace

bool
saveCloud(const GaussianCloud &cloud, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    std::uint32_t name_len =
        static_cast<std::uint32_t>(cloud.name().size());
    std::uint64_t count = cloud.size();
    os.write(reinterpret_cast<const char *>(&name_len), sizeof(name_len));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    os.write(cloud.name().data(), name_len);

    std::vector<float> rec(Gaussian::kTotalFloats);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        packGaussian(cloud[i], rec.data());
        os.write(reinterpret_cast<const char *>(rec.data()),
                 static_cast<std::streamsize>(rec.size() * sizeof(float)));
    }
    return static_cast<bool>(os);
}

bool
saveCloudFile(const GaussianCloud &cloud, const std::string &path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    return saveCloud(cloud, f);
}

GaussianCloud
loadCloud(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("scene_io: bad magic");

    std::uint32_t name_len = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&name_len), sizeof(name_len));
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        throw std::runtime_error("scene_io: truncated header");
    if (name_len > 4096)
        throw std::runtime_error("scene_io: implausible name length");

    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is)
        throw std::runtime_error("scene_io: truncated name");

    GaussianCloud cloud(name);
    cloud.reserve(count);
    std::vector<float> rec(Gaussian::kTotalFloats);
    for (std::uint64_t i = 0; i < count; ++i) {
        is.read(reinterpret_cast<char *>(rec.data()),
                static_cast<std::streamsize>(rec.size() * sizeof(float)));
        if (!is)
            throw std::runtime_error("scene_io: truncated record");
        cloud.add(unpackGaussian(rec.data()));
    }
    return cloud;
}

GaussianCloud
loadCloudFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("scene_io: cannot open " + path);
    return loadCloud(f);
}

} // namespace gcc3d
