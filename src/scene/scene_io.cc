#include "scene/scene_io.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gsmath/fixed_point.h"
#include "gsmath/half.h"
#include "obs/fault_hooks.h"
#include "obs/metrics_registry.h"
#include "obs/perf_recorder.h"

namespace gcc3d {

namespace {

constexpr char kMagicV1[4] = {'G', 'S', 'C', '1'};
constexpr char kMagicV2[4] = {'G', 'S', 'C', '2'};
constexpr char kMagicFooter[4] = {'G', 'S', 'C', 'F'};

constexpr std::uint32_t kV2Version = 2;
constexpr std::uint32_t kFlagQuantized = 1u << 0;
constexpr std::uint32_t kKnownFlags = kFlagQuantized;

/** Fixed-size v2 header bytes before the name. */
constexpr std::uint64_t kV2HeaderBytes = 40;
// Patch offsets within the header (see the layout in scene_io.h).
constexpr std::uint64_t kV2TotalCountOffset = 16;
constexpr std::uint64_t kV2FooterOffsetOffset = 24;
constexpr std::uint64_t kV2ChunkCountOffset = 36;

constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint32_t kMaxChunks = 1u << 22;
constexpr std::uint32_t kMaxProxyLevels = 16;

/** Quantized record body: pos 3xi16, scale 3xu16, quat 4xi16,
 *  opacity u16, sh 48xu16. */
constexpr std::size_t kQuantBodyBytes = 118;
constexpr std::size_t kRawBodyBytes = Gaussian::kTotalFloats * 4;

// Global log-quantization ranges (documented in scene_io.h).
constexpr float kLogScaleMin = -14.0f;
constexpr float kLogScaleMax = 6.0f;
const float kLogOpacityMin = std::log(1e-4f);

std::size_t
bodyBytes(bool quantized)
{
    return quantized ? kQuantBodyBytes : kRawBodyBytes;
}

std::size_t
leafRecordBytes(bool quantized)
{
    return sizeof(std::uint32_t) + bodyBytes(quantized);
}

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
void
readPod(std::istream &is, T &v, const char *what)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        throw std::runtime_error(std::string("scene_io: truncated ") + what);
}

std::uint16_t
logQuant(float v, float lo, float hi)
{
    float x = std::log(std::max(v, std::numeric_limits<float>::min()));
    x = std::clamp(x, lo, hi);
    float t = (x - lo) / (hi - lo) * 65535.0f;
    return static_cast<std::uint16_t>(std::lround(t));
}

float
logDequant(std::uint16_t q, float lo, float hi)
{
    return std::exp(lo + static_cast<float>(q) * (hi - lo) / 65535.0f);
}

std::int16_t
unitQuant(float t)
{
    return static_cast<std::int16_t>(UnitFixed::fromFloat(t).raw());
}

float
unitDequant(std::int16_t raw)
{
    return UnitFixed::fromRaw(raw).toFloat();
}

/** Quantization frame of a chunk: centers/half-extents of its AABB. */
struct ChunkFrame
{
    Vec3 center;
    Vec3 half;

    explicit ChunkFrame(const Vec3 &lo, const Vec3 &hi)
    {
        center = (lo + hi) * 0.5f;
        // A degenerate axis (single point) still needs a non-zero
        // scale for the normalized mapping.
        half = Vec3(std::max(0.5f * (hi.x - lo.x), 1e-6f),
                    std::max(0.5f * (hi.y - lo.y), 1e-6f),
                    std::max(0.5f * (hi.z - lo.z), 1e-6f));
    }
};

void
encodeBody(const Gaussian &g, bool quantized, const ChunkFrame &frame,
           std::ostream &os)
{
    if (!quantized) {
        float rec[Gaussian::kTotalFloats];
        rec[0] = g.mean.x;
        rec[1] = g.mean.y;
        rec[2] = g.mean.z;
        rec[3] = g.scale.x;
        rec[4] = g.scale.y;
        rec[5] = g.scale.z;
        rec[6] = g.rotation.w;
        rec[7] = g.rotation.x;
        rec[8] = g.rotation.y;
        rec[9] = g.rotation.z;
        rec[10] = g.opacity;
        std::memcpy(rec + 11, g.sh.data(), sizeof(float) * kShCoeffsTotal);
        os.write(reinterpret_cast<const char *>(rec), sizeof(rec));
        return;
    }

    unsigned char buf[kQuantBodyBytes];
    std::size_t at = 0;
    auto put16 = [&](std::uint16_t v) {
        std::memcpy(buf + at, &v, 2);
        at += 2;
    };
    put16(static_cast<std::uint16_t>(
        unitQuant((g.mean.x - frame.center.x) / frame.half.x)));
    put16(static_cast<std::uint16_t>(
        unitQuant((g.mean.y - frame.center.y) / frame.half.y)));
    put16(static_cast<std::uint16_t>(
        unitQuant((g.mean.z - frame.center.z) / frame.half.z)));
    put16(logQuant(g.scale.x, kLogScaleMin, kLogScaleMax));
    put16(logQuant(g.scale.y, kLogScaleMin, kLogScaleMax));
    put16(logQuant(g.scale.z, kLogScaleMin, kLogScaleMax));
    Quat q = g.rotation.normalized();
    put16(static_cast<std::uint16_t>(unitQuant(q.w)));
    put16(static_cast<std::uint16_t>(unitQuant(q.x)));
    put16(static_cast<std::uint16_t>(unitQuant(q.y)));
    put16(static_cast<std::uint16_t>(unitQuant(q.z)));
    put16(logQuant(g.opacity, kLogOpacityMin, 0.0f));
    for (std::size_t i = 0; i < kShCoeffsTotal; ++i)
        put16(floatToHalf(g.sh[i]));
    os.write(reinterpret_cast<const char *>(buf), sizeof(buf));
}

Gaussian
decodeBody(std::istream &is, bool quantized, const ChunkFrame &frame)
{
    Gaussian g;
    if (!quantized) {
        float rec[Gaussian::kTotalFloats];
        is.read(reinterpret_cast<char *>(rec), sizeof(rec));
        if (!is)
            throw std::runtime_error("scene_io: truncated record");
        g.mean = Vec3(rec[0], rec[1], rec[2]);
        g.scale = Vec3(rec[3], rec[4], rec[5]);
        g.rotation = Quat(rec[6], rec[7], rec[8], rec[9]);
        g.opacity = rec[10];
        std::memcpy(g.sh.data(), rec + 11, sizeof(float) * kShCoeffsTotal);
        return g;
    }

    unsigned char buf[kQuantBodyBytes];
    is.read(reinterpret_cast<char *>(buf), sizeof(buf));
    if (!is)
        throw std::runtime_error("scene_io: truncated record");
    std::size_t at = 0;
    auto get16 = [&]() {
        std::uint16_t v;
        std::memcpy(&v, buf + at, 2);
        at += 2;
        return v;
    };
    auto getUnit = [&]() {
        return unitDequant(static_cast<std::int16_t>(get16()));
    };
    // Sequence every read explicitly: argument evaluation order is
    // unspecified, so get16() calls must not nest in constructors.
    float px = getUnit(), py = getUnit(), pz = getUnit();
    g.mean = Vec3(frame.center.x + frame.half.x * px,
                  frame.center.y + frame.half.y * py,
                  frame.center.z + frame.half.z * pz);
    float sx = logDequant(get16(), kLogScaleMin, kLogScaleMax);
    float sy = logDequant(get16(), kLogScaleMin, kLogScaleMax);
    float sz = logDequant(get16(), kLogScaleMin, kLogScaleMax);
    g.scale = Vec3(sx, sy, sz);
    float qw = getUnit(), qx = getUnit(), qy = getUnit(), qz = getUnit();
    g.rotation = Quat(qw, qx, qy, qz).normalized();
    g.opacity = logDequant(get16(), kLogOpacityMin, 0.0f);
    for (std::size_t i = 0; i < kShCoeffsTotal; ++i)
        g.sh[i] = halfToFloat(get16());
    return g;
}

void
packGaussianV1(const Gaussian &g, float *out)
{
    out[0] = g.mean.x;
    out[1] = g.mean.y;
    out[2] = g.mean.z;
    out[3] = g.scale.x;
    out[4] = g.scale.y;
    out[5] = g.scale.z;
    out[6] = g.rotation.w;
    out[7] = g.rotation.x;
    out[8] = g.rotation.y;
    out[9] = g.rotation.z;
    out[10] = g.opacity;
    std::memcpy(out + 11, g.sh.data(), sizeof(float) * kShCoeffsTotal);
}

Gaussian
unpackGaussianV1(const float *in)
{
    Gaussian g;
    g.mean = Vec3(in[0], in[1], in[2]);
    g.scale = Vec3(in[3], in[4], in[5]);
    g.rotation = Quat(in[6], in[7], in[8], in[9]);
    g.opacity = in[10];
    std::memcpy(g.sh.data(), in + 11, sizeof(float) * kShCoeffsTotal);
    return g;
}

/** v1 body loader; @p is is positioned just past the magic. */
GaussianCloud
loadCloudV1Body(std::istream &is)
{
    std::uint32_t name_len = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&name_len), sizeof(name_len));
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        throw std::runtime_error("scene_io: truncated header");
    if (name_len > kMaxNameLen)
        throw std::runtime_error("scene_io: implausible name length");

    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is)
        throw std::runtime_error("scene_io: truncated name");

    GaussianCloud cloud(name);
    // A corrupted count field must surface as "truncated record" a
    // few reads below, not as a std::length_error/bad_alloc from
    // reserving petabytes — cap the hint; the vector grows past it
    // naturally for genuinely large files.
    cloud.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 1u << 20)));
    std::vector<float> rec(Gaussian::kTotalFloats);
    for (std::uint64_t i = 0; i < count; ++i) {
        is.read(reinterpret_cast<char *>(rec.data()),
                static_cast<std::streamsize>(rec.size() * sizeof(float)));
        if (!is)
            throw std::runtime_error("scene_io: truncated record");
        cloud.add(unpackGaussianV1(rec.data()));
    }
    return cloud;
}

/** v2 loader (the LOD-off path); @p is is positioned at the magic. */
GaussianCloud
loadCloudV2Body(std::istream &is)
{
    GscV2Reader reader(is);
    GaussianCloud cloud(reader.name());
    const std::uint64_t total = reader.totalCount();
    cloud.gaussians().resize(static_cast<std::size_t>(total));
    std::vector<bool> seen(static_cast<std::size_t>(total), false);

    std::vector<Gaussian> chunk;
    std::vector<std::uint32_t> indices;
    for (std::size_t c = 0; c < reader.chunkCount(); ++c) {
        reader.loadChunk(is, c, chunk, indices);
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            const std::uint32_t at = indices[i];
            if (seen[at])
                throw std::runtime_error(
                    "scene_io: duplicate leaf index in v2 file");
            seen[at] = true;
            cloud.gaussians()[at] = chunk[i];
        }
    }
    // Chunk counts sum to total and indices are unique, so every slot
    // was filled; this is belt and braces for the empty-total case.
    return cloud;
}

} // namespace

bool
saveCloud(const GaussianCloud &cloud, std::ostream &os)
{
    os.write(kMagicV1, sizeof(kMagicV1));
    std::uint32_t name_len =
        static_cast<std::uint32_t>(cloud.name().size());
    std::uint64_t count = cloud.size();
    os.write(reinterpret_cast<const char *>(&name_len), sizeof(name_len));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    os.write(cloud.name().data(), name_len);

    std::vector<float> rec(Gaussian::kTotalFloats);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        packGaussianV1(cloud[i], rec.data());
        os.write(reinterpret_cast<const char *>(rec.data()),
                 static_cast<std::streamsize>(rec.size() * sizeof(float)));
    }
    return static_cast<bool>(os);
}

bool
saveCloudFile(const GaussianCloud &cloud, const std::string &path)
{
    obs::PerfScope io_scope(obs::Stage::SceneIo);
    obs::MetricsRegistry::global().counter("scene.io.writes").add();
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    return saveCloud(cloud, f);
}

GaussianCloud
loadCloud(std::istream &is)
{
    const std::istream::pos_type start = is.tellg();
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is)
        throw std::runtime_error("scene_io: bad magic");
    if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0)
        return loadCloudV1Body(is);
    if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
        is.seekg(start);
        return loadCloudV2Body(is);
    }
    throw std::runtime_error("scene_io: bad magic");
}

GaussianCloud
loadCloudFile(const std::string &path)
{
    obs::PerfScope io_scope(obs::Stage::SceneIo);
    obs::MetricsRegistry::global().counter("scene.io.reads").add();
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("scene_io: cannot open " + path);
    return loadCloud(f);
}

bool
isGscV2File(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    char magic[4];
    f.read(magic, sizeof(magic));
    return f && std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
}

// ---- GscV2Writer ----

struct GscV2Writer::DirEntry
{
    Vec3 lo, hi;
    std::uint64_t offset = 0;
    std::uint64_t count = 0;
};

GscV2Writer::~GscV2Writer() = default;

GscV2Writer::GscV2Writer(std::ostream &os, std::string name,
                         int proxy_levels, bool quantize)
    : os_(os), proxy_levels_(std::clamp(proxy_levels, 0,
                                        static_cast<int>(kMaxProxyLevels))),
      quantize_(quantize)
{
    base_ = static_cast<std::uint64_t>(os_.tellp());
    os_.write(kMagicV2, sizeof(kMagicV2));
    writePod(os_, kV2Version);
    writePod(os_, quantize_ ? kFlagQuantized : 0u);
    writePod(os_, static_cast<std::uint32_t>(name.size()));
    writePod(os_, std::uint64_t{0});  // total_count, patched by finish()
    writePod(os_, std::uint64_t{0});  // footer_offset, patched
    writePod(os_, static_cast<std::uint32_t>(proxy_levels_));
    writePod(os_, std::uint32_t{0});  // chunk_count, patched
    os_.write(name.data(), static_cast<std::streamsize>(name.size()));
}

bool
GscV2Writer::writeChunk(const GscChunkDraft &chunk)
{
    DirEntry entry;
    entry.lo = chunk.lo;
    entry.hi = chunk.hi;
    entry.offset = static_cast<std::uint64_t>(os_.tellp()) - base_;
    entry.count = chunk.gaussians.size();

    const ChunkFrame frame(chunk.lo, chunk.hi);
    for (std::size_t i = 0; i < chunk.gaussians.size(); ++i) {
        writePod(os_, chunk.indices[i]);
        encodeBody(chunk.gaussians[i], quantize_, frame, os_);
    }
    total_ += chunk.gaussians.size();
    dir_.push_back(entry);

    // Proxy records are footer data (always-resident at load time),
    // so they are buffered until finish(); at the builder's default
    // 64:1 base ratio the whole pyramid is ~2% of the scene.
    std::vector<std::vector<Gaussian>> levels = chunk.proxies;
    levels.resize(static_cast<std::size_t>(proxy_levels_));
    proxies_.push_back(std::move(levels));
    return static_cast<bool>(os_);
}

bool
GscV2Writer::finish()
{
    if (finished_)
        return static_cast<bool>(os_);
    finished_ = true;

    const std::uint64_t footer_offset =
        static_cast<std::uint64_t>(os_.tellp()) - base_;
    os_.write(kMagicFooter, sizeof(kMagicFooter));
    writePod(os_, static_cast<std::uint32_t>(dir_.size()));
    for (std::size_t c = 0; c < dir_.size(); ++c) {
        const DirEntry &entry = dir_[c];
        writePod(os_, entry.lo.x);
        writePod(os_, entry.lo.y);
        writePod(os_, entry.lo.z);
        writePod(os_, entry.hi.x);
        writePod(os_, entry.hi.y);
        writePod(os_, entry.hi.z);
        writePod(os_, entry.offset);
        writePod(os_, entry.count);
        const ChunkFrame frame(entry.lo, entry.hi);
        for (const std::vector<Gaussian> &level : proxies_[c]) {
            writePod(os_, static_cast<std::uint32_t>(level.size()));
            for (const Gaussian &g : level)
                encodeBody(g, quantize_, frame, os_);
        }
    }

    os_.seekp(static_cast<std::streamoff>(base_ + kV2TotalCountOffset));
    writePod(os_, total_);
    os_.seekp(static_cast<std::streamoff>(base_ + kV2FooterOffsetOffset));
    writePod(os_, footer_offset);
    os_.seekp(static_cast<std::streamoff>(base_ + kV2ChunkCountOffset));
    writePod(os_, static_cast<std::uint32_t>(dir_.size()));
    os_.seekp(0, std::ios::end);
    return static_cast<bool>(os_);
}

// ---- GscV2Reader ----

GscV2Reader::GscV2Reader(std::istream &is)
{
    base_ = static_cast<std::uint64_t>(is.tellg());

    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0)
        throw std::runtime_error("scene_io: bad v2 magic");
    std::uint32_t version = 0, flags = 0, name_len = 0, proxy_levels = 0,
                  chunk_count = 0;
    std::uint64_t footer_offset = 0;
    readPod(is, version, "header");
    readPod(is, flags, "header");
    readPod(is, name_len, "header");
    readPod(is, total_, "header");
    readPod(is, footer_offset, "header");
    readPod(is, proxy_levels, "header");
    readPod(is, chunk_count, "header");
    if (version != kV2Version)
        throw std::runtime_error("scene_io: unsupported v2 version");
    if ((flags & ~kKnownFlags) != 0)
        throw std::runtime_error("scene_io: unknown v2 flags");
    if (name_len > kMaxNameLen)
        throw std::runtime_error("scene_io: implausible name length");
    if (proxy_levels > kMaxProxyLevels)
        throw std::runtime_error("scene_io: implausible proxy level count");
    if (chunk_count > kMaxChunks)
        throw std::runtime_error("scene_io: implausible chunk count");
    quantized_ = (flags & kFlagQuantized) != 0;
    proxy_levels_ = static_cast<int>(proxy_levels);

    name_.resize(name_len);
    is.read(name_.data(), name_len);
    if (!is)
        throw std::runtime_error("scene_io: truncated name");
    const std::uint64_t header_end = kV2HeaderBytes + name_len;

    // The footer must live inside the stream, past the header.
    is.seekg(0, std::ios::end);
    const std::uint64_t stream_end = static_cast<std::uint64_t>(is.tellg());
    if (stream_end < base_)
        throw std::runtime_error("scene_io: truncated v2 stream");
    const std::uint64_t avail = stream_end - base_;
    if (footer_offset < header_end ||
        footer_offset + sizeof(kMagicFooter) + sizeof(std::uint32_t) > avail)
        throw std::runtime_error("scene_io: v2 footer offset out of range");
    is.seekg(static_cast<std::streamoff>(base_ + footer_offset));

    char fmagic[4];
    is.read(fmagic, sizeof(fmagic));
    if (!is || std::memcmp(fmagic, kMagicFooter, sizeof(kMagicFooter)) != 0)
        throw std::runtime_error("scene_io: bad v2 footer magic");
    std::uint32_t fcount = 0;
    readPod(is, fcount, "footer");
    if (fcount != chunk_count)
        throw std::runtime_error(
            "scene_io: v2 chunk count mismatch between header and footer");

    const std::size_t leaf_rec = leafRecordBytes(quantized_);
    std::uint64_t leaf_total = 0;
    chunks_.resize(chunk_count);
    for (std::uint32_t c = 0; c < chunk_count; ++c) {
        GscV2ChunkInfo &info = chunks_[c];
        float aabb[6];
        is.read(reinterpret_cast<char *>(aabb), sizeof(aabb));
        if (!is)
            throw std::runtime_error("scene_io: truncated footer");
        for (float v : aabb)
            if (!std::isfinite(v))
                throw std::runtime_error("scene_io: non-finite chunk AABB");
        info.lo = Vec3(aabb[0], aabb[1], aabb[2]);
        info.hi = Vec3(aabb[3], aabb[4], aabb[5]);
        if (info.hi.x < info.lo.x || info.hi.y < info.lo.y ||
            info.hi.z < info.lo.z)
            throw std::runtime_error("scene_io: inverted chunk AABB");
        readPod(is, info.offset, "footer");
        readPod(is, info.count, "footer");
        if (info.offset < header_end || info.count > total_ ||
            info.offset + info.count * leaf_rec > footer_offset)
            throw std::runtime_error(
                "scene_io: v2 chunk payload out of range");
        leaf_total += info.count;

        const ChunkFrame frame(info.lo, info.hi);
        info.proxies.resize(static_cast<std::size_t>(proxy_levels_));
        for (int l = 0; l < proxy_levels_; ++l) {
            std::uint32_t pcount = 0;
            readPod(is, pcount, "footer");
            if (pcount > kMaxChunks)
                throw std::runtime_error(
                    "scene_io: implausible proxy count");
            std::vector<Gaussian> &level = info.proxies[l];
            level.reserve(pcount);
            for (std::uint32_t i = 0; i < pcount; ++i)
                level.push_back(decodeBody(is, quantized_, frame));
        }
    }
    if (leaf_total != total_)
        throw std::runtime_error(
            "scene_io: v2 leaf counts disagree with header total");
}

void
GscV2Reader::loadChunk(std::istream &is, std::size_t i,
                       std::vector<Gaussian> &out,
                       std::vector<std::uint32_t> &indices) const
{
    const GscV2ChunkInfo &info = chunks_.at(i);
    is.clear();
    is.seekg(static_cast<std::streamoff>(base_ + info.offset));
    const ChunkFrame frame(info.lo, info.hi);
    out.clear();
    indices.clear();
    out.reserve(static_cast<std::size_t>(info.count));
    indices.reserve(static_cast<std::size_t>(info.count));
    for (std::uint64_t k = 0; k < info.count; ++k) {
        std::uint32_t index = 0;
        readPod(is, index, "record");
        if (index >= total_)
            throw std::runtime_error("scene_io: v2 leaf index out of range");
        indices.push_back(index);
        out.push_back(decodeBody(is, quantized_, frame));
    }
}

bool
saveCloudV2(const GaussianCloud &cloud, std::ostream &os,
            const GscV2Options &options)
{
    const std::size_t target = std::max<std::size_t>(options.chunk_target, 1);
    GscV2Writer writer(os, cloud.name(), 0, options.quantize);
    for (std::size_t begin = 0; begin < cloud.size(); begin += target) {
        GscChunkDraft chunk;
        const std::size_t end = std::min(begin + target, cloud.size());
        for (std::size_t i = begin; i < end; ++i) {
            const Gaussian &g = cloud[i];
            if (chunk.gaussians.empty()) {
                chunk.lo = chunk.hi = g.mean;
            } else {
                chunk.lo = chunk.lo.cwiseMin(g.mean);
                chunk.hi = chunk.hi.cwiseMax(g.mean);
            }
            chunk.indices.push_back(static_cast<std::uint32_t>(i));
            chunk.gaussians.push_back(g);
        }
        if (!writer.writeChunk(chunk))
            return false;
    }
    return writer.finish();
}

bool
saveCloudV2File(const GaussianCloud &cloud, const std::string &path,
                const GscV2Options &options)
{
    obs::PerfScope io_scope(obs::Stage::SceneIo);
    obs::MetricsRegistry::global().counter("scene.io.writes").add();
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    return saveCloudV2(cloud, f, options);
}

std::string
sceneCachePath(const std::string &dir, const SceneSpec &spec, float scale)
{
    // The generation key digests every determining spec field, so any
    // spec or scale change lands on a different file (a stale cache
    // misses instead of being silently trusted).
    std::string file = sceneGenKey(spec, scale) + ".gsc";
    return (std::filesystem::path(dir) / file).string();
}

GaussianCloud
loadOrGenerateScene(const SceneSpec &spec, float scale,
                    const std::string &cache_dir)
{
    if (cache_dir.empty())
        return generateScene(spec, scale);

    const std::string path = sceneCachePath(cache_dir, spec, scale);
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
        // Stable per-path fault key (FNV-1a); the attempt number is
        // folded in so an injected transient fault clears on retry
        // while a persistent one exhausts the budget deterministically.
        std::uint64_t path_key = 0xcbf29ce484222325ULL;
        for (unsigned char c : path) {
            path_key ^= c;
            path_key *= 0x100000001b3ULL;
        }
        // Bounded retry with exponential backoff: a read racing a
        // concurrent regeneration (or an injected fault) is usually
        // transient; a cache that stays corrupt — including one that
        // turned corrupt between the exists() check and the read, or
        // truncated again after a regeneration — costs the retry
        // budget and then one in-memory generation, never a loop and
        // never the run.
        const obs::RetryPolicy retry;
        for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
            if (attempt > 0) {
                obs::MetricsRegistry::global()
                    .counter("scene.io.cache_retries")
                    .add();
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        retry.delayMs(attempt)));
            }
            try {
                const obs::FaultAction fault = obs::faultAt(
                    obs::FaultSite::SceneRead,
                    path_key + static_cast<std::uint64_t>(attempt));
                if (fault.inject)
                    throw std::runtime_error(
                        fault.magnitude >= 2.0
                            ? "scene_io: cache truncated (injected)"
                            : "scene_io: cache read failed (injected)");
                GaussianCloud cloud = loadCloudFile(path);
                if (cloud.name() == spec.name &&
                    cloud.size() == scaledGaussianCount(spec, scale))
                    return cloud;
                break;  // readable but wrong content: not transient
            } catch (const std::exception &) {
                // Truncated, corrupt or foreign file — whatever the
                // exception type, a bad cache costs a regeneration,
                // never the run.
            }
        }
        obs::MetricsRegistry::global()
            .counter("scene.io.cache_fallbacks")
            .add();
    }

    GaussianCloud cloud = generateScene(spec, scale);
    std::filesystem::create_directories(cache_dir, ec);
    // Publish atomically (temp + rename) so concurrent readers of a
    // shared cache dir only ever see complete files; the PID keeps
    // concurrent writers off each other's temp file.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    if (saveCloudFile(cloud, tmp))
        std::filesystem::rename(tmp, path, ec);
    std::filesystem::remove(tmp, ec);  // no-op after a clean rename
    return cloud;
}

} // namespace gcc3d
