#include "scene/scene_io.h"

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace gcc3d {

namespace {

constexpr char kMagic[4] = {'G', 'S', 'C', '1'};

void
packGaussian(const Gaussian &g, float *out)
{
    out[0] = g.mean.x;
    out[1] = g.mean.y;
    out[2] = g.mean.z;
    out[3] = g.scale.x;
    out[4] = g.scale.y;
    out[5] = g.scale.z;
    out[6] = g.rotation.w;
    out[7] = g.rotation.x;
    out[8] = g.rotation.y;
    out[9] = g.rotation.z;
    out[10] = g.opacity;
    std::memcpy(out + 11, g.sh.data(), sizeof(float) * kShCoeffsTotal);
}

Gaussian
unpackGaussian(const float *in)
{
    Gaussian g;
    g.mean = Vec3(in[0], in[1], in[2]);
    g.scale = Vec3(in[3], in[4], in[5]);
    g.rotation = Quat(in[6], in[7], in[8], in[9]);
    g.opacity = in[10];
    std::memcpy(g.sh.data(), in + 11, sizeof(float) * kShCoeffsTotal);
    return g;
}

} // namespace

bool
saveCloud(const GaussianCloud &cloud, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    std::uint32_t name_len =
        static_cast<std::uint32_t>(cloud.name().size());
    std::uint64_t count = cloud.size();
    os.write(reinterpret_cast<const char *>(&name_len), sizeof(name_len));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    os.write(cloud.name().data(), name_len);

    std::vector<float> rec(Gaussian::kTotalFloats);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        packGaussian(cloud[i], rec.data());
        os.write(reinterpret_cast<const char *>(rec.data()),
                 static_cast<std::streamsize>(rec.size() * sizeof(float)));
    }
    return static_cast<bool>(os);
}

bool
saveCloudFile(const GaussianCloud &cloud, const std::string &path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    return saveCloud(cloud, f);
}

GaussianCloud
loadCloud(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("scene_io: bad magic");

    std::uint32_t name_len = 0;
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char *>(&name_len), sizeof(name_len));
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        throw std::runtime_error("scene_io: truncated header");
    if (name_len > 4096)
        throw std::runtime_error("scene_io: implausible name length");

    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is)
        throw std::runtime_error("scene_io: truncated name");

    GaussianCloud cloud(name);
    // A corrupted count field must surface as "truncated record" a
    // few reads below, not as a std::length_error/bad_alloc from
    // reserving petabytes — cap the hint; the vector grows past it
    // naturally for genuinely large files.
    cloud.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 1u << 20)));
    std::vector<float> rec(Gaussian::kTotalFloats);
    for (std::uint64_t i = 0; i < count; ++i) {
        is.read(reinterpret_cast<char *>(rec.data()),
                static_cast<std::streamsize>(rec.size() * sizeof(float)));
        if (!is)
            throw std::runtime_error("scene_io: truncated record");
        cloud.add(unpackGaussian(rec.data()));
    }
    return cloud;
}

GaussianCloud
loadCloudFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("scene_io: cannot open " + path);
    return loadCloud(f);
}

std::string
sceneCachePath(const std::string &dir, const SceneSpec &spec, float scale)
{
    // The generation key digests every determining spec field, so any
    // spec or scale change lands on a different file (a stale cache
    // misses instead of being silently trusted).
    std::string file = sceneGenKey(spec, scale) + ".gsc";
    return (std::filesystem::path(dir) / file).string();
}

GaussianCloud
loadOrGenerateScene(const SceneSpec &spec, float scale,
                    const std::string &cache_dir)
{
    if (cache_dir.empty())
        return generateScene(spec, scale);

    const std::string path = sceneCachePath(cache_dir, spec, scale);
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
        try {
            GaussianCloud cloud = loadCloudFile(path);
            if (cloud.name() == spec.name &&
                cloud.size() == scaledGaussianCount(spec, scale))
                return cloud;
        } catch (const std::exception &) {
            // Truncated, corrupt or foreign file — whatever the
            // exception type, a bad cache costs a regeneration, never
            // the run.
        }
    }

    GaussianCloud cloud = generateScene(spec, scale);
    std::filesystem::create_directories(cache_dir, ec);
    // Publish atomically (temp + rename) so concurrent readers of a
    // shared cache dir only ever see complete files; the PID keeps
    // concurrent writers off each other's temp file.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    if (saveCloudFile(cloud, tmp))
        std::filesystem::rename(tmp, path, ec);
    std::filesystem::remove(tmp, ec);  // no-op after a clean rename
    return cloud;
}

} // namespace gcc3d
