/**
 * @file
 * Reproduces Fig. 10: area-normalized speedup (a) and energy
 * efficiency (b) of GCC over GSCore on the six evaluation scenes.
 *
 * Paper: speedups 5.69/6.22/5.91/5.00/4.27/4.64 (geomean 5.24x);
 * energy efficiency 3.51/3.17/3.17/3.05/3.51/3.72 (geomean 3.35x).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/accelerator.h"
#include "gscore/gscore_sim.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 10",
                  "area-normalized speedup & energy efficiency, GCC vs "
                  "GSCore", scale);

    const double paper_speedup[] = {5.69, 6.22, 5.91, 5.00, 4.27, 4.64};
    const double paper_ee[] = {3.51, 3.17, 3.17, 3.05, 3.51, 3.72};

    GscoreSim gscore;
    GccAccelerator gcc;
    double a_ratio = gscore.chip().totalArea() / gcc.areaMm2();

    std::printf("area: GSCore %.2f mm^2, GCC %.2f mm^2 (ratio %.2f)\n\n",
                gscore.chip().totalArea(), gcc.areaMm2(), a_ratio);
    std::printf("%-10s %10s %10s | %9s %9s | %9s %9s\n", "scene",
                "GSCoreFPS", "GCC FPS", "speedup", "paper", "energyEff",
                "paper");
    bench::rule();

    std::vector<double> speedups, ees;
    int i = 0;
    for (SceneId id : allScenes()) {
        SceneSpec spec = scenePreset(id);
        GaussianCloud cloud = generateScene(spec, scale);
        Camera cam = makeCamera(spec);

        GscoreFrameResult base = gscore.renderFrame(cloud, cam);
        GccFrameResult ours = gcc.render(cloud, cam);

        double speedup = ours.fps / base.fps * a_ratio;
        double ee = base.energy.total() / ours.energy.total() * a_ratio;
        speedups.push_back(speedup);
        ees.push_back(ee);

        std::printf("%-10s %10.1f %10.1f | %8.2fx %8.2fx | %8.2fx "
                    "%8.2fx\n",
                    spec.name.c_str(), base.fps, ours.fps, speedup,
                    paper_speedup[i], ee, paper_ee[i]);
        ++i;
    }
    bench::rule();
    std::printf("%-10s %10s %10s | %8.2fx %8.2fx | %8.2fx %8.2fx\n",
                "geomean", "", "", bench::geomean(speedups), 5.24,
                bench::geomean(ees), 3.35);
    return 0;
}
