/**
 * @file
 * Reproduces Fig. 10: area-normalized speedup (a) and energy
 * efficiency (b) of GCC over GSCore on the six evaluation scenes.
 *
 * Paper: speedups 5.69/6.22/5.91/5.00/4.27/4.64 (geomean 5.24x);
 * energy efficiency 3.51/3.17/3.17/3.05/3.51/3.72 (geomean 3.35x).
 *
 * Both backends on all six scenes run concurrently through the batch
 * runtime; the matched comparison comes from ResultTable::compare.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 10",
                  "area-normalized speedup & energy efficiency, GCC vs "
                  "GSCore", scale);

    const double paper_speedup[] = {5.69, 6.22, 5.91, 5.00, 4.27, 4.64};
    const double paper_ee[] = {3.51, 3.17, 3.17, 3.05, 3.51, 3.72};

    SweepSpec spec;
    for (SceneId id : allScenes())
        spec.addScene(id);
    spec.scale = scale;
    spec.backends = {Backend::Gscore, Backend::Gcc};
    ResultTable table = bench::runSweep(spec);

    // Chip areas are config properties, identical across scenes; read
    // them off the first row of each backend.
    double gscore_area = 0.0;
    double gcc_area = 0.0;
    for (const JobResult &r : table.rows()) {
        if (!r.ok)
            continue;
        if (r.backend == Backend::Gscore && gscore_area == 0.0)
            gscore_area = r.area_mm2;
        if (r.backend == Backend::Gcc && gcc_area == 0.0)
            gcc_area = r.area_mm2;
    }
    double a_ratio = gcc_area > 0.0 ? gscore_area / gcc_area : 0.0;

    std::printf("area: GSCore %.2f mm^2, GCC %.2f mm^2 (ratio %.2f)\n\n",
                gscore_area, gcc_area, a_ratio);
    std::printf("%-10s %10s %10s | %9s %9s | %9s %9s\n", "scene",
                "GSCoreFPS", "GCC FPS", "speedup", "paper", "energyEff",
                "paper");
    bench::rule();

    // compare() matches by (scene, variant, frame); scenes keep the
    // sweep's presentation order because rows are id-ordered.  Paper
    // columns are looked up by scene name so a failed pair cannot
    // shift them onto the wrong row.
    std::vector<ResultTable::Comparison> cmp =
        table.compare(Backend::Gscore, Backend::Gcc);
    std::vector<double> speedups, ees;
    for (const ResultTable::Comparison &c : cmp) {
        int paper_idx = -1;
        const std::vector<SceneId> &scenes = allScenes();
        for (std::size_t s = 0; s < scenes.size(); ++s)
            if (sceneName(scenes[s]) == c.scene)
                paper_idx = static_cast<int>(s);
        double speedup = c.speedup * a_ratio;
        double ee = c.energy_ratio * a_ratio;
        speedups.push_back(speedup);
        ees.push_back(ee);
        std::printf("%-10s %10.1f %10.1f | %8.2fx %8.2fx | %8.2fx "
                    "%8.2fx\n",
                    c.scene.c_str(), c.base_fps, c.other_fps, speedup,
                    paper_idx >= 0 ? paper_speedup[paper_idx] : 0.0, ee,
                    paper_idx >= 0 ? paper_ee[paper_idx] : 0.0);
    }
    bench::rule();
    std::printf("%-10s %10s %10s | %8.2fx %8.2fx | %8.2fx %8.2fx\n",
                "geomean", "", "", bench::geomean(speedups), 5.24,
                bench::geomean(ees), 3.35);
    return 0;
}
