/**
 * @file
 * Reproduces Fig. 15 / Sec. 6: per-frame execution-time breakdown of
 * the standard dataflow vs the GCC dataflow on GPUs (RTX 3090,
 * Jetson AGX Xavier) and on the accelerators (GSCore vs GCC), all
 * normalized to the standard dataflow per platform.
 *
 * Paper observations reproduced here: (1) on GPUs rendering dominates
 * and the GCC dataflow's atomic blending makes render time *grow*, so
 * end-to-end gains are limited; (2) on the accelerators, where
 * on-chip storage is scarce and data movement dominates, the GCC
 * dataflow wins decisively; (3) GCC on Jetson stays far below the
 * 90 FPS target, motivating the dedicated architecture.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/accelerator.h"
#include "gpu/gpu_model.h"
#include "gscore/gscore_sim.h"
#include "render/gaussian_wise_renderer.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 15",
                  "dataflow time breakdown on GPUs and accelerators",
                  scale);

    for (SceneId id :
         {SceneId::Palace, SceneId::Train, SceneId::Drjohnson}) {
        SceneSpec spec = scenePreset(id);
        GaussianCloud cloud = generateScene(spec, scale);
        Camera cam = makeCamera(spec);

        // Functional activity of both dataflows.
        TileRenderer std_renderer;
        StandardFlowStats std_stats;
        Image i1 = std_renderer.render(cloud, cam, std_stats);
        (void)i1;
        GaussianWiseRenderer gw_renderer;
        GaussianWiseStats gw_stats;
        Image i2 = gw_renderer.render(cloud, cam, gw_stats);
        (void)i2;

        std::printf("\n=== %s ===\n", spec.name.c_str());
        std::printf("%-20s %-9s | %8s %9s %7s %8s | %7s %8s\n",
                    "platform", "dataflow", "preproc", "duplicate",
                    "sort", "render", "total", "norm");

        for (const GpuPlatform &plat :
             {GpuPlatform::rtx3090(), GpuPlatform::jetsonXavier()}) {
            GpuModel model(plat);
            DataflowBreakdown s = model.standardDataflow(std_stats);
            DataflowBreakdown g = model.gccDataflow(gw_stats);
            std::printf("%-20s %-9s | %7.2fms %8.2fms %6.2fms %7.2fms "
                        "| %6.1fms %8.2f\n",
                        plat.name.c_str(), "standard", s.preprocess_ms,
                        s.duplicate_ms, s.sort_ms, s.render_ms,
                        s.total(), 1.0);
            std::printf("%-20s %-9s | %7.2fms %8.2fms %6.2fms %7.2fms "
                        "| %6.1fms %8.2f   (%.0f FPS)\n",
                        "", "GCC", g.preprocess_ms, g.duplicate_ms,
                        g.sort_ms, g.render_ms, g.total(),
                        g.total() / s.total(), 1000.0 / g.total());
        }

        // Accelerators, normalized the same way.
        GscoreSim gscore;
        GscoreFrameResult base = gscore.renderFrame(cloud, cam);
        GccAccelerator gcc;
        GccFrameResult ours = gcc.render(cloud, cam);
        double base_ms =
            static_cast<double>(base.total_cycles) / 1e6;  // 1 GHz
        double ours_ms = static_cast<double>(ours.total_cycles) / 1e6;
        std::printf("%-20s %-9s | %7.2fms %8.2fms %6.2fms %7.2fms | "
                    "%6.1fms %8.2f\n",
                    "GSCore / GCC ASIC", "standard",
                    static_cast<double>(base.preprocess_cycles) / 1e6,
                    0.0, static_cast<double>(base.sort_cycles) / 1e6,
                    static_cast<double>(base.render_cycles) / 1e6,
                    base_ms, 1.0);
        std::printf("%-20s %-9s | %7.2fms %8.2fms %6.2fms %7.2fms | "
                    "%6.1fms %8.2f   (%.0f FPS)\n",
                    "", "GCC",
                    static_cast<double>(ours.stage1_cycles) / 1e6, 0.0,
                    0.0, static_cast<double>(ours.main_cycles) / 1e6,
                    ours_ms, ours_ms / base_ms, 1000.0 / ours_ms);
    }
    return 0;
}
