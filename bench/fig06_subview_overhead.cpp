/**
 * @file
 * Reproduces Fig. 6: the Gaussian-loading overhead of Compatibility
 * Mode when the image is partitioned into n x n sub-views, for Lego
 * and Train.
 *
 * "Rendering Invocations" counts (Gaussian, sub-view) processing
 * events — a Gaussian overlapping several sub-views is re-processed
 * per sub-view; "Rendered Gaussians" counts unique contributors.
 * The paper's conclusion: sub-views >= 128x128 add only marginal
 * overhead.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "render/gaussian_wise_renderer.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 6",
                  "Cmode sub-view size vs Gaussian processing overhead",
                  scale);

    const std::vector<int> sizes = {1024, 512, 256, 128, 64, 32, 16};

    for (SceneId id : {SceneId::Lego, SceneId::Train}) {
        SceneSpec spec = scenePreset(id);
        GaussianCloud cloud = generateScene(spec, scale);
        Camera cam = makeCamera(spec);

        std::printf("\n%s (%dx%d image)\n", spec.name.c_str(),
                    cam.width(), cam.height());
        std::printf("%-10s %14s %14s %10s\n", "sub-view", "invocations",
                    "rendered", "overhead");
        bench::rule();
        for (int n : sizes) {
            GaussianWiseConfig cfg;
            cfg.subview_size = n;
            GaussianWiseRenderer renderer(cfg);
            GaussianWiseStats stats;
            Image img = renderer.render(cloud, cam, stats);
            (void)img;
            double overhead =
                stats.rendered_gaussians > 0
                    ? static_cast<double>(stats.stage2_invocations) /
                          static_cast<double>(stats.rendered_gaussians)
                    : 0.0;
            std::printf("%4dx%-5d %14lld %14lld %9.2fx\n", n, n,
                        static_cast<long long>(stats.stage2_invocations),
                        static_cast<long long>(stats.rendered_gaussians),
                        overhead);
        }
    }
    std::printf("\npaper: invocations stay near the rendered count for "
                "sub-views >= 128x128 and blow up below 64x64.\n");
    return 0;
}
