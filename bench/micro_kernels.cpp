/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels:
 * projection (Eq. 1), SH evaluation (Eq. 2), exponential evaluation
 * (hardware EXP LUT vs libm vs the SIMD polynomial), alpha-based
 * boundary identification (Algorithm 1), the bitonic sorting network,
 * and the SIMD-vs-scalar conic row kernels the rasterization inner
 * loops are built on.  These back the per-operation cost assumptions
 * of the cycle models and catch performance regressions.
 *
 * Exp outcome on this codebase (the ExpLut satellite audit): ExpLut
 * exists to model the GCC Alpha Unit's fixed-point datapath and is
 * used only by core/alpha_unit (cycle sim); no host-side render hot
 * path consumes it — the renderers use std::exp (exact paths) or
 * simd::simdExp (fast-alpha).  The BM_Exp* trio documents why: the
 * LUT's fixed-point quantization costs more than libm's exp on a
 * modern host, and the vectorized polynomial beats both per value.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/sort_unit.h"
#include "gsmath/exp_lut.h"
#include "gsmath/sh.h"
#include "gsmath/simd.h"
#include "render/boundary.h"
#include "render/preprocess.h"
#include "scene/scene_generator.h"
#include "scene/scene_presets.h"

namespace {

using namespace gcc3d;

SceneSpec
microSpec()
{
    SceneSpec spec = scenePreset(SceneId::Lego);
    spec.gaussian_count = 20000;
    return spec;
}

void
BM_ProjectGaussian(benchmark::State &state)
{
    SceneSpec spec = microSpec();
    GaussianCloud cloud = generateScene(spec, 1.0f);
    Camera cam = makeCamera(spec);
    std::uint32_t i = 0;
    for (auto _ : state) {
        auto s = projectGaussian(cloud[i], i, cam, nullptr);
        benchmark::DoNotOptimize(s);
        i = (i + 1) % static_cast<std::uint32_t>(cloud.size());
    }
}
BENCHMARK(BM_ProjectGaussian);

void
BM_ShColor(benchmark::State &state)
{
    SceneSpec spec = microSpec();
    GaussianCloud cloud = generateScene(spec, 1.0f);
    Camera cam = makeCamera(spec);
    std::uint32_t i = 0;
    for (auto _ : state) {
        Vec3 c = shColorFor(cloud[i], cam);
        benchmark::DoNotOptimize(c);
        i = (i + 1) % static_cast<std::uint32_t>(cloud.size());
    }
}
BENCHMARK(BM_ShColor);

void
BM_ExpLut(benchmark::State &state)
{
    ExpLut lut;
    float x = -0.01f;
    for (auto _ : state) {
        float y = lut.eval(x);
        benchmark::DoNotOptimize(y);
        x -= 0.001f;
        if (x < -5.5f)
            x = -0.01f;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpLut);

void
BM_ExpStd(benchmark::State &state)
{
    float x = -0.01f;
    for (auto _ : state) {
        float y = std::exp(x);
        benchmark::DoNotOptimize(y);
        x -= 0.001f;
        if (x < -5.5f)
            x = -0.01f;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpStd);

void
BM_ExpSimd(benchmark::State &state)
{
    // One simdExp call evaluates kWidth exponentials; items/s is the
    // per-value throughput comparable with BM_ExpLut / BM_ExpStd.
    float lanes[simd::kWidth];
    for (int l = 0; l < simd::kWidth; ++l)
        lanes[l] = -0.01f - 0.7f * static_cast<float>(l);
    simd::FloatV x = simd::FloatV::load(lanes);
    const simd::FloatV step(-0.001f);
    const simd::FloatV reset(-5.5f * simd::kWidth);
    for (auto _ : state) {
        simd::FloatV y = simd::simdExp(x);
        benchmark::DoNotOptimize(y);
        x = x + step;
        if ((x < reset).any())
            x = simd::FloatV::load(lanes);
    }
    state.SetItemsProcessed(state.iterations() * simd::kWidth);
}
BENCHMARK(BM_ExpSimd);

/**
 * The rasterizers' row kernel: conic quadratic q over a pixel row
 * plus the cutoff mask.  Scalar transcription vs the simd.h loop the
 * renderers actually run (identical per-lane operations).
 */
void
BM_ConicRowScalar(benchmark::State &state)
{
    const int row_w = static_cast<int>(state.range(0));
    const float c00 = 0.02f, c01 = 0.005f, c10 = 0.005f, c11 = 0.03f;
    const float cx = 31.7f, cy = 12.3f, cutoff = 8.5f;
    std::int64_t passing = 0;
    for (auto _ : state) {
        const float dy = 10.5f - cy;
        for (int x = 0; x < row_w; ++x) {
            float dx = (static_cast<float>(x) + 0.5f) - cx;
            float q = dx * (c00 * dx + c01 * dy) +
                      dy * (c10 * dx + c11 * dy);
            if (q > cutoff)
                continue;
            ++passing;
        }
        benchmark::DoNotOptimize(passing);
    }
    state.SetItemsProcessed(state.iterations() * row_w);
}
BENCHMARK(BM_ConicRowScalar)->Arg(8)->Arg(64);

void
BM_ConicRowSimd(benchmark::State &state)
{
    const int row_w = static_cast<int>(state.range(0));
    const simd::FloatV c00(0.02f), c01(0.005f), c10(0.005f),
        c11(0.03f);
    const simd::FloatV cx(31.7f), cutoff(8.5f), half(0.5f);
    const float cy = 12.3f;
    std::int64_t passing = 0;
    for (auto _ : state) {
        const simd::FloatV dy(10.5f - cy);
        for (int x = 0; x < row_w; x += simd::kWidth) {
            const int nlane =
                std::min<int>(simd::kWidth, row_w - x);
            simd::FloatV dx =
                (simd::FloatV::iotaFrom(x) + half) - cx;
            simd::FloatV q = dx * (c00 * dx + c01 * dy) +
                             dy * (c10 * dx + c11 * dy);
            unsigned bits = simd::MaskV::firstN(nlane).bits() &
                            ~(q > cutoff).bits();
            passing += std::popcount(bits);
        }
        benchmark::DoNotOptimize(passing);
    }
    state.SetItemsProcessed(state.iterations() * row_w);
}
BENCHMARK(BM_ConicRowSimd)->Arg(8)->Arg(64);

void
BM_BoundaryBlockTraversal(benchmark::State &state)
{
    const int radius = static_cast<int>(state.range(0));
    float var = static_cast<float>(radius * radius) / 9.0f;
    Ellipse e = Ellipse::fromCovariance(
        Vec2(256, 256), Mat2(var, 0.3f * var, 0.3f * var, var));
    BlockTraversal traversal(8, 512, 512);
    for (auto _ : state) {
        BoundaryStats bs =
            traversal.traverse(e, 0.8f, nullptr, nullptr);
        benchmark::DoNotOptimize(bs);
    }
    state.counters["pixels"] = static_cast<double>(
        traversal
            .traverse(e, 0.8f, nullptr, nullptr)
            .influence_pixels);
}
BENCHMARK(BM_BoundaryBlockTraversal)->Arg(8)->Arg(32)->Arg(96);

void
BM_BitonicSort(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::mt19937 rng(7);
    std::uniform_real_distribution<float> u(0.0f, 100.0f);
    std::vector<std::pair<float, std::uint32_t>> base(n);
    for (std::uint32_t i = 0; i < n; ++i)
        base[i] = {u(rng), i};
    for (auto _ : state) {
        auto keys = base;
        SortUnit::bitonicSort(keys);
        benchmark::DoNotOptimize(keys);
    }
}
BENCHMARK(BM_BitonicSort)->Arg(16)->Arg(256);

} // namespace

BENCHMARK_MAIN();
