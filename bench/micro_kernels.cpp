/**
 * @file
 * google-benchmark microbenchmarks of the library's hot kernels:
 * projection (Eq. 1), SH evaluation (Eq. 2), EXP LUT (Sec. 4.4),
 * alpha-based boundary identification (Algorithm 1), and the bitonic
 * sorting network.  These back the per-operation cost assumptions of
 * the cycle models and catch performance regressions.
 */

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/sort_unit.h"
#include "gsmath/exp_lut.h"
#include "gsmath/sh.h"
#include "render/boundary.h"
#include "render/preprocess.h"
#include "scene/scene_generator.h"
#include "scene/scene_presets.h"

namespace {

using namespace gcc3d;

SceneSpec
microSpec()
{
    SceneSpec spec = scenePreset(SceneId::Lego);
    spec.gaussian_count = 20000;
    return spec;
}

void
BM_ProjectGaussian(benchmark::State &state)
{
    SceneSpec spec = microSpec();
    GaussianCloud cloud = generateScene(spec, 1.0f);
    Camera cam = makeCamera(spec);
    std::uint32_t i = 0;
    for (auto _ : state) {
        auto s = projectGaussian(cloud[i], i, cam, nullptr);
        benchmark::DoNotOptimize(s);
        i = (i + 1) % static_cast<std::uint32_t>(cloud.size());
    }
}
BENCHMARK(BM_ProjectGaussian);

void
BM_ShColor(benchmark::State &state)
{
    SceneSpec spec = microSpec();
    GaussianCloud cloud = generateScene(spec, 1.0f);
    Camera cam = makeCamera(spec);
    std::uint32_t i = 0;
    for (auto _ : state) {
        Vec3 c = shColorFor(cloud[i], cam);
        benchmark::DoNotOptimize(c);
        i = (i + 1) % static_cast<std::uint32_t>(cloud.size());
    }
}
BENCHMARK(BM_ShColor);

void
BM_ExpLut(benchmark::State &state)
{
    ExpLut lut;
    float x = -0.01f;
    for (auto _ : state) {
        float y = lut.eval(x);
        benchmark::DoNotOptimize(y);
        x -= 0.001f;
        if (x < -5.5f)
            x = -0.01f;
    }
}
BENCHMARK(BM_ExpLut);

void
BM_BoundaryBlockTraversal(benchmark::State &state)
{
    const int radius = static_cast<int>(state.range(0));
    float var = static_cast<float>(radius * radius) / 9.0f;
    Ellipse e = Ellipse::fromCovariance(
        Vec2(256, 256), Mat2(var, 0.3f * var, 0.3f * var, var));
    BlockTraversal traversal(8, 512, 512);
    for (auto _ : state) {
        BoundaryStats bs =
            traversal.traverse(e, 0.8f, nullptr, nullptr);
        benchmark::DoNotOptimize(bs);
    }
    state.counters["pixels"] = static_cast<double>(
        traversal
            .traverse(e, 0.8f, nullptr, nullptr)
            .influence_pixels);
}
BENCHMARK(BM_BoundaryBlockTraversal)->Arg(8)->Arg(32)->Arg(96);

void
BM_BitonicSort(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::mt19937 rng(7);
    std::uniform_real_distribution<float> u(0.0f, 100.0f);
    std::vector<std::pair<float, std::uint32_t>> base(n);
    for (std::uint32_t i = 0; i < n; ++i)
        base[i] = {u(rng), i};
    for (auto _ : state) {
        auto keys = base;
        SortUnit::bitonicSort(keys);
        benchmark::DoNotOptimize(keys);
    }
}
BENCHMARK(BM_BitonicSort)->Arg(16)->Arg(256);

} // namespace

BENCHMARK_MAIN();
