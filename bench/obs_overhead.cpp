/**
 * @file
 * Observability overhead contract bench: the always-on recorder hooks
 * must cost < 3% of frame time.
 *
 * For each preset scene x renderer, renders the same short trajectory
 * with the recorder runtime-disabled and runtime-enabled in
 * interleaved passes (so frequency scaling and cache state hit both
 * sides equally), takes the min-of-reps wall time for each side, and
 * reports overhead = (on - off) / off.  The contract is enforced on
 * the per-renderer MEAN across scenes: a single noisy cell does not
 * fail the run, a systematic regression does.
 *
 * What this measures: the marginal cost of recording samples into the
 * per-thread rings (PerfScope/StageTimer bodies).  The disabled side
 * still pays the compiled-in enabled() branch — that residue is the
 * floor the GCC3D_OBS=OFF build removes, and is far below timing
 * noise.  In a GCC3D_OBS=OFF build both sides are identical no-ops,
 * so the bench passes trivially and says so in BENCH_obs.json
 * (obs_compiled_out).
 *
 * Timing uses std::chrono directly: bench/ sits outside the lint
 * determinism scope, and the recorder under test must not time
 * itself.
 *
 * Usage:
 *   obs_overhead [--scenes LIST] [--renderers tile,gw] [--frames N]
 *                [--reps N] [--threshold PCT] [--scale F] [--out FILE]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/obs_config.h"
#include "obs/perf_recorder.h"
#include "render/gaussian_wise_renderer.h"
#include "render/tile_renderer.h"
#include "scene/trajectory.h"

namespace {

using namespace gcc3d;
using gcc3d::bench::splitList;

double
nowMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --scenes LIST    scene names or 'all' (default:\n"
        "                   palace,lego,train)\n"
        "  --renderers LIST subset of tile,gw (default: tile,gw)\n"
        "  --frames N       trajectory frames per pass (default: 2)\n"
        "  --reps N         interleaved off/on passes per cell\n"
        "                   (default: 5)\n"
        "  --threshold PCT  max allowed per-renderer mean overhead in\n"
        "                   percent (default: 3.0)\n"
        "  --scale F        population scale in (0,1] (default:\n"
        "                   GCC3D_SCALE env or 1.0)\n"
        "  --out FILE       JSON output path (default: BENCH_obs.json;\n"
        "                   '-' disables)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenes_arg = "palace,lego,train";
    std::string renderers_arg = "tile,gw";
    std::string out_path = "BENCH_obs.json";
    int frames = 2;
    int reps = 5;
    double threshold_pct = 3.0;
    float scale = benchScale();

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--scenes") {
            scenes_arg = value();
        } else if (flag == "--renderers") {
            renderers_arg = value();
        } else if (flag == "--frames") {
            frames = std::atoi(value().c_str());
        } else if (flag == "--reps") {
            reps = std::atoi(value().c_str());
        } else if (flag == "--threshold") {
            threshold_pct = std::atof(value().c_str());
        } else if (flag == "--scale") {
            scale = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--out") {
            out_path = value();
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (frames < 1 || reps < 1 || threshold_pct <= 0.0 ||
        scale <= 0.0f || scale > 1.0f) {
        std::fprintf(stderr, "--frames/--reps must be >= 1, "
                             "--threshold > 0 and --scale in (0, 1]\n");
        return 2;
    }

    std::vector<SceneId> scenes;
    bool run_tile = false, run_gw = false;
    try {
        scenes = bench::parseSceneList(scenes_arg);
        for (const std::string &r : splitList(renderers_arg)) {
            if (r == "tile")
                run_tile = true;
            else if (r == "gw" || r == "gaussian-wise")
                run_gw = true;
            else
                throw std::invalid_argument("unknown renderer: " + r);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (scenes.empty() || (!run_tile && !run_gw)) {
        std::fprintf(stderr, "empty scene or renderer list\n");
        return 2;
    }

    constexpr bool obs_compiled = GCC3D_OBS_ENABLED != 0;

    bench::banner("obs_overhead",
                  "always-on observability cost contract", scale);
    if (!obs_compiled) {
        // GCC3D_OBS=OFF: every hook is a compiled-out no-op, so the
        // on/off comparison would time two identical loops.  Report
        // the build flavor and pass.
        std::printf("observability compiled out (GCC3D_OBS=OFF): "
                    "contract holds by construction\n");
        if (out_path != "-") {
            std::string json =
                "{\n  \"bench\": \"obs_overhead\",\n"
                "  \"host\": " + bench::hostJson() + ",\n"
                "  \"obs_compiled_out\": true,\n"
                "  \"contract_ok\": true\n}\n";
            if (!ResultTable::writeFile(out_path, json)) {
                std::fprintf(stderr, "failed to write %s\n",
                             out_path.c_str());
                return 1;
            }
            std::printf("wrote %s\n", out_path.c_str());
        }
        return 0;
    }

    std::printf("%d frames/pass, %d interleaved off/on reps, "
                "threshold %.1f%% (per-renderer mean)\n",
                frames, reps, threshold_pct);

    struct Cell
    {
        std::string scene;
        std::string renderer;
        double off_ms;       ///< min-of-reps pass time, recorder off
        double on_ms;        ///< min-of-reps pass time, recorder on
        double overhead_pct; ///< 100 * (on - off) / off
    };
    std::vector<Cell> cells;

    obs::PerfRecorder &recorder = obs::PerfRecorder::global();
    for (SceneId id : scenes) {
        SceneSpec spec = scenePreset(id);
        const std::string scene = sceneName(id);
        GaussianCloud cloud = generateScene(spec, scale);
        Trajectory traj = Trajectory::forScene(spec, frames);

        TileRenderer tile_renderer;
        GaussianWiseRenderer gw_renderer;

        // One pass = every trajectory frame once, single-threaded so
        // the hook cost is not diluted across workers.
        auto pass = [&](const std::string &renderer) -> double {
            auto start = std::chrono::steady_clock::now();
            for (int f = 0; f < frames; ++f) {
                const Camera &cam =
                    traj.frame(static_cast<std::size_t>(f));
                if (renderer == "tile") {
                    StandardFlowStats st;
                    (void)tile_renderer.render(cloud, cam, st);
                } else {
                    GaussianWiseStats st;
                    (void)gw_renderer.render(cloud, cam, st);
                }
            }
            return nowMsSince(start);
        };

        std::vector<std::string> renderers;
        if (run_tile)
            renderers.push_back("tile");
        if (run_gw)
            renderers.push_back("gw");
        for (const std::string &renderer : renderers) {
            (void)pass(renderer);  // warm-up (first-touch, caches)
            double off_ms = std::numeric_limits<double>::infinity();
            double on_ms = std::numeric_limits<double>::infinity();
            for (int rep = 0; rep < reps; ++rep) {
                recorder.setEnabled(false);
                off_ms = std::min(off_ms, pass(renderer));
                recorder.setEnabled(true);
                on_ms = std::min(on_ms, pass(renderer));
            }
            Cell cell;
            cell.scene = scene;
            cell.renderer = renderer;
            cell.off_ms = off_ms;
            cell.on_ms = on_ms;
            cell.overhead_pct =
                off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
            cells.push_back(cell);
        }
    }
    recorder.setEnabled(true);

    bench::rule();
    std::printf("%-10s %-6s %12s %12s %10s\n", "scene", "render",
                "off_ms_min", "on_ms_min", "overhead");
    bench::rule();
    for (const Cell &c : cells)
        std::printf("%-10s %-6s %12.3f %12.3f %9.2f%%\n",
                    c.scene.c_str(), c.renderer.c_str(), c.off_ms,
                    c.on_ms, c.overhead_pct);

    struct RendererMean
    {
        std::string renderer;
        double mean_pct = 0.0;
        bool ok = true;
    };
    std::vector<RendererMean> means;
    bool contract_ok = true;
    for (const std::string &renderer :
         std::vector<std::string>{"tile", "gw"}) {
        double sum = 0.0;
        int n = 0;
        for (const Cell &c : cells)
            if (c.renderer == renderer) {
                sum += c.overhead_pct;
                ++n;
            }
        if (n == 0)
            continue;
        RendererMean m;
        m.renderer = renderer;
        m.mean_pct = sum / n;
        m.ok = m.mean_pct < threshold_pct;
        contract_ok = contract_ok && m.ok;
        means.push_back(m);
    }

    bench::rule();
    for (const RendererMean &m : means)
        std::printf("%-6s mean overhead %6.2f%% (threshold %.1f%%) -> "
                    "%s\n",
                    m.renderer.c_str(), m.mean_pct, threshold_pct,
                    m.ok ? "ok" : "CONTRACT VIOLATED");

    std::ostringstream json;
    json.precision(10);
    json << "{\n  \"bench\": \"obs_overhead\",\n"
         << "  \"host\": " << bench::hostJson() << ",\n"
         << "  \"scale\": " << static_cast<double>(scale) << ",\n"
         << "  \"frames\": " << frames << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"threshold_pct\": " << threshold_pct << ",\n"
         << "  \"obs_compiled_out\": false,\n"
         << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        json << "    {\"scene\": \"" << c.scene
             << "\", \"renderer\": \"" << c.renderer
             << "\", \"off_ms_min\": " << c.off_ms
             << ", \"on_ms_min\": " << c.on_ms
             << ", \"overhead_pct\": " << c.overhead_pct << "}"
             << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"renderer_means\": [\n";
    for (std::size_t i = 0; i < means.size(); ++i) {
        const RendererMean &m = means[i];
        json << "    {\"renderer\": \"" << m.renderer
             << "\", \"mean_overhead_pct\": " << m.mean_pct
             << ", \"ok\": " << (m.ok ? "true" : "false") << "}"
             << (i + 1 < means.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"contract_ok\": "
         << (contract_ok ? "true" : "false") << "\n}\n";

    if (out_path != "-") {
        if (!ResultTable::writeFile(out_path, json.str())) {
            std::fprintf(stderr, "failed to write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    if (!contract_ok)
        std::fprintf(stderr, "ERROR: observability overhead exceeded "
                             "%.1f%%\n", threshold_pct);
    return contract_ok ? 0 : 1;
}
