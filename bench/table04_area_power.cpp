/**
 * @file
 * Reproduces Table 4: the GCC area and power breakdown per compute
 * module and on-chip buffer, plus the GSCore aggregates.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/area_model.h"

int
main()
{
    using namespace gcc3d;
    bench::banner("Table 4", "GCC area & power breakdown (28 nm, 1 GHz)",
                  1.0f);

    ChipModel gcc = gccChipModel();
    std::printf("%-16s %12s %12s   %s\n", "component", "area (mm^2)",
                "power (mW)", "configuration");
    bench::rule();
    for (const ModuleSpec &m : gcc.compute)
        std::printf("%-16s %12.3f %12.0f   %s\n", m.name.c_str(),
                    m.area_mm2, m.power_mw, m.configuration.c_str());
    std::printf("%-16s %12.3f %12.0f\n", "compute total",
                gcc.computeArea(), gcc.computePowerMw());
    bench::rule();
    for (const SramConfig &b : gcc.buffers)
        std::printf("%-16s %12.3f %12.0f   %.0f KB, %d banks\n",
                    b.name.c_str(), b.area_mm2, b.leakage_mw,
                    b.capacity_kb, b.banks);
    std::printf("%-16s %12.3f %12.0f   %.0f KB total\n", "buffer total",
                gcc.bufferArea(), gcc.bufferLeakageMw(),
                gcc.bufferCapacityKb());
    bench::rule();
    std::printf("%-16s %12.3f\n", "GCC total", gcc.totalArea());
    std::printf("paper: compute 1.675 mm^2 / 739 mW; buffers 1.036 mm^2 "
                "/ 51 mW / 190 KB; total 2.711 mm^2\n\n");

    ChipModel gscore = gscoreChipModel();
    std::printf("GSCore: compute %.2f mm^2 / %.0f mW; buffers %.2f "
                "mm^2 / %.0f KB; total %.2f mm^2\n",
                gscore.computeArea(), gscore.computePowerMw(),
                gscore.bufferArea(), gscore.bufferCapacityKb(),
                gscore.totalArea());
    std::printf("paper: compute 2.70 mm^2 / 830 mW; buffers 1.25 mm^2 / "
                "272 KB; total 3.95 mm^2\n");
    return 0;
}
