/**
 * @file
 * Reproduces Fig. 12: per-frame energy consumption of GSCore and GCC
 * on the six scenes, decomposed into on-chip memory access, off-chip
 * memory access, and computation.
 *
 * Paper shape: DRAM dominates both designs; GCC cuts DRAM traffic by
 * >50% while SRAM energy slightly increases (Blending Unit <-> Image
 * Buffer exchange), for a large net saving.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/accelerator.h"
#include "gscore/gscore_sim.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 12", "per-frame energy breakdown (mJ)", scale);

    std::printf("%-10s | %27s | %27s\n", "", "GSCore (sram/dram/comp)",
                "GCC (sram/dram/comp)");
    std::printf("%-10s | %8s %8s %9s | %8s %8s %9s\n", "scene", "sram",
                "dram", "compute", "sram", "dram", "compute");
    bench::rule();

    for (SceneId id : allScenes()) {
        SceneSpec spec = scenePreset(id);
        GaussianCloud cloud = generateScene(spec, scale);
        Camera cam = makeCamera(spec);

        GscoreSim gscore;
        GscoreFrameResult base = gscore.renderFrame(cloud, cam);
        GccAccelerator gcc;
        GccFrameResult ours = gcc.render(cloud, cam);

        std::printf("%-10s | %8.2f %8.2f %9.2f | %8.2f %8.2f %9.2f   "
                    "total %.2f -> %.2f\n",
                    spec.name.c_str(), base.energy.sram_mj,
                    base.energy.dram_mj,
                    base.energy.compute_mj + base.energy.leakage_mj,
                    ours.energy.sram_mj, ours.energy.dram_mj,
                    ours.energy.compute_mj + ours.energy.leakage_mj,
                    base.energy.total(), ours.energy.total());
    }
    std::printf("\n(energies scale ~linearly with GCC3D_SCALE; paper "
                "frames peak near 60 mJ for Drjohnson on GSCore)\n");
    return 0;
}
