/**
 * @file
 * LOD / residency benchmark behind the .gsc v2 scene format.
 *
 * Part A — quality contract: for each preset scene, builds a
 * quantized .gsc v2 LOD file, renders the original cloud as the
 * reference, then renders the scene with every chunk forced to one
 * LOD level (0 = leaves ... proxyLevels) and reports per-level PSNR,
 * cut size and render time.  Every level must land at or above its
 * declared floor (lodPsnrFloorDb); a miss fails the benchmark, so
 * regressions in the merge math or the quantizer break CI instead of
 * silently degrading images.
 *
 * Part B — scale contract: streams a city-scale preset (default 10M
 * splats — far past what a full-precision in-RAM cloud serves
 * comfortably) straight into a .gsc v2 file without materializing it,
 * then serves a session fleet from that file under a fixed
 * --memory-budget through the same SceneRegistry/FrameScheduler path
 * gcc3d_serve uses.  Reports build time, compression ratio, fleet
 * FPS and the residency counters; peak resident bytes above the
 * budget fail the benchmark.
 *
 * Results go to BENCH_lod.json so the LOD trajectory is tracked
 * across PRs.
 *
 * Usage:
 *   lod_scale [--scenes LIST] [--scale F] [--city N] [--budget MIB]
 *             [--sessions N] [--frames N] [--tau F] [--threads N]
 *             [--keep] [--out FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lod/lod_builder.h"
#include "lod/lod_scene.h"
#include "render/metrics.h"
#include "render/tile_renderer.h"
#include "serve/fleet.h"
#include "serve/frame_scheduler.h"

namespace {

using namespace gcc3d;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --scenes LIST  presets for the per-level PSNR part\n"
        "                 (default: palace,lego,train; 'none' skips)\n"
        "  --scale F      population scale in (0,1] (default:\n"
        "                 GCC3D_SCALE env or 1.0)\n"
        "  --city N       splat count of the streamed city preset\n"
        "                 (default: 10000000; 0 skips part B)\n"
        "  --budget MIB   leaf residency budget for the city serve\n"
        "                 (default: 256)\n"
        "  --sessions N   serve sessions over the city scene\n"
        "                 (default: 4)\n"
        "  --frames N     frames per session (default: 2)\n"
        "  --tau F        cut angular threshold (default: 0.08)\n"
        "  --chunk-target N  leaf chunk size for built files\n"
        "  --proxy-base N    level-1 merge ratio for built files\n"
        "  --threads N    render workers; 0 = all hardware threads\n"
        "  --keep         keep the generated .gsc files\n"
        "  --out FILE     JSON output path (default: BENCH_lod.json;\n"
        "                 '-' disables)\n",
        argv0);
}

double
nowMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
tmpPath(const std::string &stem)
{
    return (std::filesystem::temp_directory_path() /
            ("gcc3d_bench_" + stem + ".gsc"))
        .string();
}

/** One forced-level measurement of one scene. */
struct LevelRow
{
    int level = 0;
    double psnr_db = 0.0;
    double floor_db = 0.0;
    bool pass = false;
    double render_ms = 0.0;
    std::size_t cut_gaussians = 0;
};

struct SceneRow
{
    std::string scene;
    std::size_t gaussians = 0;
    std::size_t file_bytes = 0;
    std::size_t raw_bytes = 0;
    double build_ms = 0.0;
    std::vector<LevelRow> levels;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string scenes_arg = "palace,lego,train";
    std::string out_path = "BENCH_lod.json";
    std::size_t city_count = 10000000;
    std::size_t budget_mib = 256;
    int sessions = 4;
    int frames = 2;
    int threads = 0;
    float tau = 0.08f;
    bool keep = false;
    float scale = benchScale();
    LodBuildConfig build_cfg;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--scenes") {
            scenes_arg = value();
        } else if (flag == "--scale") {
            scale = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--city") {
            city_count = static_cast<std::size_t>(
                std::strtoull(value().c_str(), nullptr, 10));
        } else if (flag == "--budget") {
            budget_mib = static_cast<std::size_t>(
                std::strtoull(value().c_str(), nullptr, 10));
        } else if (flag == "--sessions") {
            sessions = std::atoi(value().c_str());
        } else if (flag == "--frames") {
            frames = std::atoi(value().c_str());
        } else if (flag == "--tau") {
            tau = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--chunk-target") {
            build_cfg.chunk_target = static_cast<std::size_t>(
                std::strtoull(value().c_str(), nullptr, 10));
        } else if (flag == "--proxy-base") {
            build_cfg.proxy_base = static_cast<std::size_t>(
                std::strtoull(value().c_str(), nullptr, 10));
        } else if (flag == "--threads") {
            threads = std::atoi(value().c_str());
        } else if (flag == "--keep") {
            keep = true;
        } else if (flag == "--out") {
            out_path = value();
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (sessions < 1 || frames < 1 || budget_mib < 1 || tau <= 0.0f ||
        scale <= 0.0f || scale > 1.0f) {
        std::fprintf(stderr,
                     "--sessions/--frames/--budget must be >= 1, --tau "
                     "> 0 and --scale in (0, 1]\n");
        return 2;
    }

    std::vector<SceneId> scene_ids;
    if (scenes_arg != "none") {
        try {
            scene_ids = bench::parseSceneList(scenes_arg);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    bench::banner("lod_scale",
                  "clustered-LOD quality floors + budgeted city serve",
                  scale);
    bool all_ok = true;

    // ---- Part A: per-level PSNR against declared floors. ----
    std::vector<SceneRow> scene_rows;
    for (SceneId id : scene_ids) {
        SceneSpec spec = scenePreset(id);
        GaussianCloud cloud = generateScene(spec, scale);

        SceneRow row;
        row.scene = sceneName(id);
        row.gaussians = cloud.size();
        row.raw_bytes = cloud.size() * Gaussian::kTotalBytes;

        const std::string path = tmpPath("psnr_" + row.scene);
        auto t0 = std::chrono::steady_clock::now();
        if (!buildLodFile(cloud, path, build_cfg)) {
            std::fprintf(stderr, "ERROR: LOD build failed for %s\n",
                         row.scene.c_str());
            return 1;
        }
        row.build_ms = nowMsSince(t0);
        row.file_bytes = static_cast<std::size_t>(
            std::filesystem::file_size(path));

        LodScene lod(path, static_cast<std::size_t>(budget_mib) << 20);
        Camera cam = makeCamera(spec);
        TileRenderer renderer{TileRendererConfig{}};
        StandardFlowStats stats;
        Image ref = renderer.render(cloud, cam, stats);

        std::printf("\n%s: %zu gaussians, %.2fx compression, build "
                    "%.0f ms\n",
                    row.scene.c_str(), row.gaussians,
                    static_cast<double>(row.raw_bytes) /
                        static_cast<double>(row.file_bytes),
                    row.build_ms);
        bench::rule();
        std::printf("%-7s %10s %10s %12s %12s  %s\n", "level",
                    "psnr_db", "floor_db", "cut_splats", "render_ms",
                    "status");
        bench::rule();
        for (int level = 0; level <= lod.proxyLevels(); ++level) {
            LodCutParams params;
            params.force_level = level;
            LodCutStats cut_stats;
            GaussianCloud cut = lod.buildCut(cam, params, &cut_stats);

            auto t1 = std::chrono::steady_clock::now();
            Image img = renderer.render(cut, cam, stats);
            LevelRow lr;
            lr.render_ms = nowMsSince(t1);
            lr.level = level;
            lr.psnr_db = psnr(ref, img);
            lr.floor_db = lodPsnrFloorDb(level);
            lr.pass = lr.psnr_db >= lr.floor_db;
            lr.cut_gaussians = cut_stats.cut_gaussians;
            all_ok = all_ok && lr.pass;
            row.levels.push_back(lr);

            std::printf("%-7d %10.2f %10.2f %12zu %12.2f  %s\n", level,
                        lr.psnr_db, lr.floor_db, lr.cut_gaussians,
                        lr.render_ms,
                        lr.pass ? "ok" : "BELOW FLOOR");
        }
        scene_rows.push_back(row);
        if (!keep)
            std::filesystem::remove(path);
    }

    // ---- Part B: streamed city build + budgeted fleet serve. ----
    std::ostringstream city_json;
    if (city_count > 0) {
        SceneSpec city = citySpec(city_count);
        const std::string path =
            tmpPath("city_" + std::to_string(city_count));
        const std::size_t budget = budget_mib << 20;

        std::printf("\ncity: streaming %zu splats into %s\n",
                    city_count, path.c_str());
        auto t0 = std::chrono::steady_clock::now();
        if (!buildLodFileStreamed(city, city_count, path,
                                  build_cfg)) {
            std::fprintf(stderr, "ERROR: streamed city build failed\n");
            return 1;
        }
        double build_ms = nowMsSince(t0);
        const std::size_t file_bytes = static_cast<std::size_t>(
            std::filesystem::file_size(path));
        const std::size_t raw_bytes = city_count * Gaussian::kTotalBytes;

        FleetSpec fleet_spec;
        fleet_spec.sessions = sessions;
        fleet_spec.frames = frames;
        fleet_spec.scenes = {city};
        fleet_spec.lod_path = path;
        fleet_spec.lod_budget_bytes = budget;
        fleet_spec.lod_cut.tau = tau;

        SceneRegistry registry;
        // Hold the shared LodScene so its residency counters are
        // readable after the fleet run.
        SceneHandle handle =
            registry.acquireLod(path, budget, city, frames);
        std::vector<Session> fleet = buildFleet(fleet_spec, registry);

        int workers =
            threads > 0 ? threads : ThreadPool::hardwareWorkers();
        ThreadPool pool(workers);
        FrameScheduler scheduler(SchedulerOptions{});
        auto t1 = std::chrono::steady_clock::now();
        ServeReport report = scheduler.run(fleet, pool);
        double serve_ms = nowMsSince(t1);

        ResidencyManager::Stats rs = handle.lod->residencyStats();
        const std::size_t proxy_bytes = handle.lod->alwaysResidentBytes();
        const bool budget_ok = rs.peak_resident_bytes <= budget;
        all_ok = all_ok && budget_ok;

        std::printf("\ncity serve: %d sessions x %d frames, budget "
                    "%zu MiB\n",
                    sessions, frames, budget_mib);
        bench::rule();
        std::printf("  build: %.0f ms, file %.1f MiB (%.2fx over raw "
                    "%.1f MiB), %zu chunks, %d proxy levels\n",
                    build_ms, file_bytes / 1048576.0,
                    static_cast<double>(raw_bytes) /
                        static_cast<double>(file_bytes),
                    raw_bytes / 1048576.0, handle.lod->chunkCount(),
                    handle.lod->proxyLevels());
        std::printf("  serve: %.0f ms wall, fleet FPS %.2f\n", serve_ms,
                    report.fleetFps());
        std::printf("  residency: peak %.1f / %zu MiB%s, proxies %.1f "
                    "MiB, %zu faults / %zu hits / %zu evictions / %zu "
                    "transient\n",
                    rs.peak_resident_bytes / 1048576.0, budget_mib,
                    budget_ok ? "" : "  OVER BUDGET",
                    proxy_bytes / 1048576.0, rs.faults, rs.hits,
                    rs.evictions, rs.transient_loads);

        city_json.precision(10);
        city_json << ",\n  \"city\": {\n"
                  << "    \"splats\": " << city_count << ",\n"
                  << "    \"chunks\": " << handle.lod->chunkCount()
                  << ",\n    \"proxy_levels\": "
                  << handle.lod->proxyLevels() << ",\n"
                  << "    \"build_ms\": " << build_ms << ",\n"
                  << "    \"file_bytes\": " << file_bytes << ",\n"
                  << "    \"raw_bytes\": " << raw_bytes << ",\n"
                  << "    \"sessions\": " << sessions << ",\n"
                  << "    \"frames\": " << frames << ",\n"
                  << "    \"tau\": " << static_cast<double>(tau)
                  << ",\n    \"serve_wall_ms\": " << serve_ms << ",\n"
                  << "    \"fleet_fps\": " << report.fleetFps() << ",\n"
                  << "    \"budget_bytes\": " << budget << ",\n"
                  << "    \"peak_resident_bytes\": "
                  << rs.peak_resident_bytes << ",\n"
                  << "    \"always_resident_proxy_bytes\": "
                  << proxy_bytes << ",\n"
                  << "    \"faults\": " << rs.faults << ",\n"
                  << "    \"hits\": " << rs.hits << ",\n"
                  << "    \"evictions\": " << rs.evictions << ",\n"
                  << "    \"transient_loads\": " << rs.transient_loads
                  << ",\n    \"budget_ok\": "
                  << (budget_ok ? "true" : "false") << "\n  }";
        if (!keep)
            std::filesystem::remove(path);
    }

    // ---- JSON snapshot. ----
    std::ostringstream json;
    json.precision(10);
    json << "{\n  \"bench\": \"lod_scale\",\n"
         << "  \"host\": " << bench::hostJson() << ",\n"
         << "  \"scale\": " << static_cast<double>(scale) << ",\n"
         << "  \"scenes\": [\n";
    for (std::size_t i = 0; i < scene_rows.size(); ++i) {
        const SceneRow &r = scene_rows[i];
        json << "    {\"scene\": \"" << r.scene
             << "\", \"gaussians\": " << r.gaussians
             << ", \"file_bytes\": " << r.file_bytes
             << ", \"raw_bytes\": " << r.raw_bytes
             << ", \"build_ms\": " << r.build_ms
             << ",\n     \"levels\": [\n";
        for (std::size_t j = 0; j < r.levels.size(); ++j) {
            const LevelRow &l = r.levels[j];
            json << "       {\"level\": " << l.level
                 << ", \"psnr_db\": " << l.psnr_db
                 << ", \"floor_db\": " << l.floor_db
                 << ", \"pass\": " << (l.pass ? "true" : "false")
                 << ", \"cut_gaussians\": " << l.cut_gaussians
                 << ", \"render_ms\": " << l.render_ms << "}"
                 << (j + 1 < r.levels.size() ? "," : "") << "\n";
        }
        json << "     ]}" << (i + 1 < scene_rows.size() ? "," : "")
             << "\n";
    }
    json << "  ]";
    json << city_json.str();
    json << ",\n  \"all_ok\": " << (all_ok ? "true" : "false")
         << "\n}\n";

    if (out_path != "-") {
        if (!ResultTable::writeFile(out_path, json.str())) {
            std::fprintf(stderr, "failed to write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("\nwrote %s\n", out_path.c_str());
    }
    if (!all_ok)
        std::fprintf(stderr, "ERROR: a PSNR floor or the residency "
                             "budget was violated\n");
    return all_ok ? 0 : 1;
}
