/**
 * @file
 * Frame-throughput benchmark of the functional renderers (host-side
 * wall clock, no google-benchmark dependency).
 *
 * Renders preset scenes along their natural camera trajectories
 * through the standard tile-wise renderer and the Gaussian-wise
 * renderer (in Compatibility Mode, --subview), reports ms/frame and
 * frames/s percentiles through the ResultTable aggregation machinery,
 * and writes `BENCH_frame.json` so the performance trajectory is
 * tracked across PRs.
 *
 * With --reference the retained scalar implementations
 * (TileRenderer::renderReference / GaussianWiseRenderer::
 * renderReference) are also timed and the per-scene speedup of each
 * optimized path is reported; with --threads N,... every selected
 * renderer is additionally timed at each worker count (tile: parallel
 * preprocess + per-tile rasterization; gw: parallel shared projection
 * pass + Cmode sub-views).  All paths are bit-identical, and the
 * benchmark cross-checks their image checksums.
 *
 * Every variant also reports a per-stage wall-clock breakdown
 * (preprocess / binning / rasterize, from StageTimes) so
 * BENCH_frame.json records where the cycles went; with --fast-alpha
 * the opt-in simdExp alpha path is timed as extra `tile-fa` / `gw-fa`
 * variants and validated by PSNR against the exact image (reported,
 * and required to clear 55 dB).
 *
 * With --trajectory a temporal-coherence section replays a slow-orbit
 * held camera stream (forSceneArc(--arc) with each pose held --hold
 * frames, --traj-frames distinct poses) through three tile pipelines:
 * cold stateless rendering, exact temporal mode (--temporal ignored;
 * every frame exact, incremental binning + dirty-tile reuse,
 * checksum-verified bit-identical to cold), and warp mode (every
 * --temporal-th frame exact, the rest reprojected, >= 40 dB PSNR
 * against cold enforced per frame).  Contract violations fail the
 * run; speedups and TemporalCounters go to the "temporal" JSON
 * section.
 *
 * Usage:
 *   frame_throughput [--scenes LIST] [--frames N] [--reps N]
 *                    [--renderers tile,gw] [--reference]
 *                    [--threads LIST] [--subview N] [--fast-alpha]
 *                    [--workers N] [--scale F] [--out FILE]
 *                    [--trajectory] [--temporal K] [--hold H]
 *                    [--arc F] [--traj-frames N]
 *
 * Scale comes from --scale or GCC3D_SCALE (1.0 = paper populations).
 * --workers > 1 runs the base tile/gw variants on a thread pool (the
 * images and stats do not depend on it).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "obs/trace_export.h"
#include "render/gaussian_wise_renderer.h"
#include "render/metrics.h"
#include "render/tile_renderer.h"
#include "runtime/thread_pool.h"
#include "scene/trajectory.h"

namespace {

using namespace gcc3d;
using gcc3d::bench::splitList;

double
nowMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --scenes LIST    comma-separated scene names or 'all'\n"
        "                   (default: palace,lego,train)\n"
        "  --frames N       trajectory frames per scene (default: 2)\n"
        "  --reps N         timed repetitions per frame (default: 3)\n"
        "  --renderers LIST subset of tile,gw (default: tile,gw)\n"
        "  --reference      also time the scalar reference paths and\n"
        "                   report each optimized speedup\n"
        "  --threads LIST   worker-count scaling sweep, e.g. 1,2,4,8\n"
        "                   (adds a <renderer>-tN variant per count)\n"
        "  --subview N      Gaussian-wise Cmode sub-view side; 0 =\n"
        "                   full view (default: 128)\n"
        "  --fast-alpha     also time the simdExp fast-alpha paths\n"
        "                   (tile-fa/gw-fa variants + PSNR check)\n"
        "  --workers N      pool for the base tile/gw variants;\n"
        "                   <2 = serial (default: 1)\n"
        "  --trajectory     temporal-coherence section: cold vs exact\n"
        "                   temporal vs warp over a slow held camera\n"
        "                   stream (tile renderer only)\n"
        "  --temporal K     warp mode renders every K-th frame exactly\n"
        "                   (default: 4)\n"
        "  --hold H         display frames per camera pose in the\n"
        "                   stream (default: 2)\n"
        "  --arc F          fraction of the natural camera path the\n"
        "                   stream covers (default: 0.001)\n"
        "  --traj-frames N  distinct camera poses in the stream\n"
        "                   (default: 8)\n"
        "  --scale F        population scale in (0,1] (default:\n"
        "                   GCC3D_SCALE env or 1.0)\n"
        "  --out FILE       JSON output path (default:\n"
        "                   BENCH_frame.json; '-' disables)\n"
        "  --trace FILE     write a Chrome/Perfetto trace-event JSON\n"
        "                   of the run (empty with GCC3D_OBS=OFF)\n"
        "  --metrics-out FILE  write stage summaries + metrics\n"
        "                   registry as JSON\n",
        argv0);
}

/** What one timed variant runs. */
struct Variant
{
    std::string name;     ///< row label, e.g. "gw-t4"
    std::string family;   ///< checksum group (tile/gw/tile-fa/gw-fa)
    bool reference = false;
    ThreadPool *pool = nullptr;
    int threads = 0;      ///< 0 = not part of the thread sweep
    bool fast = false;    ///< fast-alpha (simdExp) configuration
    double check = 0.0;   ///< checksum summed over all timed frames
    StageTimes stage_sum{}; ///< per-stage ms summed over timed frames
    std::size_t stage_samples = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string scenes_arg = "palace,lego,train";
    std::string renderers_arg = "tile,gw";
    std::string threads_arg;
    std::string out_path = "BENCH_frame.json";
    std::string trace_path;
    std::string metrics_path;
    int frames = 2;
    int reps = 3;
    int workers = 1;
    int subview = 128;
    int temporal_every = 4;
    int hold = 2;
    int traj_frames = 8;
    double traj_arc = 0.001;
    bool trajectory = false;
    bool reference = false;
    bool fast_alpha = false;
    float scale = benchScale();

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--scenes") {
            scenes_arg = value();
        } else if (flag == "--frames") {
            frames = std::atoi(value().c_str());
        } else if (flag == "--reps") {
            reps = std::atoi(value().c_str());
        } else if (flag == "--renderers") {
            renderers_arg = value();
        } else if (flag == "--reference") {
            reference = true;
        } else if (flag == "--fast-alpha") {
            fast_alpha = true;
        } else if (flag == "--threads") {
            threads_arg = value();
        } else if (flag == "--subview") {
            subview = std::atoi(value().c_str());
        } else if (flag == "--workers") {
            workers = std::atoi(value().c_str());
        } else if (flag == "--trajectory") {
            trajectory = true;
        } else if (flag == "--temporal") {
            temporal_every = std::atoi(value().c_str());
        } else if (flag == "--hold") {
            hold = std::atoi(value().c_str());
        } else if (flag == "--arc") {
            traj_arc = std::atof(value().c_str());
        } else if (flag == "--traj-frames") {
            traj_frames = std::atoi(value().c_str());
        } else if (flag == "--scale") {
            scale = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--out") {
            out_path = value();
        } else if (flag == "--trace") {
            trace_path = value();
        } else if (flag == "--metrics-out") {
            metrics_path = value();
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (frames < 1 || reps < 1 || scale <= 0.0f || scale > 1.0f) {
        std::fprintf(stderr, "--frames/--reps must be >= 1 and "
                             "--scale in (0, 1]\n");
        return 2;
    }
    if (temporal_every < 2 || hold < 1 || traj_frames < 2 ||
        traj_arc <= 0.0 || traj_arc > 1.0) {
        std::fprintf(stderr,
                     "--temporal must be >= 2, --hold >= 1, "
                     "--traj-frames >= 2 and --arc in (0, 1]\n");
        return 2;
    }
    if (subview < 0)
        subview = 0;

    std::vector<SceneId> scenes;
    try {
        scenes = bench::parseSceneList(scenes_arg);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    bool run_tile = false, run_gw = false;
    for (const std::string &r : splitList(renderers_arg)) {
        if (r == "tile")
            run_tile = true;
        else if (r == "gw" || r == "gaussian-wise")
            run_gw = true;
        else {
            std::fprintf(stderr, "unknown renderer: %s\n", r.c_str());
            return 2;
        }
    }
    if (!run_tile && !run_gw) {
        std::fprintf(stderr, "no renderers selected (--renderers "
                             "tile,gw)\n");
        return 2;
    }

    std::vector<int> thread_counts;
    for (const std::string &t : splitList(threads_arg)) {
        int n = std::atoi(t.c_str());
        if (n < 1) {
            std::fprintf(stderr, "bad --threads entry: %s\n", t.c_str());
            return 2;
        }
        thread_counts.push_back(n);
    }
    // The sweep's scaling baseline is the single-thread point.
    if (!thread_counts.empty() &&
        std::find(thread_counts.begin(), thread_counts.end(), 1) ==
            thread_counts.end())
        thread_counts.insert(thread_counts.begin(), 1);

    bench::banner("frame_throughput",
                  "host frames/s of the functional renderers", scale);
    std::printf("frames/scene %d, reps %d, base workers %d, gw sub-view "
                "%d%s%s%s\n",
                frames, reps, workers, subview,
                reference ? ", scalar references timed" : "",
                thread_counts.empty() ? "" : ", thread sweep on",
                fast_alpha ? ", fast-alpha timed" : "");

    ThreadPool base_pool(workers);
    ThreadPool *pool_or_null = workers > 1 ? &base_pool : nullptr;
    std::map<int, std::unique_ptr<ThreadPool>> sweep_pools;
    for (int t : thread_counts)
        if (t > 1 && sweep_pools.find(t) == sweep_pools.end())
            sweep_pools.emplace(t, std::make_unique<ThreadPool>(t));

    // One sample row per (scene, renderer, frame, rep); ms/frame in
    // frame_ms/wall_ms, throughput in fps.  The backend field is
    // meaningless for host timing and left at its default.
    std::vector<JobResult> rows;
    std::vector<std::string> scene_names;
    std::vector<std::string> variant_names;
    int next_id = 0;
    bool checks_ok = true;

    // (scene, variant) -> mean ms, filled after aggregation.
    struct SpeedupRow
    {
        std::string scene;
        std::string renderer;
        double speedup;
    };
    std::vector<SpeedupRow> speedups;
    struct ScalingRow
    {
        std::string scene;
        std::string renderer;
        int threads;
        double ms_mean;
        double ms_min;
        double fps_mean;
        double speedup_vs_t1;  ///< from ms_min (noise-robust)
    };
    std::vector<ScalingRow> scaling;
    struct PsnrRow
    {
        std::string scene;
        std::string renderer;
        double psnr_db;
    };
    std::vector<PsnrRow> psnr_rows;
    struct StageRow
    {
        double pre_ms = 0.0;
        double bin_ms = 0.0;
        double raster_ms = 0.0;
    };
    // (scene, variant) -> mean per-stage ms over the timed samples.
    std::map<std::pair<std::string, std::string>, StageRow> stage_rows;
    struct TemporalRow
    {
        std::string scene;
        int stream_frames = 0;
        double step_translation = 0.0;  ///< max per-pose camera delta
        double step_rotation_rad = 0.0;
        double cold_ms_mean = 0.0;
        double exact_ms_mean = 0.0;
        double exact_speedup = 0.0;
        bool exact_identical = true;
        double warp_ms_mean = 0.0;
        double warp_speedup = 0.0;
        double warp_min_psnr_db = 0.0;
        TemporalCounters exact_counters;
        TemporalCounters warp_counters;
    };
    std::vector<TemporalRow> temporal_rows;

    GaussianWiseConfig gw_cfg;
    gw_cfg.subview_size = subview;
    GaussianWiseConfig gw_fa_cfg = gw_cfg;
    gw_fa_cfg.fast_alpha = true;
    TileRendererConfig tile_fa_cfg;
    tile_fa_cfg.fast_alpha = true;

    for (SceneId id : scenes) {
        SceneSpec spec = scenePreset(id);
        const std::string scene = sceneName(id);
        scene_names.push_back(scene);
        GaussianCloud cloud = generateScene(spec, scale);
        Trajectory traj = Trajectory::forScene(spec, frames);
        std::printf("\n%s: %zu Gaussians, %dx%d, %d frames\n",
                    scene.c_str(), cloud.size(), spec.image_width,
                    spec.image_height, frames);

        std::vector<Variant> variants;
        if (run_tile) {
            variants.push_back(
                {"tile", "tile", false, pool_or_null, 0, false});
            if (reference)
                variants.push_back(
                    {"tile-ref", "tile", true, nullptr, 0, false});
            for (int t : thread_counts)
                variants.push_back(
                    {"tile-t" + std::to_string(t), "tile", false,
                     t > 1 ? sweep_pools.at(t).get() : nullptr, t,
                     false});
            if (fast_alpha)
                variants.push_back({"tile-fa", "tile-fa", false,
                                    pool_or_null, 0, true});
        }
        if (run_gw) {
            variants.push_back(
                {"gw", "gw", false, pool_or_null, 0, false});
            if (reference)
                variants.push_back(
                    {"gw-ref", "gw", true, nullptr, 0, false});
            for (int t : thread_counts)
                variants.push_back(
                    {"gw-t" + std::to_string(t), "gw", false,
                     t > 1 ? sweep_pools.at(t).get() : nullptr, t,
                     false});
            if (fast_alpha)
                variants.push_back(
                    {"gw-fa", "gw-fa", false, pool_or_null, 0, true});
        }

        TileRenderer tile_renderer;
        TileRenderer tile_renderer_fa(tile_fa_cfg);
        GaussianWiseRenderer gw_renderer(gw_cfg);
        GaussianWiseRenderer gw_renderer_fa(gw_fa_cfg);

        auto is_tile_family = [](const Variant &v) {
            return v.family.rfind("tile", 0) == 0;
        };
        auto render_once = [&](Variant &v, int frame,
                               bool record) -> std::pair<double, double> {
            const Camera &cam =
                traj.frame(static_cast<std::size_t>(frame));
            auto start = std::chrono::steady_clock::now();
            Image img;
            StageTimes stage;
            if (is_tile_family(v)) {
                StandardFlowStats st;
                const TileRenderer &r =
                    v.fast ? tile_renderer_fa : tile_renderer;
                img = v.reference
                          ? r.renderReference(cloud, cam, st)
                          : r.render(cloud, cam, st, v.pool);
                stage = st.stage;
            } else {
                GaussianWiseStats st;
                const GaussianWiseRenderer &r =
                    v.fast ? gw_renderer_fa : gw_renderer;
                img = v.reference
                          ? r.renderReference(cloud, cam, st)
                          : r.render(cloud, cam, st, v.pool);
                stage = st.stage;
            }
            double ms = nowMsSince(start);
            if (record) {
                v.stage_sum.preprocess_ms += stage.preprocess_ms;
                v.stage_sum.binning_ms += stage.binning_ms;
                v.stage_sum.raster_ms += stage.raster_ms;
                ++v.stage_samples;
            }
            return {ms, imageChecksum(img)};
        };

        for (Variant &v : variants) {
            if (scene_names.size() == 1)
                variant_names.push_back(v.name);
            render_once(v, 0, false);  // warm-up: page in the cloud
        }
        // Reps interleave round-robin across variants so slow windows
        // on a shared host penalize every variant equally instead of
        // whichever happened to be timed last.
        for (int rep = 0; rep < reps; ++rep) {
            for (Variant &v : variants) {
                for (int f = 0; f < frames; ++f) {
                    auto [ms, check] = render_once(v, f, true);
                    JobResult r;
                    r.id = next_id++;
                    r.ok = true;
                    r.scene = scene;
                    r.variant = v.name;
                    r.frame = f;
                    r.frame_ms = ms;
                    r.wall_ms = ms;
                    r.fps = ms > 0.0 ? 1000.0 / ms : 0.0;
                    r.image_checksum = check;
                    rows.push_back(r);
                    // Sum over every timed render: a divergence on
                    // any frame of any rep shows up in the total.
                    v.check += check;
                }
            }
        }

        // Record per-stage means while the variants are in scope.
        for (const Variant &v : variants) {
            if (v.stage_samples == 0)
                continue;
            const double n = static_cast<double>(v.stage_samples);
            stage_rows[{scene, v.name}] = {
                v.stage_sum.preprocess_ms / n,
                v.stage_sum.binning_ms / n,
                v.stage_sum.raster_ms / n};
        }

        // Fast-alpha accuracy: PSNR of the simdExp image against the
        // exact image (frame 0); the contract is >= 55 dB.
        if (fast_alpha) {
            const Camera &cam0 = traj.frame(0);
            auto clamp_inf = [](double p) {
                return std::isinf(p) ? 999.0 : p;
            };
            if (run_tile) {
                StandardFlowStats s1, s2;
                double p = clamp_inf(
                    psnr(tile_renderer.render(cloud, cam0, s1),
                         tile_renderer_fa.render(cloud, cam0, s2)));
                std::printf("%-10s tile fast-alpha PSNR: %.1f dB\n",
                            scene.c_str(), p);
                psnr_rows.push_back({scene, "tile", p});
            }
            if (run_gw) {
                GaussianWiseStats s1, s2;
                double p = clamp_inf(
                    psnr(gw_renderer.render(cloud, cam0, s1),
                         gw_renderer_fa.render(cloud, cam0, s2)));
                std::printf("%-10s gw   fast-alpha PSNR: %.1f dB\n",
                            scene.c_str(), p);
                psnr_rows.push_back({scene, "gw", p});
            }
        }

        // Every variant of a renderer family is bit-identical
        // (optimized vs scalar reference, serial vs any worker
        // count); their summed checksums must agree exactly.  The
        // fast-alpha variants form their own families: approximate,
        // but still deterministic run to run.
        for (const char *family : {"tile", "gw", "tile-fa", "gw-fa"}) {
            const Variant *first = nullptr;
            for (const Variant &v : variants) {
                if (v.family != family)
                    continue;
                if (first == nullptr) {
                    first = &v;
                    continue;
                }
                if (v.check != first->check) {
                    std::fprintf(stderr,
                                 "ERROR: %s %s checksum %.17g != %s "
                                 "%.17g\n",
                                 scene.c_str(), v.name.c_str(), v.check,
                                 first->name.c_str(), first->check);
                    checks_ok = false;
                }
            }
        }

        // ---- Temporal-coherence section: a slow held camera stream
        // through cold / exact-temporal / warp rendering. ----
        if (trajectory && run_tile) {
            Trajectory path = Trajectory::forSceneArc(
                spec, traj_frames, static_cast<float>(traj_arc));
            Trajectory stream;
            for (const Camera &cam : path.frames())
                for (int h = 0; h < hold; ++h)
                    stream.add(cam);
            const int n = static_cast<int>(stream.frameCount());
            const CameraDelta step = path.maxCameraDelta();

            TemporalRow trow;
            trow.scene = scene;
            trow.stream_frames = n;
            trow.step_translation = step.translation;
            trow.step_rotation_rad = step.rotation_rad;

            // Cold baseline: the stateless per-frame renderer, with
            // per-frame checksums as the bit-identity oracle.
            std::vector<double> cold_check(
                static_cast<std::size_t>(n));
            double cold_ms = 0.0;
            for (int f = 0; f < n; ++f) {
                StandardFlowStats st;
                auto start = std::chrono::steady_clock::now();
                Image img = tile_renderer.render(
                    cloud, stream.frame(static_cast<std::size_t>(f)),
                    st, pool_or_null);
                cold_ms += nowMsSince(start);
                cold_check[static_cast<std::size_t>(f)] =
                    imageChecksum(img);
            }

            // Exact temporal mode: every frame exact, bit-identical
            // to cold by contract.
            TemporalCache exact_cache;
            exact_cache.options.every = 1;
            double exact_ms = 0.0;
            for (int f = 0; f < n; ++f) {
                StandardFlowStats st;
                auto start = std::chrono::steady_clock::now();
                Image img = tile_renderer.renderTemporal(
                    cloud, stream.frame(static_cast<std::size_t>(f)),
                    st, exact_cache, pool_or_null);
                exact_ms += nowMsSince(start);
                if (imageChecksum(img) !=
                    cold_check[static_cast<std::size_t>(f)]) {
                    std::fprintf(stderr,
                                 "ERROR: %s exact temporal frame %d "
                                 "diverged from the cold render\n",
                                 scene.c_str(), f);
                    trow.exact_identical = false;
                    checks_ok = false;
                }
            }
            trow.exact_counters = exact_cache.counters();

            // Warp mode: every K-th frame exact, the rest reprojected
            // under the >= 40 dB contract (cold re-render per frame is
            // the untimed PSNR reference).
            TemporalCache warp_cache;
            warp_cache.options.every = temporal_every;
            double warp_ms = 0.0;
            double min_psnr = std::numeric_limits<double>::infinity();
            for (int f = 0; f < n; ++f) {
                const Camera &cam =
                    stream.frame(static_cast<std::size_t>(f));
                StandardFlowStats st;
                auto start = std::chrono::steady_clock::now();
                Image img = tile_renderer.renderTemporal(
                    cloud, cam, st, warp_cache, pool_or_null);
                warp_ms += nowMsSince(start);
                StandardFlowStats cold_st;
                Image cold_img =
                    tile_renderer.render(cloud, cam, cold_st,
                                         pool_or_null);
                min_psnr = std::min(min_psnr, psnrDb(cold_img, img));
            }
            trow.warp_counters = warp_cache.counters();
            if (min_psnr < 40.0) {
                std::fprintf(stderr,
                             "ERROR: %s warp mode min PSNR %.2f dB "
                             "breaks the >= 40 dB contract\n",
                             scene.c_str(), min_psnr);
                checks_ok = false;
            }

            trow.cold_ms_mean = cold_ms / n;
            trow.exact_ms_mean = exact_ms / n;
            trow.warp_ms_mean = warp_ms / n;
            trow.exact_speedup =
                exact_ms > 0.0 ? cold_ms / exact_ms : 0.0;
            trow.warp_speedup = warp_ms > 0.0 ? cold_ms / warp_ms : 0.0;
            trow.warp_min_psnr_db =
                std::isinf(min_psnr) ? 999.0 : min_psnr;

            std::printf(
                "%-10s temporal stream: %d frames (%d poses x hold "
                "%d, arc %.3f, step %.4f / %.4f rad)\n"
                "%-10s   cold %.2f ms, exact %.2f ms (%.2fx, "
                "bit-identical %s), warp %.2f ms (%.2fx, min PSNR "
                "%.1f dB)\n",
                scene.c_str(), n, traj_frames, hold, traj_arc,
                step.translation, step.rotation_rad, scene.c_str(),
                trow.cold_ms_mean, trow.exact_ms_mean,
                trow.exact_speedup,
                trow.exact_identical ? "yes" : "NO", trow.warp_ms_mean,
                trow.warp_speedup, trow.warp_min_psnr_db);
            temporal_rows.push_back(std::move(trow));
        }
    }

    // ---- Aggregate and report through ResultTable. ----
    ResultTable table(std::move(rows));
    auto ms_metric = [](const JobResult &r) { return r.frame_ms; };
    auto fps_metric = [](const JobResult &r) { return r.fps; };

    bench::rule();
    std::printf("%-10s %-9s %8s %8s %8s %8s %8s\n", "scene",
                "renderer", "ms_mean", "ms_p50", "ms_p90", "ms_p99",
                "fps_p50");
    bench::rule();

    std::string json = "{\n  \"bench\": \"frame_throughput\",\n";
    json += "  \"host\": " + bench::hostJson() + ",\n";
    {
        char head[200];
        std::snprintf(head, sizeof head,
                      "  \"scale\": %.4f,\n  \"frames\": %d,\n"
                      "  \"reps\": %d,\n  \"workers\": %d,\n"
                      "  \"gw_subview\": %d,\n",
                      static_cast<double>(scale), frames, reps, workers,
                      subview);
        json += head;
    }
    json += "  \"results\": [\n";

    bool first_row = true;
    for (const std::string &scene : scene_names) {
        std::map<std::string, double> mean_ms;
        std::map<std::string, double> min_ms;
        std::map<std::string, double> mean_fps;
        for (const std::string &ren : variant_names) {
            auto filter = [&](const JobResult &r) {
                return r.scene == scene && r.variant == ren;
            };
            Aggregate ms = table.over(ms_metric, filter);
            Aggregate fps = table.over(fps_metric, filter);
            if (ms.count == 0)
                continue;
            mean_ms[ren] = ms.mean;
            min_ms[ren] = ms.min;
            mean_fps[ren] = fps.mean;
            std::printf("%-10s %-9s %8.2f %8.2f %8.2f %8.2f %8.1f\n",
                        scene.c_str(), ren.c_str(), ms.mean, ms.p50,
                        ms.p90, ms.p99, fps.p50);
            char line[768];
            auto stage_it = stage_rows.find({scene, ren});
            const StageRow stage_mean =
                stage_it != stage_rows.end() ? stage_it->second
                                             : StageRow{};
            std::snprintf(
                line, sizeof line,
                "%s    {\"scene\": \"%s\", \"renderer\": \"%s\", "
                "\"samples\": %zu, \"ms_mean\": %.4f, "
                "\"ms_p50\": %.4f, \"ms_p90\": %.4f, "
                "\"ms_p99\": %.4f, \"ms_min\": %.4f, "
                "\"fps_mean\": %.4f, \"fps_p50\": %.4f, "
                "\"pre_ms_mean\": %.4f, \"bin_ms_mean\": %.4f, "
                "\"raster_ms_mean\": %.4f}",
                first_row ? "" : ",\n", scene.c_str(), ren.c_str(),
                ms.count, ms.mean, ms.p50, ms.p90, ms.p99, ms.min,
                fps.mean, fps.p50, stage_mean.pre_ms,
                stage_mean.bin_ms, stage_mean.raster_ms);
            json += line;
            first_row = false;
        }

        if (reference) {
            // min-of-reps: wall-clock noise on a shared host is
            // strictly additive, so the per-variant minimum is the
            // robust throughput estimator for ratios.
            for (const char *family : {"tile", "gw"}) {
                auto opt = min_ms.find(family);
                auto ref = min_ms.find(std::string(family) + "-ref");
                if (opt == min_ms.end() || ref == min_ms.end() ||
                    opt->second <= 0.0)
                    continue;
                double speedup = ref->second / opt->second;
                std::printf("%-10s optimized %s speedup: %.2fx\n",
                            scene.c_str(), family, speedup);
                speedups.push_back({scene, family, speedup});
            }
        }
        for (const char *family : {"tile", "gw"}) {
            auto t1 = min_ms.find(std::string(family) + "-t1");
            if (t1 == min_ms.end() || t1->second <= 0.0)
                continue;
            for (int t : thread_counts) {
                auto row = min_ms.find(std::string(family) + "-t" +
                                        std::to_string(t));
                if (row == min_ms.end() || row->second <= 0.0)
                    continue;
                double sp = t1->second / row->second;
                const std::string key =
                    std::string(family) + "-t" + std::to_string(t);
                scaling.push_back({scene, family, t, mean_ms[key],
                                   min_ms[key], mean_fps[key], sp});
                std::printf("%-10s %s x%d threads: %.2fx vs 1 thread\n",
                            scene.c_str(), family, t, sp);
            }
        }
    }
    json += "\n  ]";

    if (reference) {
        json += ",\n  \"speedup_vs_reference\": [\n";
        bool first = true;
        for (const SpeedupRow &s : speedups) {
            char line[200];
            std::snprintf(line, sizeof line,
                          "%s    {\"scene\": \"%s\", "
                          "\"renderer\": \"%s\", \"speedup\": %.4f}",
                          first ? "" : ",\n", s.scene.c_str(),
                          s.renderer.c_str(), s.speedup);
            json += line;
            first = false;
        }
        json += "\n  ]";
    }
    if (!psnr_rows.empty()) {
        json += ",\n  \"fast_alpha_psnr\": [\n";
        bool first = true;
        for (const PsnrRow &p : psnr_rows) {
            char line[200];
            std::snprintf(line, sizeof line,
                          "%s    {\"scene\": \"%s\", "
                          "\"renderer\": \"%s\", \"psnr_db\": %.4f}",
                          first ? "" : ",\n", p.scene.c_str(),
                          p.renderer.c_str(), p.psnr_db);
            json += line;
            first = false;
        }
        json += "\n  ]";
    }
    if (!scaling.empty()) {
        json += ",\n  \"thread_scaling\": [\n";
        bool first = true;
        for (const ScalingRow &s : scaling) {
            char line[256];
            std::snprintf(line, sizeof line,
                          "%s    {\"scene\": \"%s\", "
                          "\"renderer\": \"%s\", \"threads\": %d, "
                          "\"ms_mean\": %.4f, \"ms_min\": %.4f, "
                          "\"fps_mean\": %.4f, "
                          "\"speedup_vs_1t_min\": %.4f}",
                          first ? "" : ",\n", s.scene.c_str(),
                          s.renderer.c_str(), s.threads, s.ms_mean,
                          s.ms_min, s.fps_mean, s.speedup_vs_t1);
            json += line;
            first = false;
        }
        json += "\n  ]";
    }
    if (!temporal_rows.empty()) {
        auto counters_json = [](const TemporalCounters &c) {
            char buf[512];
            std::snprintf(
                buf, sizeof buf,
                "{\"frames\": %llu, \"exact\": %llu, \"copied\": %llu, "
                "\"warped\": %llu, \"full_rebuilds\": %llu, "
                "\"incremental\": %llu, \"tiles_total\": %llu, "
                "\"tiles_reused\": %llu, \"tiles_rastered\": %llu, "
                "\"tiles_patched\": %llu, \"tiles_resorted\": %llu, "
                "\"splats_changed\": %llu}",
                static_cast<unsigned long long>(c.frames),
                static_cast<unsigned long long>(c.exact_frames),
                static_cast<unsigned long long>(c.copied_frames),
                static_cast<unsigned long long>(c.warped_frames),
                static_cast<unsigned long long>(c.full_rebuilds),
                static_cast<unsigned long long>(c.incremental_frames),
                static_cast<unsigned long long>(c.tiles_total),
                static_cast<unsigned long long>(c.tiles_reused),
                static_cast<unsigned long long>(c.tiles_rastered),
                static_cast<unsigned long long>(c.tiles_patched),
                static_cast<unsigned long long>(c.tiles_resorted),
                static_cast<unsigned long long>(c.splats_changed));
            return std::string(buf);
        };
        char head[200];
        std::snprintf(head, sizeof head,
                      ",\n  \"temporal\": {\"every\": %d, \"hold\": %d, "
                      "\"arc\": %.4f, \"poses\": %d, \"rows\": [\n",
                      temporal_every, hold, traj_arc, traj_frames);
        json += head;
        bool first = true;
        for (const TemporalRow &t : temporal_rows) {
            char line[640];
            std::snprintf(
                line, sizeof line,
                "%s    {\"scene\": \"%s\", \"stream_frames\": %d, "
                "\"step_translation\": %.6f, \"step_rotation_rad\": "
                "%.6f,\n     \"cold_ms_mean\": %.4f, \"exact_ms_mean\": "
                "%.4f, \"exact_speedup\": %.4f, \"exact_bit_identical\": "
                "%s,\n     \"warp_ms_mean\": %.4f, \"warp_speedup\": "
                "%.4f, \"warp_min_psnr_db\": %.4f,\n",
                first ? "" : ",\n", t.scene.c_str(), t.stream_frames,
                t.step_translation, t.step_rotation_rad, t.cold_ms_mean,
                t.exact_ms_mean, t.exact_speedup,
                t.exact_identical ? "true" : "false", t.warp_ms_mean,
                t.warp_speedup, t.warp_min_psnr_db);
            json += line;
            json += "     \"exact_counters\": " +
                    counters_json(t.exact_counters) +
                    ",\n     \"warp_counters\": " +
                    counters_json(t.warp_counters) + "}";
            first = false;
        }
        json += "\n  ]}";
    }
    json += "\n}\n";

    if (out_path != "-") {
        if (!ResultTable::writeFile(out_path, json)) {
            std::fprintf(stderr, "failed to write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    // Export after every pool job resolved: workers quiescent, rings
    // safe to read.
    if (!trace_path.empty()) {
        if (!ResultTable::writeFile(trace_path, obs::traceJson())) {
            std::fprintf(stderr, "failed to write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        if (!ResultTable::writeFile(metrics_path,
                                    obs::observabilityJson())) {
            std::fprintf(stderr, "failed to write %s\n",
                         metrics_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", metrics_path.c_str());
    }
    return checks_ok ? 0 : 1;
}
