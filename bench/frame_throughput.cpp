/**
 * @file
 * Frame-throughput benchmark of the functional renderers (host-side
 * wall clock, no google-benchmark dependency).
 *
 * Renders preset scenes along their natural camera trajectories
 * through the standard tile-wise renderer and the Gaussian-wise
 * renderer, reports ms/frame and frames/s percentiles through the
 * ResultTable aggregation machinery, and writes `BENCH_frame.json`
 * so the performance trajectory is tracked across PRs.
 *
 * With --reference the retained scalar TileRenderer::renderReference
 * is also timed and the per-scene speedup of the optimized path is
 * reported (the two are bit-identical; the benchmark cross-checks
 * their image checksums).
 *
 * Usage:
 *   frame_throughput [--scenes LIST] [--frames N] [--reps N]
 *                    [--renderers tile,gw] [--reference]
 *                    [--workers N] [--scale F] [--out FILE]
 *
 * Scale comes from --scale or GCC3D_SCALE (1.0 = paper populations).
 * --workers > 1 fans the tile renderer's preprocess stage over a
 * thread pool (the image and stats do not depend on it).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "render/gaussian_wise_renderer.h"
#include "render/tile_renderer.h"
#include "runtime/thread_pool.h"
#include "scene/trajectory.h"

namespace {

using namespace gcc3d;
using gcc3d::bench::splitList;

double
nowMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --scenes LIST    comma-separated scene names or 'all'\n"
        "                   (default: palace,lego,train)\n"
        "  --frames N       trajectory frames per scene (default: 2)\n"
        "  --reps N         timed repetitions per frame (default: 3)\n"
        "  --renderers LIST subset of tile,gw (default: tile,gw)\n"
        "  --reference      also time the scalar reference tile path\n"
        "                   and report the optimized speedup\n"
        "  --workers N      preprocess worker threads for the tile\n"
        "                   path; <2 = serial (default: 1)\n"
        "  --scale F        population scale in (0,1] (default:\n"
        "                   GCC3D_SCALE env or 1.0)\n"
        "  --out FILE       JSON output path (default:\n"
        "                   BENCH_frame.json; '-' disables)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenes_arg = "palace,lego,train";
    std::string renderers_arg = "tile,gw";
    std::string out_path = "BENCH_frame.json";
    int frames = 2;
    int reps = 3;
    int workers = 1;
    bool reference = false;
    float scale = benchScale();

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--scenes") {
            scenes_arg = value();
        } else if (flag == "--frames") {
            frames = std::atoi(value().c_str());
        } else if (flag == "--reps") {
            reps = std::atoi(value().c_str());
        } else if (flag == "--renderers") {
            renderers_arg = value();
        } else if (flag == "--reference") {
            reference = true;
        } else if (flag == "--workers") {
            workers = std::atoi(value().c_str());
        } else if (flag == "--scale") {
            scale = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--out") {
            out_path = value();
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (frames < 1 || reps < 1 || scale <= 0.0f || scale > 1.0f) {
        std::fprintf(stderr, "--frames/--reps must be >= 1 and "
                             "--scale in (0, 1]\n");
        return 2;
    }

    std::vector<SceneId> scenes;
    try {
        if (scenes_arg == "all") {
            scenes = allScenes();
        } else {
            for (const std::string &name : splitList(scenes_arg))
                scenes.push_back(sceneFromName(name));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    bool run_tile = false, run_gw = false;
    for (const std::string &r : splitList(renderers_arg)) {
        if (r == "tile")
            run_tile = true;
        else if (r == "gw" || r == "gaussian-wise")
            run_gw = true;
        else {
            std::fprintf(stderr, "unknown renderer: %s\n", r.c_str());
            return 2;
        }
    }
    if (reference)
        run_tile = true;
    if (!run_tile && !run_gw) {
        std::fprintf(stderr, "no renderers selected (--renderers "
                             "tile,gw or --reference)\n");
        return 2;
    }

    bench::banner("frame_throughput",
                  "host frames/s of the functional renderers", scale);
    std::printf("frames/scene %d, reps %d, preprocess workers %d%s\n",
                frames, reps, workers,
                reference ? ", scalar reference timed" : "");

    ThreadPool pool(workers);
    ThreadPool *tile_pool = workers > 1 ? &pool : nullptr;

    // One sample row per (scene, renderer, frame, rep); ms/frame in
    // frame_ms/wall_ms, throughput in fps.  The backend field is
    // meaningless for host timing and left at its default.
    std::vector<JobResult> rows;
    struct Variant
    {
        std::string name;
        double check = 0.0;  ///< checksum summed over all timed frames
    };
    std::vector<std::string> scene_names;
    int next_id = 0;
    bool checks_ok = true;

    for (SceneId id : scenes) {
        SceneSpec spec = scenePreset(id);
        const std::string scene = sceneName(id);
        scene_names.push_back(scene);
        GaussianCloud cloud = generateScene(spec, scale);
        Trajectory traj = Trajectory::forScene(spec, frames);
        std::printf("\n%s: %zu Gaussians, %dx%d, %d frames\n",
                    scene.c_str(), cloud.size(), spec.image_width,
                    spec.image_height, frames);

        std::vector<Variant> variants;
        if (run_tile)
            variants.push_back({"tile", 0.0});
        if (reference)
            variants.push_back({"tile-ref", 0.0});
        if (run_gw)
            variants.push_back({"gw", 0.0});

        TileRenderer tile_renderer;
        GaussianWiseRenderer gw_renderer;

        for (Variant &v : variants) {
            auto render_once = [&](int frame) -> std::pair<double, double> {
                const Camera &cam =
                    traj.frame(static_cast<std::size_t>(frame));
                auto start = std::chrono::steady_clock::now();
                Image img;
                if (v.name == "tile") {
                    StandardFlowStats st;
                    img = tile_renderer.render(cloud, cam, st,
                                               tile_pool);
                } else if (v.name == "tile-ref") {
                    StandardFlowStats st;
                    img = tile_renderer.renderReference(cloud, cam, st);
                } else {
                    GaussianWiseStats st;
                    img = gw_renderer.render(cloud, cam, st);
                }
                double ms = nowMsSince(start);
                return {ms, imageChecksum(img)};
            };

            render_once(0);  // warm-up: page in the cloud, heat caches
            for (int rep = 0; rep < reps; ++rep) {
                for (int f = 0; f < frames; ++f) {
                    auto [ms, check] = render_once(f);
                    JobResult r;
                    r.id = next_id++;
                    r.ok = true;
                    r.scene = scene;
                    r.variant = v.name;
                    r.frame = f;
                    r.frame_ms = ms;
                    r.wall_ms = ms;
                    r.fps = ms > 0.0 ? 1000.0 / ms : 0.0;
                    r.image_checksum = check;
                    rows.push_back(r);
                    // Sum over every timed render: a divergence on
                    // any frame of any rep shows up in the total.
                    v.check += check;
                }
            }
        }

        // The optimized and reference tile paths are bit-identical;
        // their checksums must agree exactly.
        if (reference) {
            double tile_check = 0.0, ref_check = 0.0;
            for (const Variant &v : variants) {
                if (v.name == "tile")
                    tile_check = v.check;
                if (v.name == "tile-ref")
                    ref_check = v.check;
            }
            if (tile_check != ref_check) {
                std::fprintf(stderr,
                             "ERROR: %s tile checksum %.17g != "
                             "reference %.17g\n",
                             scene.c_str(), tile_check, ref_check);
                checks_ok = false;
            }
        }
    }

    // ---- Aggregate and report through ResultTable. ----
    ResultTable table(std::move(rows));
    auto ms_metric = [](const JobResult &r) { return r.frame_ms; };
    auto fps_metric = [](const JobResult &r) { return r.fps; };

    bench::rule();
    std::printf("%-10s %-9s %8s %8s %8s %8s %8s\n", "scene",
                "renderer", "ms_mean", "ms_p50", "ms_p90", "ms_p99",
                "fps_p50");
    bench::rule();

    std::string json = "{\n  \"bench\": \"frame_throughput\",\n";
    {
        char head[160];
        std::snprintf(head, sizeof head,
                      "  \"scale\": %.4f,\n  \"frames\": %d,\n"
                      "  \"reps\": %d,\n  \"workers\": %d,\n",
                      static_cast<double>(scale), frames, reps, workers);
        json += head;
    }
    json += "  \"results\": [\n";

    bool first_row = true;
    std::vector<std::string> variant_names;
    if (run_tile)
        variant_names.push_back("tile");
    if (reference)
        variant_names.push_back("tile-ref");
    if (run_gw)
        variant_names.push_back("gw");

    std::vector<std::pair<std::string, double>> speedups;
    for (const std::string &scene : scene_names) {
        double tile_mean = 0.0, ref_mean = 0.0;
        for (const std::string &ren : variant_names) {
            auto filter = [&](const JobResult &r) {
                return r.scene == scene && r.variant == ren;
            };
            Aggregate ms = table.over(ms_metric, filter);
            Aggregate fps = table.over(fps_metric, filter);
            if (ms.count == 0)
                continue;
            if (ren == "tile")
                tile_mean = ms.mean;
            if (ren == "tile-ref")
                ref_mean = ms.mean;
            std::printf("%-10s %-9s %8.2f %8.2f %8.2f %8.2f %8.1f\n",
                        scene.c_str(), ren.c_str(), ms.mean, ms.p50,
                        ms.p90, ms.p99, fps.p50);
            char line[512];
            std::snprintf(
                line, sizeof line,
                "%s    {\"scene\": \"%s\", \"renderer\": \"%s\", "
                "\"samples\": %zu, \"ms_mean\": %.4f, "
                "\"ms_p50\": %.4f, \"ms_p90\": %.4f, "
                "\"ms_p99\": %.4f, \"ms_min\": %.4f, "
                "\"fps_mean\": %.4f, \"fps_p50\": %.4f}",
                first_row ? "" : ",\n", scene.c_str(), ren.c_str(),
                ms.count, ms.mean, ms.p50, ms.p90, ms.p99, ms.min,
                fps.mean, fps.p50);
            json += line;
            first_row = false;
        }
        if (reference && tile_mean > 0.0 && ref_mean > 0.0) {
            double speedup = ref_mean / tile_mean;
            std::printf("%-10s optimized tile speedup: %.2fx\n",
                        scene.c_str(), speedup);
            speedups.emplace_back(scene, speedup);
        }
    }
    json += "\n  ]";

    if (reference) {
        json += ",\n  \"speedup_vs_reference\": [\n";
        bool first = true;
        for (const auto &[scene, speedup] : speedups) {
            char line[160];
            std::snprintf(line, sizeof line,
                          "%s    {\"scene\": \"%s\", "
                          "\"speedup\": %.4f}",
                          first ? "" : ",\n", scene.c_str(), speedup);
            json += line;
            first = false;
        }
        json += "\n  ]";
    }
    json += "\n}\n";

    if (out_path != "-") {
        if (!ResultTable::writeFile(out_path, json)) {
            std::fprintf(stderr, "failed to write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    return checks_ok ? 0 : 1;
}
