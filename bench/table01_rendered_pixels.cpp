/**
 * @file
 * Reproduces Table 1 and the region study of Fig. 4.
 *
 * Table 1: average rendered pixels per frame when Gaussian regions
 * are delimited by AABBs (tile-quantized, as the reference rasterizer
 * processes every pixel of every covered 16x16 tile), OBBs (GSCore's
 * oriented boxes over 8x8 subtiles), or the effective alpha region
 * (pixels actually blended with alpha >= 1/255).  Paper (M pixels):
 * Train 1164/378/31, Truck 1161/416/32, Playroom 1177/333/60,
 * Drjohnson 1697/460/73.
 *
 * Fig. 4: pixel counts of the three region types for a single
 * Gaussian at opacity 1.0 vs 0.01, showing how the effective region
 * collapses with opacity while static boxes do not.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gsmath/ellipse.h"
#include "render/preprocess.h"
#include "render/tile_renderer.h"
#include "scene/scene_generator.h"

namespace {

using namespace gcc3d;

struct PixelCounts
{
    double aabb_m = 0.0;      ///< 16x16-tile-quantized AABB work
    double obb_m = 0.0;       ///< 8x8-subtile-quantized OBB work
    double effective_m = 0.0; ///< pixels actually blended
};

PixelCounts
countScene(SceneId id, float scale)
{
    SceneSpec spec = scenePreset(id);
    GaussianCloud cloud = generateScene(spec, scale);
    Camera cam = makeCamera(spec);

    PreprocessStats pre;
    std::vector<Splat> splats = preprocessAll(cloud, cam, pre);

    PixelCounts c;

    // AABB: every pixel of every covered 16x16 tile is processed.
    TileRendererConfig aabb_cfg;
    aabb_cfg.tile_size = 16;
    aabb_cfg.bounding = BoundingMode::Aabb3Sigma;
    TileRenderer aabb_r(aabb_cfg);
    for (int tiles : aabb_r.tilesPerSplat(splats, cam))
        c.aabb_m += 256.0 * tiles;

    // OBB: GSCore rasterizes 8x8 subtiles intersecting the OBB.
    TileRendererConfig obb_cfg;
    obb_cfg.tile_size = 8;
    obb_cfg.bounding = BoundingMode::Obb3Sigma;
    TileRenderer obb_r(obb_cfg);
    for (int tiles : obb_r.tilesPerSplat(splats, cam))
        c.obb_m += 64.0 * tiles;

    // Rendered: pixels that actually blend (alpha >= 1/255, T live).
    TileRenderer render_r;
    StandardFlowStats stats;
    Image img = render_r.render(cloud, cam, stats);
    (void)img;
    c.effective_m = static_cast<double>(stats.blend_ops);

    c.aabb_m /= 1e6;
    c.obb_m /= 1e6;
    c.effective_m /= 1e6;
    return c;
}

} // namespace

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Table 1 / Fig. 4",
                  "rendered pixels per frame by bounding method", scale);

    const std::vector<SceneId> scenes = {SceneId::Train, SceneId::Truck,
                                         SceneId::Playroom,
                                         SceneId::Drjohnson};
    const double paper[][3] = {{1164, 378, 31},
                               {1161, 416, 32},
                               {1177, 333, 60},
                               {1697, 460, 73}};

    std::printf("%-10s | %10s %10s %10s | %8s %8s %8s  (M pixels)\n",
                "scene", "AABB", "OBB", "Rendered", "pAABB", "pOBB",
                "pRend");
    bench::rule();
    int i = 0;
    for (SceneId id : scenes) {
        PixelCounts c = countScene(id, scale);
        std::printf("%-10s | %10.1f %10.1f %10.1f | %8.0f %8.0f %8.0f\n",
                    sceneName(id).c_str(), c.aabb_m, c.obb_m,
                    c.effective_m, paper[i][0], paper[i][1], paper[i][2]);
        ++i;
    }

    // ---- Fig. 4: one Gaussian, two opacities. ----
    std::printf("\nFig. 4: single anisotropic Gaussian (pixel counts)\n");
    std::printf("%-14s %10s %10s %12s\n", "opacity", "AABB", "OBB",
                "effective");
    bench::rule();
    Mat2 cov(220.0f, 90.0f, 90.0f, 120.0f);
    Ellipse e = Ellipse::fromCovariance(Vec2(256.0f, 256.0f), cov);
    for (float omega : {1.0f, 0.01f}) {
        PixelRect aabb = aabbFromRadius(e.center, radius3Sigma(e.eig))
                             .clipped(512, 512);
        std::printf("%-14.2f %10lld %10lld %12lld\n",
                    omega, static_cast<long long>(aabb.area()),
                    static_cast<long long>(obbPixelCount(e, 3.0f, 512,
                                                         512)),
                    static_cast<long long>(
                        effectivePixelCount(e, omega, 512, 512)));
    }
    return 0;
}
