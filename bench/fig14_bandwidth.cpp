/**
 * @file
 * Reproduces Fig. 14: throughput of GCC and GSCore on the Train scene
 * under increasing DRAM bandwidth (LPDDR4-3200 … LPDDR6-14400 plus a
 * fine sweep).
 *
 * Paper shape: both designs gain with bandwidth below ~220 GB/s;
 * beyond that GCC flattens (compute-bound — its conditional,
 * one-pass traffic is small) while GSCore keeps inching up
 * (memory-bound).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/accelerator.h"
#include "gscore/gscore_sim.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 14", "throughput vs DRAM bandwidth (Train)",
                  scale);

    SceneSpec spec = scenePreset(SceneId::Train);
    GaussianCloud cloud = generateScene(spec, scale);
    Camera cam = makeCamera(spec);

    std::printf("%-16s %10s | %10s %10s | %10s\n", "memory", "GB/s",
                "GSCoreFPS", "GCC FPS", "GCC/GSC");
    bench::rule();

    auto run = [&](const DramConfig &dram, const char *label) {
        GscoreConfig gc;
        gc.dram = dram;
        GscoreSim gscore(gc);
        GscoreFrameResult base = gscore.renderFrame(cloud, cam);

        GccConfig cc;
        cc.dram = dram;
        GccAccelerator gcc(cc);
        GccFrameResult ours = gcc.render(cloud, cam);

        std::printf("%-16s %10.1f | %10.1f %10.1f | %9.2fx\n", label,
                    dram.peak_gbps, base.fps, ours.fps,
                    ours.fps / base.fps);
    };

    for (const DramConfig &d : DramConfig::sweep())
        run(d, d.name.c_str());

    std::printf("\nfine sweep (hypothetical parts):\n");
    for (double gbps : {180.0, 220.0, 280.0, 360.0, 480.0}) {
        DramConfig d = DramConfig::lpddr5x_8533().withBandwidth(gbps);
        run(d, "custom");
    }
    std::printf("\npaper: GCC saturates (compute-bound) above ~220 GB/s;"
                " GSCore remains memory-bound.\n");
    return 0;
}
