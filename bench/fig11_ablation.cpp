/**
 * @file
 * Reproduces Fig. 11: breakdown/ablation analysis on Palace, Train,
 * Drjohnson.
 *
 * (a) Speedup of GW (Gaussian-wise rendering only) and GW+CC (full
 *     GCC) over the standard-dataflow baseline (GSCore).
 * (b) DRAM accesses normalized to baseline, split into 3D Gaussian
 *     attributes, 2D projected splats, and tile KV mappings: GW
 *     removes the 2D refetches and KV traffic; CC shrinks the 3D
 *     stream.
 * (c) Rendering computations (alpha + blend operations) normalized
 *     to baseline: the alpha-based identifier cuts them in every
 *     scene type.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/accelerator.h"
#include "gscore/gscore_sim.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 11", "ablation: Baseline vs GW vs GW+CC",
                  scale);

    const std::vector<SceneId> scenes = {SceneId::Palace, SceneId::Train,
                                         SceneId::Drjohnson};

    std::printf("%-10s | %8s %8s | %22s | %10s\n", "", "speedup",
                "speedup", "DRAM (3D/2D/KV, norm.)", "render ops");
    std::printf("%-10s | %8s %8s | %22s | %10s\n", "scene", "GW",
                "GW+CC", "base -> GW -> GW+CC", "GCC/base");
    bench::rule();

    for (SceneId id : scenes) {
        SceneSpec spec = scenePreset(id);
        GaussianCloud cloud = generateScene(spec, scale);
        Camera cam = makeCamera(spec);

        GscoreSim gscore;
        GscoreFrameResult base = gscore.renderFrame(cloud, cam);

        GccConfig gw_cfg;
        gw_cfg.mode = GccMode::GaussianWise;
        GccSim gw_sim(gw_cfg);
        GccFrameResult gw = gw_sim.renderFrame(cloud, cam);

        GccAccelerator full;
        GccFrameResult cc = full.render(cloud, cam);

        double base_bytes =
            static_cast<double>(base.dram_bytes_total);
        auto norm = [&](std::uint64_t b) {
            return static_cast<double>(b) / base_bytes;
        };
        // Rendering computation = pixels actually processed by the
        // arrays: GSCore's VRUs rasterize whole 8x8 subtiles in
        // lockstep; GCC's Alpha Unit evaluates only the blocks the
        // runtime identifier dispatches.
        double base_ops =
            static_cast<double>(base.flow.subtile_passes) * 64.0 +
            static_cast<double>(base.flow.blend_ops);
        double cc_ops = static_cast<double>(cc.flow.alpha_evals +
                                            cc.flow.blend_ops);

        std::printf("%-10s | %7.2fx %7.2fx | 1.00 -> %.2f -> %.2f | "
                    "%9.2fx\n",
                    spec.name.c_str(), gw.fps / base.fps,
                    cc.fps / base.fps,
                    norm(gw.dram_bytes_total + gw.dram_bytes_meta * 0),
                    norm(cc.dram_bytes_total), base_ops / cc_ops);

        std::printf("%-10s |   DRAM detail (MB): base 3D=%.1f 2D=%.1f "
                    "KV=%.1f | GW 3D=%.1f | GW+CC 3D=%.1f\n", "",
                    static_cast<double>(base.dram_bytes_3d) / 1e6,
                    static_cast<double>(base.dram_bytes_2d) / 1e6,
                    static_cast<double>(base.dram_bytes_kv) / 1e6,
                    static_cast<double>(gw.dram_bytes_3d) / 1e6,
                    static_cast<double>(cc.dram_bytes_3d) / 1e6);
    }
    std::printf("\npaper: GW ~1.5-2.5x, GW+CC ~3-4x raw speedup; KV and "
                "duplicated 2D traffic vanish under GW; CC cuts the 3D "
                "stream; rendering computations drop ~3-4x.\n");
    return 0;
}
