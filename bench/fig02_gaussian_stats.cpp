/**
 * @file
 * Reproduces Fig. 2 of the paper.
 *
 * (a) The number of Gaussians in different processing phases (total,
 *     in-frustum, rendered) for Train, Truck, Playroom, Drjohnson
 *     under the standard dataflow, with the fraction of preprocessed
 *     Gaussians that go unused (paper: 67.1 / 64.0 / 81.4 / 82.8 %).
 * (b) The average number of per-Gaussian loads during GSCore's
 *     tile-wise rendering (paper: 3.94 / 3.17 / 5.63 / 6.45).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "render/tile_renderer.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 2", "Gaussian population by phase & per-Gaussian"
                  " loading (GSCore dataflow)", scale);

    const std::vector<SceneId> scenes = {SceneId::Train, SceneId::Truck,
                                         SceneId::Playroom,
                                         SceneId::Drjohnson};
    const double paper_unused[] = {67.1, 64.0, 81.4, 82.8};
    const double paper_loads[] = {3.94, 3.17, 5.63, 6.45};

    std::printf("(a) Gaussians per processing phase\n");
    std::printf("%-10s %12s %12s %12s %9s %9s\n", "scene", "total",
                "in-frustum", "rendered", "unused%", "paper%");
    bench::rule();

    std::vector<double> loads;
    int i = 0;
    for (SceneId id : scenes) {
        SceneSpec spec = scenePreset(id);
        GaussianCloud cloud = generateScene(spec, scale);
        Camera cam = makeCamera(spec);

        TileRenderer renderer;  // GSCore settings: 16x16 tiles, OBB
        StandardFlowStats stats;
        Image img = renderer.render(cloud, cam, stats);
        (void)img;

        double unused =
            stats.pre.in_frustum > 0
                ? 100.0 * (1.0 - static_cast<double>(
                                     stats.rendered_gaussians) /
                                     static_cast<double>(
                                         stats.pre.in_frustum))
                : 0.0;
        std::printf("%-10s %12zu %12zu %12lld %8.1f%% %8.1f%%\n",
                    spec.name.c_str(), stats.pre.total,
                    stats.pre.in_frustum,
                    static_cast<long long>(stats.rendered_gaussians),
                    unused, paper_unused[i]);
        loads.push_back(stats.loadsPerRenderedGaussian());
        ++i;
    }

    std::printf("\n(b) Average per-Gaussian loads during rendering\n");
    std::printf("%-10s %12s %12s\n", "scene", "measured", "paper");
    bench::rule();
    i = 0;
    for (SceneId id : scenes) {
        std::printf("%-10s %12.2f %12.2f\n",
                    sceneName(id).c_str(), loads[static_cast<size_t>(i)],
                    paper_loads[i]);
        ++i;
    }
    return 0;
}
