/**
 * @file
 * Reproduces Table 3: comparison of neural rendering accelerators.
 *
 * MetaVRain, Fusion-3D and the two GPUs are published reference
 * points (reprinted verbatim); the GSCore and GCC rows are *measured*
 * by our simulators on the Lego scene, with area from the chip
 * models.  Paper: GSCore 190 FPS / 48.1 FPS/mm^2, GCC 667 FPS /
 * 246 FPS/mm^2 on Lego.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/accelerator.h"
#include "gscore/gscore_sim.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Table 3", "cross-accelerator comparison (Lego)",
                  scale);

    SceneSpec spec = scenePreset(SceneId::Lego);
    GaussianCloud cloud = generateScene(spec, scale);
    Camera cam = makeCamera(spec);

    GscoreSim gscore;
    GscoreFrameResult base = gscore.renderFrame(cloud, cam);
    GccAccelerator gcc;
    GccFrameResult ours = gcc.render(cloud, cam);

    // FPS scales ~inversely with population; report the measured value
    // and the paper-scale equivalent estimate.
    double gsc_fps_paper_scale = base.fps * scale;
    double gcc_fps_paper_scale = ours.fps * scale;

    std::printf("%-22s %-8s %-8s %10s %9s %9s %14s\n", "design", "model",
                "process", "area mm^2", "power W", "FPS",
                "FPS/mm^2");
    bench::rule();
    std::printf("%-22s %-8s %-8s %10.2f %9.2f %9.0f %14.2f  "
                "(published)\n",
                "MetaVRain ISSCC'23", "NeRF", "28nm", 20.25, 0.89, 110.0,
                5.43);
    std::printf("%-22s %-8s %-8s %10.2f %9.2f %9.0f %14.2f  "
                "(published)\n",
                "Fusion-3D MICRO'24", "NeRF", "28nm", 8.7, 6.0, 36.0,
                4.13);
    std::printf("%-22s %-8s %-8s %10.0f %9.0f %9.0f %14.2f  "
                "(published)\n",
                "NVIDIA A6000", "3DGS", "8nm", 628.0, 300.0, 300.0, 0.48);
    std::printf("%-22s %-8s %-8s %10.0f %9.0f %9.0f %14.2f  "
                "(published)\n",
                "Jetson AGX Xavier", "3DGS", "12nm", 350.0, 30.0, 20.0,
                0.05);

    double gsc_area = gscore.chip().totalArea();
    double gcc_area = gcc.areaMm2();
    std::printf("%-22s %-8s %-8s %10.2f %9.2f %9.0f %14.2f  "
                "(measured; paper 190 / 48.10)\n",
                "GSCore ASPLOS'24", "3DGS", "28nm", gsc_area, 0.87,
                gsc_fps_paper_scale, gsc_fps_paper_scale / gsc_area);
    std::printf("%-22s %-8s %-8s %10.2f %9.2f %9.0f %14.2f  "
                "(measured; paper 667 / 246.00)\n",
                "GCC (this work)", "3DGS", "28nm", gcc_area, 0.79,
                gcc_fps_paper_scale, gcc_fps_paper_scale / gcc_area);

    std::printf("\nSRAM: GSCore %.0f KB (paper 272), GCC %.0f KB "
                "(paper 190)\n",
                gscore.chip().bufferCapacityKb(),
                gcc.chip().bufferCapacityKb());
    std::printf("(measured FPS columns are scaled to paper-scale "
                "populations: fps_measured * scale)\n");
    return 0;
}
