/**
 * @file
 * Serving-throughput benchmark: a fleet of concurrent render sessions
 * through the SLO-aware FrameScheduler vs the serial
 * one-session-at-a-time baseline.
 *
 * Builds N sessions (cycling scenes and the tile/gw renderer mix,
 * sharing scene state through the SceneRegistry), renders the whole
 * fleet serially on one thread as the baseline, then serves it
 * through each scheduler policy on a thread pool.  Reports aggregate
 * fleet FPS, the speedup over serial, and fleet latency percentiles —
 * and cross-checks every session's frame-order checksum against the
 * serial baseline, proving scheduling never changes pixels.  Results
 * go to BENCH_serve.json so the serving trajectory is tracked across
 * PRs.
 *
 * Usage:
 *   serve_throughput [--sessions N] [--frames N] [--scenes LIST]
 *                    [--renderers tile,gw] [--policies fifo,rr,edf]
 *                    [--threads N] [--fps-target F] [--scale F]
 *                    [--out FILE]
 *
 * A non-zero --fps-target adds a paced EDF run with deadline-miss
 * accounting on top of the best-effort throughput runs.
 *
 * --temporal K streams tile resident-cloud sessions through the
 * temporal coherence engine (see src/render/temporal_cache.h).  The
 * checksum cross-check still holds — serial baseline and scheduled
 * runs replay identical frame sequences through reset caches — and an
 * extra validation pass renders every temporal scene cold to enforce
 * the fidelity contract: K = 1 must be bit-identical, K > 1 must stay
 * >= 40 dB PSNR on every frame.  Contract violations fail the run.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/trace_export.h"
#include "render/metrics.h"
#include "serve/fleet.h"
#include "serve/frame_scheduler.h"

namespace {

using namespace gcc3d;
using gcc3d::bench::splitList;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --sessions N     concurrent sessions (default: 8)\n"
        "  --frames N       frames per session (default: 6)\n"
        "  --scenes LIST    scene names or 'all', cycled across\n"
        "                   sessions (default: palace,lego,train)\n"
        "  --renderers LIST renderer mix, subset of tile,gw\n"
        "                   (default: tile,gw)\n"
        "  --policies LIST  subset of fifo,rr,edf (default: all)\n"
        "  --threads N      render workers; 0 = all hardware threads\n"
        "                   (default: 0)\n"
        "  --fps-target F   adds a paced EDF run with deadline\n"
        "                   accounting (default: 0 = skip)\n"
        "  --subview N      gw Cmode sub-view side (default: 128)\n"
        "  --temporal K     temporal coherence for tile resident-cloud\n"
        "                   sessions: 0 = off, 1 = exact incremental\n"
        "                   (bit-identical, validated), K > 1 = exact\n"
        "                   every K-th frame + reprojection (>= 40 dB\n"
        "                   contract, validated) (default: 0)\n"
        "  --traj-arc F     fraction of each scene's camera path the\n"
        "                   trajectories cover (default: 1.0)\n"
        "  --scale F        population scale in (0,1] (default:\n"
        "                   GCC3D_SCALE env or 1.0)\n"
        "  --no-overload    skip the open-loop overload sweep\n"
        "                   (goodput-vs-offered-load curve; ladder vs\n"
        "                   drop-only shedding)\n"
        "  --overload-frames N  offered frames per sweep leg\n"
        "                   (default: 120)\n"
        "  --out FILE       JSON output path (default:\n"
        "                   BENCH_serve.json; '-' disables)\n"
        "  --trace FILE     write a Chrome/Perfetto trace-event JSON\n"
        "                   of the whole run (empty with\n"
        "                   GCC3D_OBS=OFF)\n",
        argv0);
}

/** Nearest-neighbor upsample, for scoring a reduced-resolution frame
 *  against its full-resolution reference. */
Image
upsampleNearest(const Image &src, int w, int h)
{
    Image out(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            out.at(x, y) =
                src.at(std::min(src.width() - 1, x * src.width() / w),
                       std::min(src.height() - 1, y * src.height() / h));
    return out;
}

/** Compare a scheduled run's per-session checksums to the baseline. */
bool
checksumsMatch(const ServeReport &report, const SerialBaseline &base)
{
    if (report.sessions.size() != base.checksums.size())
        return false;
    for (std::size_t i = 0; i < report.sessions.size(); ++i) {
        if (report.sessions[i].checksum != base.checksums[i]) {
            std::fprintf(stderr,
                         "ERROR: session %zu checksum %.17g != serial "
                         "%.17g (policy %s)\n",
                         i, report.sessions[i].checksum,
                         base.checksums[i], report.policy.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenes_arg = "palace,lego,train";
    std::string renderers_arg = "tile,gw";
    std::string policies_arg = "fifo,rr,edf";
    std::string out_path = "BENCH_serve.json";
    std::string trace_path;
    int sessions = 8;
    int frames = 6;
    int threads = 0;
    int subview = 128;
    int temporal = 0;
    double traj_arc = 1.0;
    double fps_target = 0.0;
    bool overload = true;
    int overload_frames = 120;
    float scale = benchScale();

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--sessions") {
            sessions = std::atoi(value().c_str());
        } else if (flag == "--frames") {
            frames = std::atoi(value().c_str());
        } else if (flag == "--scenes") {
            scenes_arg = value();
        } else if (flag == "--renderers") {
            renderers_arg = value();
        } else if (flag == "--policies") {
            policies_arg = value();
        } else if (flag == "--threads") {
            threads = std::atoi(value().c_str());
        } else if (flag == "--fps-target") {
            fps_target = std::atof(value().c_str());
        } else if (flag == "--subview") {
            subview = std::atoi(value().c_str());
        } else if (flag == "--temporal") {
            temporal = std::atoi(value().c_str());
        } else if (flag == "--traj-arc") {
            traj_arc = std::atof(value().c_str());
        } else if (flag == "--scale") {
            scale = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--no-overload") {
            overload = false;
        } else if (flag == "--overload-frames") {
            overload_frames = std::atoi(value().c_str());
        } else if (flag == "--out") {
            out_path = value();
        } else if (flag == "--trace") {
            trace_path = value();
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (sessions < 1 || frames < 1 || fps_target < 0.0 ||
        scale <= 0.0f || scale > 1.0f) {
        std::fprintf(stderr,
                     "--sessions/--frames must be >= 1, --fps-target "
                     ">= 0 and --scale in (0, 1]\n");
        return 2;
    }
    if (temporal < 0 || traj_arc <= 0.0 || traj_arc > 1.0) {
        std::fprintf(stderr, "--temporal must be >= 0 and --traj-arc "
                             "in (0, 1]\n");
        return 2;
    }

    FleetSpec fleet_spec;
    fleet_spec.sessions = sessions;
    fleet_spec.frames = frames;
    fleet_spec.scale = scale;
    fleet_spec.gw.subview_size = subview < 0 ? 0 : subview;
    fleet_spec.temporal = temporal;
    fleet_spec.traj_arc = static_cast<float>(traj_arc);

    std::vector<SchedulerPolicy> policies;
    try {
        for (SceneId id : bench::parseSceneList(scenes_arg))
            fleet_spec.scenes.push_back(scenePreset(id));
        fleet_spec.renderers.clear();
        for (const std::string &name : splitList(renderers_arg))
            fleet_spec.renderers.push_back(sessionRendererFromName(name));
        for (const std::string &name : splitList(policies_arg))
            policies.push_back(schedulerPolicyFromName(name));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (fleet_spec.scenes.empty() || fleet_spec.renderers.empty() ||
        policies.empty()) {
        std::fprintf(stderr, "empty scene, renderer or policy list\n");
        return 2;
    }

    int workers = threads > 0 ? threads : ThreadPool::hardwareWorkers();

    bench::banner("serve_throughput",
                  "multi-session serving vs the serial baseline", scale);
    std::printf("%d sessions x %d frames, %d workers (host has %d "
                "hardware threads)\n",
                sessions, frames, workers, ThreadPool::hardwareWorkers());

    SceneRegistry registry;
    std::vector<Session> fleet = buildFleet(fleet_spec, registry);
    std::printf("fleet shares %zu distinct scene clouds\n",
                registry.cloudCount());

    // Warm-up so the serial baseline is not penalized with first-touch
    // costs the scheduled runs then get for free.
    for (const Session &s : fleet)
        s.renderFrame(0);

    SerialBaseline base = renderSerial(fleet);
    std::printf("\nserial baseline: %.1f ms, fleet FPS %.2f\n",
                base.wall_ms, base.fleet_fps);

    struct PolicyRow
    {
        std::string policy;
        double wall_ms;
        double fleet_fps;
        double speedup;
        bool checksums_match;
        Aggregate latency;
        Aggregate queue_wait;
        Aggregate queue_depth;
        std::int64_t sheds = 0;
        std::string miss_attribution;
    };
    std::vector<PolicyRow> policy_rows;
    bool all_ok = true;

    ThreadPool pool(workers);
    bench::rule();
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "policy", "wall_ms",
                "fleet_fps", "speedup", "lat_p50", "lat_p99");
    bench::rule();
    for (SchedulerPolicy policy : policies) {
        SchedulerOptions options;
        options.policy = policy;
        FrameScheduler scheduler(options);
        ServeReport report = scheduler.run(fleet, pool);

        PolicyRow row;
        row.policy = report.policy;
        row.wall_ms = report.wall_ms;
        row.fleet_fps = report.fleetFps();
        row.speedup =
            report.wall_ms > 0.0 ? base.wall_ms / report.wall_ms : 0.0;
        row.checksums_match = checksumsMatch(report, base);
        row.latency = report.fleetLatencyMs();
        row.queue_wait = report.fleetQueueWaitMs();
        row.queue_depth = report.queue_depth;
        row.sheds = report.sheds;
        row.miss_attribution = report.missAttribution().toJson();
        all_ok = all_ok && row.checksums_match;
        policy_rows.push_back(row);

        std::printf("%-8s %10.1f %10.2f %9.2fx %10.2f %10.2f%s\n",
                    row.policy.c_str(), row.wall_ms, row.fleet_fps,
                    row.speedup, row.latency.p50, row.latency.p99,
                    row.checksums_match ? "" : "  CHECKSUM MISMATCH");
    }

    // Fidelity-contract validation for temporal mode: replay one
    // representative session per distinct scene, comparing every
    // temporal frame against a cold stateless render of the same
    // camera.  --temporal 1 must be bit-identical; --temporal K>1 must
    // hold >= 40 dB PSNR on every frame.
    struct TemporalCheck
    {
        std::string scene;
        double min_psnr_db = std::numeric_limits<double>::infinity();
        bool bit_identical = true;
        bool ok = true;
    };
    std::vector<TemporalCheck> temporal_checks;
    bool temporal_ok = true;
    if (temporal >= 1) {
        std::set<std::string> seen;
        std::printf("\ntemporal fidelity (every=%d, arc %.3f):\n",
                    temporal, traj_arc);
        for (const Session &s : fleet) {
            if (s.temporalCache() == nullptr ||
                !seen.insert(s.config().spec.name).second)
                continue;
            TileRenderer renderer(s.config().tile);
            TemporalCache cache;
            cache.options.every = temporal;
            TemporalCheck chk;
            chk.scene = s.config().spec.name;
            for (int f = 0; f < s.frameCount(); ++f) {
                const Camera &cam = s.scene().trajectory->frame(
                    static_cast<std::size_t>(f));
                StandardFlowStats cold_stats, warm_stats;
                Image cold =
                    renderer.render(*s.scene().cloud, cam, cold_stats);
                Image warm = renderer.renderTemporal(
                    *s.scene().cloud, cam, warm_stats, cache);
                chk.min_psnr_db =
                    std::min(chk.min_psnr_db, psnrDb(cold, warm));
                chk.bit_identical =
                    chk.bit_identical &&
                    std::memcmp(cold.pixels().data(),
                                warm.pixels().data(),
                                cold.pixelCount() * sizeof(Vec3)) == 0;
            }
            chk.ok = temporal == 1 ? chk.bit_identical
                                   : chk.min_psnr_db >= 40.0;
            temporal_ok = temporal_ok && chk.ok;
            std::printf("  %-10s min PSNR %8.2f dB, bit-identical %s "
                        "-> %s\n",
                        chk.scene.c_str(),
                        std::isinf(chk.min_psnr_db) ? 999.0
                                                    : chk.min_psnr_db,
                        chk.bit_identical ? "yes" : "no",
                        chk.ok ? "ok" : "CONTRACT VIOLATED");
            temporal_checks.push_back(std::move(chk));
        }
        all_ok = all_ok && temporal_ok;
    }

    // Optional paced run: every session carries an FPS target and EDF
    // schedules by deadline, reporting the achieved SLO.
    std::string paced_json;
    if (fps_target > 0.0) {
        FleetSpec paced_spec = fleet_spec;
        paced_spec.fps_target = fps_target;
        std::vector<Session> paced_fleet =
            buildFleet(paced_spec, registry);
        SchedulerOptions options;
        options.policy = SchedulerPolicy::Edf;
        FrameScheduler scheduler(options);
        ServeReport report = scheduler.run(paced_fleet, pool);
        bool ok = checksumsMatch(report, base);
        all_ok = all_ok && ok;
        Aggregate lat = report.fleetLatencyMs();
        std::printf("\npaced edf @ %.1f FPS/session: fleet FPS %.2f, "
                    "miss rate %.1f%%, lat p99 %.2f ms%s\n",
                    fps_target, report.fleetFps(),
                    100.0 * report.missRate(), lat.p99,
                    ok ? "" : "  CHECKSUM MISMATCH");
        std::ostringstream os;
        os.precision(10);
        os << ",\n  \"paced_edf\": {\"fps_target\": " << fps_target
           << ", \"fleet_fps\": " << report.fleetFps()
           << ", \"miss_rate\": " << report.missRate()
           << ", \"frames_dropped\": " << report.framesDropped()
           << ", \"latency_ms\": " << aggregateJson(lat)
           << ", \"sheds\": " << report.sheds
           << ",\n     \"miss_attribution\": "
           << report.missAttribution().toJson()
           << ",\n     \"checksums_match\": " << (ok ? "true" : "false")
           << "}";
        paced_json = os.str();
    }

    // ---- Overload sweep: open-loop arrivals at multiples of the
    // measured Full-render capacity, served twice per leg — drop-only
    // shedding vs the graceful-degradation ladder.  Goodput (on-time
    // frames per second) is the overload metric; at >= 2x offered
    // load the ladder must strictly beat drop-only or the bench exits
    // non-zero. ----
    struct OverloadRow
    {
        double multiplier = 0.0;
        double offered_fps = 0.0;
        std::uint64_t offered_frames = 0;
        int drop_on_time = 0;
        int ladder_on_time = 0;
        double drop_goodput = 0.0;
        double ladder_goodput = 0.0;
        double drop_miss = 0.0;
        double ladder_miss = 0.0;
        bool ladder_beats_drop = true;  ///< enforced at >= 2x only
    };
    std::vector<OverloadRow> overload_rows;
    std::string degradation_json;
    double warp_floor_db = std::numeric_limits<double>::infinity();
    double half_res_db = std::numeric_limits<double>::infinity();
    bool warp_ok = true;
    bool overload_ok = true;
    if (overload && overload_frames > 0) {
        // Measured Full-tier cost calibrates the offered load, so the
        // sweep stresses the scheduler identically at any --scale.
        // Capacity counts real parallelism: --threads beyond the
        // hardware thread count adds contention, not throughput, and
        // the sweep legs pin their worker count to match.
        const int sweep_workers =
            std::max(1, std::min(workers, ThreadPool::hardwareWorkers()));
        const double mean_full_ms =
            base.wall_ms / std::max(1, sessions * frames);
        const double capacity_fps =
            sweep_workers * 1000.0 / std::max(1e-6, mean_full_ms);
        // Deadline = 4 Full renders of slack: tight enough that
        // overload queueing starves Full, loose enough that the warp
        // and half-res tiers still fit.
        const double session_fps = 1000.0 / (4.0 * mean_full_ms);
        const double multipliers[] = {0.5, 1.0, 2.0, 4.0};

        std::printf("\noverload sweep (capacity %.1f fps, session "
                    "target %.1f fps, %d offered frames/leg):\n",
                    capacity_fps, session_fps, overload_frames);
        std::printf("%-6s %12s %12s %12s %10s %10s\n", "mult",
                    "offered_fps", "drop_good", "ladder_good",
                    "drop_miss", "ladd_miss");
        for (std::size_t leg = 0; leg < 4; ++leg) {
            const double m = multipliers[leg];
            OverloadRow row;
            row.multiplier = m;
            row.offered_fps = m * capacity_fps;

            serve::LoadGenConfig load;
            load.seed = 7 + leg;
            load.base_rate_hz = row.offered_fps / frames;
            load.duration_ms =
                1000.0 * overload_frames / row.offered_fps;
            load.frames_min = frames;
            load.frames_max = frames;
            load.fps_target = static_cast<float>(session_fps);
            const std::vector<serve::SessionArrival> arrivals =
                serve::generateArrivals(load);
            if (arrivals.empty())
                continue;
            row.offered_frames = serve::totalOfferedFrames(arrivals);

            // Same arrival table through both shedding strategies:
            // identical offered workload, different survival.
            auto run_leg = [&](bool ladder) -> ServeReport {
                FleetSpec spec = fleet_spec;
                spec.degrade = ladder;
                std::vector<Session> leg_fleet =
                    buildOpenLoopFleet(spec, arrivals, registry);
                SchedulerOptions opt;
                opt.policy = SchedulerPolicy::Edf;
                opt.workers = sweep_workers;
                opt.drop_late = true;
                opt.degrade.enabled = ladder;
                FrameScheduler sched(opt);
                return sched.run(leg_fleet, pool);
            };
            const ServeReport drop_report = run_leg(false);
            const ServeReport ladder_report = run_leg(true);

            row.drop_on_time = drop_report.framesOnTime();
            row.ladder_on_time = ladder_report.framesOnTime();
            row.drop_goodput = drop_report.goodputFps();
            row.ladder_goodput = ladder_report.goodputFps();
            row.drop_miss = drop_report.missRate();
            row.ladder_miss = ladder_report.missRate();
            if (m >= 2.0) {
                row.ladder_beats_drop =
                    row.ladder_on_time > row.drop_on_time;
                overload_ok = overload_ok && row.ladder_beats_drop;
            }
            if (m >= 2.0 && degradation_json.empty()) {
                int tiers[kDegradeTierCount];
                ladder_report.tierTotals(tiers);
                std::ostringstream os;
                os.precision(10);
                os << "{";
                for (int t = 0; t < kDegradeTierCount; ++t)
                    os << "\""
                       << degradeTierName(static_cast<DegradeTier>(t))
                       << "\": " << tiers[t] << ", ";
                os << "\"transitions\": "
                   << ladder_report.degradeTransitions()
                   << ", \"sheds\": " << ladder_report.sheds
                   << ", \"goodput_fps\": " << row.ladder_goodput << "}";
                degradation_json = os.str();
            }
            std::printf(
                "%5.1fx %12.1f %12.1f %12.1f %9.1f%% %9.1f%%%s\n", m,
                row.offered_fps, row.drop_goodput, row.ladder_goodput,
                100.0 * row.drop_miss, 100.0 * row.ladder_miss,
                row.ladder_beats_drop ? "" : "  LADDER NOT BETTER");
            overload_rows.push_back(row);
        }

        // Fidelity floors of the degraded tiers, measured on a
        // headset-like arc (full-arc presets jump too far per frame
        // for reprojection to be meaningful): forced warp must hold
        // the >= 40 dB contract; the reduced-resolution tier's PSNR
        // is recorded alongside it.
        {
            FleetSpec probe = fleet_spec;
            probe.sessions = 1;
            probe.frames = 2;
            probe.renderers = {SessionRenderer::Tile};
            probe.degrade = true;
            // Per-step camera delta is arc/frames; 0.0003 over two
            // frames matches the step size of the CI temporal leg
            // (arc 0.001 over eight frames) that holds the same
            // contract.
            probe.traj_arc = std::min(probe.traj_arc, 0.0003f);
            std::vector<Session> probe_fleet =
                buildFleet(probe, registry);
            const Session &s = probe_fleet.front();
            TileRenderer renderer(s.config().tile);
            TemporalCache cache;
            cache.options.every = 1;
            cache.options.keep_exact = true;
            StandardFlowStats st;
            const Camera &cam0 = s.scene().trajectory->frame(0);
            const Camera &cam1 = s.scene().trajectory->frame(1);
            (void)renderer.renderTemporal(*s.scene().cloud, cam0, st,
                                          cache);
            const Image cold = renderer.render(*s.scene().cloud, cam1, st);
            const Image warp = renderer.renderTemporal(
                *s.scene().cloud, cam1, st, cache, nullptr,
                /*force_warp=*/true);
            warp_floor_db = psnrDb(cold, warp);
            warp_ok = warp_floor_db >= 40.0;
            const Image half = renderer.render(
                *s.scene().cloud,
                cam1.scaledResolution(probe.degrade_render_scale), st);
            half_res_db = psnrDb(
                cold, upsampleNearest(half, cold.width(), cold.height()));
            std::printf("degrade fidelity (%s): warp %.2f dB (floor "
                        "40) %s, half-res %.2f dB recorded\n",
                        s.config().spec.name.c_str(),
                        std::isinf(warp_floor_db) ? 999.0 : warp_floor_db,
                        warp_ok ? "ok" : "CONTRACT VIOLATED",
                        std::isinf(half_res_db) ? 999.0 : half_res_db);
        }
        all_ok = all_ok && overload_ok && warp_ok;
    }

    // ---- JSON snapshot. ----
    std::ostringstream json;
    json.precision(10);
    json << "{\n  \"bench\": \"serve_throughput\",\n"
         << "  \"host\": " << bench::hostJson() << ",\n"
         << "  \"scale\": " << static_cast<double>(scale) << ",\n"
         << "  \"sessions\": " << sessions << ",\n"
         << "  \"frames\": " << frames << ",\n"
         << "  \"workers\": " << workers << ",\n"
         << "  \"hardware_workers\": " << ThreadPool::hardwareWorkers()
         << ",\n  \"renderer_mix\": \"" << renderers_arg << "\",\n"
         << "  \"scenes\": \"" << scenes_arg << "\",\n"
         << "  \"temporal\": " << temporal << ",\n"
         << "  \"traj_arc\": " << traj_arc << ",\n"
         << "  \"shared_clouds\": " << registry.cloudCount() << ",\n"
         << "  \"serial\": {\"wall_ms\": " << base.wall_ms
         << ", \"fleet_fps\": " << base.fleet_fps << "},\n"
         << "  \"policies\": [\n";
    for (std::size_t i = 0; i < policy_rows.size(); ++i) {
        const PolicyRow &r = policy_rows[i];
        json << "    {\"policy\": \"" << r.policy
             << "\", \"wall_ms\": " << r.wall_ms
             << ", \"fleet_fps\": " << r.fleet_fps
             << ", \"speedup_vs_serial\": " << r.speedup
             << ", \"checksums_match\": "
             << (r.checksums_match ? "true" : "false")
             << ",\n     \"latency_ms\": " << aggregateJson(r.latency)
             << ",\n     \"queue_wait_ms\": " << aggregateJson(r.queue_wait)
             << ",\n     \"queue_depth\": " << aggregateJson(r.queue_depth)
             << ", \"sheds\": " << r.sheds
             << ",\n     \"miss_attribution\": " << r.miss_attribution
             << "}" << (i + 1 < policy_rows.size() ? "," : "") << "\n";
    }
    json << "  ]";
    if (temporal >= 1) {
        json << ",\n  \"temporal_fidelity\": [\n";
        for (std::size_t i = 0; i < temporal_checks.size(); ++i) {
            const TemporalCheck &c = temporal_checks[i];
            json << "    {\"scene\": \"" << c.scene
                 << "\", \"min_psnr_db\": "
                 << (std::isinf(c.min_psnr_db) ? 999.0 : c.min_psnr_db)
                 << ", \"bit_identical\": "
                 << (c.bit_identical ? "true" : "false")
                 << ", \"contract_ok\": " << (c.ok ? "true" : "false")
                 << "}" << (i + 1 < temporal_checks.size() ? "," : "")
                 << "\n";
        }
        json << "  ]";
    }
    json << paced_json;
    if (!overload_rows.empty()) {
        json << ",\n  \"goodput_curve\": [\n";
        for (std::size_t i = 0; i < overload_rows.size(); ++i) {
            const OverloadRow &r = overload_rows[i];
            json << "    {\"offered_multiplier\": " << r.multiplier
                 << ", \"offered_fps\": " << r.offered_fps
                 << ", \"offered_frames\": " << r.offered_frames
                 << ", \"drop_only_goodput_fps\": " << r.drop_goodput
                 << ", \"ladder_goodput_fps\": " << r.ladder_goodput
                 << ", \"drop_only_on_time\": " << r.drop_on_time
                 << ", \"ladder_on_time\": " << r.ladder_on_time
                 << ", \"drop_only_miss_rate\": " << r.drop_miss
                 << ", \"ladder_miss_rate\": " << r.ladder_miss
                 << ", \"ladder_beats_drop\": "
                 << (r.ladder_beats_drop ? "true" : "false") << "}"
                 << (i + 1 < overload_rows.size() ? "," : "") << "\n";
        }
        json << "  ]";
        json << ",\n  \"degradation\": "
             << (degradation_json.empty() ? "{}" : degradation_json);
        json << ",\n  \"degrade_fidelity\": {\"warp_min_psnr_db\": "
             << (std::isinf(warp_floor_db) ? 999.0 : warp_floor_db)
             << ", \"warp_ok\": " << (warp_ok ? "true" : "false")
             << ", \"half_res_psnr_db\": "
             << (std::isinf(half_res_db) ? 999.0 : half_res_db)
             << ", \"overload_ok\": "
             << (overload_ok ? "true" : "false") << "}";
    }
    // Per-stage summaries + metrics registry for the whole run (all
    // policies combined).  Empty objects when GCC3D_OBS=OFF.
    json << ",\n  \"observability\": " << obs::observabilityJson();
    json << ",\n  \"checksums_ok\": " << (all_ok ? "true" : "false")
         << "\n}\n";

    if (out_path != "-") {
        if (!ResultTable::writeFile(out_path, json.str())) {
            std::fprintf(stderr, "failed to write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    if (!trace_path.empty()) {
        // Workers are quiescent (scheduler runs have returned), so the
        // recorder's rings are safe to read.
        if (!ResultTable::writeFile(trace_path, obs::traceJson())) {
            std::fprintf(stderr, "failed to write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", trace_path.c_str());
    }
    if (!temporal_ok)
        std::fprintf(stderr, "ERROR: temporal mode violated its "
                             "fidelity contract\n");
    else if (!overload_ok)
        std::fprintf(stderr,
                     "ERROR: degradation ladder goodput did not beat "
                     "drop-only shedding at >= 2x overload\n");
    else if (!warp_ok)
        std::fprintf(stderr, "ERROR: forced-warp tier under the 40 dB "
                             "PSNR floor\n");
    else if (!all_ok)
        std::fprintf(stderr, "ERROR: scheduled checksums diverged from "
                             "the serial baseline\n");
    return all_ok ? 0 : 1;
}
