/**
 * @file
 * Serving-throughput benchmark: a fleet of concurrent render sessions
 * through the SLO-aware FrameScheduler vs the serial
 * one-session-at-a-time baseline.
 *
 * Builds N sessions (cycling scenes and the tile/gw renderer mix,
 * sharing scene state through the SceneRegistry), renders the whole
 * fleet serially on one thread as the baseline, then serves it
 * through each scheduler policy on a thread pool.  Reports aggregate
 * fleet FPS, the speedup over serial, and fleet latency percentiles —
 * and cross-checks every session's frame-order checksum against the
 * serial baseline, proving scheduling never changes pixels.  Results
 * go to BENCH_serve.json so the serving trajectory is tracked across
 * PRs.
 *
 * Usage:
 *   serve_throughput [--sessions N] [--frames N] [--scenes LIST]
 *                    [--renderers tile,gw] [--policies fifo,rr,edf]
 *                    [--threads N] [--fps-target F] [--scale F]
 *                    [--out FILE]
 *
 * A non-zero --fps-target adds a paced EDF run with deadline-miss
 * accounting on top of the best-effort throughput runs.
 *
 * --temporal K streams tile resident-cloud sessions through the
 * temporal coherence engine (see src/render/temporal_cache.h).  The
 * checksum cross-check still holds — serial baseline and scheduled
 * runs replay identical frame sequences through reset caches — and an
 * extra validation pass renders every temporal scene cold to enforce
 * the fidelity contract: K = 1 must be bit-identical, K > 1 must stay
 * >= 40 dB PSNR on every frame.  Contract violations fail the run.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/trace_export.h"
#include "render/metrics.h"
#include "serve/fleet.h"
#include "serve/frame_scheduler.h"

namespace {

using namespace gcc3d;
using gcc3d::bench::splitList;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --sessions N     concurrent sessions (default: 8)\n"
        "  --frames N       frames per session (default: 6)\n"
        "  --scenes LIST    scene names or 'all', cycled across\n"
        "                   sessions (default: palace,lego,train)\n"
        "  --renderers LIST renderer mix, subset of tile,gw\n"
        "                   (default: tile,gw)\n"
        "  --policies LIST  subset of fifo,rr,edf (default: all)\n"
        "  --threads N      render workers; 0 = all hardware threads\n"
        "                   (default: 0)\n"
        "  --fps-target F   adds a paced EDF run with deadline\n"
        "                   accounting (default: 0 = skip)\n"
        "  --subview N      gw Cmode sub-view side (default: 128)\n"
        "  --temporal K     temporal coherence for tile resident-cloud\n"
        "                   sessions: 0 = off, 1 = exact incremental\n"
        "                   (bit-identical, validated), K > 1 = exact\n"
        "                   every K-th frame + reprojection (>= 40 dB\n"
        "                   contract, validated) (default: 0)\n"
        "  --traj-arc F     fraction of each scene's camera path the\n"
        "                   trajectories cover (default: 1.0)\n"
        "  --scale F        population scale in (0,1] (default:\n"
        "                   GCC3D_SCALE env or 1.0)\n"
        "  --out FILE       JSON output path (default:\n"
        "                   BENCH_serve.json; '-' disables)\n"
        "  --trace FILE     write a Chrome/Perfetto trace-event JSON\n"
        "                   of the whole run (empty with\n"
        "                   GCC3D_OBS=OFF)\n",
        argv0);
}

/** Compare a scheduled run's per-session checksums to the baseline. */
bool
checksumsMatch(const ServeReport &report, const SerialBaseline &base)
{
    if (report.sessions.size() != base.checksums.size())
        return false;
    for (std::size_t i = 0; i < report.sessions.size(); ++i) {
        if (report.sessions[i].checksum != base.checksums[i]) {
            std::fprintf(stderr,
                         "ERROR: session %zu checksum %.17g != serial "
                         "%.17g (policy %s)\n",
                         i, report.sessions[i].checksum,
                         base.checksums[i], report.policy.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenes_arg = "palace,lego,train";
    std::string renderers_arg = "tile,gw";
    std::string policies_arg = "fifo,rr,edf";
    std::string out_path = "BENCH_serve.json";
    std::string trace_path;
    int sessions = 8;
    int frames = 6;
    int threads = 0;
    int subview = 128;
    int temporal = 0;
    double traj_arc = 1.0;
    double fps_target = 0.0;
    float scale = benchScale();

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage(argv[0]);
            return 0;
        } else if (flag == "--sessions") {
            sessions = std::atoi(value().c_str());
        } else if (flag == "--frames") {
            frames = std::atoi(value().c_str());
        } else if (flag == "--scenes") {
            scenes_arg = value();
        } else if (flag == "--renderers") {
            renderers_arg = value();
        } else if (flag == "--policies") {
            policies_arg = value();
        } else if (flag == "--threads") {
            threads = std::atoi(value().c_str());
        } else if (flag == "--fps-target") {
            fps_target = std::atof(value().c_str());
        } else if (flag == "--subview") {
            subview = std::atoi(value().c_str());
        } else if (flag == "--temporal") {
            temporal = std::atoi(value().c_str());
        } else if (flag == "--traj-arc") {
            traj_arc = std::atof(value().c_str());
        } else if (flag == "--scale") {
            scale = static_cast<float>(std::atof(value().c_str()));
        } else if (flag == "--out") {
            out_path = value();
        } else if (flag == "--trace") {
            trace_path = value();
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (sessions < 1 || frames < 1 || fps_target < 0.0 ||
        scale <= 0.0f || scale > 1.0f) {
        std::fprintf(stderr,
                     "--sessions/--frames must be >= 1, --fps-target "
                     ">= 0 and --scale in (0, 1]\n");
        return 2;
    }
    if (temporal < 0 || traj_arc <= 0.0 || traj_arc > 1.0) {
        std::fprintf(stderr, "--temporal must be >= 0 and --traj-arc "
                             "in (0, 1]\n");
        return 2;
    }

    FleetSpec fleet_spec;
    fleet_spec.sessions = sessions;
    fleet_spec.frames = frames;
    fleet_spec.scale = scale;
    fleet_spec.gw.subview_size = subview < 0 ? 0 : subview;
    fleet_spec.temporal = temporal;
    fleet_spec.traj_arc = static_cast<float>(traj_arc);

    std::vector<SchedulerPolicy> policies;
    try {
        for (SceneId id : bench::parseSceneList(scenes_arg))
            fleet_spec.scenes.push_back(scenePreset(id));
        fleet_spec.renderers.clear();
        for (const std::string &name : splitList(renderers_arg))
            fleet_spec.renderers.push_back(sessionRendererFromName(name));
        for (const std::string &name : splitList(policies_arg))
            policies.push_back(schedulerPolicyFromName(name));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
    if (fleet_spec.scenes.empty() || fleet_spec.renderers.empty() ||
        policies.empty()) {
        std::fprintf(stderr, "empty scene, renderer or policy list\n");
        return 2;
    }

    int workers = threads > 0 ? threads : ThreadPool::hardwareWorkers();

    bench::banner("serve_throughput",
                  "multi-session serving vs the serial baseline", scale);
    std::printf("%d sessions x %d frames, %d workers (host has %d "
                "hardware threads)\n",
                sessions, frames, workers, ThreadPool::hardwareWorkers());

    SceneRegistry registry;
    std::vector<Session> fleet = buildFleet(fleet_spec, registry);
    std::printf("fleet shares %zu distinct scene clouds\n",
                registry.cloudCount());

    // Warm-up so the serial baseline is not penalized with first-touch
    // costs the scheduled runs then get for free.
    for (const Session &s : fleet)
        s.renderFrame(0);

    SerialBaseline base = renderSerial(fleet);
    std::printf("\nserial baseline: %.1f ms, fleet FPS %.2f\n",
                base.wall_ms, base.fleet_fps);

    struct PolicyRow
    {
        std::string policy;
        double wall_ms;
        double fleet_fps;
        double speedup;
        bool checksums_match;
        Aggregate latency;
        Aggregate queue_wait;
        Aggregate queue_depth;
        std::int64_t sheds = 0;
        std::string miss_attribution;
    };
    std::vector<PolicyRow> policy_rows;
    bool all_ok = true;

    ThreadPool pool(workers);
    bench::rule();
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "policy", "wall_ms",
                "fleet_fps", "speedup", "lat_p50", "lat_p99");
    bench::rule();
    for (SchedulerPolicy policy : policies) {
        SchedulerOptions options;
        options.policy = policy;
        FrameScheduler scheduler(options);
        ServeReport report = scheduler.run(fleet, pool);

        PolicyRow row;
        row.policy = report.policy;
        row.wall_ms = report.wall_ms;
        row.fleet_fps = report.fleetFps();
        row.speedup =
            report.wall_ms > 0.0 ? base.wall_ms / report.wall_ms : 0.0;
        row.checksums_match = checksumsMatch(report, base);
        row.latency = report.fleetLatencyMs();
        row.queue_wait = report.fleetQueueWaitMs();
        row.queue_depth = report.queue_depth;
        row.sheds = report.sheds;
        row.miss_attribution = report.missAttribution().toJson();
        all_ok = all_ok && row.checksums_match;
        policy_rows.push_back(row);

        std::printf("%-8s %10.1f %10.2f %9.2fx %10.2f %10.2f%s\n",
                    row.policy.c_str(), row.wall_ms, row.fleet_fps,
                    row.speedup, row.latency.p50, row.latency.p99,
                    row.checksums_match ? "" : "  CHECKSUM MISMATCH");
    }

    // Fidelity-contract validation for temporal mode: replay one
    // representative session per distinct scene, comparing every
    // temporal frame against a cold stateless render of the same
    // camera.  --temporal 1 must be bit-identical; --temporal K>1 must
    // hold >= 40 dB PSNR on every frame.
    struct TemporalCheck
    {
        std::string scene;
        double min_psnr_db = std::numeric_limits<double>::infinity();
        bool bit_identical = true;
        bool ok = true;
    };
    std::vector<TemporalCheck> temporal_checks;
    bool temporal_ok = true;
    if (temporal >= 1) {
        std::set<std::string> seen;
        std::printf("\ntemporal fidelity (every=%d, arc %.3f):\n",
                    temporal, traj_arc);
        for (const Session &s : fleet) {
            if (s.temporalCache() == nullptr ||
                !seen.insert(s.config().spec.name).second)
                continue;
            TileRenderer renderer(s.config().tile);
            TemporalCache cache;
            cache.options.every = temporal;
            TemporalCheck chk;
            chk.scene = s.config().spec.name;
            for (int f = 0; f < s.frameCount(); ++f) {
                const Camera &cam = s.scene().trajectory->frame(
                    static_cast<std::size_t>(f));
                StandardFlowStats cold_stats, warm_stats;
                Image cold =
                    renderer.render(*s.scene().cloud, cam, cold_stats);
                Image warm = renderer.renderTemporal(
                    *s.scene().cloud, cam, warm_stats, cache);
                chk.min_psnr_db =
                    std::min(chk.min_psnr_db, psnrDb(cold, warm));
                chk.bit_identical =
                    chk.bit_identical &&
                    std::memcmp(cold.pixels().data(),
                                warm.pixels().data(),
                                cold.pixelCount() * sizeof(Vec3)) == 0;
            }
            chk.ok = temporal == 1 ? chk.bit_identical
                                   : chk.min_psnr_db >= 40.0;
            temporal_ok = temporal_ok && chk.ok;
            std::printf("  %-10s min PSNR %8.2f dB, bit-identical %s "
                        "-> %s\n",
                        chk.scene.c_str(),
                        std::isinf(chk.min_psnr_db) ? 999.0
                                                    : chk.min_psnr_db,
                        chk.bit_identical ? "yes" : "no",
                        chk.ok ? "ok" : "CONTRACT VIOLATED");
            temporal_checks.push_back(std::move(chk));
        }
        all_ok = all_ok && temporal_ok;
    }

    // Optional paced run: every session carries an FPS target and EDF
    // schedules by deadline, reporting the achieved SLO.
    std::string paced_json;
    if (fps_target > 0.0) {
        FleetSpec paced_spec = fleet_spec;
        paced_spec.fps_target = fps_target;
        std::vector<Session> paced_fleet =
            buildFleet(paced_spec, registry);
        SchedulerOptions options;
        options.policy = SchedulerPolicy::Edf;
        FrameScheduler scheduler(options);
        ServeReport report = scheduler.run(paced_fleet, pool);
        bool ok = checksumsMatch(report, base);
        all_ok = all_ok && ok;
        Aggregate lat = report.fleetLatencyMs();
        std::printf("\npaced edf @ %.1f FPS/session: fleet FPS %.2f, "
                    "miss rate %.1f%%, lat p99 %.2f ms%s\n",
                    fps_target, report.fleetFps(),
                    100.0 * report.missRate(), lat.p99,
                    ok ? "" : "  CHECKSUM MISMATCH");
        std::ostringstream os;
        os.precision(10);
        os << ",\n  \"paced_edf\": {\"fps_target\": " << fps_target
           << ", \"fleet_fps\": " << report.fleetFps()
           << ", \"miss_rate\": " << report.missRate()
           << ", \"frames_dropped\": " << report.framesDropped()
           << ", \"latency_ms\": " << aggregateJson(lat)
           << ", \"sheds\": " << report.sheds
           << ",\n     \"miss_attribution\": "
           << report.missAttribution().toJson()
           << ",\n     \"checksums_match\": " << (ok ? "true" : "false")
           << "}";
        paced_json = os.str();
    }

    // ---- JSON snapshot. ----
    std::ostringstream json;
    json.precision(10);
    json << "{\n  \"bench\": \"serve_throughput\",\n"
         << "  \"host\": " << bench::hostJson() << ",\n"
         << "  \"scale\": " << static_cast<double>(scale) << ",\n"
         << "  \"sessions\": " << sessions << ",\n"
         << "  \"frames\": " << frames << ",\n"
         << "  \"workers\": " << workers << ",\n"
         << "  \"hardware_workers\": " << ThreadPool::hardwareWorkers()
         << ",\n  \"renderer_mix\": \"" << renderers_arg << "\",\n"
         << "  \"scenes\": \"" << scenes_arg << "\",\n"
         << "  \"temporal\": " << temporal << ",\n"
         << "  \"traj_arc\": " << traj_arc << ",\n"
         << "  \"shared_clouds\": " << registry.cloudCount() << ",\n"
         << "  \"serial\": {\"wall_ms\": " << base.wall_ms
         << ", \"fleet_fps\": " << base.fleet_fps << "},\n"
         << "  \"policies\": [\n";
    for (std::size_t i = 0; i < policy_rows.size(); ++i) {
        const PolicyRow &r = policy_rows[i];
        json << "    {\"policy\": \"" << r.policy
             << "\", \"wall_ms\": " << r.wall_ms
             << ", \"fleet_fps\": " << r.fleet_fps
             << ", \"speedup_vs_serial\": " << r.speedup
             << ", \"checksums_match\": "
             << (r.checksums_match ? "true" : "false")
             << ",\n     \"latency_ms\": " << aggregateJson(r.latency)
             << ",\n     \"queue_wait_ms\": " << aggregateJson(r.queue_wait)
             << ",\n     \"queue_depth\": " << aggregateJson(r.queue_depth)
             << ", \"sheds\": " << r.sheds
             << ",\n     \"miss_attribution\": " << r.miss_attribution
             << "}" << (i + 1 < policy_rows.size() ? "," : "") << "\n";
    }
    json << "  ]";
    if (temporal >= 1) {
        json << ",\n  \"temporal_fidelity\": [\n";
        for (std::size_t i = 0; i < temporal_checks.size(); ++i) {
            const TemporalCheck &c = temporal_checks[i];
            json << "    {\"scene\": \"" << c.scene
                 << "\", \"min_psnr_db\": "
                 << (std::isinf(c.min_psnr_db) ? 999.0 : c.min_psnr_db)
                 << ", \"bit_identical\": "
                 << (c.bit_identical ? "true" : "false")
                 << ", \"contract_ok\": " << (c.ok ? "true" : "false")
                 << "}" << (i + 1 < temporal_checks.size() ? "," : "")
                 << "\n";
        }
        json << "  ]";
    }
    json << paced_json;
    // Per-stage summaries + metrics registry for the whole run (all
    // policies combined).  Empty objects when GCC3D_OBS=OFF.
    json << ",\n  \"observability\": " << obs::observabilityJson();
    json << ",\n  \"checksums_ok\": " << (all_ok ? "true" : "false")
         << "\n}\n";

    if (out_path != "-") {
        if (!ResultTable::writeFile(out_path, json.str())) {
            std::fprintf(stderr, "failed to write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    if (!trace_path.empty()) {
        // Workers are quiescent (scheduler runs have returned), so the
        // recorder's rings are safe to read.
        if (!ResultTable::writeFile(trace_path, obs::traceJson())) {
            std::fprintf(stderr, "failed to write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", trace_path.c_str());
    }
    if (!temporal_ok)
        std::fprintf(stderr, "ERROR: temporal mode violated its "
                             "fidelity contract\n");
    else if (!all_ok)
        std::fprintf(stderr, "ERROR: scheduled checksums diverged from "
                             "the serial baseline\n");
    return all_ok ? 0 : 1;
}
