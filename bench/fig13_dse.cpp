/**
 * @file
 * Reproduces Fig. 13: design space exploration on the Train scene.
 *
 * (a) Image buffer capacity 32 KB … 8 MB vs performance-per-area
 *     (FPS/mm^2) and energy-per-area (mJ/mm^2).  Small buffers force
 *     Compatibility Mode with small sub-views (more duplicate
 *     processing); huge buffers stop paying for their area.  The
 *     paper picks 128 KB.
 * (b) Alpha & blending array size 4…64 PEs.  The paper picks 8x8=64;
 *     note the paper's x-axis is the array *side-count pair*
 *     (4 -> 2x2 ... 64 -> 8x8).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/accelerator.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 13", "design space exploration (Train)", scale);

    SceneSpec spec = scenePreset(SceneId::Train);
    GaussianCloud cloud = generateScene(spec, scale);
    Camera cam = makeCamera(spec);

    std::printf("(a) image buffer capacity sweep\n");
    std::printf("%-10s %8s %10s %10s %12s %12s\n", "buffer", "mode",
                "FPS", "mm^2", "FPS/mm^2", "mJ/mm^2");
    bench::rule();
    for (double kb : {32.0, 128.0, 512.0, 2048.0, 8192.0}) {
        GccConfig cfg;
        cfg.image_buffer_kb = kb;
        GccAccelerator acc(cfg);
        GccFrameResult r = acc.render(cloud, cam);
        double area = acc.areaMm2();
        std::printf("%7.0fKB %8s %10.1f %10.2f %12.2f %12.3f\n", kb,
                    r.cmode ? "Cmode" : "full", r.fps, area,
                    r.fps / area, r.energy.total() / area);
    }

    std::printf("\n(b) alpha & blending array size sweep\n");
    std::printf("%-10s %10s %10s %12s %12s\n", "PEs", "FPS", "mm^2",
                "FPS/mm^2", "mJ/mm^2");
    bench::rule();
    for (int pes : {4, 16, 64}) {
        GccConfig cfg;
        cfg.alpha_pes = pes;
        cfg.blend_pes = pes;
        // The PE array tiles one block per pass; shrink the block to
        // the array so boundary-identification granularity matches
        // (2x2 / 4x4 / 8x8).
        int side = 2;
        while (side * side < pes)
            side *= 2;
        cfg.block_size = side;
        GccAccelerator acc(cfg);
        GccFrameResult r = acc.render(cloud, cam);
        double area = acc.areaMm2();
        std::printf("%3d (%dx%d) %10.1f %10.2f %12.2f %12.3f\n", pes,
                    side, side, r.fps, area, r.fps / area,
                    r.energy.total() / area);
    }
    // Intermediate array sizes keep the paper's 8x8 block granularity
    // and pay multiple passes per block.
    for (int pes : {8, 32}) {
        GccConfig cfg;
        cfg.alpha_pes = pes;
        cfg.blend_pes = pes;
        GccAccelerator acc(cfg);
        GccFrameResult r = acc.render(cloud, cam);
        double area = acc.areaMm2();
        std::printf("%3d (8x8 blocks) %4.1f %10.2f %12.2f %12.3f\n", pes,
                    r.fps, area, r.fps / area, r.energy.total() / area);
    }
    std::printf("\npaper: 128 KB buffer and the 8x8 array maximize "
                "area-normalized performance.\n");
    return 0;
}
