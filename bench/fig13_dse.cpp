/**
 * @file
 * Reproduces Fig. 13: design space exploration on the Train scene.
 *
 * (a) Image buffer capacity 32 KB … 8 MB vs performance-per-area
 *     (FPS/mm^2) and energy-per-area (mJ/mm^2).  Small buffers force
 *     Compatibility Mode with small sub-views (more duplicate
 *     processing); huge buffers stop paying for their area.  The
 *     paper picks 128 KB.
 * (b) Alpha & blending array size 4…64 PEs.  The paper picks 8x8=64;
 *     note the paper's x-axis is the array *side-count pair*
 *     (4 -> 2x2 ... 64 -> 8x8).
 *
 * Both sweeps are expressed as config variants of one SweepSpec and
 * executed concurrently by the batch runtime (SweepRunner); the
 * printed numbers are identical to the previous serial loops.
 */

#include <cstdio>
#include <string>

#include "bench_util.h"

int
main()
{
    using namespace gcc3d;
    float scale = benchScale();
    bench::banner("Figure 13", "design space exploration (Train)", scale);

    SweepSpec spec;
    spec.addScene(SceneId::Train);
    spec.scale = scale;
    spec.backends = {Backend::Gcc};
    spec.variants.clear();

    for (double kb : {32.0, 128.0, 512.0, 2048.0, 8192.0}) {
        ConfigVariant v;
        v.name = "buf=" + std::to_string(static_cast<int>(kb));
        v.gcc.image_buffer_kb = kb;
        spec.variants.push_back(v);
    }
    // The PE array tiles one block per pass; shrink the block to the
    // array so boundary-identification granularity matches
    // (2x2 / 4x4 / 8x8).
    auto blockSide = [](int pes) {
        int side = 2;
        while (side * side < pes)
            side *= 2;
        return side;
    };
    for (int pes : {4, 16, 64}) {
        ConfigVariant v;
        v.name = "pes=" + std::to_string(pes);
        v.gcc.alpha_pes = pes;
        v.gcc.blend_pes = pes;
        v.gcc.block_size = blockSide(pes);
        spec.variants.push_back(v);
    }
    // Intermediate array sizes keep the paper's 8x8 block granularity
    // and pay multiple passes per block.
    for (int pes : {8, 32}) {
        ConfigVariant v;
        v.name = "pes8x8=" + std::to_string(pes);
        v.gcc.alpha_pes = pes;
        v.gcc.blend_pes = pes;
        spec.variants.push_back(v);
    }

    ResultTable table = bench::runSweep(spec);

    std::printf("(a) image buffer capacity sweep\n");
    std::printf("%-10s %8s %10s %10s %12s %12s\n", "buffer", "mode",
                "FPS", "mm^2", "FPS/mm^2", "mJ/mm^2");
    bench::rule();
    for (const JobResult &r : bench::rowsByVariantPrefix(table, "buf=")) {
        double kb = std::atof(r.variant.c_str() + 4);
        std::printf("%7.0fKB %8s %10.1f %10.2f %12.2f %12.3f\n", kb,
                    r.cmode ? "Cmode" : "full", r.fps, r.area_mm2,
                    r.fps / r.area_mm2, r.energy_mj / r.area_mm2);
    }

    std::printf("\n(b) alpha & blending array size sweep\n");
    std::printf("%-10s %10s %10s %12s %12s\n", "PEs", "FPS", "mm^2",
                "FPS/mm^2", "mJ/mm^2");
    bench::rule();
    for (const JobResult &r : bench::rowsByVariantPrefix(table, "pes=")) {
        int pes = std::atoi(r.variant.c_str() + 4);
        int side = blockSide(pes);
        std::printf("%3d (%dx%d) %10.1f %10.2f %12.2f %12.3f\n", pes,
                    side, side, r.fps, r.area_mm2, r.fps / r.area_mm2,
                    r.energy_mj / r.area_mm2);
    }
    for (const JobResult &r : bench::rowsByVariantPrefix(table, "pes8x8=")) {
        int pes = std::atoi(r.variant.c_str() + 7);
        std::printf("%3d (8x8 blocks) %4.1f %10.2f %12.2f %12.3f\n", pes,
                    r.fps, r.area_mm2, r.fps / r.area_mm2,
                    r.energy_mj / r.area_mm2);
    }
    std::printf("\npaper: 128 KB buffer and the 8x8 array maximize "
                "area-normalized performance.\n");
    return 0;
}
