/**
 * @file
 * Reproduces Table 2: rendering quality of the GPU reference
 * pipeline, GSCore, and GCC on the six scenes.
 *
 * The paper reports PSNR/LPIPS against dataset ground truth and finds
 * all three pipelines indistinguishable (deltas < 0.1 dB).  Without
 * the datasets, our ground truth is a near-exact splatting render
 * (generous bounds, negligible cutoff/termination thresholds); LPIPS
 * is replaced by SSIM (DESIGN.md §1).  The reproduced claim is the
 * *equality across pipelines*, not the absolute PSNR level.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/accelerator.h"
#include "gscore/gscore_sim.h"
#include "render/metrics.h"
#include "render/tile_renderer.h"
#include "scene/scene_generator.h"

int
main()
{
    using namespace gcc3d;
    // Quality needs no population scale to be meaningful; use half the
    // bench scale to keep the near-exact ground-truth render cheap.
    float scale = 0.5f * benchScale();
    bench::banner("Table 2", "rendering quality (vs near-exact ground "
                  "truth; SSIM substitutes LPIPS)", scale);

    std::printf("%-10s | %9s %7s | %9s %7s | %9s %7s\n", "scene",
                "GPU PSNR", "SSIM", "GSC PSNR", "SSIM", "GCC PSNR",
                "SSIM");
    bench::rule();

    for (SceneId id : allScenes()) {
        SceneSpec spec = scenePreset(id);
        GaussianCloud cloud = generateScene(spec, scale);
        Camera cam = makeCamera(spec);

        // Ground truth: near-exact splatting.
        TileRenderer gt_renderer(TileRendererConfig::groundTruth());
        StandardFlowStats gt_stats;
        Image gt = gt_renderer.render(cloud, cam, gt_stats);

        // GPU reference pipeline (AABB 3-sigma tiles).
        TileRendererConfig gpu_cfg;
        gpu_cfg.bounding = BoundingMode::Aabb3Sigma;
        TileRenderer gpu_renderer(gpu_cfg);
        StandardFlowStats gpu_stats;
        Image gpu = gpu_renderer.render(cloud, cam, gpu_stats);

        // GSCore (OBB) and GCC (Gaussian-wise) functional outputs.
        GscoreSim gscore;
        Image gsc = gscore.renderFrame(cloud, cam).image;
        GccAccelerator gcc;
        Image ours = gcc.render(cloud, cam).image;

        std::printf("%-10s | %8.2f %7.4f | %8.2f %7.4f | %8.2f "
                    "%7.4f\n",
                    spec.name.c_str(), psnr(gt, gpu), ssim(gt, gpu),
                    psnr(gt, gsc), ssim(gt, gsc), psnr(gt, ours),
                    ssim(gt, ours));
    }
    std::printf("\npaper: PSNR deviations below 0.1 dB between methods "
                "and identical LPIPS — i.e., the three pipelines are "
                "visually indistinguishable.\n");
    return 0;
}
