/**
 * @file
 * Shared helpers for the figure/table reproduction harness.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation section (see DESIGN.md §3) and prints the same
 * rows/series the paper reports, plus the paper's published values
 * for comparison where applicable.
 */

#ifndef GCC3D_BENCH_BENCH_UTIL_H
#define GCC3D_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "scene/scene_presets.h"

namespace gcc3d::bench {

/** Geometric mean of a series. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

/** Print the standard harness banner for a figure/table binary. */
inline void
banner(const std::string &id, const std::string &what, float scale)
{
    std::printf("==================================================="
                "=============\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("scene population scale: %.2f of paper-scale "
                "(GCC3D_SCALE to change)\n", scale);
    std::printf("==================================================="
                "=============\n");
}

/** Horizontal separator. */
inline void
rule()
{
    std::printf("-----------------------------------------------------"
                "-----------\n");
}

} // namespace gcc3d::bench

#endif // GCC3D_BENCH_BENCH_UTIL_H
