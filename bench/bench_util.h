/**
 * @file
 * Shared helpers for the figure/table reproduction harness.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation section (see DESIGN.md §3) and prints the same
 * rows/series the paper reports, plus the paper's published values
 * for comparison where applicable.
 */

#ifndef GCC3D_BENCH_BENCH_UTIL_H
#define GCC3D_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gsmath/simd.h"
#include "runtime/result_table.h"
#include "runtime/sweep_runner.h"
#include "scene/scene_presets.h"

namespace gcc3d::bench {

/**
 * Host metadata as a JSON object fragment, embedded in every
 * committed BENCH_*.json header so snapshot numbers are interpretable
 * later: thread-scaling rows that all read ~1.0x mean something very
 * different on a 1-core container than on a workstation, and SIMD
 * speedups depend on the compiled backend.
 */
inline std::string
hostJson()
{
    return "{\"hardware_concurrency\": " +
           std::to_string(std::thread::hardware_concurrency()) +
           ", \"simd_backend\": \"" + simd::backendName() +
           "\", \"simd_width\": " + std::to_string(simd::kWidth) + "}";
}

/**
 * Worker threads for harness sweeps: the GCC3D_WORKERS environment
 * variable, defaulting to every hardware thread.  The results are
 * deterministic regardless (see SweepRunner); workers only change
 * wall-clock time.
 */
inline int
benchWorkers()
{
    const char *env = std::getenv("GCC3D_WORKERS");
    if (env != nullptr) {
        int workers = std::atoi(env);
        if (workers > 0)
            return workers;
    }
    return ThreadPool::hardwareWorkers();
}

/**
 * Run @p spec on the parallel runtime with the bench worker count.
 * Failed jobs are reported loudly on stderr: a figure printed from an
 * incomplete sweep would silently misrepresent the paper's data.
 */
inline ResultTable
runSweep(const SweepSpec &spec)
{
    SweepOptions options;
    options.workers = benchWorkers();
    SweepRunner runner(options);
    ResultTable table(runner.run(spec));
    if (table.failedCount() > 0) {
        std::fprintf(stderr, "WARNING: %zu of %zu sweep jobs failed; "
                             "the figure below is incomplete:\n",
                     table.failedCount(), table.rows().size());
        for (const JobResult &r : table.rows())
            if (!r.ok)
                std::fprintf(stderr, "  %s/%s/%s/f%d: %s\n",
                             r.scene.c_str(), r.variant.c_str(),
                             backendName(r.backend).c_str(), r.frame,
                             r.error.c_str());
    }
    return table;
}

/**
 * Parse a --scenes CLI argument: "all" expands to every preset,
 * otherwise a comma-separated list of scene names.  Throws
 * std::invalid_argument on unknown names.
 */
inline std::vector<SceneId>
parseSceneList(const std::string &arg)
{
    if (arg == "all")
        return allScenes();
    std::vector<SceneId> out;
    std::string item;
    auto flush = [&] {
        if (!item.empty())
            out.push_back(sceneFromName(item));
        item.clear();
    };
    for (char c : arg) {
        if (c == ',')
            flush();
        else
            item += c;
    }
    flush();
    return out;
}

/** Split a comma-separated CLI list, dropping empty items. */
inline std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : arg) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item += c;
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

/** The successful rows of @p table whose variant name starts with @p prefix. */
inline std::vector<JobResult>
rowsByVariantPrefix(const ResultTable &table, const std::string &prefix)
{
    std::vector<JobResult> out;
    for (const JobResult &r : table.rows())
        if (r.ok && r.variant.rfind(prefix, 0) == 0)
            out.push_back(r);
    return out;
}

/** Geometric mean of a series. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

/** Print the standard harness banner for a figure/table binary. */
inline void
banner(const std::string &id, const std::string &what, float scale)
{
    std::printf("==================================================="
                "=============\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("scene population scale: %.2f of paper-scale "
                "(GCC3D_SCALE to change)\n", scale);
    std::printf("==================================================="
                "=============\n");
}

/** Horizontal separator. */
inline void
rule()
{
    std::printf("-----------------------------------------------------"
                "-----------\n");
}

} // namespace gcc3d::bench

#endif // GCC3D_BENCH_BENCH_UTIL_H
