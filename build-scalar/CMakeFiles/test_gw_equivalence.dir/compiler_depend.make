# Empty compiler generated dependencies file for test_gw_equivalence.
# This may be replaced when dependencies are built.
