file(REMOVE_RECURSE
  "CMakeFiles/test_gw_equivalence.dir/tests/test_gw_equivalence.cc.o"
  "CMakeFiles/test_gw_equivalence.dir/tests/test_gw_equivalence.cc.o.d"
  "test_gw_equivalence"
  "test_gw_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gw_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
