# Empty compiler generated dependencies file for gcc3d_serve.
# This may be replaced when dependencies are built.
