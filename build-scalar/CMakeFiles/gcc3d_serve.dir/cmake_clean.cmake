file(REMOVE_RECURSE
  "CMakeFiles/gcc3d_serve.dir/apps/gcc3d_serve.cpp.o"
  "CMakeFiles/gcc3d_serve.dir/apps/gcc3d_serve.cpp.o.d"
  "gcc3d_serve"
  "gcc3d_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcc3d_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
