# Empty dependencies file for gcc3d.
# This may be replaced when dependencies are built.
