file(REMOVE_RECURSE
  "libgcc3d.a"
)
