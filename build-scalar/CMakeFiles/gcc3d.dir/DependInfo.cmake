
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alpha_unit.cc" "CMakeFiles/gcc3d.dir/src/core/alpha_unit.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/core/alpha_unit.cc.o.d"
  "/root/repo/src/core/blending_unit.cc" "CMakeFiles/gcc3d.dir/src/core/blending_unit.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/core/blending_unit.cc.o.d"
  "/root/repo/src/core/depth_grouping.cc" "CMakeFiles/gcc3d.dir/src/core/depth_grouping.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/core/depth_grouping.cc.o.d"
  "/root/repo/src/core/gcc_sim.cc" "CMakeFiles/gcc3d.dir/src/core/gcc_sim.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/core/gcc_sim.cc.o.d"
  "/root/repo/src/core/projection_unit.cc" "CMakeFiles/gcc3d.dir/src/core/projection_unit.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/core/projection_unit.cc.o.d"
  "/root/repo/src/core/sh_unit.cc" "CMakeFiles/gcc3d.dir/src/core/sh_unit.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/core/sh_unit.cc.o.d"
  "/root/repo/src/core/sort_unit.cc" "CMakeFiles/gcc3d.dir/src/core/sort_unit.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/core/sort_unit.cc.o.d"
  "/root/repo/src/gpu/gpu_model.cc" "CMakeFiles/gcc3d.dir/src/gpu/gpu_model.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/gpu/gpu_model.cc.o.d"
  "/root/repo/src/gscore/gscore_sim.cc" "CMakeFiles/gcc3d.dir/src/gscore/gscore_sim.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/gscore/gscore_sim.cc.o.d"
  "/root/repo/src/gsmath/ellipse.cc" "CMakeFiles/gcc3d.dir/src/gsmath/ellipse.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/gsmath/ellipse.cc.o.d"
  "/root/repo/src/gsmath/exp_lut.cc" "CMakeFiles/gcc3d.dir/src/gsmath/exp_lut.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/gsmath/exp_lut.cc.o.d"
  "/root/repo/src/gsmath/sh.cc" "CMakeFiles/gcc3d.dir/src/gsmath/sh.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/gsmath/sh.cc.o.d"
  "/root/repo/src/render/boundary.cc" "CMakeFiles/gcc3d.dir/src/render/boundary.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/render/boundary.cc.o.d"
  "/root/repo/src/render/gaussian_wise_renderer.cc" "CMakeFiles/gcc3d.dir/src/render/gaussian_wise_renderer.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/render/gaussian_wise_renderer.cc.o.d"
  "/root/repo/src/render/image.cc" "CMakeFiles/gcc3d.dir/src/render/image.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/render/image.cc.o.d"
  "/root/repo/src/render/metrics.cc" "CMakeFiles/gcc3d.dir/src/render/metrics.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/render/metrics.cc.o.d"
  "/root/repo/src/render/preprocess.cc" "CMakeFiles/gcc3d.dir/src/render/preprocess.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/render/preprocess.cc.o.d"
  "/root/repo/src/render/splat_soa.cc" "CMakeFiles/gcc3d.dir/src/render/splat_soa.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/render/splat_soa.cc.o.d"
  "/root/repo/src/render/tile_renderer.cc" "CMakeFiles/gcc3d.dir/src/render/tile_renderer.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/render/tile_renderer.cc.o.d"
  "/root/repo/src/runtime/result_table.cc" "CMakeFiles/gcc3d.dir/src/runtime/result_table.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/runtime/result_table.cc.o.d"
  "/root/repo/src/runtime/sweep_runner.cc" "CMakeFiles/gcc3d.dir/src/runtime/sweep_runner.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/runtime/sweep_runner.cc.o.d"
  "/root/repo/src/runtime/thread_pool.cc" "CMakeFiles/gcc3d.dir/src/runtime/thread_pool.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/runtime/thread_pool.cc.o.d"
  "/root/repo/src/scene/camera.cc" "CMakeFiles/gcc3d.dir/src/scene/camera.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/scene/camera.cc.o.d"
  "/root/repo/src/scene/scene_generator.cc" "CMakeFiles/gcc3d.dir/src/scene/scene_generator.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/scene/scene_generator.cc.o.d"
  "/root/repo/src/scene/scene_io.cc" "CMakeFiles/gcc3d.dir/src/scene/scene_io.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/scene/scene_io.cc.o.d"
  "/root/repo/src/scene/scene_presets.cc" "CMakeFiles/gcc3d.dir/src/scene/scene_presets.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/scene/scene_presets.cc.o.d"
  "/root/repo/src/scene/trajectory.cc" "CMakeFiles/gcc3d.dir/src/scene/trajectory.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/scene/trajectory.cc.o.d"
  "/root/repo/src/serve/fleet.cc" "CMakeFiles/gcc3d.dir/src/serve/fleet.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/serve/fleet.cc.o.d"
  "/root/repo/src/serve/frame_scheduler.cc" "CMakeFiles/gcc3d.dir/src/serve/frame_scheduler.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/serve/frame_scheduler.cc.o.d"
  "/root/repo/src/serve/scene_registry.cc" "CMakeFiles/gcc3d.dir/src/serve/scene_registry.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/serve/scene_registry.cc.o.d"
  "/root/repo/src/serve/serve_stats.cc" "CMakeFiles/gcc3d.dir/src/serve/serve_stats.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/serve/serve_stats.cc.o.d"
  "/root/repo/src/serve/session.cc" "CMakeFiles/gcc3d.dir/src/serve/session.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/serve/session.cc.o.d"
  "/root/repo/src/sim/area_model.cc" "CMakeFiles/gcc3d.dir/src/sim/area_model.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/sim/area_model.cc.o.d"
  "/root/repo/src/sim/dram.cc" "CMakeFiles/gcc3d.dir/src/sim/dram.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/sim/dram.cc.o.d"
  "/root/repo/src/sim/energy_model.cc" "CMakeFiles/gcc3d.dir/src/sim/energy_model.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/sim/energy_model.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "CMakeFiles/gcc3d.dir/src/sim/pipeline.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/sim/pipeline.cc.o.d"
  "/root/repo/src/sim/sram.cc" "CMakeFiles/gcc3d.dir/src/sim/sram.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/sim/sram.cc.o.d"
  "/root/repo/src/sim/stats.cc" "CMakeFiles/gcc3d.dir/src/sim/stats.cc.o" "gcc" "CMakeFiles/gcc3d.dir/src/sim/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
