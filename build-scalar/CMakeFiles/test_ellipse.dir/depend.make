# Empty dependencies file for test_ellipse.
# This may be replaced when dependencies are built.
