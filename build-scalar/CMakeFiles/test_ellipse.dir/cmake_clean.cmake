file(REMOVE_RECURSE
  "CMakeFiles/test_ellipse.dir/tests/test_ellipse.cc.o"
  "CMakeFiles/test_ellipse.dir/tests/test_ellipse.cc.o.d"
  "test_ellipse"
  "test_ellipse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ellipse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
