# Empty compiler generated dependencies file for test_tile_renderer.
# This may be replaced when dependencies are built.
