file(REMOVE_RECURSE
  "CMakeFiles/test_tile_renderer.dir/tests/test_tile_renderer.cc.o"
  "CMakeFiles/test_tile_renderer.dir/tests/test_tile_renderer.cc.o.d"
  "test_tile_renderer"
  "test_tile_renderer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_renderer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
