# Empty dependencies file for table02_quality.
# This may be replaced when dependencies are built.
