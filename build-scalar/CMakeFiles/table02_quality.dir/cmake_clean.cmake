file(REMOVE_RECURSE
  "CMakeFiles/table02_quality.dir/bench/table02_quality.cpp.o"
  "CMakeFiles/table02_quality.dir/bench/table02_quality.cpp.o.d"
  "table02_quality"
  "table02_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
