# Empty dependencies file for sustained_rendering.
# This may be replaced when dependencies are built.
