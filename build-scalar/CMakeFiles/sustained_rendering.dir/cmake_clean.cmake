file(REMOVE_RECURSE
  "CMakeFiles/sustained_rendering.dir/examples/sustained_rendering.cpp.o"
  "CMakeFiles/sustained_rendering.dir/examples/sustained_rendering.cpp.o.d"
  "sustained_rendering"
  "sustained_rendering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sustained_rendering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
