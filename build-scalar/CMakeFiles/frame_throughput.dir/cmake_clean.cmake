file(REMOVE_RECURSE
  "CMakeFiles/frame_throughput.dir/bench/frame_throughput.cpp.o"
  "CMakeFiles/frame_throughput.dir/bench/frame_throughput.cpp.o.d"
  "frame_throughput"
  "frame_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
