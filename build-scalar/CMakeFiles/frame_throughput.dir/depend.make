# Empty dependencies file for frame_throughput.
# This may be replaced when dependencies are built.
