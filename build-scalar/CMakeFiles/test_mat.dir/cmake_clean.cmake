file(REMOVE_RECURSE
  "CMakeFiles/test_mat.dir/tests/test_mat.cc.o"
  "CMakeFiles/test_mat.dir/tests/test_mat.cc.o.d"
  "test_mat"
  "test_mat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
