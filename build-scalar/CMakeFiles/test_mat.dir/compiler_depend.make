# Empty compiler generated dependencies file for test_mat.
# This may be replaced when dependencies are built.
