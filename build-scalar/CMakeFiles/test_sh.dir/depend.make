# Empty dependencies file for test_sh.
# This may be replaced when dependencies are built.
