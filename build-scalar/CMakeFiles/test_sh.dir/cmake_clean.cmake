file(REMOVE_RECURSE
  "CMakeFiles/test_sh.dir/tests/test_sh.cc.o"
  "CMakeFiles/test_sh.dir/tests/test_sh.cc.o.d"
  "test_sh"
  "test_sh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
