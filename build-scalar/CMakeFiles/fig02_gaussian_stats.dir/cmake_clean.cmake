file(REMOVE_RECURSE
  "CMakeFiles/fig02_gaussian_stats.dir/bench/fig02_gaussian_stats.cpp.o"
  "CMakeFiles/fig02_gaussian_stats.dir/bench/fig02_gaussian_stats.cpp.o.d"
  "fig02_gaussian_stats"
  "fig02_gaussian_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_gaussian_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
