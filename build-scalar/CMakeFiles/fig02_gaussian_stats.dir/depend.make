# Empty dependencies file for fig02_gaussian_stats.
# This may be replaced when dependencies are built.
