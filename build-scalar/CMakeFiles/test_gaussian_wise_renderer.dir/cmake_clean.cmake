file(REMOVE_RECURSE
  "CMakeFiles/test_gaussian_wise_renderer.dir/tests/test_gaussian_wise_renderer.cc.o"
  "CMakeFiles/test_gaussian_wise_renderer.dir/tests/test_gaussian_wise_renderer.cc.o.d"
  "test_gaussian_wise_renderer"
  "test_gaussian_wise_renderer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gaussian_wise_renderer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
