# Empty compiler generated dependencies file for test_gaussian_wise_renderer.
# This may be replaced when dependencies are built.
