# Empty dependencies file for test_renderer_equivalence.
# This may be replaced when dependencies are built.
