file(REMOVE_RECURSE
  "CMakeFiles/test_renderer_equivalence.dir/tests/test_renderer_equivalence.cc.o"
  "CMakeFiles/test_renderer_equivalence.dir/tests/test_renderer_equivalence.cc.o.d"
  "test_renderer_equivalence"
  "test_renderer_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_renderer_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
