file(REMOVE_RECURSE
  "CMakeFiles/render_gallery.dir/examples/render_gallery.cpp.o"
  "CMakeFiles/render_gallery.dir/examples/render_gallery.cpp.o.d"
  "render_gallery"
  "render_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
