# Empty compiler generated dependencies file for render_gallery.
# This may be replaced when dependencies are built.
