file(REMOVE_RECURSE
  "CMakeFiles/test_accelerators.dir/tests/test_accelerators.cc.o"
  "CMakeFiles/test_accelerators.dir/tests/test_accelerators.cc.o.d"
  "test_accelerators"
  "test_accelerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
