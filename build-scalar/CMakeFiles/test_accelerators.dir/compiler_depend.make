# Empty compiler generated dependencies file for test_accelerators.
# This may be replaced when dependencies are built.
