file(REMOVE_RECURSE
  "CMakeFiles/test_quat.dir/tests/test_quat.cc.o"
  "CMakeFiles/test_quat.dir/tests/test_quat.cc.o.d"
  "test_quat"
  "test_quat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
