# Empty dependencies file for test_quat.
# This may be replaced when dependencies are built.
