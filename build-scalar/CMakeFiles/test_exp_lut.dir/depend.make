# Empty dependencies file for test_exp_lut.
# This may be replaced when dependencies are built.
