file(REMOVE_RECURSE
  "CMakeFiles/test_exp_lut.dir/tests/test_exp_lut.cc.o"
  "CMakeFiles/test_exp_lut.dir/tests/test_exp_lut.cc.o.d"
  "test_exp_lut"
  "test_exp_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
