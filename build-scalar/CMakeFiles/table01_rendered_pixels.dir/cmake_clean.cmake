file(REMOVE_RECURSE
  "CMakeFiles/table01_rendered_pixels.dir/bench/table01_rendered_pixels.cpp.o"
  "CMakeFiles/table01_rendered_pixels.dir/bench/table01_rendered_pixels.cpp.o.d"
  "table01_rendered_pixels"
  "table01_rendered_pixels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_rendered_pixels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
