# Empty compiler generated dependencies file for table01_rendered_pixels.
# This may be replaced when dependencies are built.
