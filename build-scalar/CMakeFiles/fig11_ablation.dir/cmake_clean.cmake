file(REMOVE_RECURSE
  "CMakeFiles/fig11_ablation.dir/bench/fig11_ablation.cpp.o"
  "CMakeFiles/fig11_ablation.dir/bench/fig11_ablation.cpp.o.d"
  "fig11_ablation"
  "fig11_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
