# Empty compiler generated dependencies file for table04_area_power.
# This may be replaced when dependencies are built.
