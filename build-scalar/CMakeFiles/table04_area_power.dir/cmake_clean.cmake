file(REMOVE_RECURSE
  "CMakeFiles/table04_area_power.dir/bench/table04_area_power.cpp.o"
  "CMakeFiles/table04_area_power.dir/bench/table04_area_power.cpp.o.d"
  "table04_area_power"
  "table04_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
