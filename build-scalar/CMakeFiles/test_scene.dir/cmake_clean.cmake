file(REMOVE_RECURSE
  "CMakeFiles/test_scene.dir/tests/test_scene.cc.o"
  "CMakeFiles/test_scene.dir/tests/test_scene.cc.o.d"
  "test_scene"
  "test_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
