# Empty compiler generated dependencies file for test_scene.
# This may be replaced when dependencies are built.
