file(REMOVE_RECURSE
  "CMakeFiles/fig10_speedup_energy.dir/bench/fig10_speedup_energy.cpp.o"
  "CMakeFiles/fig10_speedup_energy.dir/bench/fig10_speedup_energy.cpp.o.d"
  "fig10_speedup_energy"
  "fig10_speedup_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_speedup_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
