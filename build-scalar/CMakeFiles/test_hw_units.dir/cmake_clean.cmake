file(REMOVE_RECURSE
  "CMakeFiles/test_hw_units.dir/tests/test_hw_units.cc.o"
  "CMakeFiles/test_hw_units.dir/tests/test_hw_units.cc.o.d"
  "test_hw_units"
  "test_hw_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
