# Empty dependencies file for test_hw_units.
# This may be replaced when dependencies are built.
