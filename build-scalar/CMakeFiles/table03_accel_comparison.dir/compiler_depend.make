# Empty compiler generated dependencies file for table03_accel_comparison.
# This may be replaced when dependencies are built.
