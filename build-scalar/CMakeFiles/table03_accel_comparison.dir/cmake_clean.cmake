file(REMOVE_RECURSE
  "CMakeFiles/table03_accel_comparison.dir/bench/table03_accel_comparison.cpp.o"
  "CMakeFiles/table03_accel_comparison.dir/bench/table03_accel_comparison.cpp.o.d"
  "table03_accel_comparison"
  "table03_accel_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_accel_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
