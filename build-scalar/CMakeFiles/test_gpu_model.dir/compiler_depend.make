# Empty compiler generated dependencies file for test_gpu_model.
# This may be replaced when dependencies are built.
