file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_model.dir/tests/test_gpu_model.cc.o"
  "CMakeFiles/test_gpu_model.dir/tests/test_gpu_model.cc.o.d"
  "test_gpu_model"
  "test_gpu_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
