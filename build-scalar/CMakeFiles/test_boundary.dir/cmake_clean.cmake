file(REMOVE_RECURSE
  "CMakeFiles/test_boundary.dir/tests/test_boundary.cc.o"
  "CMakeFiles/test_boundary.dir/tests/test_boundary.cc.o.d"
  "test_boundary"
  "test_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
