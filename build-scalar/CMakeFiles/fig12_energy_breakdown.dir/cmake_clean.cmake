file(REMOVE_RECURSE
  "CMakeFiles/fig12_energy_breakdown.dir/bench/fig12_energy_breakdown.cpp.o"
  "CMakeFiles/fig12_energy_breakdown.dir/bench/fig12_energy_breakdown.cpp.o.d"
  "fig12_energy_breakdown"
  "fig12_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
