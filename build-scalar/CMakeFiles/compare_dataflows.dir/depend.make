# Empty dependencies file for compare_dataflows.
# This may be replaced when dependencies are built.
