file(REMOVE_RECURSE
  "CMakeFiles/compare_dataflows.dir/examples/compare_dataflows.cpp.o"
  "CMakeFiles/compare_dataflows.dir/examples/compare_dataflows.cpp.o.d"
  "compare_dataflows"
  "compare_dataflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_dataflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
