file(REMOVE_RECURSE
  "CMakeFiles/gcc3d_batch.dir/apps/gcc3d_batch.cpp.o"
  "CMakeFiles/gcc3d_batch.dir/apps/gcc3d_batch.cpp.o.d"
  "gcc3d_batch"
  "gcc3d_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcc3d_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
