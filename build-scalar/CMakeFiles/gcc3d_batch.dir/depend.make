# Empty dependencies file for gcc3d_batch.
# This may be replaced when dependencies are built.
