# Empty dependencies file for test_render_core.
# This may be replaced when dependencies are built.
