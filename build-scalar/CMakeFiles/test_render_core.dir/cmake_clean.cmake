file(REMOVE_RECURSE
  "CMakeFiles/test_render_core.dir/tests/test_render_core.cc.o"
  "CMakeFiles/test_render_core.dir/tests/test_render_core.cc.o.d"
  "test_render_core"
  "test_render_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
