file(REMOVE_RECURSE
  "CMakeFiles/fig14_bandwidth.dir/bench/fig14_bandwidth.cpp.o"
  "CMakeFiles/fig14_bandwidth.dir/bench/fig14_bandwidth.cpp.o.d"
  "fig14_bandwidth"
  "fig14_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
