# Empty dependencies file for fig14_bandwidth.
# This may be replaced when dependencies are built.
