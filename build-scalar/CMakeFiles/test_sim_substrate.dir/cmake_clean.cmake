file(REMOVE_RECURSE
  "CMakeFiles/test_sim_substrate.dir/tests/test_sim_substrate.cc.o"
  "CMakeFiles/test_sim_substrate.dir/tests/test_sim_substrate.cc.o.d"
  "test_sim_substrate"
  "test_sim_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
