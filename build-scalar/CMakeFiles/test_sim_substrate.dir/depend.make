# Empty dependencies file for test_sim_substrate.
# This may be replaced when dependencies are built.
