file(REMOVE_RECURSE
  "CMakeFiles/fig13_dse.dir/bench/fig13_dse.cpp.o"
  "CMakeFiles/fig13_dse.dir/bench/fig13_dse.cpp.o.d"
  "fig13_dse"
  "fig13_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
