# Empty dependencies file for test_camera.
# This may be replaced when dependencies are built.
