file(REMOVE_RECURSE
  "CMakeFiles/test_camera.dir/tests/test_camera.cc.o"
  "CMakeFiles/test_camera.dir/tests/test_camera.cc.o.d"
  "test_camera"
  "test_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
