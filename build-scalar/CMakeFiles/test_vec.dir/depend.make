# Empty dependencies file for test_vec.
# This may be replaced when dependencies are built.
