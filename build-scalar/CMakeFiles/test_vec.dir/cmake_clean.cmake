file(REMOVE_RECURSE
  "CMakeFiles/test_vec.dir/tests/test_vec.cc.o"
  "CMakeFiles/test_vec.dir/tests/test_vec.cc.o.d"
  "test_vec"
  "test_vec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
