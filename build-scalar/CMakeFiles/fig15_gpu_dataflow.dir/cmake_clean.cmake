file(REMOVE_RECURSE
  "CMakeFiles/fig15_gpu_dataflow.dir/bench/fig15_gpu_dataflow.cpp.o"
  "CMakeFiles/fig15_gpu_dataflow.dir/bench/fig15_gpu_dataflow.cpp.o.d"
  "fig15_gpu_dataflow"
  "fig15_gpu_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_gpu_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
