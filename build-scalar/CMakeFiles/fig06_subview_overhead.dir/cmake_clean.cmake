file(REMOVE_RECURSE
  "CMakeFiles/fig06_subview_overhead.dir/bench/fig06_subview_overhead.cpp.o"
  "CMakeFiles/fig06_subview_overhead.dir/bench/fig06_subview_overhead.cpp.o.d"
  "fig06_subview_overhead"
  "fig06_subview_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_subview_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
