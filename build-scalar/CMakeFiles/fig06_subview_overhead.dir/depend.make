# Empty dependencies file for fig06_subview_overhead.
# This may be replaced when dependencies are built.
