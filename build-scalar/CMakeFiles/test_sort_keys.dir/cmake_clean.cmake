file(REMOVE_RECURSE
  "CMakeFiles/test_sort_keys.dir/tests/test_sort_keys.cc.o"
  "CMakeFiles/test_sort_keys.dir/tests/test_sort_keys.cc.o.d"
  "test_sort_keys"
  "test_sort_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
