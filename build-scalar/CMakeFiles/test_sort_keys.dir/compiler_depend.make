# Empty compiler generated dependencies file for test_sort_keys.
# This may be replaced when dependencies are built.
